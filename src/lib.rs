//! SuperNoVA — full-stack reproduction of *SuperNoVA: Algorithm-Hardware
//! Co-Design for Resource-Aware SLAM* (ASPLOS 2025) in Rust.
//!
//! This meta-crate re-exports every layer of the stack:
//!
//! - [`linalg`] — dense kernels (GEMM, SYRK, TRSM, Cholesky)
//! - [`sparse`] — supernodal multifrontal sparse Cholesky
//! - [`factors`] — Lie-group manifolds and factor graphs
//! - [`solvers`] — batch GN, ISAM2 and the resource-aware RA-ISAM2
//! - [`hw`] — cycle-level SoC and baseline-platform models
//! - [`runtime`] — accelerator-virtualizing supernode scheduler
//! - [`datasets`] — M3500 / Sphere / CAB pose-graph generators and g2o IO
//! - [`metrics`] — APE / iRMSE / latency statistics
//! - [`core`] — the wired-together SuperNoVA system and experiment runner
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use supernova::core::{SuperNova, SuperNovaConfig};
//! use supernova::datasets::Dataset;
//!
//! let dataset = Dataset::cab1_scaled(0.05);
//! let mut system = SuperNova::new(SuperNovaConfig::default());
//! let outcome = system.run_online(&dataset);
//! assert!(outcome.steps() > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use supernova_core as core;
pub use supernova_datasets as datasets;
pub use supernova_factors as factors;
pub use supernova_hw as hw;
pub use supernova_linalg as linalg;
pub use supernova_metrics as metrics;
pub use supernova_runtime as runtime;
pub use supernova_solvers as solvers;
pub use supernova_sparse as sparse;
