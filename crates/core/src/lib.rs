//! The wired-together SuperNoVA system and the experiment machinery that
//! regenerates the paper's evaluation.
//!
//! - [`SuperNova`] — the headline artifact: RA-ISAM2 over the runtime's
//!   cost model, priced on the SuperNoVA SoC (Figure 1's full stack);
//! - [`SolverKind`] — the §5.5 algorithm matrix (Local, Local+Global,
//!   Incremental, RA × hardware);
//! - [`Reference`] — optimized-to-convergence reference trajectories
//!   (§5.3);
//! - [`run_online`] — the online replay loop: one pose per step, per-step
//!   latency priced on any number of platforms at once, per-step accuracy
//!   against the reference;
//! - [`report`] — plain-text table / CSV helpers used by the `repro`
//!   binary.
//!
//! # Example
//!
//! ```
//! use supernova_core::{SuperNova, SuperNovaConfig};
//! use supernova_datasets::Dataset;
//!
//! let dataset = Dataset::cab1_scaled(0.05);
//! let mut system = SuperNova::new(SuperNovaConfig::default());
//! let outcome = system.run_online(&dataset);
//! assert_eq!(outcome.steps(), dataset.num_steps());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod baselines;
mod experiment;
pub mod report;
mod system;

pub use baselines::SolverKind;
pub use experiment::{
    run_online, ErrorSample, ExperimentConfig, PricingTarget, Reference, RunRecord,
};
pub use system::{RunOutcome, SuperNova, SuperNovaConfig};
