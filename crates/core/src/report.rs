//! Plain-text tables and CSV emission for the `repro` harness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use supernova_core::report::Table;
///
/// let mut t = Table::new(&["dataset", "latency"]);
/// t.row(&["CAB1", "1.2 ms"]);
/// let s = t.render();
/// assert!(s.contains("CAB1"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.as_ref().to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", cell, w = widths[c] + 2);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().min(120))
        );
        for row in &self.rows {
            line(&mut out, row);
        }
        let _ = out.pop(); // trailing newline handled by caller
        out.push('\n');
        out
    }

    /// Serializes as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self
            .headers
            .iter()
            .map(|h| esc(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out += &row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",");
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats seconds as milliseconds with three significant decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e3)
}

/// Formats a ratio as a percentage.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats an error in meters with adaptive precision (Table 4 style).
pub fn err_m(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["x", "1"]).row(&["yyyyy", "2"]);
        let s = t.render();
        assert!(s.contains("long-header"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["a"]);
        t.row(&["x,y"]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new(&["a", "b"]).row(&["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(0.001), "1.000");
        assert_eq!(pct(0.25), "25.0%");
        assert_eq!(err_m(0.0), "0");
        assert_eq!(err_m(1.234567), "1.235");
        assert!(err_m(0.0001).contains('e'));
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("supernova-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new(&["a"]);
        t.row(&["1"]);
        let path = dir.join("deep/file.csv");
        t.write_csv(&path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
