//! The online experiment runner: replay, multi-platform pricing, accuracy.

use supernova_datasets::{Dataset, OnlineStep};
use supernova_factors::{Key, Values, Variable};
use supernova_hw::Platform;
use supernova_metrics::{ape, ApeStats, IrmseAccumulator};
use supernova_runtime::{simulate_step, SchedulerConfig, StepLatency};
use supernova_solvers::{BatchConfig, BatchSolver, OnlineSolver};

/// One platform × scheduler configuration to price a run's step traces on.
#[derive(Clone, Debug)]
pub struct PricingTarget {
    /// Label for reports.
    pub label: String,
    /// The hardware model.
    pub platform: Platform,
    /// Runtime parallelism toggles.
    pub sched: SchedulerConfig,
}

impl PricingTarget {
    /// A target with the default scheduler configuration.
    pub fn new(label: impl Into<String>, platform: Platform) -> Self {
        PricingTarget {
            label: label.into(),
            platform,
            sched: SchedulerConfig::default(),
        }
    }
}

/// Runner options.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Platforms to price each step on (the same execution trace is priced
    /// on all of them — one numeric run, many latency series).
    pub pricings: Vec<PricingTarget>,
    /// Evaluate accuracy every `eval_stride` steps (0 disables; the final
    /// step is always evaluated when a reference is supplied).
    pub eval_stride: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            pricings: vec![PricingTarget::new("SuperNoVA-2S", Platform::supernova(2))],
            eval_stride: 25,
        }
    }
}

/// Accuracy sample at one evaluated step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorSample {
    /// Step index.
    pub step: usize,
    /// Maximum translation error over poses `0..=step`.
    pub max: f64,
    /// RMSE over poses `0..=step`.
    pub rmse: f64,
}

/// The outcome of one online run.
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    /// Dataset name.
    pub dataset: String,
    /// Solver name.
    pub solver: String,
    /// Pricing labels, aligned with `latencies`.
    pub pricing_labels: Vec<String>,
    /// Per-pricing, per-step latency breakdowns.
    pub latencies: Vec<Vec<StepLatency>>,
    /// Per-evaluated-step accuracy samples.
    pub errors: Vec<ErrorSample>,
    /// Worst per-step MAX across evaluated steps.
    pub max_error: f64,
    /// Incremental RMSE (Equation (3)) across evaluated steps.
    pub irmse: f64,
}

impl RunRecord {
    /// Total latencies (seconds) of pricing `p`.
    pub fn totals(&self, p: usize) -> Vec<f64> {
        self.latencies[p].iter().map(StepLatency::total).collect()
    }

    /// Numeric-only latencies (seconds) of pricing `p`.
    pub fn numerics(&self, p: usize) -> Vec<f64> {
        self.latencies[p].iter().map(|l| l.numeric).collect()
    }

    /// Index of a pricing label.
    pub fn pricing(&self, label: &str) -> Option<usize> {
        self.pricing_labels.iter().position(|l| l == label)
    }
}

/// Fully optimized reference trajectories at a stride of steps (§5.3): the
/// graph up to step `k` solved to convergence, warm-started from the
/// previous reference.
#[derive(Clone, Debug)]
pub struct Reference {
    steps: Vec<usize>,
    trajectories: Vec<Values>,
}

impl Reference {
    /// Computes references every `stride` steps (plus the final step).
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn compute(dataset: &Dataset, stride: usize) -> Reference {
        assert!(stride > 0, "stride must be positive");
        let online = dataset.online_steps();
        let n = online.len();
        let eval_steps: Vec<usize> = (0..n)
            .filter(|&i| i % stride == stride - 1 || i == n - 1)
            .collect();

        let mut graph = supernova_factors::FactorGraph::new();
        let mut warm = Values::new();
        let solver = BatchSolver::new(BatchConfig {
            max_iterations: 20,
            tolerance: 1e-5,
            use_min_degree: true,
            relax: 1,
        });
        let mut trajectories = Vec::with_capacity(eval_steps.len());
        let mut next_eval = 0usize;
        for (i, step) in online.iter().enumerate() {
            let init = initial_guess(&warm, i, step);
            warm.insert(init);
            for f in &step.factors {
                graph.add_arc(std::sync::Arc::clone(f));
            }
            if next_eval < eval_steps.len() && eval_steps[next_eval] == i {
                let (solved, _) = solver.solve(&graph, &warm);
                warm = solved.clone();
                trajectories.push(solved);
                next_eval += 1;
            }
        }
        Reference {
            steps: eval_steps,
            trajectories,
        }
    }

    /// The evaluated step indices.
    pub fn eval_steps(&self) -> &[usize] {
        &self.steps
    }

    /// The reference trajectory at step `step`, if evaluated there.
    pub fn at(&self, step: usize) -> Option<&Values> {
        self.steps
            .iter()
            .position(|&s| s == step)
            .map(|i| &self.trajectories[i])
    }

    /// The final reference trajectory.
    pub fn last(&self) -> Option<&Values> {
        self.trajectories.last()
    }
}

/// The odometry-propagated initial guess for the new pose of `step`.
fn initial_guess(prev_estimates: &Values, i: usize, step: &OnlineStep) -> Variable {
    if i == 0 {
        return step.truth.clone();
    }
    match &step.odometry {
        Some(odom) => {
            let prev = prev_estimates.get(Key(i - 1));
            compose(prev, odom)
        }
        None => step.truth.clone(),
    }
}

fn compose(pose: &Variable, rel: &Variable) -> Variable {
    match (pose, rel) {
        (Variable::Se2(a), Variable::Se2(b)) => Variable::Se2(a.compose(*b)),
        (Variable::Se3(a), Variable::Se3(b)) => Variable::Se3(a.compose(b)),
        _ => panic!("compose over mismatched variable kinds"),
    }
}

/// Replays `dataset` through `solver` online: one pose per step, pricing
/// each step's trace on every target in `cfg.pricings`, and evaluating
/// accuracy against `reference` at the configured stride.
pub fn run_online(
    dataset: &Dataset,
    solver: &mut dyn OnlineSolver,
    cfg: &ExperimentConfig,
    reference: Option<&Reference>,
) -> RunRecord {
    let online = dataset.online_steps();
    let n = online.len();
    let mut record = RunRecord {
        dataset: dataset.name().to_string(),
        solver: solver.name().to_string(),
        pricing_labels: cfg.pricings.iter().map(|p| p.label.clone()).collect(),
        latencies: vec![Vec::with_capacity(n); cfg.pricings.len()],
        ..RunRecord::default()
    };
    let mut acc = IrmseAccumulator::new();
    for (i, step) in online.iter().enumerate() {
        let init = if i == 0 {
            step.truth.clone()
        } else {
            match &step.odometry {
                Some(odom) => compose(&solver.pose_estimate(Key(i - 1)), odom),
                None => step.truth.clone(),
            }
        };
        let trace = solver.step(init, step.factors.clone());
        for (p, target) in cfg.pricings.iter().enumerate() {
            record.latencies[p].push(simulate_step(&target.platform, &trace, &target.sched));
        }
        if let Some(r) = reference {
            if let Some(reference_traj) = r.at(i) {
                let stats: ApeStats = ape(&solver.estimate(), reference_traj);
                acc.push(stats);
                record.errors.push(ErrorSample {
                    step: i,
                    max: stats.max,
                    rmse: stats.rmse,
                });
            }
        }
    }
    record.max_error = acc.max();
    record.irmse = acc.irmse();
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolverKind;

    fn small_dataset() -> Dataset {
        Dataset::m3500_scaled(0.03) // 105 steps
    }

    #[test]
    fn reference_is_consistent_and_strided() {
        let ds = small_dataset();
        let r = Reference::compute(&ds, 20);
        assert!(!r.eval_steps().is_empty());
        assert_eq!(*r.eval_steps().last().unwrap(), ds.num_steps() - 1);
        let last = r.last().unwrap();
        assert_eq!(last.len(), ds.num_steps());
        // Reference should be close to ground truth (small noise).
        let gt = {
            let mut v = Values::new();
            for p in ds.ground_truth() {
                v.insert(p.clone());
            }
            v
        };
        // The optimum legitimately deviates from ground truth by the
        // injected measurement noise; it must stay in the same ballpark.
        let stats = ape(last, &gt);
        assert!(stats.rmse < 3.0, "reference far from truth: {}", stats.rmse);
    }

    #[test]
    fn run_online_prices_on_all_targets() {
        let ds = small_dataset();
        let r = Reference::compute(&ds, 50);
        let mut solver = SolverKind::Incremental.build(1.0 / 30.0, 0.05);
        let cfg = ExperimentConfig {
            pricings: vec![
                PricingTarget::new("sn2", Platform::supernova(2)),
                PricingTarget::new("boom", Platform::boom()),
            ],
            eval_stride: 50,
        };
        let rec = run_online(&ds, solver.as_mut(), &cfg, Some(&r));
        assert_eq!(rec.latencies.len(), 2);
        assert_eq!(rec.latencies[0].len(), ds.num_steps());
        assert!(!rec.errors.is_empty());
        assert!(rec.pricing("boom").is_some());
        assert!(rec.pricing("nope").is_none());
        // The incremental solver should track the reference closely.
        assert!(rec.irmse < 0.5, "irmse {}", rec.irmse);
        // BOOM prices slower than SuperNoVA overall.
        let sn: f64 = rec.totals(0).iter().sum();
        let boom: f64 = rec.totals(1).iter().sum();
        assert!(sn < boom, "supernova {sn} !< boom {boom}");
    }

    #[test]
    fn local_solver_runs_and_drifts_more_than_incremental() {
        let ds = small_dataset();
        let r = Reference::compute(&ds, 50);
        let cfg = ExperimentConfig {
            pricings: vec![],
            eval_stride: 50,
        };
        let mut local = SolverKind::Local.build(1.0 / 30.0, 0.05);
        let rec_local = run_online(&ds, local.as_mut(), &cfg, Some(&r));
        let mut inc = SolverKind::Incremental.build(1.0 / 30.0, 0.05);
        let rec_inc = run_online(&ds, inc.as_mut(), &cfg, Some(&r));
        assert!(
            rec_local.irmse >= rec_inc.irmse,
            "local {} should not beat incremental {}",
            rec_local.irmse,
            rec_inc.irmse
        );
    }
}
