//! The assembled SuperNoVA system (Figure 1).

use supernova_datasets::Dataset;
use supernova_hw::Platform;
use supernova_metrics::{miss_rate, BoxStats};
use supernova_runtime::{SchedulerConfig, StepLatency};

use crate::{run_online, ExperimentConfig, PricingTarget, Reference, RunRecord, SolverKind};

/// Configuration of a SuperNoVA deployment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuperNovaConfig {
    /// Accelerator sets on the SoC (1/2/4 in the evaluation).
    pub accel_sets: usize,
    /// Per-step deadline in seconds (33.3 ms for 30 FPS).
    pub target_seconds: f64,
    /// Relinearization relevance threshold β.
    pub beta: f64,
    /// Runtime parallelism configuration.
    pub sched: SchedulerConfig,
    /// Accuracy evaluation stride (steps).
    pub eval_stride: usize,
}

impl Default for SuperNovaConfig {
    fn default() -> Self {
        SuperNovaConfig {
            accel_sets: 2,
            target_seconds: 1.0 / 30.0,
            beta: 0.02,
            sched: SchedulerConfig::default(),
            eval_stride: 25,
        }
    }
}

/// Summary of one SuperNoVA online run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    record: RunRecord,
    target: f64,
}

impl RunOutcome {
    /// Steps processed.
    pub fn steps(&self) -> usize {
        self.record.latencies[0].len()
    }

    /// Per-step latency breakdowns on the SuperNoVA SoC.
    pub fn latencies(&self) -> &[StepLatency] {
        &self.record.latencies[0]
    }

    /// Fraction of steps that missed the deadline.
    pub fn miss_rate(&self) -> f64 {
        miss_rate(&self.record.totals(0), self.target)
    }

    /// Latency box statistics (the Figure 10 summary).
    pub fn latency_stats(&self) -> BoxStats {
        BoxStats::from_samples(&self.record.totals(0))
    }

    /// Worst per-step maximum translation error (empty-reference runs
    /// report 0).
    pub fn max_error(&self) -> f64 {
        self.record.max_error
    }

    /// Incremental RMSE (empty-reference runs report 0).
    pub fn irmse(&self) -> f64 {
        self.record.irmse
    }

    /// The full run record.
    pub fn record(&self) -> &RunRecord {
        &self.record
    }
}

/// The full-stack SuperNoVA system: the RA-ISAM2 algorithm budgeting
/// against the runtime cost model of a SuperNoVA SoC, with every step
/// priced on that SoC's scheduler.
///
/// # Example
///
/// ```
/// use supernova_core::{SuperNova, SuperNovaConfig};
/// use supernova_datasets::Dataset;
///
/// let mut system = SuperNova::new(SuperNovaConfig { accel_sets: 2, ..Default::default() });
/// let outcome = system.run_online(&Dataset::cab1_scaled(0.05));
/// assert!(outcome.miss_rate() <= 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct SuperNova {
    config: SuperNovaConfig,
    platform: Platform,
}

impl SuperNova {
    /// Builds the system for the configured SoC.
    pub fn new(config: SuperNovaConfig) -> Self {
        SuperNova {
            platform: Platform::supernova(config.accel_sets),
            config,
        }
    }

    /// The modeled SoC platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The configuration.
    pub fn config(&self) -> &SuperNovaConfig {
        &self.config
    }

    /// Runs the dataset online without accuracy evaluation.
    pub fn run_online(&mut self, dataset: &Dataset) -> RunOutcome {
        self.run(dataset, None)
    }

    /// Runs the dataset online, evaluating accuracy against `reference`.
    pub fn run_online_with_reference(
        &mut self,
        dataset: &Dataset,
        reference: &Reference,
    ) -> RunOutcome {
        self.run(dataset, Some(reference))
    }

    fn run(&mut self, dataset: &Dataset, reference: Option<&Reference>) -> RunOutcome {
        let kind = SolverKind::ResourceAware {
            sets: self.config.accel_sets,
        };
        let mut solver = kind.build(self.config.target_seconds, self.config.beta);
        let cfg = ExperimentConfig {
            pricings: vec![PricingTarget {
                label: format!("SuperNoVA-{}S", self.config.accel_sets),
                platform: self.platform.clone(),
                sched: self.config.sched,
            }],
            eval_stride: self.config.eval_stride,
        };
        let record = run_online(dataset, solver.as_mut(), &cfg, reference);
        RunOutcome {
            record,
            target: self.config.target_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meets_deadline_on_small_cab() {
        let mut sys = SuperNova::new(SuperNovaConfig::default());
        let ds = Dataset::cab1_scaled(0.15);
        let out = sys.run_online(&ds);
        assert_eq!(out.steps(), ds.num_steps());
        assert_eq!(out.miss_rate(), 0.0, "RA-ISAM2 missed the deadline");
        assert!(out.latency_stats().max <= 1.0 / 30.0 + 1e-9);
    }

    #[test]
    fn accuracy_reported_with_reference() {
        let ds = Dataset::m3500_scaled(0.02);
        let r = Reference::compute(&ds, 20);
        let mut sys = SuperNova::new(SuperNovaConfig {
            eval_stride: 20,
            ..Default::default()
        });
        let out = sys.run_online_with_reference(&ds, &r);
        assert!(out.irmse() >= 0.0);
        assert!(!out.record().errors.is_empty());
    }
}
