//! The §5.5 algorithm baseline matrix.

use std::sync::Arc;

use supernova_hw::Platform;
use supernova_runtime::CostModel;
use supernova_solvers::{
    FixedLagConfig, FixedLagSmoother, Isam2, Isam2Config, LocalGlobal, LocalGlobalConfig,
    OnlineSolver, RaIsam2, RaIsam2Config,
};

/// Which SLAM backend algorithm to run (§5.5), including the hardware
/// configuration the resource-aware variants budget against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// VIO-style fixed-lag smoother, window 20 (baseline 1).
    Local,
    /// Local smoother plus a delayed background loop-closure solver
    /// (baseline 2).
    LocalGlobal,
    /// ISAM2 with a fixed relinearization threshold (baseline 3).
    Incremental,
    /// RA-ISAM2 budgeting for `sets` SuperNoVA accelerator sets
    /// (RA1S/RA2S/RA4S).
    ResourceAware {
        /// SuperNoVA accelerator sets available.
        sets: usize,
    },
    /// RA-ISAM2 budgeting for a server CPU (the RACPU ablation).
    ResourceAwareCpu,
}

impl SolverKind {
    /// Label matching the paper's tables.
    pub fn label(&self) -> String {
        match self {
            SolverKind::Local => "Local".into(),
            SolverKind::LocalGlobal => "Local+Global".into(),
            SolverKind::Incremental => "In".into(),
            SolverKind::ResourceAware { sets } => format!("RA{sets}S"),
            SolverKind::ResourceAwareCpu => "RACPU".into(),
        }
    }

    /// The hardware platform this solver's latency is naturally priced on.
    pub fn platform(&self) -> Platform {
        match self {
            SolverKind::ResourceAware { sets } => Platform::supernova(*sets),
            SolverKind::ResourceAwareCpu => Platform::server_cpu(),
            _ => Platform::supernova(2),
        }
    }

    /// Builds the solver. `target_seconds` bounds the resource-aware
    /// variants (33.3 ms in the paper); `beta` is the relinearization
    /// threshold shared by the incremental variants.
    pub fn build(&self, target_seconds: f64, beta: f64) -> Box<dyn OnlineSolver> {
        match self {
            SolverKind::Local => Box::new(FixedLagSmoother::new(FixedLagConfig::default())),
            SolverKind::LocalGlobal => Box::new(LocalGlobal::new(LocalGlobalConfig::default())),
            SolverKind::Incremental => Box::new(Isam2::new(Isam2Config {
                beta,
                ..Isam2Config::default()
            })),
            SolverKind::ResourceAware { .. } | SolverKind::ResourceAwareCpu => {
                let cost = Arc::new(CostModel::new(self.platform()));
                Box::new(RaIsam2::new(
                    RaIsam2Config {
                        beta,
                        target_seconds,
                        ..RaIsam2Config::default()
                    },
                    cost,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table4_columns() {
        assert_eq!(SolverKind::Local.label(), "Local");
        assert_eq!(SolverKind::LocalGlobal.label(), "Local+Global");
        assert_eq!(SolverKind::Incremental.label(), "In");
        assert_eq!(SolverKind::ResourceAware { sets: 4 }.label(), "RA4S");
        assert_eq!(SolverKind::ResourceAwareCpu.label(), "RACPU");
    }

    #[test]
    fn builds_every_kind() {
        for kind in [
            SolverKind::Local,
            SolverKind::LocalGlobal,
            SolverKind::Incremental,
            SolverKind::ResourceAware { sets: 2 },
            SolverKind::ResourceAwareCpu,
        ] {
            let s = kind.build(1.0 / 30.0, 0.05);
            assert_eq!(s.num_poses(), 0);
        }
    }

    #[test]
    fn ra_platforms_differ() {
        assert!(SolverKind::ResourceAware { sets: 2 }
            .platform()
            .is_accelerated());
        assert!(!SolverKind::ResourceAwareCpu.platform().is_accelerated());
    }
}
