//! Randomized tests for the dense kernels, driven by the in-tree seeded
//! PRNG so every case is reproducible offline.
//!
//! The `blocked_*` tests are the blocked-kernel acceptance suite: every
//! public level-3 entry point is checked against the unblocked
//! [`reference`] kernels over randomized shapes chosen to exercise
//! microkernel tails (dims not divisible by the 4×4 tile), the packed and
//! direct dispatch paths, all transpose combinations, alpha/beta edge
//! cases (0, 1, negative) and empty dimensions.

use supernova_linalg::rng::XorShift64;
use supernova_linalg::{
    cholesky_in_place, gemm, partial_cholesky_in_place, reference, solve_lower,
    solve_lower_transpose, syrk_lower, trsm_right_lower_transpose, Mat, Transpose,
};

const CASES: u64 = 128;

/// A random well-conditioned SPD matrix of size 1..=8.
fn spd_matrix(rng: &mut XorShift64) -> Mat {
    let n = 1 + rng.gen_index(8);
    let g = Mat::from_fn(n, n, |_, _| rng.gen_range(-1.0, 1.0));
    let mut a = Mat::from_diag(&vec![n as f64 + 1.0; n]);
    syrk_lower(1.0, &g, 1.0, &mut a);
    Mat::from_fn(n, n, |r, c| if r >= c { a[(r, c)] } else { a[(c, r)] })
}

#[test]
fn cholesky_reconstructs_input() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a0_0000 + case);
        let a = spd_matrix(&mut rng);
        let n = a.rows();
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        let mut r = Mat::zeros(n, n);
        gemm(1.0, &l, Transpose::No, &l, Transpose::Yes, 0.0, &mut r);
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (r[(i, j)] - a[(i, j)]).abs() < 1e-7 * (n as f64 + 1.0),
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn solve_inverts_spd_system() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a1_0000 + case);
        let a = spd_matrix(&mut rng);
        let n = a.rows();
        let seed = rng.gen_index(1000) as u64;
        let x_true: Vec<f64> = (0..n)
            .map(|i| ((seed + i as u64) % 7) as f64 - 3.0)
            .collect();
        let b = a.matvec(&x_true);
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        let mut x = b;
        solve_lower(&l, &mut x);
        solve_lower_transpose(&l, &mut x);
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-6, "case {case} component {i}");
        }
    }
}

#[test]
fn partial_factorization_prefix_of_full() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a2_0000 + case);
        let a = spd_matrix(&mut rng);
        let n = a.rows();
        let pivots = rng.gen_index(9).min(n);
        let mut full = a.clone();
        cholesky_in_place(&mut full).unwrap();
        let mut front = a.clone();
        partial_cholesky_in_place(&mut front, pivots).unwrap();
        for j in 0..pivots {
            for i in j..n {
                assert!(
                    (front[(i, j)] - full[(i, j)]).abs() < 1e-7,
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn gemm_is_linear_in_alpha() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a3_0000 + case);
        let a = Mat::from_fn(3, 3, |_, _| rng.gen_range(-2.0, 2.0));
        let b = Mat::from_fn(3, 3, |_, _| rng.gen_range(-2.0, 2.0));
        let alpha = rng.gen_range(-3.0, 3.0);
        let mut c1 = Mat::zeros(3, 3);
        gemm(alpha, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c1);
        let mut c2 = Mat::zeros(3, 3);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c2);
        c2.scale(alpha);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (c1[(i, j)] - c2[(i, j)]).abs() < 1e-10,
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}

/// Shape distribution biased toward interesting sizes: empty dims, the
/// SLAM-typical 3/6 fast-path dims, tile-tail dims (not ≡ 0 mod 4), and
/// packed-path dims (> 24).
fn gen_dim(rng: &mut XorShift64) -> usize {
    const POOL: [usize; 12] = [0, 1, 2, 3, 5, 6, 7, 12, 17, 30, 33, 61];
    POOL[rng.gen_index(POOL.len())]
}

fn gen_mat(rng: &mut XorShift64, rows: usize, cols: usize) -> Mat {
    Mat::from_fn(rows, cols, |_, _| rng.gen_range(-2.0, 2.0))
}

fn gen_alpha_beta(rng: &mut XorShift64) -> (f64, f64) {
    const EDGES: [f64; 5] = [0.0, 1.0, -1.0, 0.5, -2.25];
    (
        EDGES[rng.gen_index(EDGES.len())],
        EDGES[rng.gen_index(EDGES.len())],
    )
}

fn assert_close(case: u64, label: &str, got: &Mat, want: &Mat, tol: f64) {
    assert_eq!(got.rows(), want.rows());
    assert_eq!(got.cols(), want.cols());
    for j in 0..want.cols() {
        for i in 0..want.rows() {
            assert!(
                (got[(i, j)] - want[(i, j)]).abs() < tol,
                "{label} case {case} at ({i},{j}): got {} want {}",
                got[(i, j)],
                want[(i, j)]
            );
        }
    }
}

#[test]
fn blocked_gemm_agrees_with_reference_all_transposes_and_edges() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a5_0000 + case);
        let m = gen_dim(&mut rng);
        let n = gen_dim(&mut rng);
        let k = gen_dim(&mut rng);
        let (alpha, beta) = gen_alpha_beta(&mut rng);
        let op_a = if rng.gen_bool(0.5) {
            Transpose::Yes
        } else {
            Transpose::No
        };
        let op_b = if rng.gen_bool(0.5) {
            Transpose::Yes
        } else {
            Transpose::No
        };
        let a = match op_a {
            Transpose::No => gen_mat(&mut rng, m, k),
            Transpose::Yes => gen_mat(&mut rng, k, m),
        };
        let b = match op_b {
            Transpose::No => gen_mat(&mut rng, k, n),
            Transpose::Yes => gen_mat(&mut rng, n, k),
        };
        let c0 = gen_mat(&mut rng, m, n);
        let mut blocked = c0.clone();
        let mut naive = c0;
        gemm(alpha, &a, op_a, &b, op_b, beta, &mut blocked);
        reference::gemm(alpha, &a, op_a, &b, op_b, beta, &mut naive);
        let tol = 1e-10 * (k as f64 + 1.0);
        assert_close(case, "gemm", &blocked, &naive, tol);
    }
}

#[test]
fn blocked_syrk_agrees_with_reference_and_preserves_upper() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a6_0000 + case);
        let n = gen_dim(&mut rng);
        let k = gen_dim(&mut rng);
        let (alpha, beta) = gen_alpha_beta(&mut rng);
        let a = gen_mat(&mut rng, n, k);
        let c0 = gen_mat(&mut rng, n, n);
        let mut blocked = c0.clone();
        let mut naive = c0.clone();
        syrk_lower(alpha, &a, beta, &mut blocked);
        reference::syrk_lower(alpha, &a, beta, &mut naive);
        let tol = 1e-10 * (k as f64 + 1.0);
        assert_close(case, "syrk", &blocked, &naive, tol);
        // Strict upper triangle must be bit-untouched by both.
        for j in 0..n {
            for i in 0..j {
                assert_eq!(
                    blocked[(i, j)].to_bits(),
                    c0[(i, j)].to_bits(),
                    "syrk case {case} touched upper ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn blocked_trsm_agrees_with_reference() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a7_0000 + case);
        let n = gen_dim(&mut rng);
        let m = gen_dim(&mut rng);
        // Well-conditioned lower-triangular L: unit-ish diagonal, small
        // off-diagonal entries.
        let l = Mat::from_fn(n, n, |r, c| {
            if r == c {
                1.5 + 0.1 * (r % 7) as f64
            } else if r > c {
                0.3 * ((r * 5 + c * 3) % 7) as f64 / 7.0 - 0.15
            } else {
                0.0
            }
        });
        let b0 = gen_mat(&mut rng, m, n);
        let mut blocked = b0.clone();
        let mut naive = b0;
        trsm_right_lower_transpose(&l, &mut blocked);
        reference::trsm_right_lower_transpose(&l, &mut naive);
        let tol = 1e-9 * (n as f64 + 1.0);
        assert_close(case, "trsm", &blocked, &naive, tol);
    }
}

#[test]
fn blocked_gemm_is_deterministic_per_call() {
    // Same inputs → byte-identical outputs, repeatedly (dispatch and
    // accumulation order depend only on shape).
    for case in 0..16 {
        let mut rng = XorShift64::seed_from_u64(0x11a8_0000 + case);
        let m = gen_dim(&mut rng).max(1);
        let n = gen_dim(&mut rng).max(1);
        let k = gen_dim(&mut rng).max(1);
        let a = gen_mat(&mut rng, m, k);
        let b = gen_mat(&mut rng, k, n);
        let mut first = Mat::zeros(m, n);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut first);
        for _ in 0..3 {
            let mut again = Mat::zeros(m, n);
            gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut again);
            assert!(first
                .as_slice()
                .iter()
                .zip(again.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }
}

#[test]
fn transpose_product_identity() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a4_0000 + case);
        // (Aᵀ A) must be symmetric.
        let a = Mat::from_fn(4, 3, |_, _| rng.gen_range(-2.0, 2.0));
        let mut c = Mat::zeros(3, 3);
        gemm(1.0, &a, Transpose::Yes, &a, Transpose::No, 0.0, &mut c);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (c[(i, j)] - c[(j, i)]).abs() < 1e-10,
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}
