//! Property-based tests for the dense kernels.

use proptest::prelude::*;
use supernova_linalg::{
    cholesky_in_place, gemm, partial_cholesky_in_place, solve_lower, solve_lower_transpose,
    syrk_lower, Mat, Transpose,
};

/// Strategy producing a random well-conditioned SPD matrix of size 1..=8.
fn spd_matrix() -> impl Strategy<Value = Mat> {
    (1usize..=8).prop_flat_map(|n| {
        proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |v| {
            let g = Mat::from_cols(n, n, v);
            let mut a = Mat::from_diag(&vec![n as f64 + 1.0; n]);
            syrk_lower(1.0, &g, 1.0, &mut a);
            Mat::from_fn(n, n, |r, c| if r >= c { a[(r, c)] } else { a[(c, r)] })
        })
    })
}

proptest! {
    #[test]
    fn cholesky_reconstructs_input(a in spd_matrix()) {
        let n = a.rows();
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        let mut r = Mat::zeros(n, n);
        gemm(1.0, &l, Transpose::No, &l, Transpose::Yes, 0.0, &mut r);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-7 * (n as f64 + 1.0));
            }
        }
    }

    #[test]
    fn solve_inverts_spd_system(a in spd_matrix(), seed in 0u64..1000) {
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 7) as f64 - 3.0).collect();
        let b = a.matvec(&x_true);
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        let mut x = b;
        solve_lower(&l, &mut x);
        solve_lower_transpose(&l, &mut x);
        for i in 0..n {
            prop_assert!((x[i] - x_true[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn partial_factorization_prefix_of_full(a in spd_matrix(), split in 0usize..=8) {
        let n = a.rows();
        let pivots = split.min(n);
        let mut full = a.clone();
        cholesky_in_place(&mut full).unwrap();
        let mut front = a.clone();
        partial_cholesky_in_place(&mut front, pivots).unwrap();
        for j in 0..pivots {
            for i in j..n {
                prop_assert!((front[(i, j)] - full[(i, j)]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn gemm_is_linear_in_alpha(
        va in proptest::collection::vec(-2.0f64..2.0, 9),
        vb in proptest::collection::vec(-2.0f64..2.0, 9),
        alpha in -3.0f64..3.0,
    ) {
        let a = Mat::from_cols(3, 3, va);
        let b = Mat::from_cols(3, 3, vb);
        let mut c1 = Mat::zeros(3, 3);
        gemm(alpha, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c1);
        let mut c2 = Mat::zeros(3, 3);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c2);
        c2.scale(alpha);
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((c1[(i, j)] - c2[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn transpose_product_identity(
        va in proptest::collection::vec(-2.0f64..2.0, 12),
    ) {
        // (Aᵀ A) must be symmetric.
        let a = Mat::from_cols(4, 3, va);
        let mut c = Mat::zeros(3, 3);
        gemm(1.0, &a, Transpose::Yes, &a, Transpose::No, 0.0, &mut c);
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((c[(i, j)] - c[(j, i)]).abs() < 1e-10);
            }
        }
    }
}
