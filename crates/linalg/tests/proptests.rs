//! Randomized tests for the dense kernels, driven by the in-tree seeded
//! PRNG so every case is reproducible offline.
//!
//! The `blocked_*` tests are the blocked-kernel acceptance suite: every
//! public level-3 entry point is checked against the unblocked
//! [`reference`] kernels over randomized shapes chosen to exercise
//! microkernel tails (dims not divisible by the 4×4 tile), the packed and
//! direct dispatch paths, all transpose combinations, alpha/beta edge
//! cases (0, 1, negative) and empty dimensions.

use supernova_linalg::rng::XorShift64;
use supernova_linalg::{
    cholesky_in_place, gemm, gemm_f32, partial_cholesky_in_place, partial_cholesky_scratch_mode,
    reference, solve_lower, solve_lower_transpose, syrk_lower, syrk_lower_f32,
    trsm_right_lower_transpose, trsm_right_lower_transpose_f32, KernelScratch, Mat, NumericMode,
    Transpose,
};

const CASES: u64 = 128;

/// A random well-conditioned SPD matrix of size 1..=8.
fn spd_matrix(rng: &mut XorShift64) -> Mat {
    let n = 1 + rng.gen_index(8);
    let g = Mat::from_fn(n, n, |_, _| rng.gen_range(-1.0, 1.0));
    let mut a = Mat::from_diag(&vec![n as f64 + 1.0; n]);
    syrk_lower(1.0, &g, 1.0, &mut a);
    Mat::from_fn(n, n, |r, c| if r >= c { a[(r, c)] } else { a[(c, r)] })
}

#[test]
fn cholesky_reconstructs_input() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a0_0000 + case);
        let a = spd_matrix(&mut rng);
        let n = a.rows();
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        let mut r = Mat::zeros(n, n);
        gemm(1.0, &l, Transpose::No, &l, Transpose::Yes, 0.0, &mut r);
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (r[(i, j)] - a[(i, j)]).abs() < 1e-7 * (n as f64 + 1.0),
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn solve_inverts_spd_system() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a1_0000 + case);
        let a = spd_matrix(&mut rng);
        let n = a.rows();
        let seed = rng.gen_index(1000) as u64;
        let x_true: Vec<f64> = (0..n)
            .map(|i| ((seed + i as u64) % 7) as f64 - 3.0)
            .collect();
        let b = a.matvec(&x_true);
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        let mut x = b;
        solve_lower(&l, &mut x);
        solve_lower_transpose(&l, &mut x);
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-6, "case {case} component {i}");
        }
    }
}

#[test]
fn partial_factorization_prefix_of_full() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a2_0000 + case);
        let a = spd_matrix(&mut rng);
        let n = a.rows();
        let pivots = rng.gen_index(9).min(n);
        let mut full = a.clone();
        cholesky_in_place(&mut full).unwrap();
        let mut front = a.clone();
        partial_cholesky_in_place(&mut front, pivots).unwrap();
        for j in 0..pivots {
            for i in j..n {
                assert!(
                    (front[(i, j)] - full[(i, j)]).abs() < 1e-7,
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn gemm_is_linear_in_alpha() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a3_0000 + case);
        let a = Mat::from_fn(3, 3, |_, _| rng.gen_range(-2.0, 2.0));
        let b = Mat::from_fn(3, 3, |_, _| rng.gen_range(-2.0, 2.0));
        let alpha = rng.gen_range(-3.0, 3.0);
        let mut c1 = Mat::zeros(3, 3);
        gemm(alpha, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c1);
        let mut c2 = Mat::zeros(3, 3);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c2);
        c2.scale(alpha);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (c1[(i, j)] - c2[(i, j)]).abs() < 1e-10,
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}

/// Shape distribution biased toward interesting sizes: empty dims, the
/// SLAM-typical 3/6 fast-path dims, tile-tail dims (not ≡ 0 mod 4), and
/// packed-path dims (> 24).
fn gen_dim(rng: &mut XorShift64) -> usize {
    const POOL: [usize; 12] = [0, 1, 2, 3, 5, 6, 7, 12, 17, 30, 33, 61];
    POOL[rng.gen_index(POOL.len())]
}

fn gen_mat(rng: &mut XorShift64, rows: usize, cols: usize) -> Mat {
    Mat::from_fn(rows, cols, |_, _| rng.gen_range(-2.0, 2.0))
}

fn gen_alpha_beta(rng: &mut XorShift64) -> (f64, f64) {
    const EDGES: [f64; 5] = [0.0, 1.0, -1.0, 0.5, -2.25];
    (
        EDGES[rng.gen_index(EDGES.len())],
        EDGES[rng.gen_index(EDGES.len())],
    )
}

fn assert_close(case: u64, label: &str, got: &Mat, want: &Mat, tol: f64) {
    assert_eq!(got.rows(), want.rows());
    assert_eq!(got.cols(), want.cols());
    for j in 0..want.cols() {
        for i in 0..want.rows() {
            assert!(
                (got[(i, j)] - want[(i, j)]).abs() < tol,
                "{label} case {case} at ({i},{j}): got {} want {}",
                got[(i, j)],
                want[(i, j)]
            );
        }
    }
}

#[test]
fn blocked_gemm_agrees_with_reference_all_transposes_and_edges() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a5_0000 + case);
        let m = gen_dim(&mut rng);
        let n = gen_dim(&mut rng);
        let k = gen_dim(&mut rng);
        let (alpha, beta) = gen_alpha_beta(&mut rng);
        let op_a = if rng.gen_bool(0.5) {
            Transpose::Yes
        } else {
            Transpose::No
        };
        let op_b = if rng.gen_bool(0.5) {
            Transpose::Yes
        } else {
            Transpose::No
        };
        let a = match op_a {
            Transpose::No => gen_mat(&mut rng, m, k),
            Transpose::Yes => gen_mat(&mut rng, k, m),
        };
        let b = match op_b {
            Transpose::No => gen_mat(&mut rng, k, n),
            Transpose::Yes => gen_mat(&mut rng, n, k),
        };
        let c0 = gen_mat(&mut rng, m, n);
        let mut blocked = c0.clone();
        let mut naive = c0;
        gemm(alpha, &a, op_a, &b, op_b, beta, &mut blocked);
        reference::gemm(alpha, &a, op_a, &b, op_b, beta, &mut naive);
        let tol = 1e-10 * (k as f64 + 1.0);
        assert_close(case, "gemm", &blocked, &naive, tol);
    }
}

#[test]
fn blocked_syrk_agrees_with_reference_and_preserves_upper() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a6_0000 + case);
        let n = gen_dim(&mut rng);
        let k = gen_dim(&mut rng);
        let (alpha, beta) = gen_alpha_beta(&mut rng);
        let a = gen_mat(&mut rng, n, k);
        let c0 = gen_mat(&mut rng, n, n);
        let mut blocked = c0.clone();
        let mut naive = c0.clone();
        syrk_lower(alpha, &a, beta, &mut blocked);
        reference::syrk_lower(alpha, &a, beta, &mut naive);
        let tol = 1e-10 * (k as f64 + 1.0);
        assert_close(case, "syrk", &blocked, &naive, tol);
        // Strict upper triangle must be bit-untouched by both.
        for j in 0..n {
            for i in 0..j {
                assert_eq!(
                    blocked[(i, j)].to_bits(),
                    c0[(i, j)].to_bits(),
                    "syrk case {case} touched upper ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn blocked_trsm_agrees_with_reference() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a7_0000 + case);
        let n = gen_dim(&mut rng);
        let m = gen_dim(&mut rng);
        // Well-conditioned lower-triangular L: unit-ish diagonal, small
        // off-diagonal entries.
        let l = Mat::from_fn(n, n, |r, c| {
            if r == c {
                1.5 + 0.1 * (r % 7) as f64
            } else if r > c {
                0.3 * ((r * 5 + c * 3) % 7) as f64 / 7.0 - 0.15
            } else {
                0.0
            }
        });
        let b0 = gen_mat(&mut rng, m, n);
        let mut blocked = b0.clone();
        let mut naive = b0;
        trsm_right_lower_transpose(&l, &mut blocked);
        reference::trsm_right_lower_transpose(&l, &mut naive);
        let tol = 1e-9 * (n as f64 + 1.0);
        assert_close(case, "trsm", &blocked, &naive, tol);
    }
}

#[test]
fn blocked_gemm_is_deterministic_per_call() {
    // Same inputs → byte-identical outputs, repeatedly (dispatch and
    // accumulation order depend only on shape).
    for case in 0..16 {
        let mut rng = XorShift64::seed_from_u64(0x11a8_0000 + case);
        let m = gen_dim(&mut rng).max(1);
        let n = gen_dim(&mut rng).max(1);
        let k = gen_dim(&mut rng).max(1);
        let a = gen_mat(&mut rng, m, k);
        let b = gen_mat(&mut rng, k, n);
        let mut first = Mat::zeros(m, n);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut first);
        for _ in 0..3 {
            let mut again = Mat::zeros(m, n);
            gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut again);
            assert!(first
                .as_slice()
                .iter()
                .zip(again.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }
}

#[test]
fn transpose_product_identity() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a4_0000 + case);
        // (Aᵀ A) must be symmetric.
        let a = Mat::from_fn(4, 3, |_, _| rng.gen_range(-2.0, 2.0));
        let mut c = Mat::zeros(3, 3);
        gemm(1.0, &a, Transpose::Yes, &a, Transpose::No, 0.0, &mut c);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (c[(i, j)] - c[(j, i)]).abs() < 1e-10,
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Narrow-mode acceptance suite: the f32-storage entry points (`gemm_f32`,
// `syrk_lower_f32`, `trsm_right_lower_transpose_f32`) and the mode-selected
// partial factorization are checked, per narrow [`NumericMode`], against the
// unblocked f64 [`reference`] oracle on f32-representable inputs. Shapes
// reuse [`gen_dim`], so the 3/6 SLAM fast paths, per-width microkernel
// tails (dims not ≡ 0 mod 8 for the f32 engine's 8×4 tile) and the packed
// dispatch path are all exercised. Tolerances are width-appropriate:
// proportional to f32's ~1.2e-7 unit roundoff times the reduction depth.

const NARROW: [NumericMode; 2] = [NumericMode::F32, NumericMode::F32F64];

/// A random matrix whose entries are exactly representable in f32,
/// returned both as the raw column-major f32 storage the narrow entry
/// points consume and as the bit-equal f64 [`Mat`] the oracle consumes.
fn gen_mat32(rng: &mut XorShift64, rows: usize, cols: usize) -> (Vec<f32>, Mat) {
    let storage: Vec<f32> = (0..rows * cols)
        .map(|_| rng.gen_range(-2.0, 2.0) as f32)
        .collect();
    let promoted = Mat::from_cols(rows, cols, storage.iter().map(|&x| x as f64).collect());
    (storage, promoted)
}

/// Worst-case absolute error of a depth-`k` f32 reduction over entries of
/// magnitude ≤ 2: one f32 rounding per product plus (for pure-f32
/// accumulation) one per partial sum, with a wide safety margin. A
/// wrong-engine or wrong-tile bug produces O(1) errors, far above this.
fn narrow_tol(k: usize) -> f64 {
    1e-5 * (k as f64 + 1.0)
}

#[test]
fn narrow_gemm_agrees_with_f64_oracle() {
    let mut scratch = KernelScratch::new();
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11b0_0000 + case);
        let m = gen_dim(&mut rng);
        let n = gen_dim(&mut rng);
        let k = gen_dim(&mut rng);
        let (alpha, beta) = gen_alpha_beta(&mut rng); // edge pool is f32-exact
        let a_trans = rng.gen_bool(0.5);
        let b_trans = rng.gen_bool(0.5);
        let (a32, a64) = if a_trans {
            gen_mat32(&mut rng, k, m)
        } else {
            gen_mat32(&mut rng, m, k)
        };
        let (b32, b64) = if b_trans {
            gen_mat32(&mut rng, n, k)
        } else {
            gen_mat32(&mut rng, k, n)
        };
        let (c32, c64) = gen_mat32(&mut rng, m, n);
        let op = |t| if t { Transpose::Yes } else { Transpose::No };
        let mut want = c64;
        reference::gemm(alpha, &a64, op(a_trans), &b64, op(b_trans), beta, &mut want);
        for mode in NARROW {
            let mut c = c32.clone();
            gemm_f32(
                mode,
                m,
                n,
                k,
                alpha as f32,
                &a32,
                a_trans,
                &b32,
                b_trans,
                beta as f32,
                &mut c,
                &mut scratch,
            );
            let tol = narrow_tol(k);
            for j in 0..n {
                for i in 0..m {
                    let got = c[j * m + i] as f64;
                    let w = want[(i, j)];
                    assert!(
                        (got - w).abs() < tol,
                        "gemm {mode} case {case} ({m}x{n}x{k}) at ({i},{j}): got {got} want {w}"
                    );
                }
            }
        }
    }
}

#[test]
fn narrow_syrk_agrees_with_f64_oracle_and_preserves_upper() {
    let mut scratch = KernelScratch::new();
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11b1_0000 + case);
        let n = gen_dim(&mut rng);
        let k = gen_dim(&mut rng);
        let (alpha, beta) = gen_alpha_beta(&mut rng);
        let (a32, a64) = gen_mat32(&mut rng, n, k);
        let (c32, c64) = gen_mat32(&mut rng, n, n);
        let mut want = c64;
        reference::syrk_lower(alpha, &a64, beta, &mut want);
        for mode in NARROW {
            let mut c = c32.clone();
            syrk_lower_f32(
                mode,
                n,
                k,
                alpha as f32,
                &a32,
                beta as f32,
                &mut c,
                &mut scratch,
            );
            let tol = narrow_tol(k);
            for j in 0..n {
                for i in j..n {
                    let got = c[j * n + i] as f64;
                    let w = want[(i, j)];
                    assert!(
                        (got - w).abs() < tol,
                        "syrk {mode} case {case} ({n}x{k}) at ({i},{j}): got {got} want {w}"
                    );
                }
                // Strict upper triangle must be bit-untouched.
                for i in 0..j {
                    assert_eq!(
                        c[j * n + i].to_bits(),
                        c32[j * n + i].to_bits(),
                        "syrk {mode} case {case} touched upper ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn narrow_trsm_agrees_with_f64_oracle() {
    let mut scratch = KernelScratch::new();
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11b2_0000 + case);
        let n = gen_dim(&mut rng);
        let m = gen_dim(&mut rng);
        // Well-conditioned lower-triangular L with f32-exact entries
        // (quarters), covering single-tile, tail and blocked panel shapes.
        let l64 = Mat::from_fn(n, n, |r, c| {
            if r == c {
                1.5 + 0.25 * (r % 3) as f64
            } else if r > c {
                0.25 * ((r * 5 + c * 3) % 3) as f64 - 0.25
            } else {
                0.0
            }
        });
        let l32: Vec<f32> = l64.as_slice().iter().map(|&x| x as f32).collect();
        let (b32, b64) = gen_mat32(&mut rng, m, n);
        let mut want = b64;
        reference::trsm_right_lower_transpose(&l64, &mut want);
        for mode in NARROW {
            let mut b = b32.clone();
            trsm_right_lower_transpose_f32(mode, m, n, &l32, &mut b, &mut scratch);
            // Forward error amplifies with the solve's reduction depth n.
            let tol = narrow_tol(n) * 10.0;
            for j in 0..n {
                for i in 0..m {
                    let got = b[j * m + i] as f64;
                    let w = want[(i, j)];
                    assert!(
                        (got - w).abs() < tol,
                        "trsm {mode} case {case} ({m}x{n}) at ({i},{j}): got {got} want {w}"
                    );
                }
            }
        }
    }
}

#[test]
fn narrow_partial_cholesky_matches_f64_oracle() {
    let mut scratch = KernelScratch::new();
    // Front sizes spanning the 3/6 SLAM fast paths, both engines' tile
    // tails, and the blocked/packed path.
    const FRONTS: [usize; 8] = [1, 2, 3, 6, 7, 12, 30, 33];
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11b3_0000 + case);
        let n = FRONTS[rng.gen_index(FRONTS.len())];
        let pivots = rng.gen_index(n + 1);
        // Strongly diagonally dominant SPD front with f32-exact entries:
        // G·Gᵀ + (n+1)·I, symmetrized, rounded to f32 (an eps-level
        // symmetric perturbation that cannot break definiteness).
        let g = gen_mat(&mut rng, n, n);
        let mut a = Mat::from_diag(&vec![n as f64 + 1.0; n]);
        syrk_lower(1.0, &g, 1.0, &mut a);
        let sym = Mat::from_fn(n, n, |r, c| if r >= c { a[(r, c)] } else { a[(c, r)] });
        let front0 = Mat::from_cols(
            n,
            n,
            sym.as_slice().iter().map(|&x| (x as f32) as f64).collect(),
        );
        let mut want = front0.clone();
        partial_cholesky_in_place(&mut want, pivots).unwrap();
        for mode in NARROW {
            let mut front = front0.clone();
            partial_cholesky_scratch_mode(&mut front, pivots, &mut scratch, mode)
                .unwrap_or_else(|e| panic!("{mode} case {case} n={n} p={pivots}: {e}"));
            // Pivot-column factor entries and the trailing Schur update
            // both live below the diagonal; entries scale like n, the
            // reduction depth is ≤ n and the factor divides by pivots
            // ≥ 1, so give the GEMM-depth bound an extra margin.
            let tol = narrow_tol(n) * (n as f64 + 1.0);
            for j in 0..n {
                for i in j..n {
                    let got = front[(i, j)];
                    let w = want[(i, j)];
                    assert!(
                        (got - w).abs() < tol,
                        "chol {mode} case {case} n={n} p={pivots} at ({i},{j}): got {got} want {w}"
                    );
                }
            }
        }
    }
}
