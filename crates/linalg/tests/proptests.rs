//! Randomized tests for the dense kernels, driven by the in-tree seeded
//! PRNG so every case is reproducible offline.

use supernova_linalg::rng::XorShift64;
use supernova_linalg::{
    cholesky_in_place, gemm, partial_cholesky_in_place, solve_lower, solve_lower_transpose,
    syrk_lower, Mat, Transpose,
};

const CASES: u64 = 128;

/// A random well-conditioned SPD matrix of size 1..=8.
fn spd_matrix(rng: &mut XorShift64) -> Mat {
    let n = 1 + rng.gen_index(8);
    let g = Mat::from_fn(n, n, |_, _| rng.gen_range(-1.0, 1.0));
    let mut a = Mat::from_diag(&vec![n as f64 + 1.0; n]);
    syrk_lower(1.0, &g, 1.0, &mut a);
    Mat::from_fn(n, n, |r, c| if r >= c { a[(r, c)] } else { a[(c, r)] })
}

#[test]
fn cholesky_reconstructs_input() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a0_0000 + case);
        let a = spd_matrix(&mut rng);
        let n = a.rows();
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        let mut r = Mat::zeros(n, n);
        gemm(1.0, &l, Transpose::No, &l, Transpose::Yes, 0.0, &mut r);
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (r[(i, j)] - a[(i, j)]).abs() < 1e-7 * (n as f64 + 1.0),
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn solve_inverts_spd_system() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a1_0000 + case);
        let a = spd_matrix(&mut rng);
        let n = a.rows();
        let seed = rng.gen_index(1000) as u64;
        let x_true: Vec<f64> = (0..n)
            .map(|i| ((seed + i as u64) % 7) as f64 - 3.0)
            .collect();
        let b = a.matvec(&x_true);
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        let mut x = b;
        solve_lower(&l, &mut x);
        solve_lower_transpose(&l, &mut x);
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-6, "case {case} component {i}");
        }
    }
}

#[test]
fn partial_factorization_prefix_of_full() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a2_0000 + case);
        let a = spd_matrix(&mut rng);
        let n = a.rows();
        let pivots = rng.gen_index(9).min(n);
        let mut full = a.clone();
        cholesky_in_place(&mut full).unwrap();
        let mut front = a.clone();
        partial_cholesky_in_place(&mut front, pivots).unwrap();
        for j in 0..pivots {
            for i in j..n {
                assert!(
                    (front[(i, j)] - full[(i, j)]).abs() < 1e-7,
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn gemm_is_linear_in_alpha() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a3_0000 + case);
        let a = Mat::from_fn(3, 3, |_, _| rng.gen_range(-2.0, 2.0));
        let b = Mat::from_fn(3, 3, |_, _| rng.gen_range(-2.0, 2.0));
        let alpha = rng.gen_range(-3.0, 3.0);
        let mut c1 = Mat::zeros(3, 3);
        gemm(alpha, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c1);
        let mut c2 = Mat::zeros(3, 3);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c2);
        c2.scale(alpha);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (c1[(i, j)] - c2[(i, j)]).abs() < 1e-10,
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn transpose_product_identity() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x11a4_0000 + case);
        // (Aᵀ A) must be symmetric.
        let a = Mat::from_fn(4, 3, |_, _| rng.gen_range(-2.0, 2.0));
        let mut c = Mat::zeros(3, 3);
        gemm(1.0, &a, Transpose::Yes, &a, Transpose::No, 0.0, &mut c);
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (c[(i, j)] - c[(j, i)]).abs() < 1e-10,
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}
