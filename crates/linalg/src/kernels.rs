//! The blocked, packed dense-kernel core behind [`crate::gemm`],
//! [`crate::syrk_lower`] and [`crate::trsm_right_lower_transpose`].
//!
//! The paper's latency story rests on three supernode operations — GEMM,
//! SYRK (`L_C = C − L_B L_Bᵀ`, §3.2, the dominant cost per §6.5) and TRSM
//! — so the host implementations here mirror what a BLIS-style kernel
//! stack does, in safe Rust:
//!
//! - operands are **packed** once per `KC`-deep block into contiguous
//!   micro-panels ([`MR`]-row panels of `A`, [`NR`]-column panels of `B`),
//!   which turns every strided or transposed access pattern into linear
//!   streams and pads the tails so the microkernel never branches;
//! - an [`MR`]`×`[`NR`] **register-tiled microkernel** accumulates a full
//!   tile of `C` in locals across the packed depth, cutting `C` traffic by
//!   `NR×` versus the column-AXPY loop it replaces;
//! - SYRK walks only the tiles that intersect the lower triangle and TRSM
//!   factors into (packed GEMM update) + (small in-block solve), so both
//!   ride the same microkernel;
//! - a deterministic, size-keyed [`dispatch table`](GemmPath) routes
//!   SLAM-typical small blocks (SE(2)'s 3-wide and SE(3)'s 6-wide fronts)
//!   to fully unrolled direct kernels where packing overhead would
//!   dominate.
//!
//! Pack buffers come from a caller-provided [`KernelScratch`] arena that
//! grows monotonically and is reused across calls — the sparse executor
//! threads one per worker so the steady-state refactor loop performs zero
//! heap allocation (machine-checked by `supernova-analyze`'s `hot-alloc`
//! lint; the allowed escapes in this file are the cold-path constructors).
//!
//! Every path is a pure function of the operand values and shapes: the
//! same call always performs the same operations in the same order, so
//! serial and pooled plan executions (which call identical kernels) stay
//! bit-identical — blocking changes *which* deterministic summation order
//! is used, never makes it data- or thread-dependent.

use crate::Mat;

/// Microkernel tile height (rows of `C` held in registers).
pub const MR: usize = 4;
/// Microkernel tile width (columns of `C` held in registers).
pub const NR: usize = 4;
/// Depth of one packed block: panels of at most `KC` columns of `A` (rows
/// of `B`) are packed and consumed before the next block is packed.
pub const KC: usize = 256;
/// Problems with `m·n·k` at or below this run the direct (non-packing)
/// path; above it, packing pays for itself.
pub const DIRECT_FLOP_CUTOFF: usize = 24 * 24 * 24;
/// Panel width of the blocked Cholesky driver (`cholesky.rs`), restated
/// here so [`KernelScratch::reserve`] can bound the triangular-panel
/// buffer [`take_lpack`](KernelScratch::take_lpack) hands out.
pub(crate) const CHOL_NB: usize = 48;

/// Rounds `x` up to a multiple of `to` (`to > 0`).
#[inline]
fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Reusable pack-buffer arena for the blocked kernels.
///
/// Buffers grow monotonically (never shrink) and are fully overwritten on
/// every use, so scratch contents can never leak between calls and a
/// warm arena performs zero allocation. The arena also meters the f64
/// multiply-add work the kernels actually execute ([`flops`](Self::flops))
/// so callers can tick real kernel work into trace spans.
#[derive(Clone, Debug, Default)]
pub struct KernelScratch {
    apack: Vec<f64>,
    bpack: Vec<f64>,
    /// Packed copy of a triangular diagonal block, taken/returned by the
    /// in-place blocked Cholesky so its TRSM reads `L` without aliasing
    /// the front it is updating.
    lpack: Vec<f64>,
    flops: u64,
    grow_events: u64,
}

impl KernelScratch {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena whose pack buffers are pre-grown to `pack_elems` scalars
    /// each (use [`pack_elems_bound`] /
    /// `ExecutionPlan::max_pack_elems`-style precomputation), so even the
    /// first call allocates nothing.
    pub fn with_capacity(pack_elems: usize) -> Self {
        let mut s = Self::new();
        if pack_elems > 0 {
            s.grow_events = 1;
            // lint: allow(hot-alloc) — cold-path constructor, the one-time sizing
            s.apack = vec![0.0; pack_elems];
            // lint: allow(hot-alloc) — cold-path constructor, the one-time sizing
            s.bpack = vec![0.0; pack_elems];
        }
        s
    }

    /// Pre-grows (never shrinks) every buffer for kernels within a
    /// `pack_elems` envelope, so later calls allocate nothing: both pack
    /// buffers to `pack_elems` scalars, and the triangular-panel buffer to
    /// its need under that envelope — `min(pack_elems, NB²)`, since
    /// `take_lpack` panels are at most `NB × NB` and
    /// never exceed a front whose pack bound is `pack_elems`. Growth is
    /// counted in [`grow_events`](Self::grow_events); a no-op when
    /// already large enough.
    pub fn reserve(&mut self, pack_elems: usize) {
        let a = self.apack.len().max(pack_elems);
        let b = self.bpack.len().max(pack_elems);
        let _ = self.packs(a, b);
        let l = pack_elems.min(CHOL_NB * CHOL_NB);
        if self.lpack.capacity() < l {
            self.grow_events += 1;
            let need = l - self.lpack.len();
            self.lpack.reserve(need);
        }
    }

    /// Grows (never shrinks) the pack buffers to at least `a_elems` /
    /// `b_elems` and returns them. Growth is counted in
    /// [`grow_events`](Self::grow_events).
    fn packs(&mut self, a_elems: usize, b_elems: usize) -> (&mut [f64], &mut [f64]) {
        if self.apack.len() < a_elems {
            self.grow_events += 1;
            self.apack.resize(a_elems, 0.0);
        }
        if self.bpack.len() < b_elems {
            self.grow_events += 1;
            self.bpack.resize(b_elems, 0.0);
        }
        (&mut self.apack[..a_elems], &mut self.bpack[..b_elems])
    }

    /// Detaches the triangular-panel buffer, grown to exactly `elems`
    /// zero-initialized scalars. Detaching (rather than borrowing) lets the
    /// caller keep using the arena for pack buffers while the panel copy is
    /// live; pair with [`put_lpack`](Self::put_lpack) to preserve reuse.
    pub(crate) fn take_lpack(&mut self, elems: usize) -> Vec<f64> {
        let mut v = std::mem::take(&mut self.lpack);
        if v.capacity() < elems {
            self.grow_events += 1;
        }
        v.clear();
        v.resize(elems, 0.0);
        v
    }

    /// Returns a buffer obtained from [`take_lpack`](Self::take_lpack) to
    /// the arena for reuse.
    pub(crate) fn put_lpack(&mut self, v: Vec<f64>) {
        if v.capacity() > self.lpack.capacity() {
            self.lpack = v;
        }
    }

    /// Total f64 multiply-add flops (MAC = 2 flops) executed through this
    /// arena since construction or the last [`take_flops`](Self::take_flops).
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Returns and resets the flop counter (per-task metering).
    pub fn take_flops(&mut self) -> u64 {
        std::mem::take(&mut self.flops)
    }

    /// Number of times a pack buffer actually grew (including the
    /// constructor's pre-sizing). Flat after warm-up on a steady workload —
    /// the zero-alloc hot-path invariant tests assert exactly this.
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    /// Largest pack-buffer length reached so far, in scalars (the arena
    /// high-water mark).
    pub fn high_water_elems(&self) -> usize {
        self.apack.len().max(self.bpack.len()).max(self.lpack.len())
    }

    #[inline]
    fn tick(&mut self, flops: u64) {
        self.flops += flops;
    }
}

/// Scalars each pack buffer of a [`KernelScratch`] needs for any blocked
/// kernel whose operands fit in an `n × n` envelope — the per-front bound
/// the execution plan uses to pre-size per-worker arenas.
pub fn pack_elems_bound(n: usize) -> usize {
    round_up(n, MR.max(NR)) * n.min(KC)
}

/// A read-only view of a column-major sub-block, optionally transposed.
///
/// `at(i, j)` addresses the *logical* operand (after transposition); the
/// pack routines turn these strided reads into contiguous panel writes
/// exactly once per `KC` block.
#[derive(Clone, Copy)]
pub(crate) struct View<'a> {
    data: &'a [f64],
    /// Leading dimension: rows of the backing matrix.
    ld: usize,
    /// Top-left corner of the viewed block in the backing matrix.
    row: usize,
    col: usize,
    /// Logical dimensions (after transposition).
    rows: usize,
    cols: usize,
    trans: bool,
}

impl<'a> View<'a> {
    /// Views an entire matrix, transposed when `trans`.
    pub(crate) fn of(m: &'a Mat, trans: bool) -> Self {
        let (rows, cols) = if trans {
            (m.cols(), m.rows())
        } else {
            (m.rows(), m.cols())
        };
        View {
            data: m.as_slice(),
            ld: m.rows().max(1),
            row: 0,
            col: 0,
            rows,
            cols,
            trans,
        }
    }

    /// Views a raw column-major slice block.
    pub(crate) fn raw(
        data: &'a [f64],
        ld: usize,
        row: usize,
        col: usize,
        rows: usize,
        cols: usize,
        trans: bool,
    ) -> Self {
        View {
            data,
            ld: ld.max(1),
            row,
            col,
            rows,
            cols,
            trans,
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        let (r, c) = if self.trans { (j, i) } else { (i, j) };
        self.data[(self.col + c) * self.ld + self.row + r]
    }

    /// Contiguous storage column `c` (storage coordinates, not logical),
    /// restricted to the viewed rows.
    #[inline]
    fn storage_col(&self, c: usize, len: usize) -> &[f64] {
        let base = (self.col + c) * self.ld + self.row;
        &self.data[base..base + len]
    }
}

/// A mutable view of a column-major sub-block (never transposed — only
/// `C` operands are mutable).
pub(crate) struct MutView<'a> {
    data: &'a mut [f64],
    ld: usize,
    row: usize,
    col: usize,
    rows: usize,
    cols: usize,
}

impl<'a> MutView<'a> {
    /// Views an entire matrix mutably.
    pub(crate) fn of(m: &'a mut Mat) -> Self {
        let ld = m.rows().max(1);
        let (rows, cols) = (m.rows(), m.cols());
        MutView {
            data: m.as_mut_slice(),
            ld,
            row: 0,
            col: 0,
            rows,
            cols,
        }
    }

    /// Views a raw column-major slice block.
    pub(crate) fn raw(
        data: &'a mut [f64],
        ld: usize,
        row: usize,
        col: usize,
        rows: usize,
        cols: usize,
    ) -> Self {
        MutView {
            data,
            ld: ld.max(1),
            row,
            col,
            rows,
            cols,
        }
    }

    /// Column `j` of the viewed block as a contiguous mutable slice.
    #[inline]
    fn col_mut(&mut self, j: usize) -> &mut [f64] {
        let base = (self.col + j) * self.ld + self.row;
        &mut self.data[base..base + self.rows]
    }

    /// Rows `r0..` of column `j` as a contiguous mutable slice of `len`.
    #[inline]
    fn col_tail_mut(&mut self, j: usize, r0: usize, len: usize) -> &mut [f64] {
        let base = (self.col + j) * self.ld + self.row + r0;
        &mut self.data[base..base + len]
    }

    /// Scales the whole viewed block by `beta` (with the exact-zero and
    /// exact-one fast paths BLAS semantics require).
    pub(crate) fn scale(&mut self, beta: f64) {
        // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
        if beta == 1.0 || self.rows == 0 {
            return;
        }
        for j in 0..self.cols {
            let col = self.col_mut(j);
            // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
            if beta == 0.0 {
                col.iter_mut().for_each(|x| *x = 0.0);
            } else {
                col.iter_mut().for_each(|x| *x *= beta);
            }
        }
    }

    /// Scales rows `j..rows` of every column `j` (the lower triangle) by
    /// `beta`.
    pub(crate) fn scale_lower(&mut self, beta: f64) {
        // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
        if beta == 1.0 || self.rows == 0 {
            return;
        }
        let rows = self.rows;
        for j in 0..self.cols {
            let col = self.col_tail_mut(j, j, rows - j);
            // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
            if beta == 0.0 {
                col.iter_mut().for_each(|x| *x = 0.0);
            } else {
                col.iter_mut().for_each(|x| *x *= beta);
            }
        }
    }
}

/// The kernel paths the size-keyed dispatch table selects between.
///
/// Selection depends only on the operand shapes — never on values, thread
/// counts or runtime feature detection — so the same call sites take the
/// same path in serial and pooled executions (the determinism anchor).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmPath {
    /// `k == 0` or an empty output: nothing to do.
    Noop,
    /// Fully unrolled `k = 3` direct kernel (SE(2) pose blocks).
    DirectK3,
    /// Fully unrolled `k = 6` direct kernel (SE(3) pose blocks).
    DirectK6,
    /// Generic direct kernel for small products (no packing).
    Direct,
    /// Packed panels + register-tiled microkernel.
    Packed,
}

/// The deterministic size-keyed dispatch table: which kernel path a GEMM
/// of logical shape `m × n × k` takes.
pub fn gemm_path(m: usize, n: usize, k: usize) -> GemmPath {
    match (m, n, k) {
        (0, _, _) | (_, 0, _) | (_, _, 0) => GemmPath::Noop,
        // SLAM-typical SE(2)/SE(3) block products: unrolled contraction.
        (_, _, 3) if m * n <= 24 * 24 => GemmPath::DirectK3,
        (_, _, 6) if m * n <= 24 * 24 => GemmPath::DirectK6,
        _ if m * n * k <= DIRECT_FLOP_CUTOFF => GemmPath::Direct,
        _ => GemmPath::Packed,
    }
}

/// `C += A · B` on views, `beta` already applied to `C` by the caller.
/// `alpha` is folded into the packed/gathered `B` operand, mirroring the
/// classic column-AXPY operand order `a[i,p] · (alpha · b[p,j])`.
pub(crate) fn gemm_core(
    alpha: f64,
    a: &View<'_>,
    b: &View<'_>,
    c: &mut MutView<'_>,
    scratch: &mut KernelScratch,
) {
    let (m, n, k) = (c.rows, c.cols, a.cols);
    debug_assert_eq!(a.rows, m, "gemm_core A row mismatch");
    debug_assert_eq!(b.rows, k, "gemm_core B row mismatch");
    debug_assert_eq!(b.cols, n, "gemm_core B column mismatch");
    match gemm_path(m, n, k) {
        GemmPath::Noop => {}
        GemmPath::DirectK3 => gemm_direct_k::<3>(alpha, a, b, c, scratch),
        GemmPath::DirectK6 => gemm_direct_k::<6>(alpha, a, b, c, scratch),
        GemmPath::Direct => gemm_direct(alpha, a, b, c, scratch),
        GemmPath::Packed => gemm_packed(alpha, a, b, c, scratch),
    }
}

/// Direct kernel with the contraction depth `K` a compile-time constant:
/// the column of `B` is gathered into registers once per output column and
/// the `K`-term dot products unroll completely.
fn gemm_direct_k<const K: usize>(
    alpha: f64,
    a: &View<'_>,
    b: &View<'_>,
    c: &mut MutView<'_>,
    scratch: &mut KernelScratch,
) {
    let (m, n) = (c.rows, c.cols);
    debug_assert_eq!(a.cols, K);
    for j in 0..n {
        let mut bcol = [0.0f64; K];
        for (p, slot) in bcol.iter_mut().enumerate() {
            *slot = alpha * b.at(p, j);
        }
        let col = c.col_mut(j);
        for (i, out) in col.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (p, &bp) in bcol.iter().enumerate() {
                acc += a.at(i, p) * bp;
            }
            *out += acc;
        }
    }
    scratch.tick(2 * (m * n * K) as u64);
}

/// Generic direct kernel for small shapes: per-column AXPY when `A` is
/// untransposed (contiguous columns), gathered dot products otherwise.
fn gemm_direct(
    alpha: f64,
    a: &View<'_>,
    b: &View<'_>,
    c: &mut MutView<'_>,
    scratch: &mut KernelScratch,
) {
    let (m, n, k) = (c.rows, c.cols, a.cols);
    if !a.trans {
        for j in 0..n {
            for p in 0..k {
                let bpj = alpha * b.at(p, j);
                let acol = a.storage_col(p, m);
                let ccol = c.col_mut(j);
                for (ci, &ai) in ccol.iter_mut().zip(acol) {
                    *ci += ai * bpj;
                }
            }
        }
    } else {
        for j in 0..n {
            let ccol = c.col_mut(j);
            for (i, out) in ccol.iter_mut().enumerate() {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(i, p) * b.at(p, j);
                }
                *out += alpha * acc;
            }
        }
    }
    scratch.tick(2 * (m * n * k) as u64);
}

/// Packs the `m × kc` slab of `A` starting at depth `p0` into `MR`-row
/// micro-panels: panel `ib` holds rows `ib·MR..` for all `kc` depths,
/// contiguously, zero-padded past row `m`.
fn pack_a(a: &View<'_>, p0: usize, kc: usize, m: usize, apack: &mut [f64]) {
    let panels = m.div_ceil(MR);
    debug_assert!(apack.len() >= panels * kc * MR);
    if !a.trans {
        // Storage columns are logical columns: walk each depth's column
        // slice once, scattering into the panels.
        for (ib, panel) in apack.chunks_exact_mut(kc * MR).take(panels).enumerate() {
            let i0 = ib * MR;
            let rows = MR.min(m - i0);
            for (p, dst) in panel.chunks_exact_mut(MR).enumerate() {
                let src = a.storage_col(p0 + p, a.rows);
                for r in 0..MR {
                    dst[r] = if r < rows { src[i0 + r] } else { 0.0 };
                }
            }
        }
    } else {
        // Logical rows are storage columns: each packed row streams one
        // contiguous storage column segment.
        for (ib, panel) in apack.chunks_exact_mut(kc * MR).take(panels).enumerate() {
            let i0 = ib * MR;
            let rows = MR.min(m - i0);
            for dst in panel.chunks_exact_mut(MR) {
                dst.iter_mut().for_each(|x| *x = 0.0);
            }
            for r in 0..rows {
                let src = a.storage_col(i0 + r, a.cols);
                for (p, dst) in panel.chunks_exact_mut(MR).enumerate() {
                    dst[r] = src[p0 + p];
                }
            }
        }
    }
}

/// Packs the `kc × n` slab of `B` starting at depth `p0` into `NR`-column
/// micro-panels scaled by `alpha`, zero-padded past column `n`.
fn pack_b(alpha: f64, b: &View<'_>, p0: usize, kc: usize, n: usize, bpack: &mut [f64]) {
    let panels = n.div_ceil(NR);
    debug_assert!(bpack.len() >= panels * kc * NR);
    if !b.trans {
        for (jb, panel) in bpack.chunks_exact_mut(kc * NR).take(panels).enumerate() {
            let j0 = jb * NR;
            let cols = NR.min(n - j0);
            for dst in panel.chunks_exact_mut(NR) {
                dst.iter_mut().for_each(|x| *x = 0.0);
            }
            for j in 0..cols {
                let src = b.storage_col(j0 + j, b.rows);
                for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
                    dst[j] = alpha * src[p0 + p];
                }
            }
        }
    } else {
        // Transposed B: logical row p is storage column p.
        for (jb, panel) in bpack.chunks_exact_mut(kc * NR).take(panels).enumerate() {
            let j0 = jb * NR;
            let cols = NR.min(n - j0);
            for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
                let src = b.storage_col(p0 + p, b.cols);
                for j in 0..NR {
                    dst[j] = if j < cols { alpha * src[j0 + j] } else { 0.0 };
                }
            }
        }
    }
}

/// The register-tiled microkernel: accumulates the full `MR × NR` tile
/// product of one packed `A` panel and one packed `B` panel across `kc`
/// depths. `acc` is column-major (`acc[j][i]`).
#[inline(always)]
fn microkernel(kc: usize, apanel: &[f64], bpanel: &[f64], acc: &mut [[f64; MR]; NR]) {
    // Two depth steps per iteration: halves the loop-control overhead and
    // gives the scheduler two independent rank-1 updates to interleave.
    let pairs = kc / 2;
    for (ap, bp) in apanel
        .chunks_exact(2 * MR)
        .zip(bpanel.chunks_exact(2 * NR))
        .take(pairs)
    {
        let a: &[f64; 2 * MR] = ap.try_into().unwrap_or(&[0.0; 2 * MR]);
        let b: &[f64; 2 * NR] = bp.try_into().unwrap_or(&[0.0; 2 * NR]);
        for j in 0..NR {
            let bj0 = b[j];
            let bj1 = b[NR + j];
            for i in 0..MR {
                acc[j][i] += a[i] * bj0 + a[MR + i] * bj1;
            }
        }
    }
    if kc % 2 == 1 {
        let p = kc - 1;
        let a = &apanel[p * MR..(p + 1) * MR];
        let b = &bpanel[p * NR..(p + 1) * NR];
        for j in 0..NR {
            let bj = b[j];
            for i in 0..MR {
                acc[j][i] += a[i] * bj;
            }
        }
    }
}

/// Packed GEMM: `C += (alpha·A)·B`, blocked over the contraction depth in
/// `KC` slabs, each slab packed once and swept by the microkernel.
fn gemm_packed(
    alpha: f64,
    a: &View<'_>,
    b: &View<'_>,
    c: &mut MutView<'_>,
    scratch: &mut KernelScratch,
) {
    let (m, n, k) = (c.rows, c.cols, a.cols);
    let a_elems = round_up(m, MR) * KC.min(k);
    let b_elems = round_up(n, NR) * KC.min(k);
    let (apack, bpack) = scratch.packs(a_elems, b_elems);

    let mut p0 = 0usize;
    while p0 < k {
        let kc = KC.min(k - p0);
        pack_a(a, p0, kc, m, apack);
        pack_b(alpha, b, p0, kc, n, bpack);
        for jb in 0..n.div_ceil(NR) {
            let j0 = jb * NR;
            let jw = NR.min(n - j0);
            let bpanel = &bpack[jb * kc * NR..(jb + 1) * kc * NR];
            for ib in 0..m.div_ceil(MR) {
                let i0 = ib * MR;
                let ih = MR.min(m - i0);
                let apanel = &apack[ib * kc * MR..(ib + 1) * kc * MR];
                let mut acc = [[0.0f64; MR]; NR];
                microkernel(kc, apanel, bpanel, &mut acc);
                for (j, accj) in acc.iter().enumerate().take(jw) {
                    let col = c.col_tail_mut(j0 + j, i0, ih);
                    for (ci, &v) in col.iter_mut().zip(accj) {
                        *ci += v;
                    }
                }
            }
        }
        p0 += kc;
    }
    scratch.tick(2 * (m * n * k) as u64);
}

/// Blocked SYRK on the lower triangle: `C_lower += (alpha·A)·Aᵀ` with
/// `beta` already applied. Packs `A` twice (row panels and, transposed and
/// alpha-scaled, column panels) and sweeps only the tiles that intersect
/// the lower triangle; diagonal tiles compute the full tile and store the
/// `i ≥ j` half.
pub(crate) fn syrk_core(
    alpha: f64,
    a: &View<'_>,
    c: &mut MutView<'_>,
    scratch: &mut KernelScratch,
) {
    let (n, k) = (a.rows, a.cols);
    debug_assert_eq!(c.rows, n);
    debug_assert_eq!(c.cols, n);
    if n == 0 || k == 0 {
        return;
    }
    if n * n * k <= DIRECT_FLOP_CUTOFF {
        syrk_direct(alpha, a, c, scratch);
        return;
    }
    let at = View {
        trans: !a.trans,
        rows: a.cols,
        cols: a.rows,
        ..*a
    };
    let a_elems = round_up(n, MR) * KC.min(k);
    let b_elems = round_up(n, NR) * KC.min(k);
    let (apack, bpack) = scratch.packs(a_elems, b_elems);

    let mut p0 = 0usize;
    while p0 < k {
        let kc = KC.min(k - p0);
        pack_a(a, p0, kc, n, apack);
        pack_b(alpha, &at, p0, kc, n, bpack);
        for jb in 0..n.div_ceil(NR) {
            let j0 = jb * NR;
            let jw = NR.min(n - j0);
            let bpanel = &bpack[jb * kc * NR..(jb + 1) * kc * NR];
            // First row tile that reaches the diagonal: rows i0 + MR - 1 ≥ j0.
            for ib in (j0 / MR)..n.div_ceil(MR) {
                let i0 = ib * MR;
                let ih = MR.min(n - i0);
                let apanel = &apack[ib * kc * MR..(ib + 1) * kc * MR];
                let mut acc = [[0.0f64; MR]; NR];
                microkernel(kc, apanel, bpanel, &mut acc);
                for (j, accj) in acc.iter().enumerate().take(jw) {
                    let gj = j0 + j;
                    // Store only the i ≥ j half (global coordinates).
                    let r0 = gj.saturating_sub(i0).min(ih);
                    let col = c.col_tail_mut(gj, i0 + r0, ih - r0);
                    for (ci, &v) in col.iter_mut().zip(&accj[r0..]) {
                        *ci += v;
                    }
                }
            }
        }
        p0 += kc;
    }
    // Lower triangle only: n(n+1)/2 length-k MACs.
    scratch.tick((n * (n + 1)) as u64 * k as u64);
}

/// Direct small-size SYRK (column-AXPY over the lower triangle).
fn syrk_direct(alpha: f64, a: &View<'_>, c: &mut MutView<'_>, scratch: &mut KernelScratch) {
    let (n, k) = (a.rows, a.cols);
    for j in 0..n {
        for p in 0..k {
            let ajp = alpha * a.at(j, p);
            // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
            if ajp == 0.0 {
                continue;
            }
            if !a.trans {
                let base = (a.col + p) * a.ld + a.row;
                let acol = &a.data[base..base + n];
                let ccol = c.col_tail_mut(j, j, n - j);
                for (ci, &ai) in ccol.iter_mut().zip(&acol[j..]) {
                    *ci += ai * ajp;
                }
            } else {
                let ccol = c.col_tail_mut(j, j, n - j);
                for (r, ci) in ccol.iter_mut().enumerate() {
                    *ci += a.at(j + r, p) * ajp;
                }
            }
        }
    }
    scratch.tick((n * (n + 1)) as u64 * k as u64);
}

/// In-block column width of the blocked TRSM (the GEMM update handles
/// everything left of the current block).
const TRSM_NB: usize = 32;

/// Blocked in-place TRSM: solves `X · Lᵀ = B` for `X`, overwriting the
/// viewed `b` block. `l` views the `n × n` lower triangle (`ld`-strided).
///
/// Column blocks of width [`TRSM_NB`] are updated against all previously
/// solved columns with one packed GEMM (`B[:,J] −= X[:,0..j0] · L[J,0..j0]ᵀ`)
/// and then finished with the small in-block forward substitution.
pub(crate) fn trsm_core(
    l: &View<'_>,
    bdata: &mut [f64],
    bld: usize,
    brow: usize,
    bcol: usize,
    m: usize,
    n: usize,
    scratch: &mut KernelScratch,
) {
    debug_assert_eq!(l.rows, n);
    debug_assert_eq!(l.cols, n);
    let mut j0 = 0usize;
    while j0 < n {
        let nb = TRSM_NB.min(n - j0);
        if j0 > 0 {
            // Split the viewed columns at j0: left of the split is solved
            // (read-only), the current block is written.
            let (done, cur) = bdata.split_at_mut((bcol + j0) * bld);
            let x = View::raw(done, bld, brow, bcol, m, j0, false);
            let lt = View::raw(l.data, l.ld, l.row + j0, l.col, j0, nb, true);
            let mut cview = MutView::raw(cur, bld, brow, 0, m, nb);
            gemm_core(-1.0, &x, &lt, &mut cview, scratch);
        }
        // In-block forward substitution (columns j0..j0+nb).
        for j in j0..j0 + nb {
            for p in j0..j {
                let ljp = l.at(j, p);
                // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
                if ljp == 0.0 {
                    continue;
                }
                let (done, cur) = bdata.split_at_mut((bcol + j) * bld);
                let src = &done[(bcol + p) * bld + brow..(bcol + p) * bld + brow + m];
                let dst = &mut cur[brow..brow + m];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d -= s * ljp;
                }
            }
            let d = l.at(j, j);
            let base = (bcol + j) * bld + brow;
            let col = &mut bdata[base..base + m];
            col.iter_mut().for_each(|x| *x /= d);
        }
        // The GEMM update metered itself; this covers the in-block solve.
        scratch.tick((m * nb * nb) as u64);
        j0 += nb;
    }
}

/// Public-surface helper: `c = alpha·opa(a)·opb(b) + beta·c` entirely on
/// whole matrices (the [`crate::gemm`] body).
pub(crate) fn gemm_mats(
    alpha: f64,
    a: &View<'_>,
    b: &View<'_>,
    beta: f64,
    c: &mut Mat,
    scratch: &mut KernelScratch,
) {
    let mut cv = MutView::of(c);
    cv.scale(beta);
    gemm_core(alpha, a, b, &mut cv, scratch);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(rows: usize, cols: usize, seed: f64) -> Mat {
        Mat::from_fn(rows, cols, |r, c| {
            ((r * 7 + c * 3) % 11) as f64 * 0.25 - seed
        })
    }

    fn naive(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                for p in 0..a.cols() {
                    c[(i, j)] += a[(i, p)] * b[(p, j)];
                }
            }
        }
        c
    }

    #[test]
    fn packed_gemm_matches_naive_with_tails() {
        let mut scratch = KernelScratch::new();
        for (m, n, k) in [(33, 29, 37), (64, 64, 64), (5, 70, 100), (70, 5, 300)] {
            let a = filled(m, k, 0.5);
            let b = filled(k, n, 1.5);
            let want = naive(&a, &b);
            let mut c = Mat::zeros(m, n);
            gemm_mats(
                1.0,
                &View::of(&a, false),
                &View::of(&b, false),
                0.0,
                &mut c,
                &mut scratch,
            );
            for i in 0..m {
                for j in 0..n {
                    assert!(
                        (c[(i, j)] - want[(i, j)]).abs() < 1e-9,
                        "({m},{n},{k}) at ({i},{j})"
                    );
                }
            }
        }
        assert!(scratch.flops() > 0);
        assert!(scratch.high_water_elems() > 0);
    }

    #[test]
    fn transposed_views_match_explicit_transposes() {
        let mut scratch = KernelScratch::new();
        let a = filled(40, 33, 0.25);
        let b = filled(27, 40, 2.0);
        let want = naive(&a.transposed(), &b.transposed());
        let mut c = Mat::zeros(33, 27);
        gemm_mats(
            1.0,
            &View::of(&a, true),
            &View::of(&b, true),
            0.0,
            &mut c,
            &mut scratch,
        );
        for i in 0..33 {
            for j in 0..27 {
                assert!((c[(i, j)] - want[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dispatch_is_size_keyed_and_deterministic() {
        assert_eq!(gemm_path(10, 10, 0), GemmPath::Noop);
        assert_eq!(gemm_path(0, 4, 4), GemmPath::Noop);
        assert_eq!(gemm_path(3, 3, 3), GemmPath::DirectK3);
        assert_eq!(gemm_path(6, 6, 6), GemmPath::DirectK6);
        assert_eq!(gemm_path(12, 12, 12), GemmPath::Direct);
        assert_eq!(gemm_path(64, 64, 64), GemmPath::Packed);
        // The table is a pure function of shape.
        for _ in 0..3 {
            assert_eq!(gemm_path(48, 48, 48), gemm_path(48, 48, 48));
        }
    }

    #[test]
    fn scratch_growth_is_monotonic_and_reused() {
        let mut scratch = KernelScratch::new();
        let a = filled(64, 64, 0.0);
        let b = filled(64, 64, 1.0);
        let mut c = Mat::zeros(64, 64);
        gemm_mats(
            1.0,
            &View::of(&a, false),
            &View::of(&b, false),
            0.0,
            &mut c,
            &mut scratch,
        );
        let grows = scratch.grow_events();
        let high = scratch.high_water_elems();
        assert!(grows > 0);
        for _ in 0..4 {
            gemm_mats(
                1.0,
                &View::of(&a, false),
                &View::of(&b, false),
                0.0,
                &mut c,
                &mut scratch,
            );
        }
        assert_eq!(scratch.grow_events(), grows, "warm arena must not grow");
        assert_eq!(scratch.high_water_elems(), high);
    }

    #[test]
    fn presized_scratch_never_grows() {
        let n = 96;
        let mut scratch = KernelScratch::with_capacity(pack_elems_bound(n));
        let base = scratch.grow_events();
        let a = filled(n, n, 0.0);
        let b = filled(n, n, 1.0);
        let mut c = Mat::zeros(n, n);
        gemm_mats(
            1.0,
            &View::of(&a, false),
            &View::of(&b, false),
            0.0,
            &mut c,
            &mut scratch,
        );
        assert_eq!(scratch.grow_events(), base);
    }

    #[test]
    fn flop_meter_matches_shape() {
        let mut scratch = KernelScratch::new();
        let a = filled(8, 4, 0.0);
        let b = filled(4, 8, 1.0);
        let mut c = Mat::zeros(8, 8);
        gemm_mats(
            1.0,
            &View::of(&a, false),
            &View::of(&b, false),
            0.0,
            &mut c,
            &mut scratch,
        );
        assert_eq!(scratch.take_flops(), 2 * 8 * 8 * 4);
        assert_eq!(scratch.flops(), 0);
    }
}
