//! The blocked, packed dense-kernel core behind [`crate::gemm`],
//! [`crate::syrk_lower`] and [`crate::trsm_right_lower_transpose`].
//!
//! The paper's latency story rests on three supernode operations — GEMM,
//! SYRK (`L_C = C − L_B L_Bᵀ`, §3.2, the dominant cost per §6.5) and TRSM
//! — so the host implementations here mirror what a BLIS-style kernel
//! stack does, in safe Rust:
//!
//! - operands are **packed** once per `KC`-deep block into contiguous
//!   micro-panels (`MR`-row panels of `A`, `NR`-column panels of `B`),
//!   which turns every strided or transposed access pattern into linear
//!   streams and pads the tails so the microkernel never branches;
//! - an `MR×NR` **register-tiled microkernel** accumulates a full tile of
//!   `C` in locals across the packed depth, cutting `C` traffic by `NR×`
//!   versus the column-AXPY loop it replaces;
//! - SYRK walks only the tiles that intersect the lower triangle and TRSM
//!   factors into (packed GEMM update) + (small in-block solve), so both
//!   ride the same microkernel;
//! - a deterministic, size-keyed [`dispatch table`](GemmPath) routes
//!   SLAM-typical small blocks (SE(2)'s 3-wide and SE(3)'s 6-wide fronts)
//!   to fully unrolled direct kernels where packing overhead would
//!   dominate.
//!
//! The whole stack is generic over a sealed [`Scalar`] storage type and an
//! [`Accum`] accumulator type, monomorphized per [`NumericMode`]:
//!
//! | mode     | storage | multiplies | accumulate | MR×NR |
//! |----------|---------|------------|------------|-------|
//! | `f64`    | f64     | f64        | f64        | 4×4   |
//! | `f32`    | f32     | f32        | f32        | 8×4   |
//! | `f32f64` | f32     | f32        | f64        | 4×4   |
//!
//! The f64 instantiation reproduces the pre-generic kernels operation for
//! operation, so `NumericMode::F64` remains bit-identical to the historic
//! stack; f32 tiles are twice as tall because twice as many f32 lanes fit
//! a vector register, which is what makes the narrow mode's throughput win
//! (gated in `kernel_bench`) reliable under autovectorization.
//!
//! Pack buffers come from a caller-provided [`KernelScratch`] arena that
//! grows monotonically and is reused across calls — the sparse executor
//! threads one per worker so the steady-state refactor loop performs zero
//! heap allocation in every mode (machine-checked by `supernova-analyze`'s
//! `hot-alloc` lint; the allowed escapes in this file are the cold-path
//! constructors).
//!
//! Every path is a pure function of the operand values, shapes and mode:
//! the same call always performs the same operations in the same order, so
//! serial and pooled plan executions (which call identical kernels) stay
//! bit-identical *within a mode* — blocking changes *which* deterministic
//! summation order is used, never makes it data- or thread-dependent.

use crate::{Mat, NumericMode};

/// f64 microkernel tile height (rows of `C` held in registers).
pub const MR: usize = 4;
/// f64 microkernel tile width (columns of `C` held in registers).
pub const NR: usize = 4;
/// f32 microkernel tile height: twice the f64 height, since twice as many
/// f32 lanes fit one vector register.
pub const MR_F32: usize = 8;
/// f32 microkernel tile width.
pub const NR_F32: usize = 4;
/// Depth of one packed block: panels of at most `KC` columns of `A` (rows
/// of `B`) are packed and consumed before the next block is packed.
pub const KC: usize = 256;
/// Problems with `m·n·k` at or below this run the direct (non-packing)
/// path; above it, packing pays for itself.
pub const DIRECT_FLOP_CUTOFF: usize = 24 * 24 * 24;
/// Panel width of the blocked Cholesky driver (`cholesky.rs`), restated
/// here so [`KernelScratch::reserve`] can bound the triangular-panel
/// buffer [`take_panel`](Scalar::take_panel) hands out.
pub(crate) const CHOL_NB: usize = 48;

/// Rounds `x` up to a multiple of `to` (`to > 0`).
#[inline]
fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

mod sealed {
    /// Seals [`super::Scalar`]: the storage widths are a closed set (the
    /// scratch arena owns one typed buffer family per width).
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// A storage scalar of the dense kernel stack (sealed: `f64` or `f32`).
///
/// Operands, outputs and pack panels are stored as `Self`; the
/// accumulation width is chosen independently via [`Accum`]. The
/// `#[doc(hidden)]` methods route each width to its typed buffers inside
/// [`KernelScratch`] — they are an internal contract between the trait
/// impls and the arena, not API.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Default
    + PartialEq
    + PartialOrd
    + std::fmt::Debug
    + Send
    + Sync
    + 'static
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + std::ops::MulAssign
    + std::ops::DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Rounds an f64 into this storage width.
    fn from_f64(v: f64) -> Self;
    /// Widens into f64 (exact for both storage widths).
    fn to_f64(self) -> f64;

    /// Returns this width's pack buffers grown to at least the requested
    /// lengths.
    #[doc(hidden)]
    fn packs(
        scratch: &mut KernelScratch,
        a_elems: usize,
        b_elems: usize,
    ) -> (&mut [Self], &mut [Self]);

    /// Detaches this width's triangular-panel buffer (see
    /// `KernelScratch::take_lpack`).
    #[doc(hidden)]
    fn take_panel(scratch: &mut KernelScratch, elems: usize) -> Vec<Self>;

    /// Returns a detached triangular-panel buffer for reuse.
    #[doc(hidden)]
    fn put_panel(scratch: &mut KernelScratch, v: Vec<Self>);
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    fn packs(
        scratch: &mut KernelScratch,
        a_elems: usize,
        b_elems: usize,
    ) -> (&mut [Self], &mut [Self]) {
        scratch.packs64(a_elems, b_elems)
    }

    fn take_panel(scratch: &mut KernelScratch, elems: usize) -> Vec<Self> {
        scratch.take_lpack(elems)
    }

    fn put_panel(scratch: &mut KernelScratch, v: Vec<Self>) {
        scratch.put_lpack(v);
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    fn packs(
        scratch: &mut KernelScratch,
        a_elems: usize,
        b_elems: usize,
    ) -> (&mut [Self], &mut [Self]) {
        scratch.packs32(a_elems, b_elems)
    }

    fn take_panel(scratch: &mut KernelScratch, elems: usize) -> Vec<Self> {
        scratch.take_lpack32(elems)
    }

    fn put_panel(scratch: &mut KernelScratch, v: Vec<Self>) {
        scratch.put_lpack32(v);
    }
}

/// An accumulator width paired with storage scalar `S`.
///
/// `Accum<f64> for f64` and `Accum<f32> for f32` are the uniform modes
/// (promotion is the identity); `Accum<f32> for f64` is the mixed mode:
/// products are computed in f32 (the storage width — modeling the systolic
/// array's narrow multipliers) and summed in f64, paying one rounding per
/// store instead of one per add.
pub trait Accum<S: Scalar>: Scalar {
    /// `true` when the accumulator is wider than the storage scalar (the
    /// mixed mode); lets generic kernels statically pick the gathered
    /// wide-accumulation form over in-storage AXPY updates.
    const WIDENS: bool;

    /// Widens a storage scalar into the accumulator (exact).
    fn promote(s: S) -> Self;
    /// Rounds the accumulator back into storage width.
    fn demote(self) -> S;
    /// Square root in accumulator precision (the Cholesky pivot).
    fn sqrt(self) -> Self;
    /// Finiteness check in accumulator precision.
    fn is_finite(self) -> bool;
}

impl Accum<f64> for f64 {
    const WIDENS: bool = false;

    #[inline(always)]
    fn promote(s: f64) -> Self {
        s
    }

    #[inline(always)]
    fn demote(self) -> f64 {
        self
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl Accum<f32> for f32 {
    const WIDENS: bool = false;

    #[inline(always)]
    fn promote(s: f32) -> Self {
        s
    }

    #[inline(always)]
    fn demote(self) -> f32 {
        self
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Accum<f32> for f64 {
    const WIDENS: bool = true;

    #[inline(always)]
    fn promote(s: f32) -> Self {
        s as f64
    }

    #[inline(always)]
    fn demote(self) -> f32 {
        self as f32
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

/// Reusable pack-buffer arena for the blocked kernels.
///
/// Buffers grow monotonically (never shrink) and are fully overwritten on
/// every use, so scratch contents can never leak between calls and a
/// warm arena performs zero allocation. One typed buffer family exists per
/// storage width (f64 for [`NumericMode::F64`], f32 for the narrow modes,
/// plus an f32 front shadow for the demote → factor → promote narrow
/// factorization path), so a mode switch warms up once and then both modes
/// stay allocation-free. The arena also meters the multiply-add work the
/// kernels actually execute ([`flops`](Self::flops)) so callers can tick
/// real kernel work into trace spans; flop counts depend only on shapes,
/// never on the mode.
#[derive(Clone, Debug, Default)]
pub struct KernelScratch {
    apack: Vec<f64>,
    bpack: Vec<f64>,
    /// Packed copy of a triangular diagonal block, taken/returned by the
    /// in-place blocked Cholesky so its TRSM reads `L` without aliasing
    /// the front it is updating.
    lpack: Vec<f64>,
    apack32: Vec<f32>,
    bpack32: Vec<f32>,
    lpack32: Vec<f32>,
    /// f32 shadow of a front being factored in a narrow mode (taken and
    /// returned like `lpack`, so the arena stays usable for packs while
    /// the shadow is live).
    front32: Vec<f32>,
    flops: u64,
    grow_events: u64,
}

impl KernelScratch {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena whose f64 pack buffers are pre-grown to `pack_elems`
    /// scalars each (use [`pack_elems_bound`] /
    /// `ExecutionPlan::max_pack_elems`-style precomputation), so even the
    /// first call allocates nothing. For narrow modes, follow with
    /// [`reserve_mode`](Self::reserve_mode).
    pub fn with_capacity(pack_elems: usize) -> Self {
        let mut s = Self::new();
        if pack_elems > 0 {
            s.grow_events = 1;
            // lint: allow(hot-alloc) — cold-path constructor, the one-time sizing
            s.apack = vec![0.0; pack_elems];
            // lint: allow(hot-alloc) — cold-path constructor, the one-time sizing
            s.bpack = vec![0.0; pack_elems];
        }
        s
    }

    /// Pre-grows (never shrinks) every f64 buffer for kernels within a
    /// `pack_elems` envelope, so later calls allocate nothing: both pack
    /// buffers to `pack_elems` scalars, and the triangular-panel buffer to
    /// its need under that envelope — `min(pack_elems, NB²)`, since
    /// `take_lpack` panels are at most `NB × NB` and
    /// never exceed a front whose pack bound is `pack_elems`. Growth is
    /// counted in [`grow_events`](Self::grow_events); a no-op when
    /// already large enough.
    pub fn reserve(&mut self, pack_elems: usize) {
        let a = self.apack.len().max(pack_elems);
        let b = self.bpack.len().max(pack_elems);
        let _ = self.packs64(a, b);
        let l = pack_elems.min(CHOL_NB * CHOL_NB);
        if self.lpack.capacity() < l {
            self.grow_events += 1;
            let need = l - self.lpack.len();
            self.lpack.reserve(need);
        }
    }

    /// Mode-aware [`reserve`](Self::reserve): pre-grows the buffers the
    /// given [`NumericMode`] will touch. `pack_elems` is the mode's pack
    /// envelope ([`pack_elems_bound_mode`]); `front_elems` bounds the f32
    /// front shadow the narrow factorization path takes (ignored for
    /// `F64`, whose fronts live in the caller's `Mat`).
    pub fn reserve_mode(&mut self, mode: NumericMode, pack_elems: usize, front_elems: usize) {
        match mode {
            NumericMode::F64 => self.reserve(pack_elems),
            NumericMode::F32 | NumericMode::F32F64 => {
                let a = self.apack32.len().max(pack_elems);
                let b = self.bpack32.len().max(pack_elems);
                let _ = self.packs32(a, b);
                let l = pack_elems.min(CHOL_NB * CHOL_NB);
                if self.lpack32.capacity() < l {
                    self.grow_events += 1;
                    let need = l - self.lpack32.len();
                    self.lpack32.reserve(need);
                }
                if self.front32.capacity() < front_elems {
                    self.grow_events += 1;
                    let need = front_elems - self.front32.len();
                    self.front32.reserve(need);
                }
            }
        }
    }

    /// Grows (never shrinks) the f64 pack buffers to at least `a_elems` /
    /// `b_elems` and returns them. Growth is counted in
    /// [`grow_events`](Self::grow_events).
    fn packs64(&mut self, a_elems: usize, b_elems: usize) -> (&mut [f64], &mut [f64]) {
        if self.apack.len() < a_elems {
            self.grow_events += 1;
            self.apack.resize(a_elems, 0.0);
        }
        if self.bpack.len() < b_elems {
            self.grow_events += 1;
            self.bpack.resize(b_elems, 0.0);
        }
        (&mut self.apack[..a_elems], &mut self.bpack[..b_elems])
    }

    /// f32 counterpart of [`packs64`](Self::packs64).
    fn packs32(&mut self, a_elems: usize, b_elems: usize) -> (&mut [f32], &mut [f32]) {
        if self.apack32.len() < a_elems {
            self.grow_events += 1;
            self.apack32.resize(a_elems, 0.0);
        }
        if self.bpack32.len() < b_elems {
            self.grow_events += 1;
            self.bpack32.resize(b_elems, 0.0);
        }
        (&mut self.apack32[..a_elems], &mut self.bpack32[..b_elems])
    }

    /// Detaches the f64 triangular-panel buffer, grown to exactly `elems`
    /// zero-initialized scalars. Detaching (rather than borrowing) lets the
    /// caller keep using the arena for pack buffers while the panel copy is
    /// live; pair with [`put_lpack`](Self::put_lpack) to preserve reuse.
    pub(crate) fn take_lpack(&mut self, elems: usize) -> Vec<f64> {
        let mut v = std::mem::take(&mut self.lpack);
        if v.capacity() < elems {
            self.grow_events += 1;
        }
        v.clear();
        v.resize(elems, 0.0);
        v
    }

    /// Returns a buffer obtained from [`take_lpack`](Self::take_lpack) to
    /// the arena for reuse.
    pub(crate) fn put_lpack(&mut self, v: Vec<f64>) {
        if v.capacity() > self.lpack.capacity() {
            self.lpack = v;
        }
    }

    /// f32 counterpart of [`take_lpack`](Self::take_lpack).
    pub(crate) fn take_lpack32(&mut self, elems: usize) -> Vec<f32> {
        let mut v = std::mem::take(&mut self.lpack32);
        if v.capacity() < elems {
            self.grow_events += 1;
        }
        v.clear();
        v.resize(elems, 0.0);
        v
    }

    /// f32 counterpart of [`put_lpack`](Self::put_lpack).
    pub(crate) fn put_lpack32(&mut self, v: Vec<f32>) {
        if v.capacity() > self.lpack32.capacity() {
            self.lpack32 = v;
        }
    }

    /// Detaches the f32 front shadow, grown to exactly `elems`
    /// zero-initialized scalars (the narrow factorization's demote
    /// target). Pair with [`put_front32`](Self::put_front32).
    pub(crate) fn take_front32(&mut self, elems: usize) -> Vec<f32> {
        let mut v = std::mem::take(&mut self.front32);
        if v.capacity() < elems {
            self.grow_events += 1;
        }
        v.clear();
        v.resize(elems, 0.0);
        v
    }

    /// Returns a buffer obtained from [`take_front32`](Self::take_front32)
    /// to the arena for reuse.
    pub(crate) fn put_front32(&mut self, v: Vec<f32>) {
        if v.capacity() > self.front32.capacity() {
            self.front32 = v;
        }
    }

    /// Total multiply-add flops (MAC = 2 flops) executed through this
    /// arena since construction or the last [`take_flops`](Self::take_flops).
    /// Counts depend only on operand shapes, not the numeric mode.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Returns and resets the flop counter (per-task metering).
    pub fn take_flops(&mut self) -> u64 {
        std::mem::take(&mut self.flops)
    }

    /// Number of times a buffer actually grew (including the constructor's
    /// pre-sizing). Flat after warm-up on a steady workload — the
    /// zero-alloc hot-path invariant tests assert exactly this, in every
    /// mode.
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    /// Largest buffer footprint reached so far, in f64-equivalent scalars
    /// (f32 buffers count half per element, rounding up — the arena
    /// high-water mark used to pick the warmest pooled workspace).
    pub fn high_water_elems(&self) -> usize {
        let f64_side = self.apack.len().max(self.bpack.len()).max(self.lpack.len());
        let f32_side = self
            .apack32
            .len()
            .max(self.bpack32.len())
            .max(self.lpack32.len())
            .max(self.front32.len())
            .div_ceil(2);
        f64_side.max(f32_side)
    }

    #[inline]
    fn tick(&mut self, flops: u64) {
        self.flops += flops;
    }
}

/// Scalars each f64 pack buffer of a [`KernelScratch`] needs for any
/// blocked kernel whose operands fit in an `n × n` envelope — the
/// per-front bound the execution plan uses to pre-size per-worker arenas.
pub fn pack_elems_bound(n: usize) -> usize {
    round_up(n, MR.max(NR)) * n.min(KC)
}

/// Mode-aware [`pack_elems_bound`]: the narrow modes pack f32 panels whose
/// row tiles round up to the taller [`MR_F32`] microkernel.
pub fn pack_elems_bound_mode(n: usize, mode: NumericMode) -> usize {
    match mode {
        NumericMode::F64 => pack_elems_bound(n),
        NumericMode::F32 | NumericMode::F32F64 => round_up(n, MR_F32.max(NR_F32)) * n.min(KC),
    }
}

/// A read-only view of a column-major sub-block, optionally transposed.
///
/// `at(i, j)` addresses the *logical* operand (after transposition); the
/// pack routines turn these strided reads into contiguous panel writes
/// exactly once per `KC` block.
#[derive(Clone, Copy)]
pub(crate) struct View<'a, S = f64> {
    data: &'a [S],
    /// Leading dimension: rows of the backing matrix.
    ld: usize,
    /// Top-left corner of the viewed block in the backing matrix.
    row: usize,
    col: usize,
    /// Logical dimensions (after transposition).
    rows: usize,
    cols: usize,
    trans: bool,
}

impl<'a> View<'a, f64> {
    /// Views an entire matrix, transposed when `trans`.
    pub(crate) fn of(m: &'a Mat, trans: bool) -> Self {
        let (rows, cols) = if trans {
            (m.cols(), m.rows())
        } else {
            (m.rows(), m.cols())
        };
        View {
            data: m.as_slice(),
            ld: m.rows().max(1),
            row: 0,
            col: 0,
            rows,
            cols,
            trans,
        }
    }
}

impl<'a, S: Scalar> View<'a, S> {
    /// Views a raw column-major slice block.
    pub(crate) fn raw(
        data: &'a [S],
        ld: usize,
        row: usize,
        col: usize,
        rows: usize,
        cols: usize,
        trans: bool,
    ) -> Self {
        View {
            data,
            ld: ld.max(1),
            row,
            col,
            rows,
            cols,
            trans,
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> S {
        let (r, c) = if self.trans { (j, i) } else { (i, j) };
        self.data[(self.col + c) * self.ld + self.row + r]
    }

    /// Contiguous storage column `c` (storage coordinates, not logical),
    /// restricted to the viewed rows.
    #[inline]
    fn storage_col(&self, c: usize, len: usize) -> &[S] {
        let base = (self.col + c) * self.ld + self.row;
        &self.data[base..base + len]
    }
}

/// A mutable view of a column-major sub-block (never transposed — only
/// `C` operands are mutable).
pub(crate) struct MutView<'a, S = f64> {
    data: &'a mut [S],
    ld: usize,
    row: usize,
    col: usize,
    rows: usize,
    cols: usize,
}

impl<'a> MutView<'a, f64> {
    /// Views an entire matrix mutably.
    pub(crate) fn of(m: &'a mut Mat) -> Self {
        let ld = m.rows().max(1);
        let (rows, cols) = (m.rows(), m.cols());
        MutView {
            data: m.as_mut_slice(),
            ld,
            row: 0,
            col: 0,
            rows,
            cols,
        }
    }
}

impl<'a, S: Scalar> MutView<'a, S> {
    /// Views a raw column-major slice block.
    pub(crate) fn raw(
        data: &'a mut [S],
        ld: usize,
        row: usize,
        col: usize,
        rows: usize,
        cols: usize,
    ) -> Self {
        MutView {
            data,
            ld: ld.max(1),
            row,
            col,
            rows,
            cols,
        }
    }

    /// Column `j` of the viewed block as a contiguous mutable slice.
    #[inline]
    fn col_mut(&mut self, j: usize) -> &mut [S] {
        let base = (self.col + j) * self.ld + self.row;
        &mut self.data[base..base + self.rows]
    }

    /// Rows `r0..` of column `j` as a contiguous mutable slice of `len`.
    #[inline]
    fn col_tail_mut(&mut self, j: usize, r0: usize, len: usize) -> &mut [S] {
        let base = (self.col + j) * self.ld + self.row + r0;
        &mut self.data[base..base + len]
    }

    /// Scales the whole viewed block by `beta` (with the exact-zero and
    /// exact-one fast paths BLAS semantics require).
    pub(crate) fn scale(&mut self, beta: S) {
        // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
        if beta == S::ONE || self.rows == 0 {
            return;
        }
        for j in 0..self.cols {
            let col = self.col_mut(j);
            // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
            if beta == S::ZERO {
                col.iter_mut().for_each(|x| *x = S::ZERO);
            } else {
                col.iter_mut().for_each(|x| *x *= beta);
            }
        }
    }

    /// Scales rows `j..rows` of every column `j` (the lower triangle) by
    /// `beta`.
    pub(crate) fn scale_lower(&mut self, beta: S) {
        // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
        if beta == S::ONE || self.rows == 0 {
            return;
        }
        let rows = self.rows;
        for j in 0..self.cols {
            let col = self.col_tail_mut(j, j, rows - j);
            // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
            if beta == S::ZERO {
                col.iter_mut().for_each(|x| *x = S::ZERO);
            } else {
                col.iter_mut().for_each(|x| *x *= beta);
            }
        }
    }
}

/// The kernel paths the size-keyed dispatch table selects between.
///
/// Selection depends only on the operand shapes — never on values, thread
/// counts or runtime feature detection — so the same call sites take the
/// same path in serial and pooled executions (the determinism anchor).
/// The table is shared by every [`NumericMode`]; modes differ only in tile
/// constants and accumulator width, never in which path a shape takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmPath {
    /// `k == 0` or an empty output: nothing to do.
    Noop,
    /// Fully unrolled `k = 3` direct kernel (SE(2) pose blocks).
    DirectK3,
    /// Fully unrolled `k = 6` direct kernel (SE(3) pose blocks).
    DirectK6,
    /// Generic direct kernel for small products (no packing).
    Direct,
    /// Packed panels + register-tiled microkernel.
    Packed,
}

/// The deterministic size-keyed dispatch table: which kernel path a GEMM
/// of logical shape `m × n × k` takes.
pub fn gemm_path(m: usize, n: usize, k: usize) -> GemmPath {
    match (m, n, k) {
        (0, _, _) | (_, 0, _) | (_, _, 0) => GemmPath::Noop,
        // SLAM-typical SE(2)/SE(3) block products: unrolled contraction.
        (_, _, 3) if m * n <= 24 * 24 => GemmPath::DirectK3,
        (_, _, 6) if m * n <= 24 * 24 => GemmPath::DirectK6,
        _ if m * n * k <= DIRECT_FLOP_CUTOFF => GemmPath::Direct,
        _ => GemmPath::Packed,
    }
}

/// `C += A · B` on views, `beta` already applied to `C` by the caller.
/// `alpha` is folded into the packed/gathered `B` operand, mirroring the
/// classic column-AXPY operand order `a[i,p] · (alpha · b[p,j])`.
pub(crate) fn gemm_core_g<S: Scalar, A: Accum<S>, const MR_: usize, const NR_: usize>(
    alpha: S,
    a: &View<'_, S>,
    b: &View<'_, S>,
    c: &mut MutView<'_, S>,
    scratch: &mut KernelScratch,
) {
    let (m, n, k) = (c.rows, c.cols, a.cols);
    debug_assert_eq!(a.rows, m, "gemm_core A row mismatch");
    debug_assert_eq!(b.rows, k, "gemm_core B row mismatch");
    debug_assert_eq!(b.cols, n, "gemm_core B column mismatch");
    match gemm_path(m, n, k) {
        GemmPath::Noop => {}
        GemmPath::DirectK3 => gemm_direct_k_g::<S, A, 3>(alpha, a, b, c, scratch),
        GemmPath::DirectK6 => gemm_direct_k_g::<S, A, 6>(alpha, a, b, c, scratch),
        GemmPath::Direct => gemm_direct_g::<S, A>(alpha, a, b, c, scratch),
        GemmPath::Packed => gemm_packed_g::<S, A, MR_, NR_>(alpha, a, b, c, scratch),
    }
}

/// Direct kernel with the contraction depth `K` a compile-time constant:
/// the column of `B` is gathered into registers once per output column and
/// the `K`-term dot products unroll completely. Products are computed in
/// storage precision; the dot accumulates in `A`.
fn gemm_direct_k_g<S: Scalar, A: Accum<S>, const K: usize>(
    alpha: S,
    a: &View<'_, S>,
    b: &View<'_, S>,
    c: &mut MutView<'_, S>,
    scratch: &mut KernelScratch,
) {
    let (m, n) = (c.rows, c.cols);
    debug_assert_eq!(a.cols, K);
    for j in 0..n {
        let mut bcol = [S::ZERO; K];
        for (p, slot) in bcol.iter_mut().enumerate() {
            *slot = alpha * b.at(p, j);
        }
        let col = c.col_mut(j);
        for (i, out) in col.iter_mut().enumerate() {
            let mut acc = A::ZERO;
            for (p, &bp) in bcol.iter().enumerate() {
                acc += A::promote(a.at(i, p) * bp);
            }
            *out = A::demote(A::promote(*out) + acc);
        }
    }
    scratch.tick(2 * (m * n * K) as u64);
}

/// Generic direct kernel for small shapes: per-column AXPY when `A` is
/// untransposed and the accumulator matches the storage width (contiguous
/// columns); gathered dot products in `A` otherwise — the mixed mode
/// always gathers so small shapes keep wide accumulation too.
fn gemm_direct_g<S: Scalar, A: Accum<S>>(
    alpha: S,
    a: &View<'_, S>,
    b: &View<'_, S>,
    c: &mut MutView<'_, S>,
    scratch: &mut KernelScratch,
) {
    let (m, n, k) = (c.rows, c.cols, a.cols);
    if !a.trans && !A::WIDENS {
        for j in 0..n {
            for p in 0..k {
                let bpj = alpha * b.at(p, j);
                let acol = a.storage_col(p, m);
                let ccol = c.col_mut(j);
                for (ci, &ai) in ccol.iter_mut().zip(acol) {
                    *ci += ai * bpj;
                }
            }
        }
    } else {
        for j in 0..n {
            let ccol = c.col_mut(j);
            for (i, out) in ccol.iter_mut().enumerate() {
                let mut acc = A::ZERO;
                for p in 0..k {
                    acc += A::promote(a.at(i, p) * b.at(p, j));
                }
                *out = A::demote(A::promote(*out) + A::promote(alpha) * acc);
            }
        }
    }
    scratch.tick(2 * (m * n * k) as u64);
}

/// Packs the `m × kc` slab of `A` starting at depth `p0` into `MR_`-row
/// micro-panels: panel `ib` holds rows `ib·MR_..` for all `kc` depths,
/// contiguously, zero-padded past row `m`.
fn pack_a_g<S: Scalar, const MR_: usize>(
    a: &View<'_, S>,
    p0: usize,
    kc: usize,
    m: usize,
    apack: &mut [S],
) {
    let panels = m.div_ceil(MR_);
    debug_assert!(apack.len() >= panels * kc * MR_);
    if !a.trans {
        // Storage columns are logical columns: walk each depth's column
        // slice once, scattering into the panels.
        for (ib, panel) in apack.chunks_exact_mut(kc * MR_).take(panels).enumerate() {
            let i0 = ib * MR_;
            let rows = MR_.min(m - i0);
            for (p, dst) in panel.chunks_exact_mut(MR_).enumerate() {
                let src = a.storage_col(p0 + p, a.rows);
                for r in 0..MR_ {
                    dst[r] = if r < rows { src[i0 + r] } else { S::ZERO };
                }
            }
        }
    } else {
        // Logical rows are storage columns: each packed row streams one
        // contiguous storage column segment.
        for (ib, panel) in apack.chunks_exact_mut(kc * MR_).take(panels).enumerate() {
            let i0 = ib * MR_;
            let rows = MR_.min(m - i0);
            for dst in panel.chunks_exact_mut(MR_) {
                dst.iter_mut().for_each(|x| *x = S::ZERO);
            }
            for r in 0..rows {
                let src = a.storage_col(i0 + r, a.cols);
                for (p, dst) in panel.chunks_exact_mut(MR_).enumerate() {
                    dst[r] = src[p0 + p];
                }
            }
        }
    }
}

/// Packs the `kc × n` slab of `B` starting at depth `p0` into `NR_`-column
/// micro-panels scaled by `alpha`, zero-padded past column `n`.
fn pack_b_g<S: Scalar, const NR_: usize>(
    alpha: S,
    b: &View<'_, S>,
    p0: usize,
    kc: usize,
    n: usize,
    bpack: &mut [S],
) {
    let panels = n.div_ceil(NR_);
    debug_assert!(bpack.len() >= panels * kc * NR_);
    if !b.trans {
        for (jb, panel) in bpack.chunks_exact_mut(kc * NR_).take(panels).enumerate() {
            let j0 = jb * NR_;
            let cols = NR_.min(n - j0);
            for dst in panel.chunks_exact_mut(NR_) {
                dst.iter_mut().for_each(|x| *x = S::ZERO);
            }
            for j in 0..cols {
                let src = b.storage_col(j0 + j, b.rows);
                for (p, dst) in panel.chunks_exact_mut(NR_).enumerate() {
                    dst[j] = alpha * src[p0 + p];
                }
            }
        }
    } else {
        // Transposed B: logical row p is storage column p.
        for (jb, panel) in bpack.chunks_exact_mut(kc * NR_).take(panels).enumerate() {
            let j0 = jb * NR_;
            let cols = NR_.min(n - j0);
            for (p, dst) in panel.chunks_exact_mut(NR_).enumerate() {
                let src = b.storage_col(p0 + p, b.cols);
                for j in 0..NR_ {
                    dst[j] = if j < cols {
                        alpha * src[j0 + j]
                    } else {
                        S::ZERO
                    };
                }
            }
        }
    }
}

/// The register-tiled microkernel: accumulates the full `MR_ × NR_` tile
/// product of one packed `A` panel and one packed `B` panel across `kc`
/// depths. `acc` is column-major (`acc[j][i]`), in accumulator precision;
/// each product is computed in storage precision and promoted — for the
/// uniform modes promotion is the identity and this is the historic f64
/// kernel operation for operation.
#[inline(always)]
fn microkernel_g<S: Scalar, A: Accum<S>, const MR_: usize, const NR_: usize>(
    kc: usize,
    apanel: &[S],
    bpanel: &[S],
    acc: &mut [[A; MR_]; NR_],
) {
    // Two depth steps per iteration: halves the loop-control overhead and
    // gives the scheduler two independent rank-1 updates to interleave.
    //
    // Each rank-1 row is staged through a fixed-width product array in
    // storage precision before the promote-accumulate pass. The staging
    // changes no arithmetic (same multiplies, same addition order, so f64
    // stays bit-identical to the historic kernel) but splits the body into
    // short independent loops the SLP vectorizer handles at every width —
    // the fused form autovectorizes at 4×f64 yet collapses to spilled
    // scalar code at 8×f32.
    let pairs = kc / 2;
    for (ap, bp) in apanel
        .chunks_exact(2 * MR_)
        .zip(bpanel.chunks_exact(2 * NR_))
        .take(pairs)
    {
        let (a0, a1) = ap.split_at(MR_);
        let (b0, b1) = bp.split_at(NR_);
        for j in 0..NR_ {
            let bj0 = b0[j];
            let bj1 = b1[j];
            let mut p0 = [S::ZERO; MR_];
            let mut p1 = [S::ZERO; MR_];
            for i in 0..MR_ {
                p0[i] = a0[i] * bj0;
            }
            for i in 0..MR_ {
                p1[i] = a1[i] * bj1;
            }
            let accj = &mut acc[j];
            for i in 0..MR_ {
                accj[i] += A::promote(p0[i]) + A::promote(p1[i]);
            }
        }
    }
    if kc % 2 == 1 {
        let p = kc - 1;
        let a = &apanel[p * MR_..(p + 1) * MR_];
        let b = &bpanel[p * NR_..(p + 1) * NR_];
        for j in 0..NR_ {
            let bj = b[j];
            let mut prod = [S::ZERO; MR_];
            for i in 0..MR_ {
                prod[i] = a[i] * bj;
            }
            let accj = &mut acc[j];
            for i in 0..MR_ {
                accj[i] += A::promote(prod[i]);
            }
        }
    }
}

/// Packed GEMM: `C += (alpha·A)·B`, blocked over the contraction depth in
/// `KC` slabs, each slab packed once and swept by the microkernel.
fn gemm_packed_g<S: Scalar, A: Accum<S>, const MR_: usize, const NR_: usize>(
    alpha: S,
    a: &View<'_, S>,
    b: &View<'_, S>,
    c: &mut MutView<'_, S>,
    scratch: &mut KernelScratch,
) {
    let (m, n, k) = (c.rows, c.cols, a.cols);
    let a_elems = round_up(m, MR_) * KC.min(k);
    let b_elems = round_up(n, NR_) * KC.min(k);
    let (apack, bpack) = S::packs(scratch, a_elems, b_elems);

    let mut p0 = 0usize;
    while p0 < k {
        let kc = KC.min(k - p0);
        pack_a_g::<S, MR_>(a, p0, kc, m, apack);
        pack_b_g::<S, NR_>(alpha, b, p0, kc, n, bpack);
        for jb in 0..n.div_ceil(NR_) {
            let j0 = jb * NR_;
            let jw = NR_.min(n - j0);
            let bpanel = &bpack[jb * kc * NR_..(jb + 1) * kc * NR_];
            for ib in 0..m.div_ceil(MR_) {
                let i0 = ib * MR_;
                let ih = MR_.min(m - i0);
                let apanel = &apack[ib * kc * MR_..(ib + 1) * kc * MR_];
                let mut acc = [[A::ZERO; MR_]; NR_];
                microkernel_g::<S, A, MR_, NR_>(kc, apanel, bpanel, &mut acc);
                for (j, accj) in acc.iter().enumerate().take(jw) {
                    let col = c.col_tail_mut(j0 + j, i0, ih);
                    for (ci, &v) in col.iter_mut().zip(accj) {
                        *ci = A::demote(A::promote(*ci) + v);
                    }
                }
            }
        }
        p0 += kc;
    }
    scratch.tick(2 * (m * n * k) as u64);
}

/// Blocked SYRK on the lower triangle: `C_lower += (alpha·A)·Aᵀ` with
/// `beta` already applied. Packs `A` twice (row panels and, transposed and
/// alpha-scaled, column panels) and sweeps only the tiles that intersect
/// the lower triangle; diagonal tiles compute the full tile and store the
/// `i ≥ j` half.
pub(crate) fn syrk_core_g<S: Scalar, A: Accum<S>, const MR_: usize, const NR_: usize>(
    alpha: S,
    a: &View<'_, S>,
    c: &mut MutView<'_, S>,
    scratch: &mut KernelScratch,
) {
    let (n, k) = (a.rows, a.cols);
    debug_assert_eq!(c.rows, n);
    debug_assert_eq!(c.cols, n);
    if n == 0 || k == 0 {
        return;
    }
    if n * n * k <= DIRECT_FLOP_CUTOFF {
        syrk_direct_g::<S, A>(alpha, a, c, scratch);
        return;
    }
    let at = View {
        trans: !a.trans,
        rows: a.cols,
        cols: a.rows,
        ..*a
    };
    let a_elems = round_up(n, MR_) * KC.min(k);
    let b_elems = round_up(n, NR_) * KC.min(k);
    let (apack, bpack) = S::packs(scratch, a_elems, b_elems);

    let mut p0 = 0usize;
    while p0 < k {
        let kc = KC.min(k - p0);
        pack_a_g::<S, MR_>(a, p0, kc, n, apack);
        pack_b_g::<S, NR_>(alpha, &at, p0, kc, n, bpack);
        for jb in 0..n.div_ceil(NR_) {
            let j0 = jb * NR_;
            let jw = NR_.min(n - j0);
            let bpanel = &bpack[jb * kc * NR_..(jb + 1) * kc * NR_];
            // First row tile that reaches the diagonal: rows i0 + MR_ - 1 ≥ j0.
            for ib in (j0 / MR_)..n.div_ceil(MR_) {
                let i0 = ib * MR_;
                let ih = MR_.min(n - i0);
                let apanel = &apack[ib * kc * MR_..(ib + 1) * kc * MR_];
                let mut acc = [[A::ZERO; MR_]; NR_];
                microkernel_g::<S, A, MR_, NR_>(kc, apanel, bpanel, &mut acc);
                for (j, accj) in acc.iter().enumerate().take(jw) {
                    let gj = j0 + j;
                    // Store only the i ≥ j half (global coordinates).
                    let r0 = gj.saturating_sub(i0).min(ih);
                    let col = c.col_tail_mut(gj, i0 + r0, ih - r0);
                    for (ci, &v) in col.iter_mut().zip(&accj[r0..]) {
                        *ci = A::demote(A::promote(*ci) + v);
                    }
                }
            }
        }
        p0 += kc;
    }
    // Lower triangle only: n(n+1)/2 length-k MACs.
    scratch.tick((n * (n + 1)) as u64 * k as u64);
}

/// Column-strip slice of the blocked SYRK trailing update, with the kernel
/// path **forced** by the caller: computes `C[r, c] += alpha · Σ_p
/// A_rows[r, p] · A_cols[c, p]` for the lower-triangle-masked block
/// (`r ≥ c` in local coordinates), where `A_rows`/`A_cols` are two
/// untransposed row ranges of the *same* operand panel.
///
/// This is the per-element computation [`syrk_core_g`] performs for the
/// columns of `C` this strip owns: the packed microkernel accumulates each
/// element over the packed depth in an order that depends only on `kc`
/// (never on panel alignment), and the direct path is per-column
/// independent, so running either path over a column strip reproduces the
/// whole-update bits exactly — **provided** `packed` matches the path the
/// unsplit `syrk_core_g` call would have dispatched to. Callers derive
/// `packed` from the *unsplit* update shape, which is why it is a
/// parameter rather than recomputed from the strip shape here.
pub(crate) fn syrk_strip_g<S: Scalar, A: Accum<S>, const MR_: usize, const NR_: usize>(
    alpha: S,
    a_rows: &View<'_, S>,
    a_cols: &View<'_, S>,
    c: &mut MutView<'_, S>,
    packed: bool,
    scratch: &mut KernelScratch,
) {
    let (m, n, k) = (c.rows, c.cols, a_rows.cols);
    debug_assert_eq!(a_rows.rows, m, "syrk_strip A row-range mismatch");
    debug_assert_eq!(a_cols.rows, n, "syrk_strip A col-range mismatch");
    debug_assert_eq!(a_cols.cols, k, "syrk_strip depth mismatch");
    debug_assert!(
        !a_rows.trans && !a_cols.trans,
        "syrk_strip takes untransposed operands"
    );
    debug_assert!(m >= n, "syrk_strip block must reach the diagonal");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if !packed {
        // Mirror of `syrk_direct_g` restricted to this strip's columns:
        // same per-column loop order (depth ascending, rows ascending) and
        // the same structural-zero skip.
        if !A::WIDENS {
            for j in 0..n {
                for p in 0..k {
                    let ajp = alpha * a_cols.at(j, p);
                    // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
                    if ajp == S::ZERO {
                        continue;
                    }
                    let acol = a_rows.storage_col(p, m);
                    let ccol = c.col_tail_mut(j, j, m - j);
                    for (ci, &ai) in ccol.iter_mut().zip(&acol[j..]) {
                        *ci += ai * ajp;
                    }
                }
            }
        } else {
            for j in 0..n {
                let ccol = c.col_tail_mut(j, j, m - j);
                for (r, ci) in ccol.iter_mut().enumerate() {
                    let i = j + r;
                    let mut acc = A::ZERO;
                    for p in 0..k {
                        acc += A::promote(a_rows.at(i, p) * (alpha * a_cols.at(j, p)));
                    }
                    *ci = A::demote(A::promote(*ci) + acc);
                }
            }
        }
    } else {
        // Mirror of `syrk_core_g`'s packed body over this strip's columns:
        // the per-element accumulation order depends only on `kc`, so the
        // strip-local micro-panel alignment is value-invariant.
        let at = View {
            trans: !a_cols.trans,
            rows: a_cols.cols,
            cols: a_cols.rows,
            ..*a_cols
        };
        let a_elems = round_up(m, MR_) * KC.min(k);
        let b_elems = round_up(n, NR_) * KC.min(k);
        let (apack, bpack) = S::packs(scratch, a_elems, b_elems);
        let mut p0 = 0usize;
        while p0 < k {
            let kc = KC.min(k - p0);
            pack_a_g::<S, MR_>(a_rows, p0, kc, m, apack);
            pack_b_g::<S, NR_>(alpha, &at, p0, kc, n, bpack);
            for jb in 0..n.div_ceil(NR_) {
                let j0 = jb * NR_;
                let jw = NR_.min(n - j0);
                let bpanel = &bpack[jb * kc * NR_..(jb + 1) * kc * NR_];
                // First row tile that reaches the diagonal: rows
                // i0 + MR_ - 1 ≥ j0, in strip-local coordinates.
                for ib in (j0 / MR_)..m.div_ceil(MR_) {
                    let i0 = ib * MR_;
                    let ih = MR_.min(m - i0);
                    let apanel = &apack[ib * kc * MR_..(ib + 1) * kc * MR_];
                    let mut acc = [[A::ZERO; MR_]; NR_];
                    microkernel_g::<S, A, MR_, NR_>(kc, apanel, bpanel, &mut acc);
                    for (j, accj) in acc.iter().enumerate().take(jw) {
                        let gj = j0 + j;
                        // Store only the r ≥ c half (local coordinates).
                        let r0 = gj.saturating_sub(i0).min(ih);
                        let col = c.col_tail_mut(gj, i0 + r0, ih - r0);
                        for (ci, &v) in col.iter_mut().zip(&accj[r0..]) {
                            *ci = A::demote(A::promote(*ci) + v);
                        }
                    }
                }
            }
            p0 += kc;
        }
    }
    // Stored elements only: Σ_j (m − j) length-k MACs. Summed over every
    // strip of an update this equals `syrk_core_g`'s n(n+1)·k tick.
    scratch.tick(2 * (n * m - n * (n - 1) / 2) as u64 * k as u64);
}

/// Direct small-size SYRK: column-AXPY over the lower triangle for the
/// uniform modes, gathered wide-accumulating dots for the mixed mode.
fn syrk_direct_g<S: Scalar, A: Accum<S>>(
    alpha: S,
    a: &View<'_, S>,
    c: &mut MutView<'_, S>,
    scratch: &mut KernelScratch,
) {
    let (n, k) = (a.rows, a.cols);
    if !A::WIDENS {
        for j in 0..n {
            for p in 0..k {
                let ajp = alpha * a.at(j, p);
                // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
                if ajp == S::ZERO {
                    continue;
                }
                if !a.trans {
                    let base = (a.col + p) * a.ld + a.row;
                    let acol = &a.data[base..base + n];
                    let ccol = c.col_tail_mut(j, j, n - j);
                    for (ci, &ai) in ccol.iter_mut().zip(&acol[j..]) {
                        *ci += ai * ajp;
                    }
                } else {
                    let ccol = c.col_tail_mut(j, j, n - j);
                    for (r, ci) in ccol.iter_mut().enumerate() {
                        *ci += a.at(j + r, p) * ajp;
                    }
                }
            }
        }
    } else {
        for j in 0..n {
            let ccol = c.col_tail_mut(j, j, n - j);
            for (r, ci) in ccol.iter_mut().enumerate() {
                let i = j + r;
                let mut acc = A::ZERO;
                for p in 0..k {
                    acc += A::promote(a.at(i, p) * (alpha * a.at(j, p)));
                }
                *ci = A::demote(A::promote(*ci) + acc);
            }
        }
    }
    scratch.tick((n * (n + 1)) as u64 * k as u64);
}

/// In-block column width of the blocked TRSM (the GEMM update handles
/// everything left of the current block).
const TRSM_NB: usize = 32;

/// Blocked in-place TRSM: solves `X · Lᵀ = B` for `X`, overwriting the
/// viewed `b` block. `l` views the `n × n` lower triangle (`ld`-strided).
///
/// Column blocks of width [`TRSM_NB`] are updated against all previously
/// solved columns with one packed GEMM (`B[:,J] −= X[:,0..j0] · L[J,0..j0]ᵀ`)
/// and then finished with the small in-block forward substitution. The
/// bulk GEMM update accumulates in `A`; the in-block substitution operates
/// in storage precision (its recurrence is inherently sequential in the
/// stored values).
#[allow(clippy::too_many_arguments)]
pub(crate) fn trsm_core_g<S: Scalar, A: Accum<S>, const MR_: usize, const NR_: usize>(
    l: &View<'_, S>,
    bdata: &mut [S],
    bld: usize,
    brow: usize,
    bcol: usize,
    m: usize,
    n: usize,
    scratch: &mut KernelScratch,
) {
    debug_assert_eq!(l.rows, n);
    debug_assert_eq!(l.cols, n);
    let mut j0 = 0usize;
    while j0 < n {
        let nb = TRSM_NB.min(n - j0);
        if j0 > 0 {
            // Split the viewed columns at j0: left of the split is solved
            // (read-only), the current block is written.
            let (done, cur) = bdata.split_at_mut((bcol + j0) * bld);
            let x = View::raw(done, bld, brow, bcol, m, j0, false);
            let lt = View::raw(l.data, l.ld, l.row + j0, l.col, j0, nb, true);
            let mut cview = MutView::raw(cur, bld, brow, 0, m, nb);
            gemm_core_g::<S, A, MR_, NR_>(-S::ONE, &x, &lt, &mut cview, scratch);
        }
        // In-block forward substitution (columns j0..j0+nb).
        for j in j0..j0 + nb {
            for p in j0..j {
                let ljp = l.at(j, p);
                // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
                if ljp == S::ZERO {
                    continue;
                }
                let (done, cur) = bdata.split_at_mut((bcol + j) * bld);
                let src = &done[(bcol + p) * bld + brow..(bcol + p) * bld + brow + m];
                let dst = &mut cur[brow..brow + m];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d -= s * ljp;
                }
            }
            let d = l.at(j, j);
            let base = (bcol + j) * bld + brow;
            let col = &mut bdata[base..base + m];
            col.iter_mut().for_each(|x| *x /= d);
        }
        // The GEMM update metered itself; this covers the in-block solve.
        scratch.tick((m * nb * nb) as u64);
        j0 += nb;
    }
}

/// f64 instantiation of [`gemm_core_g`] (the historic kernel stack).
pub(crate) fn gemm_core(
    alpha: f64,
    a: &View<'_>,
    b: &View<'_>,
    c: &mut MutView<'_>,
    scratch: &mut KernelScratch,
) {
    gemm_core_g::<f64, f64, MR, NR>(alpha, a, b, c, scratch);
}

/// f64 instantiation of [`syrk_core_g`].
pub(crate) fn syrk_core(
    alpha: f64,
    a: &View<'_>,
    c: &mut MutView<'_>,
    scratch: &mut KernelScratch,
) {
    syrk_core_g::<f64, f64, MR, NR>(alpha, a, c, scratch);
}

/// f64 instantiation of [`trsm_core_g`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn trsm_core(
    l: &View<'_>,
    bdata: &mut [f64],
    bld: usize,
    brow: usize,
    bcol: usize,
    m: usize,
    n: usize,
    scratch: &mut KernelScratch,
) {
    trsm_core_g::<f64, f64, MR, NR>(l, bdata, bld, brow, bcol, m, n, scratch);
}

/// Public-surface helper: `c = alpha·opa(a)·opb(b) + beta·c` entirely on
/// whole matrices (the [`crate::gemm`] body).
pub(crate) fn gemm_mats(
    alpha: f64,
    a: &View<'_>,
    b: &View<'_>,
    beta: f64,
    c: &mut Mat,
    scratch: &mut KernelScratch,
) {
    let mut cv = MutView::of(c);
    cv.scale(beta);
    gemm_core(alpha, a, b, &mut cv, scratch);
}

/// Runs a closure with the mode's monomorphized kernel instantiation over
/// f32 storage: `F32` gets the uniform 8×4 engine, `F32F64` (and, for
/// totality, `F64`) the mixed 4×4 engine with f64 accumulation.
macro_rules! with_f32_engine {
    ($mode:expr, $body:ident ( $($arg:expr),* $(,)? )) => {
        match $mode {
            NumericMode::F32 => $body::<f32, f32, MR_F32, NR_F32>($($arg),*),
            NumericMode::F32F64 | NumericMode::F64 => $body::<f32, f64, MR, NR>($($arg),*),
        }
    };
}

/// f32-storage GEMM on raw column-major slices:
/// `c = alpha·op(a)·op(b) + beta·c`, where `a` is stored `m × k`
/// (`k × m` when `a_trans`) and `b` is stored `k × n` (`n × k` when
/// `b_trans`), each with leading dimension equal to its storage rows.
///
/// The [`NumericMode`] selects the engine: [`NumericMode::F32`] computes
/// and accumulates in f32 with 8×4 tiles; [`NumericMode::F32F64`] (and
/// `F64`, for which this is the widest available f32-storage engine)
/// multiplies in f32 and accumulates in f64 with 4×4 tiles.
///
/// # Panics
///
/// Panics if the slice lengths don't cover the stated shapes.
#[allow(clippy::too_many_arguments)]
pub fn gemm_f32(
    mode: NumericMode,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    beta: f32,
    c: &mut [f32],
    scratch: &mut KernelScratch,
) {
    let a_ld = if a_trans { k } else { m };
    let b_ld = if b_trans { n } else { k };
    assert!(
        a.len() >= a_ld * if a_trans { m } else { k },
        "gemm_f32 a too short"
    );
    assert!(
        b.len() >= b_ld * if b_trans { k } else { n },
        "gemm_f32 b too short"
    );
    assert!(c.len() >= m * n, "gemm_f32 c too short");
    let av = View::raw(a, a_ld, 0, 0, m, k, a_trans);
    let bv = View::raw(b, b_ld, 0, 0, k, n, b_trans);
    let mut cv = MutView::raw(c, m, 0, 0, m, n);
    cv.scale(beta);
    with_f32_engine!(mode, gemm_core_g(alpha, &av, &bv, &mut cv, scratch));
}

/// f32-storage SYRK on raw column-major slices:
/// `c_lower = beta·c_lower + alpha·a·aᵀ` with `a` stored `n × k` and `c`
/// `n × n`, touching only `i ≥ j`. Engine selection as in [`gemm_f32`].
///
/// # Panics
///
/// Panics if the slice lengths don't cover the stated shapes.
pub fn syrk_lower_f32(
    mode: NumericMode,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    beta: f32,
    c: &mut [f32],
    scratch: &mut KernelScratch,
) {
    assert!(a.len() >= n * k, "syrk_lower_f32 a too short");
    assert!(c.len() >= n * n, "syrk_lower_f32 c too short");
    let av = View::raw(a, n, 0, 0, n, k, false);
    let mut cv = MutView::raw(c, n, 0, 0, n, n);
    cv.scale_lower(beta);
    with_f32_engine!(mode, syrk_core_g(alpha, &av, &mut cv, scratch));
}

/// f32-storage TRSM on raw column-major slices: solves `x·lᵀ = b` in
/// place, with `l` a stored `n × n` lower triangle and `b` stored `m × n`.
/// Engine selection as in [`gemm_f32`].
///
/// # Panics
///
/// Panics if the slice lengths don't cover the stated shapes.
pub fn trsm_right_lower_transpose_f32(
    mode: NumericMode,
    m: usize,
    n: usize,
    l: &[f32],
    b: &mut [f32],
    scratch: &mut KernelScratch,
) {
    if n == 0 || m == 0 {
        return;
    }
    assert!(l.len() >= n * n, "trsm_f32 l too short");
    assert!(b.len() >= m * n, "trsm_f32 b too short");
    let lv = View::raw(l, n, 0, 0, n, n, false);
    with_f32_engine!(mode, trsm_core_g(&lv, b, m, 0, 0, m, n, scratch));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(rows: usize, cols: usize, seed: f64) -> Mat {
        Mat::from_fn(rows, cols, |r, c| {
            ((r * 7 + c * 3) % 11) as f64 * 0.25 - seed
        })
    }

    fn naive(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                for p in 0..a.cols() {
                    c[(i, j)] += a[(i, p)] * b[(p, j)];
                }
            }
        }
        c
    }

    #[test]
    fn packed_gemm_matches_naive_with_tails() {
        let mut scratch = KernelScratch::new();
        for (m, n, k) in [(33, 29, 37), (64, 64, 64), (5, 70, 100), (70, 5, 300)] {
            let a = filled(m, k, 0.5);
            let b = filled(k, n, 1.5);
            let want = naive(&a, &b);
            let mut c = Mat::zeros(m, n);
            gemm_mats(
                1.0,
                &View::of(&a, false),
                &View::of(&b, false),
                0.0,
                &mut c,
                &mut scratch,
            );
            for i in 0..m {
                for j in 0..n {
                    assert!(
                        (c[(i, j)] - want[(i, j)]).abs() < 1e-9,
                        "({m},{n},{k}) at ({i},{j})"
                    );
                }
            }
        }
        assert!(scratch.flops() > 0);
        assert!(scratch.high_water_elems() > 0);
    }

    #[test]
    fn transposed_views_match_explicit_transposes() {
        let mut scratch = KernelScratch::new();
        let a = filled(40, 33, 0.25);
        let b = filled(27, 40, 2.0);
        let want = naive(&a.transposed(), &b.transposed());
        let mut c = Mat::zeros(33, 27);
        gemm_mats(
            1.0,
            &View::of(&a, true),
            &View::of(&b, true),
            0.0,
            &mut c,
            &mut scratch,
        );
        for i in 0..33 {
            for j in 0..27 {
                assert!((c[(i, j)] - want[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dispatch_is_size_keyed_and_deterministic() {
        assert_eq!(gemm_path(10, 10, 0), GemmPath::Noop);
        assert_eq!(gemm_path(0, 4, 4), GemmPath::Noop);
        assert_eq!(gemm_path(3, 3, 3), GemmPath::DirectK3);
        assert_eq!(gemm_path(6, 6, 6), GemmPath::DirectK6);
        assert_eq!(gemm_path(12, 12, 12), GemmPath::Direct);
        assert_eq!(gemm_path(64, 64, 64), GemmPath::Packed);
        // The table is a pure function of shape.
        for _ in 0..3 {
            assert_eq!(gemm_path(48, 48, 48), gemm_path(48, 48, 48));
        }
    }

    #[test]
    fn scratch_growth_is_monotonic_and_reused() {
        let mut scratch = KernelScratch::new();
        let a = filled(64, 64, 0.0);
        let b = filled(64, 64, 1.0);
        let mut c = Mat::zeros(64, 64);
        gemm_mats(
            1.0,
            &View::of(&a, false),
            &View::of(&b, false),
            0.0,
            &mut c,
            &mut scratch,
        );
        let grows = scratch.grow_events();
        let high = scratch.high_water_elems();
        assert!(grows > 0);
        for _ in 0..4 {
            gemm_mats(
                1.0,
                &View::of(&a, false),
                &View::of(&b, false),
                0.0,
                &mut c,
                &mut scratch,
            );
        }
        assert_eq!(scratch.grow_events(), grows, "warm arena must not grow");
        assert_eq!(scratch.high_water_elems(), high);
    }

    #[test]
    fn presized_scratch_never_grows() {
        let n = 96;
        let mut scratch = KernelScratch::with_capacity(pack_elems_bound(n));
        let base = scratch.grow_events();
        let a = filled(n, n, 0.0);
        let b = filled(n, n, 1.0);
        let mut c = Mat::zeros(n, n);
        gemm_mats(
            1.0,
            &View::of(&a, false),
            &View::of(&b, false),
            0.0,
            &mut c,
            &mut scratch,
        );
        assert_eq!(scratch.grow_events(), base);
    }

    #[test]
    fn presized_scratch_never_grows_in_narrow_modes() {
        let n = 96;
        for mode in [NumericMode::F32, NumericMode::F32F64] {
            let mut scratch = KernelScratch::new();
            scratch.reserve_mode(mode, pack_elems_bound_mode(n, mode), n * n);
            let base = scratch.grow_events();
            let a: Vec<f32> = (0..n * n)
                .map(|i| ((i * 7) % 11) as f32 * 0.25 - 0.5)
                .collect();
            let b: Vec<f32> = (0..n * n)
                .map(|i| ((i * 3) % 13) as f32 * 0.25 - 1.0)
                .collect();
            let mut c = vec![0.0f32; n * n];
            gemm_f32(
                mode,
                n,
                n,
                n,
                1.0,
                &a,
                false,
                &b,
                false,
                0.0,
                &mut c,
                &mut scratch,
            );
            assert_eq!(scratch.grow_events(), base, "{mode} pre-sized arena grew");
        }
    }

    #[test]
    fn flop_meter_matches_shape() {
        let mut scratch = KernelScratch::new();
        let a = filled(8, 4, 0.0);
        let b = filled(4, 8, 1.0);
        let mut c = Mat::zeros(8, 8);
        gemm_mats(
            1.0,
            &View::of(&a, false),
            &View::of(&b, false),
            0.0,
            &mut c,
            &mut scratch,
        );
        assert_eq!(scratch.take_flops(), 2 * 8 * 8 * 4);
        assert_eq!(scratch.flops(), 0);
    }

    #[test]
    fn flop_meter_is_mode_independent() {
        let n = 40;
        let a: Vec<f32> = (0..n * n)
            .map(|i| ((i * 5) % 9) as f32 * 0.5 - 1.0)
            .collect();
        let b: Vec<f32> = (0..n * n)
            .map(|i| ((i * 11) % 7) as f32 * 0.5 - 1.5)
            .collect();
        let mut flops = Vec::new();
        for mode in [NumericMode::F32, NumericMode::F32F64] {
            let mut scratch = KernelScratch::new();
            let mut c = vec![0.0f32; n * n];
            gemm_f32(
                mode,
                n,
                n,
                n,
                1.0,
                &a,
                false,
                &b,
                false,
                0.0,
                &mut c,
                &mut scratch,
            );
            flops.push(scratch.take_flops());
        }
        assert_eq!(flops[0], flops[1]);
        assert_eq!(flops[0], 2 * (n * n * n) as u64);
    }

    #[test]
    fn f32_gemm_matches_f64_within_width_tolerance() {
        let mut scratch = KernelScratch::new();
        for (m, n, k) in [(33, 29, 37), (64, 64, 64), (8, 40, 300)] {
            let a = filled(m, k, 0.5);
            let b = filled(k, n, 1.5);
            let want = naive(&a, &b);
            let a32: Vec<f32> = a.as_slice().iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b.as_slice().iter().map(|&v| v as f32).collect();
            for mode in [NumericMode::F32, NumericMode::F32F64] {
                let mut c = vec![0.0f32; m * n];
                gemm_f32(
                    mode,
                    m,
                    n,
                    k,
                    1.0,
                    &a32,
                    false,
                    &b32,
                    false,
                    0.0,
                    &mut c,
                    &mut scratch,
                );
                let scale = (k as f64).sqrt() * 8.0;
                for j in 0..n {
                    for i in 0..m {
                        let got = c[j * m + i] as f64;
                        let err = (got - want[(i, j)]).abs();
                        assert!(
                            err <= scale * f32::EPSILON as f64 * want[(i, j)].abs().max(8.0),
                            "{mode} ({m},{n},{k}) at ({i},{j}): got {got}, want {}",
                            want[(i, j)]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn f32_engines_are_deterministic_per_mode() {
        let (m, n, k) = (48, 36, 52);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 13) % 17) as f32 * 0.125 - 1.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 7) % 19) as f32 * 0.125 - 1.0)
            .collect();
        for mode in [NumericMode::F32, NumericMode::F32F64] {
            let mut c1 = vec![0.0f32; m * n];
            let mut c2 = vec![0.0f32; m * n];
            let mut s1 = KernelScratch::new();
            let mut s2 = KernelScratch::with_capacity(pack_elems_bound(64));
            s2.reserve_mode(mode, pack_elems_bound_mode(64, mode), 0);
            gemm_f32(
                mode, m, n, k, 1.0, &a, false, &b, false, 0.0, &mut c1, &mut s1,
            );
            gemm_f32(
                mode, m, n, k, 1.0, &a, false, &b, false, 0.0, &mut c2, &mut s2,
            );
            assert!(
                c1.iter().zip(&c2).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{mode} cold vs warm arena diverged"
            );
        }
    }

    #[test]
    fn mixed_mode_accumulates_wider_than_f32() {
        // A contraction designed to lose low bits under f32 accumulation:
        // many small contributions onto a large running sum. The mixed
        // engine must land closer to the f64 result than the pure-f32 one.
        let k = 4096;
        let a: Vec<f32> = (0..k).map(|i| if i == 0 { 1024.0 } else { 1e-4 }).collect();
        let b: Vec<f32> = vec![1.0; k];
        let want: f64 = a.iter().map(|&x| x as f64).sum();
        let run = |mode: NumericMode| {
            let mut c = vec![0.0f32; 1];
            let mut scratch = KernelScratch::new();
            // m = n = 1 forces the gathered direct path; use larger m to hit
            // the packed path instead.
            let mut cp = vec![0.0f32; 32 * 32];
            // Column-major 32 × k: every row of column p holds a[p].
            let ap: Vec<f32> = (0..32 * k).map(|i| a[i / 32]).collect();
            let bp: Vec<f32> = (0..k * 32).map(|i| b[i % k]).collect();
            gemm_f32(
                mode,
                32,
                32,
                k,
                1.0,
                &ap,
                false,
                &bp,
                false,
                0.0,
                &mut cp,
                &mut scratch,
            );
            c[0] = cp[0];
            c[0] as f64
        };
        let err32 = (run(NumericMode::F32) - want).abs();
        let err_mixed = (run(NumericMode::F32F64) - want).abs();
        assert!(
            err_mixed <= err32,
            "mixed accumulation must not be worse: mixed {err_mixed} vs f32 {err32}"
        );
        // And the mixed error is at the once-per-KC-slab rounding scale
        // (the accumulator tile is demoted into C after each packed slab),
        // not the once-per-add scale of pure f32.
        let slabs = k.div_ceil(KC) as f64;
        assert!(err_mixed <= want * f32::EPSILON as f64 * (slabs + 1.0));
    }

    #[test]
    fn pack_bounds_cover_both_widths() {
        for n in [1, 3, 7, 8, 9, 31, 48, 200, 500] {
            assert_eq!(
                pack_elems_bound_mode(n, NumericMode::F64),
                pack_elems_bound(n)
            );
            let narrow = pack_elems_bound_mode(n, NumericMode::F32);
            assert_eq!(narrow, pack_elems_bound_mode(n, NumericMode::F32F64));
            // The 8-tall tiles never need less than the 4-tall ones.
            assert!(narrow >= pack_elems_bound(n));
        }
    }
}
