//! Runtime-selectable numeric precision for the dense kernel stack.
//!
//! The paper's COMP accelerator is an FP32 4×4 systolic array (§4.2.1),
//! while a host CPU naturally computes in f64 — so the precision trade at
//! the heart of the co-design is a *runtime mode*, not a compile-time
//! fork (the CICC'22 reconfigurable-localization accelerator makes the
//! same choice). A [`NumericMode`] selects which monomorphized kernel
//! stack the factorization runs on:
//!
//! - [`F64`](NumericMode::F64): full double precision, 4×4 microkernel
//!   tiles — the reference behavior, bit-identical to the pre-mode stack;
//! - [`F32`](NumericMode::F32): f32 storage, multiplies *and*
//!   accumulation, 8×4 tiles — models the systolic array's narrow
//!   datapath and doubles the scalars per vector register;
//! - [`F32F64`](NumericMode::F32F64): f32 storage and multiplies with f64
//!   accumulation, 4×4 tiles — the classic wide-accumulator MAC, paying
//!   one rounding per store instead of one per add.
//!
//! Whatever the mode, determinism guarantees hold *within* it: the same
//! mode produces bit-identical results serial vs parallel and across
//! thread counts, because kernel dispatch stays a pure function of shape.

use std::fmt;

/// Environment variable selecting the numeric mode (`f64`, `f32` or
/// `f32f64`); unset or unrecognized values mean [`NumericMode::F64`].
pub const NUMERIC_ENV: &str = "SUPERNOVA_NUMERIC";

/// Runtime-selectable precision of the dense numeric stack.
///
/// Threaded from `ServeConfig` / `SolverEngine` through the executor's
/// per-worker scratch arenas down to the packed microkernels; recorded in
/// step/trace artifacts so replays can't silently mix precisions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NumericMode {
    /// Full f64 storage and arithmetic (4×4 microkernel tiles).
    #[default]
    F64,
    /// f32 storage, multiplies and accumulation (8×4 microkernel tiles).
    F32,
    /// Mixed precision: f32 storage and multiplies, f64 accumulation
    /// (4×4 microkernel tiles).
    F32F64,
}

impl NumericMode {
    /// Every mode, in wire-byte order.
    pub const ALL: [NumericMode; 3] = [NumericMode::F64, NumericMode::F32, NumericMode::F32F64];

    /// Canonical lowercase name (`"f64"`, `"f32"`, `"f32f64"`), the same
    /// spelling [`NUMERIC_ENV`] accepts.
    pub fn as_str(self) -> &'static str {
        match self {
            NumericMode::F64 => "f64",
            NumericMode::F32 => "f32",
            NumericMode::F32F64 => "f32f64",
        }
    }

    /// Stable numeric identity for counters and benchmark artifacts
    /// (`F64 = 0`, `F32 = 1`, `F32F64 = 2`).
    pub fn as_u64(self) -> u64 {
        self.as_byte() as u64
    }

    /// Stable wire byte for checkpoint/trace headers.
    pub fn as_byte(self) -> u8 {
        match self {
            NumericMode::F64 => 0,
            NumericMode::F32 => 1,
            NumericMode::F32F64 => 2,
        }
    }

    /// Decodes a wire byte; unknown bytes are returned as the error so
    /// codecs can surface a typed unknown-mode failure instead of
    /// panicking or guessing.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized byte itself.
    pub fn from_byte(b: u8) -> Result<Self, u8> {
        match b {
            0 => Ok(NumericMode::F64),
            1 => Ok(NumericMode::F32),
            2 => Ok(NumericMode::F32F64),
            other => Err(other),
        }
    }

    /// Parses a mode name as spelled by [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f64" => Some(NumericMode::F64),
            "f32" => Some(NumericMode::F32),
            "f32f64" => Some(NumericMode::F32F64),
            _ => None,
        }
    }

    /// Reads [`NUMERIC_ENV`]; unset or unrecognized values default to
    /// [`NumericMode::F64`] so existing workflows are unaffected.
    pub fn from_env() -> Self {
        std::env::var(NUMERIC_ENV)
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or_default()
    }

    /// Whether the mode stores fronts and pack panels in f32 (and thus
    /// needs the f32 scratch arenas).
    pub fn is_narrow(self) -> bool {
        !matches!(self, NumericMode::F64)
    }
}

impl fmt::Display for NumericMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip_and_unknown() {
        for m in NumericMode::ALL {
            assert_eq!(NumericMode::from_byte(m.as_byte()), Ok(m));
            assert_eq!(m.as_u64(), m.as_byte() as u64);
            assert_eq!(NumericMode::parse(m.as_str()), Some(m));
        }
        assert_eq!(NumericMode::from_byte(3), Err(3));
        assert_eq!(NumericMode::from_byte(255), Err(255));
    }

    #[test]
    fn parse_rejects_unknown_spellings() {
        assert_eq!(NumericMode::parse("F32"), None);
        assert_eq!(NumericMode::parse("mixed"), None);
        assert_eq!(NumericMode::parse(""), None);
    }

    #[test]
    fn default_is_f64() {
        assert_eq!(NumericMode::default(), NumericMode::F64);
        assert!(!NumericMode::F64.is_narrow());
        assert!(NumericMode::F32.is_narrow());
        assert!(NumericMode::F32F64.is_narrow());
    }
}
