//! Unblocked reference kernels — the pre-optimization implementations.
//!
//! These are the naive triple-loop kernels the blocked, packed layer in
//! [`crate::kernels`] replaced. They are kept as the *oracle*: property
//! tests check blocked-vs-reference agreement on odd shapes, tails and
//! alpha/beta edge cases, and `kernel_bench` measures the blocked layer's
//! speedup against them (the `BENCH_kernels.json` baseline). They are not
//! called anywhere on a hot path.

use crate::{Mat, Transpose};

fn at(op: Transpose, m: &Mat, r: usize, c: usize) -> f64 {
    match op {
        Transpose::No => m[(r, c)],
        Transpose::Yes => m[(c, r)],
    }
}

fn dims(op: Transpose, m: &Mat) -> (usize, usize) {
    match op {
        Transpose::No => (m.rows(), m.cols()),
        Transpose::Yes => (m.cols(), m.rows()),
    }
}

/// Reference `c = alpha * op_a(a) * op_b(b) + beta * c` (column-AXPY for
/// the untransposed-`a` case, strided triple loop otherwise — the exact
/// seed implementation).
///
/// # Panics
///
/// Panics if the operand shapes are incompatible with `c`.
pub fn gemm(
    alpha: f64,
    a: &Mat,
    op_a: Transpose,
    b: &Mat,
    op_b: Transpose,
    beta: f64,
    c: &mut Mat,
) {
    let (m, k) = dims(op_a, a);
    let (kb, n) = dims(op_b, b);
    assert_eq!(k, kb, "gemm inner dimension mismatch: {k} vs {kb}");
    assert_eq!(c.rows(), m, "gemm output row mismatch");
    assert_eq!(c.cols(), n, "gemm output column mismatch");
    // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
    if beta != 1.0 {
        // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    if op_a == Transpose::No {
        for j in 0..n {
            for p in 0..k {
                let bpj = alpha * at(op_b, b, p, j);
                // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
                if bpj == 0.0 {
                    continue;
                }
                let acol = a.col(p);
                let ccol = c.col_mut(j);
                for i in 0..m {
                    ccol[i] += acol[i] * bpj;
                }
            }
        }
    } else {
        for j in 0..n {
            for i in 0..m {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += at(op_a, a, i, p) * at(op_b, b, p, j);
                }
                c[(i, j)] += alpha * acc;
            }
        }
    }
}

/// Reference `c_lower = beta * c_lower + alpha * a * aᵀ`, touching only
/// `i >= j` (the seed column-AXPY implementation).
///
/// # Panics
///
/// Panics if `c` is not square with `c.rows() == a.rows()`.
pub fn syrk_lower(alpha: f64, a: &Mat, beta: f64, c: &mut Mat) {
    assert_eq!(c.rows(), c.cols(), "syrk output must be square");
    assert_eq!(c.rows(), a.rows(), "syrk dimension mismatch");
    let n = c.rows();
    let k = a.cols();
    for j in 0..n {
        // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
        if beta != 1.0 {
            let ccol = c.col_mut(j);
            for i in j..n {
                ccol[i] *= beta;
            }
        }
        for p in 0..k {
            let ajp = alpha * a[(j, p)];
            // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
            if ajp == 0.0 {
                continue;
            }
            let acol = a.col(p);
            let ccol = c.col_mut(j);
            for i in j..n {
                ccol[i] += acol[i] * ajp;
            }
        }
    }
}

/// Reference triangular solve `x * lᵀ = b` overwriting `b` (the seed
/// column-by-column forward substitution).
///
/// # Panics
///
/// Panics if `l` is not square or `b.cols() != l.rows()`.
pub fn trsm_right_lower_transpose(l: &Mat, b: &mut Mat) {
    assert_eq!(l.rows(), l.cols(), "trsm triangle must be square");
    assert_eq!(b.cols(), l.rows(), "trsm dimension mismatch");
    let n = l.rows();
    let m = b.rows();
    for j in 0..n {
        for p in 0..j {
            let ljp = l[(j, p)];
            // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
            if ljp == 0.0 {
                continue;
            }
            let (done, cur) = split_two_cols(b, p, j);
            for i in 0..m {
                cur[i] -= done[i] * ljp;
            }
        }
        let d = l[(j, j)];
        let col = b.col_mut(j);
        for i in 0..m {
            col[i] /= d;
        }
    }
}

/// Borrows two distinct columns of `m` (`first < second`).
fn split_two_cols(m: &mut Mat, first: usize, second: usize) -> (&[f64], &mut [f64]) {
    debug_assert!(first < second);
    let rows = m.rows();
    let (lo, hi) = m.as_mut_slice().split_at_mut(second * rows);
    (&lo[first * rows..first * rows + rows], &mut hi[..rows])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_gemm_identity() {
        let a = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut c = Mat::zeros(2, 2);
        gemm(
            1.0,
            &a,
            Transpose::No,
            &Mat::identity(2),
            Transpose::No,
            0.0,
            &mut c,
        );
        assert_eq!(c, a);
    }

    #[test]
    fn reference_trsm_inverts() {
        let l = Mat::from_rows(2, 2, &[2.0, 0.0, 1.0, 4.0]);
        let x = Mat::from_rows(1, 2, &[3.0, 5.0]);
        let mut b = Mat::zeros(1, 2);
        gemm(1.0, &x, Transpose::No, &l, Transpose::Yes, 0.0, &mut b);
        trsm_right_lower_transpose(&l, &mut b);
        assert!((b[(0, 0)] - 3.0).abs() < 1e-12);
        assert!((b[(0, 1)] - 5.0).abs() < 1e-12);
    }
}
