//! Dense linear-algebra kernels for the SuperNoVA SLAM backend.
//!
//! This crate is the numeric substrate of the reproduction: a small,
//! dependency-free set of column-major dense kernels that the sparse
//! multifrontal factorization (`supernova-sparse`), the factor-graph
//! linearization and the hardware timing model are all built on.
//!
//! The kernel set mirrors what the paper's COMP accelerator executes
//! (Figure 3): GEMM, symmetric rank-k updates, triangular solves and dense
//! Cholesky factorization, plus the partial (frontal) factorization used by
//! supernodal multifrontal methods (§3.2 of the paper).
//!
//! # Example
//!
//! ```
//! use supernova_linalg::{Mat, cholesky_in_place, solve_lower, solve_lower_transpose};
//!
//! // Solve H x = b for a small SPD system via H = L Lᵀ.
//! let h = Mat::from_rows(3, 3, &[4.0, 2.0, 2.0, 2.0, 5.0, 1.0, 2.0, 1.0, 6.0]);
//! let mut l = h.clone();
//! cholesky_in_place(&mut l).unwrap();
//! let mut x = vec![2.0, -1.0, 3.0];
//! solve_lower(&l, &mut x);
//! solve_lower_transpose(&l, &mut x);
//! let r = h.matvec(&x);
//! assert!((r[0] - 2.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod blas;
mod cholesky;
pub mod kernels;
mod matrix;
pub mod mode;
pub mod ops;
pub mod reference;
pub mod rng;
pub mod split;
mod triangular;

pub use blas::{
    axpy, dot, gemm, gemm_scratch, gemv, norm2, norm_inf, syrk_lower, syrk_lower_scratch,
    trsm_right_lower_transpose, trsm_right_lower_transpose_scratch, Transpose,
};
pub use cholesky::{
    cholesky_in_place, cholesky_in_place_scratch, partial_cholesky_in_place,
    partial_cholesky_scratch, partial_cholesky_scratch_mode, NotPositiveDefiniteError,
};
pub use kernels::{
    gemm_f32, gemm_path, pack_elems_bound, pack_elems_bound_mode, syrk_lower_f32,
    trsm_right_lower_transpose_f32, Accum, GemmPath, KernelScratch, Scalar,
};
pub use matrix::Mat;
pub use mode::{NumericMode, NUMERIC_ENV};
pub use triangular::{solve_lower, solve_lower_transpose};

/// Convenience result alias for fallible factorizations in this crate.
pub type Result<T> = std::result::Result<T, NotPositiveDefiniteError>;
