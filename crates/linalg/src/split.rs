//! Strip-decomposed partial Cholesky: the panel / tile entry points behind
//! the execution plan's intra-front split (DESIGN.md §16).
//!
//! [`partial_cholesky_scratch_mode`](crate::partial_cholesky_scratch_mode)
//! factors a front as a sequence of `NB`-wide panel steps, each followed by
//! one trailing SYRK over the whole remaining lower triangle. The split
//! decomposes the *storage* into column strips (width a multiple of
//! [`SPLIT_NB`], leading dimension = the front dimension, so a strip's
//! memory is byte-identical to the corresponding columns of the full
//! column-major front) and the *work* into:
//!
//! - a serial **panel** step per `NB` panel ([`split_panel_g`]): unblocked
//!   Cholesky of the diagonal block, blocked TRSM of everything below it,
//!   and the trailing update restricted to the panel's own strip — all
//!   three read and write only that strip;
//! - an independent **tile** step per later strip ([`split_tile_g`]): the
//!   trailing update restricted to that strip's columns, which *reads*
//!   only the panel strip (both GEMM operands are rows of the panel) and
//!   *writes* only the destination strip — the disjointness the plan
//!   certificate proves.
//!
//! Bit-identity with the unsplit driver rests on three kernel facts,
//! each enforced where it lives: the packed microkernel's per-element
//! accumulation order depends only on the packed depth (never on
//! micro-panel alignment), the direct SYRK path is per-column independent,
//! and path selection is shape-keyed — so every entry point here takes the
//! path decision from the **unsplit** update shape
//! ([`update_path_is_packed`]), not from its own strip shape.

use crate::cholesky::cholesky_unblocked_offs_g;
use crate::kernels::{
    syrk_strip_g, trsm_core_g, Accum, KernelScratch, MutView, Scalar, View, CHOL_NB,
    DIRECT_FLOP_CUTOFF, MR, MR_F32, NR, NR_F32,
};
use crate::{NotPositiveDefiniteError, NumericMode};

/// Panel width of the blocked Cholesky driver; strip widths must be
/// multiples of this so every panel lies inside exactly one strip.
pub const SPLIT_NB: usize = CHOL_NB;

/// Whether the unsplit trailing update after the panel at columns
/// `[k, k + b)` of a `total`-wide front dispatches to the packed kernel
/// path. Split executions must force this decision per panel — the strip
/// shapes alone would flip small updates between paths and change the
/// summation order.
pub fn update_path_is_packed(total: usize, k: usize, b: usize) -> bool {
    let below = total - k - b;
    below * below * b > DIRECT_FLOP_CUTOFF
}

/// One serial panel step of the strip-decomposed factorization, entirely
/// within the strip that stores columns `[col0, …)` of a `total × total`
/// front (leading dimension `ld`): unblocked Cholesky of the `b × b`
/// diagonal block at front column `k`, blocked TRSM of the `below × b`
/// block under it, then the trailing update restricted to this strip's own
/// columns `[k + b, tail_end)` (empty except for the last panel of a
/// strip).
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] with the front-global pivot column
/// (matching the unsplit driver) when the diagonal block is not positive
/// definite in this precision.
#[allow(clippy::too_many_arguments)]
pub fn split_panel_g<S: Scalar, A: Accum<S>, const MR_: usize, const NR_: usize>(
    strip: &mut [S],
    ld: usize,
    total: usize,
    col0: usize,
    k: usize,
    b: usize,
    tail_end: usize,
    scratch: &mut KernelScratch,
) -> Result<(), NotPositiveDefiniteError> {
    debug_assert!(col0 <= k && k + b <= total, "panel outside front");
    debug_assert!(k + b <= tail_end && tail_end <= total, "bad tail range");
    cholesky_unblocked_offs_g::<S, A>(strip, ld, k, k - col0, b, k)?;
    let below = total - k - b;
    if below > 0 {
        // Solve the full subcolumn against a packed copy of the diagonal
        // block, exactly as the unsplit driver does.
        let mut lbuf = S::take_panel(scratch, b * b);
        for j in 0..b {
            let base = (k - col0 + j) * ld + k;
            lbuf[j * b..(j + 1) * b].copy_from_slice(&strip[base..base + b]);
        }
        let lview = View::raw(&lbuf, b, 0, 0, b, b, false);
        trsm_core_g::<S, A, MR_, NR_>(&lview, strip, ld, k + b, k - col0, below, b, scratch);
        S::put_panel(scratch, lbuf);

        let tw = tail_end - (k + b);
        if tw > 0 {
            // Intra-strip slice of the trailing update: split the strip at
            // the panel/tail column boundary for aliasing-free views, as
            // the unsplit driver splits the whole front.
            let (left, right) = strip.split_at_mut((k + b - col0) * ld);
            let a_rows = View::raw(left, ld, k + b, k - col0, below, b, false);
            let a_cols = View::raw(left, ld, k + b, k - col0, tw, b, false);
            let mut cview = MutView::raw(right, ld, k + b, 0, below, tw);
            syrk_strip_g::<S, A, MR_, NR_>(
                -S::ONE,
                &a_rows,
                &a_cols,
                &mut cview,
                update_path_is_packed(total, k, b),
                scratch,
            );
        }
    }
    Ok(())
}

/// One independent tile step of the strip-decomposed trailing update: the
/// columns `[qcol0, qcol0 + qcols)` slice of the update that follows the
/// panel at front columns `[k, k + b)`. Reads only `panel` (the strip
/// storing columns `[pcol0, …)`, which holds both GEMM operands) and
/// writes only `dst` (the strip storing columns `[qcol0, …)`).
#[allow(clippy::too_many_arguments)]
pub fn split_tile_g<S: Scalar, A: Accum<S>, const MR_: usize, const NR_: usize>(
    panel: &[S],
    dst: &mut [S],
    ld: usize,
    total: usize,
    pcol0: usize,
    k: usize,
    b: usize,
    qcol0: usize,
    qcols: usize,
    scratch: &mut KernelScratch,
) {
    debug_assert!(pcol0 <= k, "panel outside its strip");
    debug_assert!(qcol0 >= k + b, "tile must lie strictly after the panel");
    debug_assert!(qcol0 + qcols <= total, "tile outside front");
    if qcols == 0 {
        return;
    }
    let m = total - qcol0;
    let a_rows = View::raw(panel, ld, qcol0, k - pcol0, m, b, false);
    let a_cols = View::raw(panel, ld, qcol0, k - pcol0, qcols, b, false);
    let mut cview = MutView::raw(dst, ld, qcol0, 0, m, qcols);
    syrk_strip_g::<S, A, MR_, NR_>(
        -S::ONE,
        &a_rows,
        &a_cols,
        &mut cview,
        update_path_is_packed(total, k, b),
        scratch,
    );
}

/// f64-mode [`split_panel_g`] (the `NumericMode::F64` engine).
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] with the front-global pivot column
/// when the diagonal block is not positive definite.
#[allow(clippy::too_many_arguments)]
pub fn split_panel_f64(
    strip: &mut [f64],
    ld: usize,
    total: usize,
    col0: usize,
    k: usize,
    b: usize,
    tail_end: usize,
    scratch: &mut KernelScratch,
) -> Result<(), NotPositiveDefiniteError> {
    split_panel_g::<f64, f64, MR, NR>(strip, ld, total, col0, k, b, tail_end, scratch)
}

/// f64-mode [`split_tile_g`].
#[allow(clippy::too_many_arguments)]
pub fn split_tile_f64(
    panel: &[f64],
    dst: &mut [f64],
    ld: usize,
    total: usize,
    pcol0: usize,
    k: usize,
    b: usize,
    qcol0: usize,
    qcols: usize,
    scratch: &mut KernelScratch,
) {
    split_tile_g::<f64, f64, MR, NR>(panel, dst, ld, total, pcol0, k, b, qcol0, qcols, scratch);
}

/// f32-storage [`split_panel_g`] under a narrow [`NumericMode`]:
/// `F32` runs the uniform 8×4 engine, `F32F64` (and, for totality, `F64`)
/// the mixed 4×4 engine with f64 accumulation — the same engine selection
/// as [`partial_cholesky_scratch_mode`](crate::partial_cholesky_scratch_mode).
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] with the front-global pivot column
/// when the diagonal block is not positive definite in this precision.
#[allow(clippy::too_many_arguments)]
pub fn split_panel_f32(
    mode: NumericMode,
    strip: &mut [f32],
    ld: usize,
    total: usize,
    col0: usize,
    k: usize,
    b: usize,
    tail_end: usize,
    scratch: &mut KernelScratch,
) -> Result<(), NotPositiveDefiniteError> {
    match mode {
        NumericMode::F32 => split_panel_g::<f32, f32, MR_F32, NR_F32>(
            strip, ld, total, col0, k, b, tail_end, scratch,
        ),
        NumericMode::F32F64 | NumericMode::F64 => {
            split_panel_g::<f32, f64, MR, NR>(strip, ld, total, col0, k, b, tail_end, scratch)
        }
    }
}

/// f32-storage [`split_tile_g`]; engine selection as in
/// [`split_panel_f32`].
#[allow(clippy::too_many_arguments)]
pub fn split_tile_f32(
    mode: NumericMode,
    panel: &[f32],
    dst: &mut [f32],
    ld: usize,
    total: usize,
    pcol0: usize,
    k: usize,
    b: usize,
    qcol0: usize,
    qcols: usize,
    scratch: &mut KernelScratch,
) {
    match mode {
        NumericMode::F32 => split_tile_g::<f32, f32, MR_F32, NR_F32>(
            panel, dst, ld, total, pcol0, k, b, qcol0, qcols, scratch,
        ),
        NumericMode::F32F64 | NumericMode::F64 => split_tile_g::<f32, f64, MR, NR>(
            panel, dst, ld, total, pcol0, k, b, qcol0, qcols, scratch,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partial_cholesky_scratch_mode, Mat};

    fn spd(n: usize, seed: u64) -> Mat {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        let g = Mat::from_fn(n, n, |_, _| next());
        let mut a = Mat::from_diag(&vec![n as f64; n]);
        crate::syrk_lower(1.0, &g, 1.0, &mut a);
        Mat::from_fn(n, n, |r, c| if r >= c { a[(r, c)] } else { a[(c, r)] })
    }

    /// Runs the strip-decomposed factorization with strip width `t` and
    /// returns the gathered front (f64, promoted back for narrow modes).
    fn factor_by_strips(a: &Mat, pivots: usize, t: usize, mode: NumericMode) -> Mat {
        let total = a.rows();
        let nstrips = total.div_ceil(t);
        let width = |s: usize| t.min(total - s * t);
        let mut scratch = KernelScratch::new();

        // Per-strip owned buffers, ld = total: memory-identical to the
        // corresponding columns of the full column-major front.
        let strip_of = |col: usize| col / t;
        let gather = |strips64: &[Vec<f64>], strips32: &[Vec<f32>]| {
            Mat::from_fn(total, total, |r, c| {
                let s = strip_of(c);
                if mode == NumericMode::F64 {
                    strips64[s][(c - s * t) * total + r]
                } else {
                    strips32[s][(c - s * t) * total + r] as f64
                }
            })
        };

        let mut strips64: Vec<Vec<f64>> = Vec::new();
        let mut strips32: Vec<Vec<f32>> = Vec::new();
        for s in 0..nstrips {
            let w = width(s);
            let mut buf = vec![0.0f64; total * w];
            for j in 0..w {
                for i in 0..total {
                    buf[j * total + i] = a[(i, s * t + j)];
                }
            }
            if mode == NumericMode::F64 {
                strips64.push(buf);
            } else {
                strips32.push(buf.iter().map(|&v| v as f32).collect());
            }
        }

        let mut k = 0usize;
        while k < pivots {
            let b = SPLIT_NB.min(pivots - k);
            let ps = strip_of(k);
            let col0 = ps * t;
            let tail_end = (col0 + width(ps)).min(total);
            if mode == NumericMode::F64 {
                split_panel_f64(
                    &mut strips64[ps],
                    total,
                    total,
                    col0,
                    k,
                    b,
                    tail_end,
                    &mut scratch,
                )
                .unwrap();
                for q in ps + 1..nstrips {
                    let (head, tail) = strips64.split_at_mut(q);
                    split_tile_f64(
                        &head[ps],
                        &mut tail[0],
                        total,
                        total,
                        col0,
                        k,
                        b,
                        q * t,
                        width(q),
                        &mut scratch,
                    );
                }
            } else {
                split_panel_f32(
                    mode,
                    &mut strips32[ps],
                    total,
                    total,
                    col0,
                    k,
                    b,
                    tail_end,
                    &mut scratch,
                )
                .unwrap();
                for q in ps + 1..nstrips {
                    let (head, tail) = strips32.split_at_mut(q);
                    split_tile_f32(
                        mode,
                        &head[ps],
                        &mut tail[0],
                        total,
                        total,
                        col0,
                        k,
                        b,
                        q * t,
                        width(q),
                        &mut scratch,
                    );
                }
            }
            k += b;
        }
        gather(&strips64, &strips32)
    }

    #[test]
    fn strip_factorization_is_bit_identical_to_whole_front() {
        for mode in [NumericMode::F64, NumericMode::F32, NumericMode::F32F64] {
            for &(total, pivots) in &[
                (96usize, 96usize),
                (97, 60),
                (144, 96),
                (150, 100),
                (200, 144),
                (120, 47),
                (49, 48),
            ] {
                let a = spd(total, (total * 31 + pivots) as u64);
                let mut whole = a.clone();
                partial_cholesky_scratch_mode(&mut whole, pivots, &mut KernelScratch::new(), mode)
                    .unwrap();
                for t in [SPLIT_NB, 2 * SPLIT_NB] {
                    let split = factor_by_strips(&a, pivots, t, mode);
                    // Compare every element the factorization defines:
                    // the lower triangle (the split path does not zero the
                    // strict upper triangle of the pivot columns — the
                    // gather step owns that, as `zero_strict_upper` does
                    // for the whole-front path).
                    for c in 0..total {
                        for r in c..total {
                            assert_eq!(
                                whole[(r, c)].to_bits(),
                                split[(r, c)].to_bits(),
                                "mode {mode:?} total {total} pivots {pivots} t {t} at ({r},{c})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn strip_panel_reports_global_pivot_column() {
        for mode in [NumericMode::F64, NumericMode::F32, NumericMode::F32F64] {
            let total = 120;
            let mut a = spd(total, 11);
            a[(70, 70)] = -1e6;
            let mut whole = a.clone();
            let werr =
                partial_cholesky_scratch_mode(&mut whole, total, &mut KernelScratch::new(), mode)
                    .unwrap_err();
            // Walk the strip path until the same panel fails.
            let t = SPLIT_NB;
            let mut scratch = KernelScratch::new();
            let nstrips = total.div_ceil(t);
            let width = |s: usize| t.min(total - s * t);
            let mut strips: Vec<Vec<f64>> = (0..nstrips)
                .map(|s| {
                    let w = width(s);
                    let mut buf = vec![0.0f64; total * w];
                    for j in 0..w {
                        for i in 0..total {
                            buf[j * total + i] = a[(i, s * t + j)];
                        }
                    }
                    buf
                })
                .collect();
            let mut strips32: Vec<Vec<f32>> = strips
                .iter()
                .map(|b| b.iter().map(|&v| v as f32).collect())
                .collect();
            let mut serr = None;
            let mut k = 0usize;
            while k < total && serr.is_none() {
                let b = SPLIT_NB.min(total - k);
                let ps = k / t;
                let r = if mode == NumericMode::F64 {
                    split_panel_f64(
                        &mut strips[ps],
                        total,
                        total,
                        ps * t,
                        k,
                        b,
                        k + b,
                        &mut scratch,
                    )
                } else {
                    split_panel_f32(
                        mode,
                        &mut strips32[ps],
                        total,
                        total,
                        ps * t,
                        k,
                        b,
                        k + b,
                        &mut scratch,
                    )
                };
                if let Err(e) = r {
                    serr = Some(e);
                    break;
                }
                for q in ps + 1..nstrips {
                    if mode == NumericMode::F64 {
                        let (head, tail) = strips.split_at_mut(q);
                        split_tile_f64(
                            &head[ps],
                            &mut tail[0],
                            total,
                            total,
                            ps * t,
                            k,
                            b,
                            q * t,
                            width(q),
                            &mut scratch,
                        );
                    } else {
                        let (head, tail) = strips32.split_at_mut(q);
                        split_tile_f32(
                            mode,
                            &head[ps],
                            &mut tail[0],
                            total,
                            total,
                            ps * t,
                            k,
                            b,
                            q * t,
                            width(q),
                            &mut scratch,
                        );
                    }
                }
                k += b;
            }
            assert_eq!(serr.expect("strip path must fail too").col(), werr.col());
        }
    }
}
