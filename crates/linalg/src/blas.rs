//! BLAS-style kernels over [`Mat`] and slices.
//!
//! These are the exact operation classes the paper's COMP accelerator
//! executes (Figure 3 / §4.2.1): GEMM with optional operand transposition
//! (the hardware transposer), symmetric rank-k updates (the dominant cost in
//! Cholesky), and the triangular solve used on supernode subdiagonal blocks.

use crate::Mat;

/// Whether a GEMM operand is used as-is or transposed.
///
/// Mirrors the COMP tile's transposer, which lets either operand of a matrix
/// product be transposed on load (§4.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Transpose {
    /// Use the operand as stored.
    #[default]
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Transpose {
    fn dims(self, m: &Mat) -> (usize, usize) {
        match self {
            Transpose::No => (m.rows(), m.cols()),
            Transpose::Yes => (m.cols(), m.rows()),
        }
    }

    #[inline]
    fn at(self, m: &Mat, r: usize, c: usize) -> f64 {
        match self {
            Transpose::No => m[(r, c)],
            Transpose::Yes => m[(c, r)],
        }
    }
}

/// General matrix–matrix multiply: `c = alpha * op_a(a) * op_b(b) + beta * c`.
///
/// # Panics
///
/// Panics if the operand shapes are incompatible with `c`.
///
/// # Example
///
/// ```
/// use supernova_linalg::{gemm, Mat, Transpose};
///
/// let a = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
/// let b = Mat::identity(2);
/// let mut c = Mat::zeros(2, 2);
/// gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
/// assert_eq!(c, a);
/// ```
pub fn gemm(
    alpha: f64,
    a: &Mat,
    op_a: Transpose,
    b: &Mat,
    op_b: Transpose,
    beta: f64,
    c: &mut Mat,
) {
    let (m, k) = op_a.dims(a);
    let (kb, n) = op_b.dims(b);
    assert_eq!(k, kb, "gemm inner dimension mismatch: {k} vs {kb}");
    assert_eq!(c.rows(), m, "gemm output row mismatch");
    assert_eq!(c.cols(), n, "gemm output column mismatch");
    // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
    if beta != 1.0 {
        // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    // Fast path: untransposed column-major a allows contiguous column AXPYs.
    if op_a == Transpose::No {
        for j in 0..n {
            for p in 0..k {
                let bpj = alpha * op_b.at(b, p, j);
                // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
                if bpj == 0.0 {
                    continue;
                }
                let acol = a.col(p);
                let ccol = c.col_mut(j);
                for i in 0..m {
                    ccol[i] += acol[i] * bpj;
                }
            }
        }
    } else {
        for j in 0..n {
            for i in 0..m {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += op_a.at(a, i, p) * op_b.at(b, p, j);
                }
                c[(i, j)] += alpha * acc;
            }
        }
    }
}

/// Symmetric rank-k update on the lower triangle:
/// `c_lower = beta * c_lower - a * aᵀ` scaled by `alpha` on the update term,
/// i.e. `c = beta * c + alpha * a * aᵀ`, touching only `i >= j`.
///
/// This is the third step of the supernode partial factorization,
/// `L_C = C − L_B L_Bᵀ` (§3.2), and the paper's most power-intensive
/// operation (§6.5).
///
/// # Panics
///
/// Panics if `c` is not square with `c.rows() == a.rows()`.
pub fn syrk_lower(alpha: f64, a: &Mat, beta: f64, c: &mut Mat) {
    assert_eq!(c.rows(), c.cols(), "syrk output must be square");
    assert_eq!(c.rows(), a.rows(), "syrk dimension mismatch");
    let n = c.rows();
    let k = a.cols();
    for j in 0..n {
        // lint: allow(float-eq) — exact beta-scaling fast path, matches BLAS semantics
        if beta != 1.0 {
            let ccol = c.col_mut(j);
            for i in j..n {
                ccol[i] *= beta;
            }
        }
        for p in 0..k {
            let ajp = alpha * a[(j, p)];
            // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
            if ajp == 0.0 {
                continue;
            }
            let acol = a.col(p);
            let ccol = c.col_mut(j);
            for i in j..n {
                ccol[i] += acol[i] * ajp;
            }
        }
    }
}

/// Triangular solve `x * opᵀ(l) = b` for `x`, overwriting `b`:
/// computes `b := b * l⁻ᵀ` where `l` is lower triangular.
///
/// This is the supernode subdiagonal step `L_B L_Aᵀ = B` solved for `L_B`
/// (§3.2, step 2).
///
/// # Panics
///
/// Panics if `l` is not square or `b.cols() != l.rows()`.
pub fn trsm_right_lower_transpose(l: &Mat, b: &mut Mat) {
    assert_eq!(l.rows(), l.cols(), "trsm triangle must be square");
    assert_eq!(b.cols(), l.rows(), "trsm dimension mismatch");
    let n = l.rows();
    let m = b.rows();
    // Solve column by column: X[:,j] = (B[:,j] - Σ_{p<j} X[:,p] L[j,p]) / L[j,j].
    for j in 0..n {
        for p in 0..j {
            let ljp = l[(j, p)];
            // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
            if ljp == 0.0 {
                continue;
            }
            let (done, cur) = split_two_cols(b, p, j);
            for i in 0..m {
                cur[i] -= done[i] * ljp;
            }
        }
        let d = l[(j, j)];
        let col = b.col_mut(j);
        for i in 0..m {
            col[i] /= d;
        }
    }
}

/// Borrows two distinct columns of `m`, the first immutably conceptually
/// (returned as `&mut` halves for simplicity; callers only read the first).
fn split_two_cols(m: &mut Mat, first: usize, second: usize) -> (&[f64], &mut [f64]) {
    debug_assert!(first < second);
    let rows = m.rows();
    let (lo, hi) = m.as_mut_slice().split_at_mut(second * rows);
    (&lo[first * rows..first * rows + rows], &mut hi[..rows])
}

/// General matrix–vector multiply `y = alpha * op(a) * x + beta * y`.
///
/// # Panics
///
/// Panics if the shapes are incompatible.
pub fn gemv(alpha: f64, a: &Mat, op: Transpose, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = op.dims(a);
    assert_eq!(x.len(), n, "gemv input length mismatch");
    assert_eq!(y.len(), m, "gemv output length mismatch");
    let prod = match op {
        Transpose::No => a.matvec(x),
        Transpose::Yes => a.matvec_transpose(x),
    };
    for i in 0..m {
        y[i] = alpha * prod[i] + beta * y[i];
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x` elementwise.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a slice.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Infinity norm (maximum absolute entry) of a slice; zero when empty.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mul(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                for p in 0..a.cols() {
                    c[(i, j)] += a[(i, p)] * b[(p, j)];
                }
            }
        }
        c
    }

    #[test]
    fn gemm_matches_naive() {
        let a = Mat::from_fn(3, 4, |r, c| (r + 2 * c) as f64 - 1.5);
        let b = Mat::from_fn(4, 2, |r, c| (2 * r + c) as f64 * 0.5);
        let mut c = Mat::zeros(3, 2);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        let want = naive_mul(&a, &b);
        assert!((0..3).all(|i| (0..2).all(|j| (c[(i, j)] - want[(i, j)]).abs() < 1e-12)));
    }

    #[test]
    fn gemm_transposed_operands() {
        let a = Mat::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
        let b = Mat::from_fn(2, 4, |r, c| (r + c) as f64);
        let mut c = Mat::zeros(3, 2);
        gemm(1.0, &a, Transpose::Yes, &b, Transpose::Yes, 0.0, &mut c);
        let want = naive_mul(&a.transposed(), &b.transposed());
        for i in 0..3 {
            for j in 0..2 {
                assert!((c[(i, j)] - want[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Mat::identity(2);
        let b = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut c = Mat::from_rows(2, 2, &[10.0, 0.0, 0.0, 10.0]);
        gemm(2.0, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c);
        assert_eq!(c[(0, 0)], 2.0 + 5.0);
        assert_eq!(c[(0, 1)], 4.0);
        assert_eq!(c[(1, 1)], 8.0 + 5.0);
    }

    #[test]
    fn syrk_matches_gemm() {
        let a = Mat::from_fn(4, 3, |r, c| ((r + 1) * (c + 2)) as f64 * 0.25 - 1.0);
        let mut c = Mat::zeros(4, 4);
        syrk_lower(1.0, &a, 0.0, &mut c);
        let full = naive_mul(&a, &a.transposed());
        for j in 0..4 {
            for i in j..4 {
                assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-12);
            }
        }
        // Upper strict triangle untouched (remains zero).
        assert_eq!(c[(0, 3)], 0.0);
    }

    #[test]
    fn trsm_inverts_multiplication() {
        let l = Mat::from_rows(3, 3, &[2.0, 0.0, 0.0, 1.0, 3.0, 0.0, -1.0, 0.5, 1.5]);
        let x_true = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f64 + 1.0);
        // b = x_true * lᵀ
        let mut b = Mat::zeros(2, 3);
        gemm(1.0, &x_true, Transpose::No, &l, Transpose::Yes, 0.0, &mut b);
        trsm_right_lower_transpose(&l, &mut b);
        for i in 0..2 {
            for j in 0..3 {
                assert!((b[(i, j)] - x_true[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gemv_both_ops() {
        let a = Mat::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = vec![1.0, 1.0];
        gemv(1.0, &a, Transpose::No, &[1.0, 0.0, 1.0], 1.0, &mut y);
        assert_eq!(y, vec![5.0, 11.0]);
        let mut z = vec![0.0; 3];
        gemv(2.0, &a, Transpose::Yes, &[1.0, 1.0], 0.0, &mut z);
        assert_eq!(z, vec![10.0, 14.0, 18.0]);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
