//! BLAS-style kernels over [`Mat`] and slices.
//!
//! These are the exact operation classes the paper's COMP accelerator
//! executes (Figure 3 / §4.2.1): GEMM with optional operand transposition
//! (the hardware transposer), symmetric rank-k updates (the dominant cost in
//! Cholesky), and the triangular solve used on supernode subdiagonal blocks.
//!
//! Every level-3 entry point is a thin shape-checking wrapper over the
//! blocked, packed kernel core in [`crate::kernels`]; the `_scratch`
//! variants take a caller-owned [`KernelScratch`] arena so hot loops (the
//! multifrontal executor) reuse pack buffers across calls and allocate
//! nothing in steady state. The plain variants allocate a transient arena —
//! convenient for cold paths and tests, identical numerics either way.

use crate::kernels::{self, syrk_core, trsm_core, KernelScratch, MutView, View};
use crate::Mat;

/// Whether a GEMM operand is used as-is or transposed.
///
/// Mirrors the COMP tile's transposer, which lets either operand of a matrix
/// product be transposed on load (§4.2.1). Transposition is free in the
/// blocked kernels: it only changes the order pack buffers are filled in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Transpose {
    /// Use the operand as stored.
    #[default]
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Transpose {
    fn dims(self, m: &Mat) -> (usize, usize) {
        match self {
            Transpose::No => (m.rows(), m.cols()),
            Transpose::Yes => (m.cols(), m.rows()),
        }
    }

    fn flip(self) -> bool {
        self == Transpose::Yes
    }
}

/// General matrix–matrix multiply: `c = alpha * op_a(a) * op_b(b) + beta * c`.
///
/// Allocating wrapper over [`gemm_scratch`] (a transient pack arena is
/// created per call); hot paths should hold a [`KernelScratch`] and call
/// the `_scratch` variant.
///
/// # Panics
///
/// Panics if the operand shapes are incompatible with `c`.
///
/// # Example
///
/// ```
/// use supernova_linalg::{gemm, Mat, Transpose};
///
/// let a = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
/// let b = Mat::identity(2);
/// let mut c = Mat::zeros(2, 2);
/// gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
/// assert_eq!(c, a);
/// ```
pub fn gemm(
    alpha: f64,
    a: &Mat,
    op_a: Transpose,
    b: &Mat,
    op_b: Transpose,
    beta: f64,
    c: &mut Mat,
) {
    let mut scratch = KernelScratch::new();
    gemm_scratch(alpha, a, op_a, b, op_b, beta, c, &mut scratch);
}

/// [`gemm`] with a caller-owned pack-buffer arena (zero-alloc when warm).
///
/// # Panics
///
/// Panics if the operand shapes are incompatible with `c`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_scratch(
    alpha: f64,
    a: &Mat,
    op_a: Transpose,
    b: &Mat,
    op_b: Transpose,
    beta: f64,
    c: &mut Mat,
    scratch: &mut KernelScratch,
) {
    let (m, k) = op_a.dims(a);
    let (kb, n) = op_b.dims(b);
    assert_eq!(k, kb, "gemm inner dimension mismatch: {k} vs {kb}");
    assert_eq!(c.rows(), m, "gemm output row mismatch");
    assert_eq!(c.cols(), n, "gemm output column mismatch");
    kernels::gemm_mats(
        alpha,
        &View::of(a, op_a.flip()),
        &View::of(b, op_b.flip()),
        beta,
        c,
        scratch,
    );
}

/// Symmetric rank-k update on the lower triangle:
/// `c_lower = beta * c_lower - a * aᵀ` scaled by `alpha` on the update term,
/// i.e. `c = beta * c + alpha * a * aᵀ`, touching only `i >= j`.
///
/// This is the third step of the supernode partial factorization,
/// `L_C = C − L_B L_Bᵀ` (§3.2), and the paper's most power-intensive
/// operation (§6.5). Allocating wrapper over [`syrk_lower_scratch`].
///
/// # Panics
///
/// Panics if `c` is not square with `c.rows() == a.rows()`.
pub fn syrk_lower(alpha: f64, a: &Mat, beta: f64, c: &mut Mat) {
    let mut scratch = KernelScratch::new();
    syrk_lower_scratch(alpha, a, beta, c, &mut scratch);
}

/// [`syrk_lower`] with a caller-owned pack-buffer arena (zero-alloc when
/// warm).
///
/// # Panics
///
/// Panics if `c` is not square with `c.rows() == a.rows()`.
pub fn syrk_lower_scratch(
    alpha: f64,
    a: &Mat,
    beta: f64,
    c: &mut Mat,
    scratch: &mut KernelScratch,
) {
    assert_eq!(c.rows(), c.cols(), "syrk output must be square");
    assert_eq!(c.rows(), a.rows(), "syrk dimension mismatch");
    let mut cv = MutView::of(c);
    cv.scale_lower(beta);
    syrk_core(alpha, &View::of(a, false), &mut cv, scratch);
}

/// Triangular solve `x * opᵀ(l) = b` for `x`, overwriting `b`:
/// computes `b := b * l⁻ᵀ` where `l` is lower triangular.
///
/// This is the supernode subdiagonal step `L_B L_Aᵀ = B` solved for `L_B`
/// (§3.2, step 2). Allocating wrapper over
/// [`trsm_right_lower_transpose_scratch`].
///
/// # Panics
///
/// Panics if `l` is not square or `b.cols() != l.rows()`.
pub fn trsm_right_lower_transpose(l: &Mat, b: &mut Mat) {
    let mut scratch = KernelScratch::new();
    trsm_right_lower_transpose_scratch(l, b, &mut scratch);
}

/// [`trsm_right_lower_transpose`] with a caller-owned pack-buffer arena
/// (zero-alloc when warm).
///
/// # Panics
///
/// Panics if `l` is not square or `b.cols() != l.rows()`.
pub fn trsm_right_lower_transpose_scratch(l: &Mat, b: &mut Mat, scratch: &mut KernelScratch) {
    assert_eq!(l.rows(), l.cols(), "trsm triangle must be square");
    assert_eq!(b.cols(), l.rows(), "trsm dimension mismatch");
    let n = l.rows();
    let m = b.rows();
    if n == 0 || m == 0 {
        return;
    }
    let ld = m;
    trsm_core(
        &View::of(l, false),
        b.as_mut_slice(),
        ld,
        0,
        0,
        m,
        n,
        scratch,
    );
}

/// General matrix–vector multiply `y = alpha * op(a) * x + beta * y`.
///
/// # Panics
///
/// Panics if the shapes are incompatible.
pub fn gemv(alpha: f64, a: &Mat, op: Transpose, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = op.dims(a);
    assert_eq!(x.len(), n, "gemv input length mismatch");
    assert_eq!(y.len(), m, "gemv output length mismatch");
    let prod = match op {
        Transpose::No => a.matvec(x),
        Transpose::Yes => a.matvec_transpose(x),
    };
    for i in 0..m {
        y[i] = alpha * prod[i] + beta * y[i];
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x` elementwise.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm of a slice.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Infinity norm (maximum absolute entry) of a slice; zero when empty.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn naive_mul(a: &Mat, b: &Mat) -> Mat {
        let mut c = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                for p in 0..a.cols() {
                    c[(i, j)] += a[(i, p)] * b[(p, j)];
                }
            }
        }
        c
    }

    #[test]
    fn gemm_matches_naive() {
        let a = Mat::from_fn(3, 4, |r, c| (r + 2 * c) as f64 - 1.5);
        let b = Mat::from_fn(4, 2, |r, c| (2 * r + c) as f64 * 0.5);
        let mut c = Mat::zeros(3, 2);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        let want = naive_mul(&a, &b);
        assert!((0..3).all(|i| (0..2).all(|j| (c[(i, j)] - want[(i, j)]).abs() < 1e-12)));
    }

    #[test]
    fn gemm_transposed_operands() {
        let a = Mat::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
        let b = Mat::from_fn(2, 4, |r, c| (r + c) as f64);
        let mut c = Mat::zeros(3, 2);
        gemm(1.0, &a, Transpose::Yes, &b, Transpose::Yes, 0.0, &mut c);
        let want = naive_mul(&a.transposed(), &b.transposed());
        for i in 0..3 {
            for j in 0..2 {
                assert!((c[(i, j)] - want[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_transposed_operands_large_packed() {
        // Big enough to take the packed path in every transpose combo.
        let a = Mat::from_fn(48, 52, |r, c| ((r * 13 + c * 5) % 17) as f64 * 0.5 - 2.0);
        let b = Mat::from_fn(45, 52, |r, c| ((r * 3 + c * 11) % 13) as f64 * 0.25 - 1.0);
        for (op_a, op_b) in [
            (Transpose::No, Transpose::Yes),
            (Transpose::Yes, Transpose::No),
            (Transpose::Yes, Transpose::Yes),
        ] {
            let (m, k) = op_a.dims(&a);
            let (kb, n) = op_b.dims(&b);
            if k != kb {
                continue;
            }
            let la = match op_a {
                Transpose::No => a.clone(),
                Transpose::Yes => a.transposed(),
            };
            let lb = match op_b {
                Transpose::No => b.clone(),
                Transpose::Yes => b.transposed(),
            };
            let want = naive_mul(&la, &lb);
            let mut c = Mat::zeros(m, n);
            gemm(1.0, &a, op_a, &b, op_b, 0.0, &mut c);
            for i in 0..m {
                for j in 0..n {
                    assert!(
                        (c[(i, j)] - want[(i, j)]).abs() < 1e-9,
                        "{op_a:?}/{op_b:?} at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Mat::identity(2);
        let b = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut c = Mat::from_rows(2, 2, &[10.0, 0.0, 0.0, 10.0]);
        gemm(2.0, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c);
        assert_eq!(c[(0, 0)], 2.0 + 5.0);
        assert_eq!(c[(0, 1)], 4.0);
        assert_eq!(c[(1, 1)], 8.0 + 5.0);
    }

    #[test]
    fn scratch_variant_is_bit_identical_to_allocating_variant() {
        let a = Mat::from_fn(40, 36, |r, c| ((r * 7 + c) % 9) as f64 - 4.0);
        let b = Mat::from_fn(36, 44, |r, c| ((r + c * 3) % 7) as f64 * 0.5);
        let mut c1 = Mat::from_fn(40, 44, |r, c| (r + c) as f64 * 0.1);
        let mut c2 = c1.clone();
        gemm(1.5, &a, Transpose::No, &b, Transpose::No, 0.5, &mut c1);
        let mut scratch = KernelScratch::with_capacity(64);
        gemm_scratch(
            1.5,
            &a,
            Transpose::No,
            &b,
            Transpose::No,
            0.5,
            &mut c2,
            &mut scratch,
        );
        // Same kernels, same order — the arena must not change values.
        assert!(c1
            .as_slice()
            .iter()
            .zip(c2.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn syrk_matches_gemm() {
        let a = Mat::from_fn(4, 3, |r, c| ((r + 1) * (c + 2)) as f64 * 0.25 - 1.0);
        let mut c = Mat::zeros(4, 4);
        syrk_lower(1.0, &a, 0.0, &mut c);
        let full = naive_mul(&a, &a.transposed());
        for j in 0..4 {
            for i in j..4 {
                assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-12);
            }
        }
        // Upper strict triangle untouched (remains zero).
        assert_eq!(c[(0, 3)], 0.0);
    }

    #[test]
    fn syrk_blocked_matches_reference_on_large_front() {
        let a = Mat::from_fn(61, 43, |r, c| ((r * 5 + c * 7) % 19) as f64 * 0.1 - 0.9);
        let mut blocked = Mat::from_fn(61, 61, |r, c| (r + c) as f64 * 0.01);
        let mut naive = blocked.clone();
        syrk_lower(-1.0, &a, 1.0, &mut blocked);
        reference::syrk_lower(-1.0, &a, 1.0, &mut naive);
        for j in 0..61 {
            for i in j..61 {
                assert!(
                    (blocked[(i, j)] - naive[(i, j)]).abs() < 1e-9,
                    "({i},{j}) blocked {} naive {}",
                    blocked[(i, j)],
                    naive[(i, j)]
                );
            }
            // Strict upper untouched by either.
            for i in 0..j {
                assert_eq!(blocked[(i, j)].to_bits(), naive[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn trsm_inverts_multiplication() {
        let l = Mat::from_rows(3, 3, &[2.0, 0.0, 0.0, 1.0, 3.0, 0.0, -1.0, 0.5, 1.5]);
        let x_true = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f64 + 1.0);
        // b = x_true * lᵀ
        let mut b = Mat::zeros(2, 3);
        gemm(1.0, &x_true, Transpose::No, &l, Transpose::Yes, 0.0, &mut b);
        trsm_right_lower_transpose(&l, &mut b);
        for i in 0..2 {
            for j in 0..3 {
                assert!((b[(i, j)] - x_true[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn trsm_blocked_matches_reference_past_block_boundary() {
        // n > TRSM block width so the packed GEMM update path runs.
        let n = 75;
        let m = 23;
        let l = Mat::from_fn(n, n, |r, c| {
            if r == c {
                2.0 + (r % 5) as f64 * 0.25
            } else if r > c {
                ((r * 3 + c * 7) % 11) as f64 * 0.05 - 0.25
            } else {
                0.0
            }
        });
        let b0 = Mat::from_fn(m, n, |r, c| ((r * 7 + c) % 13) as f64 * 0.5 - 3.0);
        let mut blocked = b0.clone();
        let mut naive = b0;
        trsm_right_lower_transpose(&l, &mut blocked);
        reference::trsm_right_lower_transpose(&l, &mut naive);
        for i in 0..m {
            for j in 0..n {
                assert!(
                    (blocked[(i, j)] - naive[(i, j)]).abs() < 1e-8,
                    "({i},{j}) blocked {} naive {}",
                    blocked[(i, j)],
                    naive[(i, j)]
                );
            }
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let a = Mat::zeros(0, 3);
        let b = Mat::zeros(3, 0);
        let mut c = Mat::zeros(0, 0);
        gemm(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
        let ak = Mat::zeros(4, 0);
        let bk = Mat::zeros(0, 5);
        let mut ck = Mat::from_fn(4, 5, |r, c| (r + c) as f64);
        let before = ck.clone();
        gemm(3.0, &ak, Transpose::No, &bk, Transpose::No, 1.0, &mut ck);
        assert_eq!(ck, before, "k = 0 with beta = 1 must leave c untouched");
        let mut e = Mat::zeros(0, 0);
        syrk_lower(1.0, &Mat::zeros(0, 2), 1.0, &mut e);
        trsm_right_lower_transpose(&Mat::zeros(0, 0), &mut Mat::zeros(3, 0));
    }

    #[test]
    fn gemv_both_ops() {
        let a = Mat::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = vec![1.0, 1.0];
        gemv(1.0, &a, Transpose::No, &[1.0, 0.0, 1.0], 1.0, &mut y);
        assert_eq!(y, vec![5.0, 11.0]);
        let mut z = vec![0.0; 3];
        gemv(2.0, &a, Transpose::Yes, &[1.0, 1.0], 0.0, &mut z);
        assert_eq!(z, vec![10.0, 14.0, 18.0]);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
