//! Deterministic in-tree pseudo-random number generation.
//!
//! The dependency policy of this workspace excludes crates.io (the build
//! must resolve offline), so the dataset generators and the randomized
//! tests share this small xorshift64* generator instead of `rand`. It is
//! seeded explicitly everywhere — identical seeds produce identical
//! streams on every platform, which the determinism tests rely on.

/// A seeded xorshift64* PRNG (Vigna 2016): 64 bits of state, period
/// 2^64 − 1, passes BigCrush on the high 32 bits — more than enough for
/// synthetic dataset noise and test-case generation.
///
/// # Example
///
/// ```
/// use supernova_linalg::rng::XorShift64;
///
/// let mut a = XorShift64::seed_from_u64(7);
/// let mut b = XorShift64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid:
    /// the seed is first mixed through a splitmix64 step so low-entropy
    /// seeds do not produce correlated early output.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 finalizer: guarantees a nonzero, well-mixed state.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        XorShift64 { state: z | 1 }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform `f64` in `[0, 1)`, built from the high 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.gen_f64()
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index over an empty range");
        // Multiply-shift bounded sampling; bias is < 2^-53 for any
        // realistic n, immaterial for dataset generation and tests.
        (self.gen_f64() * n as f64) as usize % n
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A standard-normal sample via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.gen_range(f64::EPSILON, 1.0);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift64::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift64::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = XorShift64::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::seed_from_u64(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn uniform_range_respected() {
        let mut r = XorShift64::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
            let i = r.gen_index(7);
            assert!(i < 7);
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut r = XorShift64::seed_from_u64(1234);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = XorShift64::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
