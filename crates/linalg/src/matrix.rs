//! Column-major dense matrix type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, column-major, row-count × column-count matrix of `f64`.
///
/// Column-major storage matches the layout the multifrontal factorization
/// works in (each supernode is a set of contiguous columns, §3.2) and the
/// layout the COMP accelerator's scratchpad assumes.
///
/// # Example
///
/// ```
/// use supernova_linalg::Mat;
///
/// let mut m = Mat::zeros(2, 2);
/// m[(0, 1)] = 3.0;
/// assert_eq!(m[(0, 1)], 3.0);
/// assert_eq!(m.transposed()[(1, 0)], 3.0);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for c in 0..cols {
            for r in 0..rows {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from row-major data (convenient for literals).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data length mismatch");
        Mat::from_fn(rows, cols, |r, c| data[r * cols + c])
    }

    /// Creates a matrix from column-major data (the native layout).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_cols(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "column-major data length mismatch");
        Mat { rows, cols, data }
    }

    /// Creates an `n × n` diagonal matrix from `diag`.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Mat::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix has zero entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the raw column-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the raw column-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows column `c` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> &[f64] {
        assert!(c < self.cols, "column {c} out of bounds ({})", self.cols);
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Mutably borrows column `c` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        assert!(c < self.cols, "column {c} out of bounds ({})", self.cols);
        &mut self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Reshapes to `rows × cols` with every entry zeroed, reusing the
    /// existing allocation when capacity allows — the workspace primitive
    /// of the plan executor's per-worker frontal buffers.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Returns a newly allocated transpose.
    pub fn transposed(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Extracts the rectangular block starting at `(row, col)` of size
    /// `(block_rows, block_cols)`.
    ///
    /// # Panics
    ///
    /// Panics if the block extends past the matrix bounds.
    pub fn block(&self, row: usize, col: usize, block_rows: usize, block_cols: usize) -> Mat {
        assert!(row + block_rows <= self.rows && col + block_cols <= self.cols);
        Mat::from_fn(block_rows, block_cols, |r, c| self[(row + r, col + c)])
    }

    /// Copies `src` into the block starting at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the block extends past the matrix bounds.
    pub fn set_block(&mut self, row: usize, col: usize, src: &Mat) {
        assert!(row + src.rows <= self.rows && col + src.cols <= self.cols);
        for c in 0..src.cols {
            for r in 0..src.rows {
                self[(row + r, col + c)] = src[(r, c)];
            }
        }
    }

    /// Adds `src` into the block starting at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the block extends past the matrix bounds.
    pub fn add_block(&mut self, row: usize, col: usize, src: &Mat) {
        assert!(row + src.rows <= self.rows && col + src.cols <= self.cols);
        for c in 0..src.cols {
            for r in 0..src.rows {
                self[(row + r, col + c)] += src[(r, c)];
            }
        }
    }

    /// Adds the `rows × cols` sub-block of `src` at `(src_row, src_col)`
    /// into this matrix at `(dst_row, dst_col)`, without materializing the
    /// sub-block — the allocation-free extend-add kernel.
    ///
    /// # Panics
    ///
    /// Panics if either block extends past its matrix bounds.
    pub fn add_block_from(
        &mut self,
        dst_row: usize,
        dst_col: usize,
        src: &Mat,
        src_row: usize,
        src_col: usize,
        rows: usize,
        cols: usize,
    ) {
        assert!(dst_row + rows <= self.rows && dst_col + cols <= self.cols);
        assert!(src_row + rows <= src.rows && src_col + cols <= src.cols);
        for c in 0..cols {
            let sc = src.col(src_col + c);
            let dc = self.col_mut(dst_col + c);
            for r in 0..rows {
                dc[dst_row + r] += sc[src_row + r];
            }
        }
    }

    /// Copies the `rows × cols` sub-block at `(row, col)` into `out`,
    /// resizing `out` as needed but reusing its allocation.
    ///
    /// # Panics
    ///
    /// Panics if the block extends past the matrix bounds.
    pub fn block_into(&self, row: usize, col: usize, rows: usize, cols: usize, out: &mut Mat) {
        assert!(row + rows <= self.rows && col + cols <= self.cols);
        out.reset(rows, cols);
        for c in 0..cols {
            let sc = self.col(col + c);
            out.col_mut(c).copy_from_slice(&sc[row..row + rows]);
        }
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for c in 0..self.cols {
            let xc = x[c];
            // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
            if xc == 0.0 {
                continue;
            }
            let col = self.col(c);
            for r in 0..self.rows {
                y[r] += col[r] * xc;
            }
        }
        y
    }

    /// Matrix–vector product with the transpose, `selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_transpose dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for c in 0..self.cols {
            let col = self.col(c);
            let mut acc = 0.0;
            for r in 0..self.rows {
                acc += col[r] * x[r];
            }
            y[c] = acc;
        }
        y
    }

    /// Scales every entry by `s`.
    pub fn scale(&mut self, s: f64) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// Maximum absolute entry (zero for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[c * self.rows + r]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[c * self.rows + r]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(3, 2);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 2);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Mat::identity(3);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Mat::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 1)], 5.0);
    }

    #[test]
    fn col_slices_are_contiguous() {
        let m = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.col(0), &[1.0, 3.0]);
        assert_eq!(m.col(1), &[2.0, 4.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_fn(3, 4, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn block_get_set_add() {
        let mut m = Mat::zeros(4, 4);
        let b = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        m.set_block(1, 2, &b);
        assert_eq!(m[(1, 2)], 1.0);
        assert_eq!(m[(2, 3)], 4.0);
        m.add_block(1, 2, &b);
        assert_eq!(m[(2, 3)], 8.0);
        assert_eq!(m.block(1, 2, 2, 2)[(0, 1)], 4.0);
    }

    #[test]
    fn reset_reuses_allocation_and_zeroes() {
        let mut m = Mat::from_rows(3, 3, &[1.0; 9]);
        let ptr = m.as_slice().as_ptr();
        m.reset(2, 4);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(
            m.as_slice().as_ptr(),
            ptr,
            "reset within capacity must not reallocate"
        );
    }

    #[test]
    fn add_block_from_matches_block_then_add() {
        let src = Mat::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let mut a = Mat::zeros(5, 5);
        let mut b = Mat::zeros(5, 5);
        a.add_block(1, 2, &src.block(1, 0, 2, 3));
        b.add_block_from(1, 2, &src, 1, 0, 2, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn block_into_matches_block() {
        let src = Mat::from_fn(4, 3, |r, c| (10 * r + c) as f64);
        let mut out = Mat::zeros(1, 1);
        src.block_into(1, 1, 3, 2, &mut out);
        assert_eq!(out, src.block(1, 1, 3, 2));
    }

    #[test]
    fn matvec_and_transpose() {
        let m = Mat::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(m.matvec_transpose(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn norms() {
        let m = Mat::from_rows(2, 2, &[3.0, 0.0, 0.0, -4.0]);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn col_out_of_bounds_panics() {
        let m = Mat::zeros(2, 2);
        let _ = m.col(2);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Mat::zeros(1, 1));
        assert!(!s.is_empty());
    }
}
