//! Dense and partial (frontal) Cholesky factorization.

use std::error::Error;
use std::fmt;

use crate::{syrk_lower, trsm_right_lower_transpose, Mat};

/// The matrix handed to a Cholesky factorization was not (numerically)
/// symmetric positive definite.
///
/// Carries the column at which a non-positive pivot was encountered, which in
/// the SLAM backend identifies the offending variable block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefiniteError {
    col: usize,
}

impl NotPositiveDefiniteError {
    /// Column index of the failing pivot.
    pub fn col(&self) -> usize {
        self.col
    }
}

impl fmt::Display for NotPositiveDefiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is not positive definite at column {}", self.col)
    }
}

impl Error for NotPositiveDefiniteError {}

/// Factors a symmetric positive-definite matrix in place: on success the
/// lower triangle of `a` holds `L` with `a = L Lᵀ`.
///
/// Only the lower triangle of the input is read; the strict upper triangle is
/// zeroed on success so the result can be used directly as `L`.
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] when a pivot is not strictly
/// positive; the matrix is left partially factored in that case.
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Example
///
/// ```
/// use supernova_linalg::{cholesky_in_place, Mat};
///
/// let mut a = Mat::from_rows(2, 2, &[4.0, 2.0, 2.0, 5.0]);
/// cholesky_in_place(&mut a)?;
/// assert_eq!(a[(0, 0)], 2.0);
/// # Ok::<(), supernova_linalg::NotPositiveDefiniteError>(())
/// ```
pub fn cholesky_in_place(a: &mut Mat) -> Result<(), NotPositiveDefiniteError> {
    assert_eq!(a.rows(), a.cols(), "cholesky requires a square matrix");
    let n = a.rows();
    // Blocked right-looking factorization above this size: panels stay in
    // cache and the trailing updates run through the BLAS-3 kernels.
    const NB: usize = 48;
    if n <= NB {
        return cholesky_unblocked(a, 0);
    }
    let mut k = 0usize;
    while k < n {
        let b = NB.min(n - k);
        let mut akk = a.block(k, k, b, b);
        cholesky_unblocked(&mut akk, k)?;
        a.set_block(k, k, &akk);
        let rest = n - k - b;
        if rest > 0 {
            let mut asub = a.block(k + b, k, rest, b);
            trsm_right_lower_transpose(&akk, &mut asub);
            a.set_block(k + b, k, &asub);
            let mut trail = a.block(k + b, k + b, rest, rest);
            syrk_lower(-1.0, &asub, 1.0, &mut trail);
            a.set_block(k + b, k + b, &trail);
        }
        k += b;
    }
    // Zero the strict upper triangle so the result is usable as L directly.
    for j in 1..n {
        for i in 0..j {
            a[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Unblocked left-looking Cholesky of `a`; pivot-failure columns are
/// reported offset by `col_base` (the caller's panel origin).
fn cholesky_unblocked(a: &mut Mat, col_base: usize) -> Result<(), NotPositiveDefiniteError> {
    let n = a.rows();
    for j in 0..n {
        // d = a[j,j] - Σ_{p<j} L[j,p]²
        let mut d = a[(j, j)];
        for p in 0..j {
            let ljp = a[(j, p)];
            d -= ljp * ljp;
        }
        if !(d > 0.0) || !d.is_finite() {
            return Err(NotPositiveDefiniteError { col: col_base + j });
        }
        let djj = d.sqrt();
        a[(j, j)] = djj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for p in 0..j {
                s -= a[(i, p)] * a[(j, p)];
            }
            a[(i, j)] = s / djj;
        }
        for i in 0..j {
            a[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Partial factorization of a frontal matrix (§3.2 of the paper).
///
/// `front` is the `(m + n) × (m + n)` symmetric frontal matrix
/// `[[A, ·], [B, C]]` with only the lower triangle stored; `m = pivots` is
/// the number of columns that belong to the supernode. On success:
///
/// 1. `A = L_A L_Aᵀ` — the leading `m × m` block holds `L_A`;
/// 2. `L_B L_Aᵀ = B` — the `n × m` subdiagonal block holds `L_B`;
/// 3. `L_C = C − L_B L_Bᵀ` — the trailing `n × n` lower triangle holds the
///    update matrix that is scatter-added into the parent (the *merge* step).
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] (with a column index relative to the
/// front) if the pivot block is not positive definite.
///
/// # Panics
///
/// Panics if `front` is not square or `pivots > front.rows()`.
pub fn partial_cholesky_in_place(
    front: &mut Mat,
    pivots: usize,
) -> Result<(), NotPositiveDefiniteError> {
    assert_eq!(front.rows(), front.cols(), "frontal matrix must be square");
    let total = front.rows();
    assert!(pivots <= total, "pivot count exceeds front size");
    let n = total - pivots;

    // Step 1: dense Cholesky of the pivot block A.
    let mut la = front.block(0, 0, pivots, pivots);
    cholesky_in_place(&mut la)?;
    front.set_block(0, 0, &la);

    if n == 0 {
        return Ok(());
    }

    // Step 2: triangular solve L_B L_Aᵀ = B.
    let mut lb = front.block(pivots, 0, n, pivots);
    trsm_right_lower_transpose(&la, &mut lb);
    front.set_block(pivots, 0, &lb);

    // Step 3: symmetric rank-k update L_C = C − L_B L_Bᵀ (lower triangle).
    let mut lc = front.block(pivots, pivots, n, n);
    syrk_lower(-1.0, &lb, 1.0, &mut lc);
    front.set_block(pivots, pivots, &lc);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm, Transpose};

    fn spd(n: usize, seed: u64) -> Mat {
        // Deterministic pseudo-random well-conditioned SPD matrix.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        let g = Mat::from_fn(n, n, |_, _| next());
        let mut a = Mat::from_diag(&vec![n as f64; n]);
        syrk_lower(1.0, &g, 1.0, &mut a);
        // Mirror lower to upper for reconstruction checks.
        Mat::from_fn(n, n, |r, c| if r >= c { a[(r, c)] } else { a[(c, r)] })
    }

    fn reconstruct(l: &Mat) -> Mat {
        let mut out = Mat::zeros(l.rows(), l.rows());
        gemm(1.0, l, Transpose::No, l, Transpose::Yes, 0.0, &mut out);
        out
    }

    #[test]
    fn cholesky_reconstructs() {
        for n in [1, 2, 5, 12, 47, 48, 49, 100, 150] {
            let a = spd(n, n as u64);
            let mut l = a.clone();
            cholesky_in_place(&mut l).unwrap();
            let r = reconstruct(&l);
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (r[(i, j)] - a[(i, j)]).abs() < 1e-8 * (n as f64),
                        "mismatch at ({i},{j}) for n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = Mat::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]);
        let err = cholesky_in_place(&mut a).unwrap_err();
        assert_eq!(err.col(), 1);
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn blocked_path_reports_global_pivot_column() {
        // SPD except one late diagonal entry poisoned: the failure column
        // must be reported in global coordinates even on the blocked path.
        let n = 96;
        let mut a = spd(n, 5);
        a[(70, 70)] = -1e6;
        let err = cholesky_in_place(&mut a).unwrap_err();
        assert_eq!(err.col(), 70);
    }

    #[test]
    fn cholesky_rejects_nan() {
        let mut a = Mat::from_rows(1, 1, &[f64::NAN]);
        assert!(cholesky_in_place(&mut a).is_err());
    }

    #[test]
    fn partial_factorization_matches_full() {
        // Factor the full SPD matrix, then verify the partial factorization
        // of the front reproduces the leading columns and the Schur
        // complement C − L_B L_Bᵀ.
        let n_total = 7;
        let pivots = 3;
        let a = spd(n_total, 42);
        let mut full = a.clone();
        cholesky_in_place(&mut full).unwrap();

        let mut front = a.clone();
        partial_cholesky_in_place(&mut front, pivots).unwrap();

        // Leading `pivots` columns of L agree.
        for j in 0..pivots {
            for i in j..n_total {
                assert!(
                    (front[(i, j)] - full[(i, j)]).abs() < 1e-9,
                    "column {j} row {i} differs"
                );
            }
        }
        // Trailing block equals the Schur complement, i.e. what full
        // factorization would factor next: L_C = L_22 L_22ᵀ of the remainder.
        let rest = n_total - pivots;
        let l22 = full.block(pivots, pivots, rest, rest);
        let mut schur = Mat::zeros(rest, rest);
        gemm(
            1.0,
            &l22,
            Transpose::No,
            &l22,
            Transpose::Yes,
            0.0,
            &mut schur,
        );
        for j in 0..rest {
            for i in j..rest {
                assert!(
                    (front[(pivots + i, pivots + j)] - schur[(i, j)]).abs() < 1e-8,
                    "schur ({i},{j}) differs"
                );
            }
        }
    }

    #[test]
    fn partial_with_zero_remainder_is_plain_cholesky() {
        let a = spd(4, 7);
        let mut f = a.clone();
        partial_cholesky_in_place(&mut f, 4).unwrap();
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        for j in 0..4 {
            for i in j..4 {
                assert!((f[(i, j)] - l[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
