//! Dense and partial (frontal) Cholesky factorization.
//!
//! Both entry points share one blocked right-looking driver that factors
//! the leading `pivots` columns of a front **in place**: per `NB`-wide
//! panel it runs an unblocked Cholesky on the diagonal block, a blocked
//! TRSM on everything below it (against a packed copy of the diagonal
//! block, so no aliasing), and a blocked SYRK on the trailing lower
//! triangle. When `pivots == n` that is full Cholesky; when `pivots < n`
//! the trailing block ends up holding exactly the Schur complement
//! `C − L_B L_Bᵀ` — the multifrontal update matrix (§3.2) — because the
//! right-looking trailing updates accumulate it panel by panel. Unlike the
//! earlier implementation there are no `block()`/`set_block()` round
//! trips, so a warm [`KernelScratch`] makes the whole factorization
//! allocation-free.

use std::error::Error;
use std::fmt;

use crate::kernels::{
    syrk_core_g, trsm_core_g, Accum, KernelScratch, MutView, Scalar, View, MR, MR_F32, NR, NR_F32,
};
use crate::{Mat, NumericMode};

/// The matrix handed to a Cholesky factorization was not (numerically)
/// symmetric positive definite.
///
/// Carries the column at which a non-positive pivot was encountered, which in
/// the SLAM backend identifies the offending variable block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefiniteError {
    col: usize,
}

impl NotPositiveDefiniteError {
    /// Column index of the failing pivot.
    pub fn col(&self) -> usize {
        self.col
    }
}

impl fmt::Display for NotPositiveDefiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is not positive definite at column {}", self.col)
    }
}

impl Error for NotPositiveDefiniteError {}

/// Panel width of the blocked factorization: panels stay in cache and the
/// below-panel / trailing updates run through the packed BLAS-3 kernels.
/// Defined next to the kernels so [`KernelScratch::reserve`] can pre-size
/// the triangular-panel buffer to `NB²`.
const NB: usize = crate::kernels::CHOL_NB;

/// Factors the leading `pivots` columns of the `total × total` column-major
/// matrix in `data` (leading dimension `ld`), right-looking: after the last
/// panel, columns `0..pivots` hold `L_A` over `L_B` and the trailing
/// `(total − pivots)²` lower triangle holds `C − L_B L_Bᵀ`.
///
/// Generic over the storage scalar `S` and accumulator `A` with the
/// mode's microkernel tile constants, so the same driver serves every
/// [`NumericMode`]; the f64 instantiation is the historic driver operation
/// for operation.
fn factor_columns_g<S: Scalar, A: Accum<S>, const MR_: usize, const NR_: usize>(
    data: &mut [S],
    ld: usize,
    total: usize,
    pivots: usize,
    scratch: &mut KernelScratch,
) -> Result<(), NotPositiveDefiniteError> {
    let mut k = 0usize;
    while k < pivots {
        let b = NB.min(pivots - k);
        cholesky_unblocked_raw_g::<S, A>(data, ld, k, b)?;
        let below = total - k - b;
        if below > 0 {
            // Solve the full subcolumn against a packed copy of the diagonal
            // block (separate storage, so the blocked TRSM can read L while
            // writing the same columns of the front).
            let mut lbuf = S::take_panel(scratch, b * b);
            for j in 0..b {
                let src = &data[(k + j) * ld + k..(k + j) * ld + k + b];
                lbuf[j * b..(j + 1) * b].copy_from_slice(src);
            }
            let lview = View::raw(&lbuf, b, 0, 0, b, b, false);
            trsm_core_g::<S, A, MR_, NR_>(&lview, data, ld, k + b, k, below, b, scratch);
            S::put_panel(scratch, lbuf);

            // Trailing update: the panel's columns and the trailing block
            // are disjoint column ranges, so a column split gives aliasing-
            // free views into the same front.
            let (left, right) = data.split_at_mut((k + b) * ld);
            let aview = View::raw(left, ld, k + b, k, below, b, false);
            let mut cview = MutView::raw(right, ld, k + b, 0, below, below);
            syrk_core_g::<S, A, MR_, NR_>(-S::ONE, &aview, &mut cview, scratch);
        }
        k += b;
    }
    Ok(())
}

/// f64 instantiation of [`factor_columns_g`].
fn factor_columns(
    data: &mut [f64],
    ld: usize,
    total: usize,
    pivots: usize,
    scratch: &mut KernelScratch,
) -> Result<(), NotPositiveDefiniteError> {
    factor_columns_g::<f64, f64, MR, NR>(data, ld, total, pivots, scratch)
}

/// Unblocked left-looking Cholesky of the `b × b` diagonal block at
/// `(k, k)`; zeroes the block's strict upper triangle and reports pivot
/// failures in global column coordinates. Dot products accumulate in `A`
/// (the mixed mode keeps its wide accumulation even on the diagonal
/// block); pivot positivity and finiteness are checked in `A` before the
/// root is rounded back into storage.
fn cholesky_unblocked_raw_g<S: Scalar, A: Accum<S>>(
    data: &mut [S],
    ld: usize,
    k: usize,
    b: usize,
) -> Result<(), NotPositiveDefiniteError> {
    cholesky_unblocked_offs_g::<S, A>(data, ld, k, k, b, k)
}

/// Offset-split variant of [`cholesky_unblocked_raw_g`]: the diagonal block
/// sits at storage row `row0`, storage *column* `col0` (the historic entry
/// conflates the two — a column strip stores the same rows at a shifted
/// column base), and pivot failures are reported as `err_base + j` so a
/// strip-local call still reports front-global columns. Same arithmetic,
/// operation for operation.
pub(crate) fn cholesky_unblocked_offs_g<S: Scalar, A: Accum<S>>(
    data: &mut [S],
    ld: usize,
    row0: usize,
    col0: usize,
    b: usize,
    err_base: usize,
) -> Result<(), NotPositiveDefiniteError> {
    for j in 0..b {
        let cj = (col0 + j) * ld + row0;
        // d = a[j,j] - Σ_{p<j} L[j,p]²
        let mut d = A::promote(data[cj + j]);
        for p in 0..j {
            let ljp = data[(col0 + p) * ld + row0 + j];
            d -= A::promote(ljp * ljp);
        }
        if !(d > A::ZERO) || !d.is_finite() {
            return Err(NotPositiveDefiniteError { col: err_base + j });
        }
        let djj = A::demote(d.sqrt());
        data[cj + j] = djj;
        for i in (j + 1)..b {
            let mut s = A::promote(data[cj + i]);
            for p in 0..j {
                s -=
                    A::promote(data[(col0 + p) * ld + row0 + i] * data[(col0 + p) * ld + row0 + j]);
            }
            data[cj + i] = A::demote(s / A::promote(djj));
        }
        for i in 0..j {
            data[cj + i] = S::ZERO;
        }
    }
    Ok(())
}

/// Zeroes the strict upper triangle of the leading `n × n` block.
fn zero_strict_upper<S: Scalar>(data: &mut [S], ld: usize, n: usize) {
    for j in 1..n {
        for x in &mut data[j * ld..j * ld + j.min(ld)] {
            *x = S::ZERO;
        }
    }
}

/// Factors a symmetric positive-definite matrix in place: on success the
/// lower triangle of `a` holds `L` with `a = L Lᵀ`.
///
/// Only the lower triangle of the input is read; the strict upper triangle is
/// zeroed on success so the result can be used directly as `L`. Allocating
/// wrapper over [`cholesky_in_place_scratch`].
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] when a pivot is not strictly
/// positive; the matrix is left partially factored in that case.
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Example
///
/// ```
/// use supernova_linalg::{cholesky_in_place, Mat};
///
/// let mut a = Mat::from_rows(2, 2, &[4.0, 2.0, 2.0, 5.0]);
/// cholesky_in_place(&mut a)?;
/// assert_eq!(a[(0, 0)], 2.0);
/// # Ok::<(), supernova_linalg::NotPositiveDefiniteError>(())
/// ```
pub fn cholesky_in_place(a: &mut Mat) -> Result<(), NotPositiveDefiniteError> {
    cholesky_in_place_scratch(a, &mut KernelScratch::new())
}

/// [`cholesky_in_place`] with a caller-owned pack-buffer arena (zero-alloc
/// when warm).
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] when a pivot is not strictly
/// positive.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn cholesky_in_place_scratch(
    a: &mut Mat,
    scratch: &mut KernelScratch,
) -> Result<(), NotPositiveDefiniteError> {
    assert_eq!(a.rows(), a.cols(), "cholesky requires a square matrix");
    let n = a.rows();
    factor_columns(a.as_mut_slice(), n, n, n, scratch)?;
    // Zero the strict upper triangle so the result is usable as L directly.
    zero_strict_upper(a.as_mut_slice(), n, n);
    Ok(())
}

/// Partial factorization of a frontal matrix (§3.2 of the paper).
///
/// `front` is the `(m + n) × (m + n)` symmetric frontal matrix
/// `[[A, ·], [B, C]]` with only the lower triangle stored; `m = pivots` is
/// the number of columns that belong to the supernode. On success:
///
/// 1. `A = L_A L_Aᵀ` — the leading `m × m` block holds `L_A`;
/// 2. `L_B L_Aᵀ = B` — the `n × m` subdiagonal block holds `L_B`;
/// 3. `L_C = C − L_B L_Bᵀ` — the trailing `n × n` lower triangle holds the
///    update matrix that is scatter-added into the parent (the *merge* step).
///
/// Allocating wrapper over [`partial_cholesky_scratch`].
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] (with a column index relative to the
/// front) if the pivot block is not positive definite.
///
/// # Panics
///
/// Panics if `front` is not square or `pivots > front.rows()`.
pub fn partial_cholesky_in_place(
    front: &mut Mat,
    pivots: usize,
) -> Result<(), NotPositiveDefiniteError> {
    partial_cholesky_scratch(front, pivots, &mut KernelScratch::new())
}

/// [`partial_cholesky_in_place`] with a caller-owned pack-buffer arena —
/// the multifrontal executor's per-worker hot path (zero-alloc when warm).
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] (with a column index relative to the
/// front) if the pivot block is not positive definite.
///
/// # Panics
///
/// Panics if `front` is not square or `pivots > front.rows()`.
pub fn partial_cholesky_scratch(
    front: &mut Mat,
    pivots: usize,
    scratch: &mut KernelScratch,
) -> Result<(), NotPositiveDefiniteError> {
    assert_eq!(front.rows(), front.cols(), "frontal matrix must be square");
    let total = front.rows();
    assert!(pivots <= total, "pivot count exceeds front size");
    factor_columns(front.as_mut_slice(), total, total, pivots, scratch)?;
    // The pivot block's strict upper triangle is zeroed (so the leading
    // columns are usable as L directly); everything right of the pivot
    // columns is left untouched, as before.
    zero_strict_upper(front.as_mut_slice(), total, pivots);
    Ok(())
}

/// [`partial_cholesky_scratch`] under a runtime [`NumericMode`] — the
/// executor's per-worker hot path when a narrow mode is selected.
///
/// `F64` runs the historic f64 driver directly on the front. The narrow
/// modes demote the front into the arena's f32 shadow, factor it with the
/// mode's monomorphized engine (`F32`: f32 accumulation, 8×4 tiles;
/// `F32F64`: f64 accumulation, 4×4 tiles) and promote the result back —
/// exactly, since every f32 is representable in f64 — so downstream
/// merge/solve/serialization stay f64 and per-mode bit-identity across
/// thread counts follows from the kernels' shape-pure dispatch. This
/// models the paper's FP32 COMP systolic array: narrow datapath in the
/// factorization, full-width bookkeeping around it.
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] (with a column index relative to
/// the front) if the pivot block is not positive definite *in the chosen
/// precision* — a front can be SPD in f64 yet fail in f32, which is
/// precisely the signal the mode exists to measure.
///
/// # Panics
///
/// Panics if `front` is not square or `pivots > front.rows()`.
pub fn partial_cholesky_scratch_mode(
    front: &mut Mat,
    pivots: usize,
    scratch: &mut KernelScratch,
    mode: NumericMode,
) -> Result<(), NotPositiveDefiniteError> {
    if mode == NumericMode::F64 {
        return partial_cholesky_scratch(front, pivots, scratch);
    }
    assert_eq!(front.rows(), front.cols(), "frontal matrix must be square");
    let total = front.rows();
    assert!(pivots <= total, "pivot count exceeds front size");
    let elems = total * total;
    let mut shadow = scratch.take_front32(elems);
    for (d, &s) in shadow.iter_mut().zip(front.as_slice()) {
        *d = s as f32;
    }
    let result = match mode {
        NumericMode::F32 => {
            factor_columns_g::<f32, f32, MR_F32, NR_F32>(&mut shadow, total, total, pivots, scratch)
        }
        NumericMode::F32F64 | NumericMode::F64 => {
            factor_columns_g::<f32, f64, MR, NR>(&mut shadow, total, total, pivots, scratch)
        }
    };
    // Promote back even on error so the front reflects the partial state,
    // mirroring the f64 path's contract.
    for (d, &s) in front.as_mut_slice().iter_mut().zip(shadow.iter()) {
        *d = s as f64;
    }
    scratch.put_front32(shadow);
    result?;
    zero_strict_upper(front.as_mut_slice(), total, pivots);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm, syrk_lower, Transpose};

    fn spd(n: usize, seed: u64) -> Mat {
        // Deterministic pseudo-random well-conditioned SPD matrix.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        let g = Mat::from_fn(n, n, |_, _| next());
        let mut a = Mat::from_diag(&vec![n as f64; n]);
        syrk_lower(1.0, &g, 1.0, &mut a);
        // Mirror lower to upper for reconstruction checks.
        Mat::from_fn(n, n, |r, c| if r >= c { a[(r, c)] } else { a[(c, r)] })
    }

    fn reconstruct(l: &Mat) -> Mat {
        let mut out = Mat::zeros(l.rows(), l.rows());
        gemm(1.0, l, Transpose::No, l, Transpose::Yes, 0.0, &mut out);
        out
    }

    #[test]
    fn cholesky_reconstructs() {
        for n in [1, 2, 5, 12, 47, 48, 49, 100, 150] {
            let a = spd(n, n as u64);
            let mut l = a.clone();
            cholesky_in_place(&mut l).unwrap();
            let r = reconstruct(&l);
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (r[(i, j)] - a[(i, j)]).abs() < 1e-8 * (n as f64),
                        "mismatch at ({i},{j}) for n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = Mat::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]);
        let err = cholesky_in_place(&mut a).unwrap_err();
        assert_eq!(err.col(), 1);
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn blocked_path_reports_global_pivot_column() {
        // SPD except one late diagonal entry poisoned: the failure column
        // must be reported in global coordinates even on the blocked path.
        let n = 96;
        let mut a = spd(n, 5);
        a[(70, 70)] = -1e6;
        let err = cholesky_in_place(&mut a).unwrap_err();
        assert_eq!(err.col(), 70);
    }

    #[test]
    fn cholesky_rejects_nan() {
        let mut a = Mat::from_rows(1, 1, &[f64::NAN]);
        assert!(cholesky_in_place(&mut a).is_err());
    }

    #[test]
    fn scratch_variant_is_bit_identical() {
        // Same code path with or without a warm arena: scratch contents
        // must never leak into values.
        let a = spd(120, 9);
        let mut plain = a.clone();
        cholesky_in_place(&mut plain).unwrap();
        let mut scratch = KernelScratch::with_capacity(crate::kernels::pack_elems_bound(120));
        let mut warm = a.clone();
        cholesky_in_place_scratch(&mut warm, &mut scratch).unwrap();
        // Run again warm to ensure reuse doesn't perturb anything.
        let mut warm2 = a.clone();
        cholesky_in_place_scratch(&mut warm2, &mut scratch).unwrap();
        for (x, y) in plain.as_slice().iter().zip(warm.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in warm.as_slice().iter().zip(warm2.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn partial_factorization_matches_full() {
        // Factor the full SPD matrix, then verify the partial factorization
        // of the front reproduces the leading columns and the Schur
        // complement C − L_B L_Bᵀ.
        let n_total = 7;
        let pivots = 3;
        let a = spd(n_total, 42);
        let mut full = a.clone();
        cholesky_in_place(&mut full).unwrap();

        let mut front = a.clone();
        partial_cholesky_in_place(&mut front, pivots).unwrap();

        // Leading `pivots` columns of L agree.
        for j in 0..pivots {
            for i in j..n_total {
                assert!(
                    (front[(i, j)] - full[(i, j)]).abs() < 1e-9,
                    "column {j} row {i} differs"
                );
            }
        }
        // Trailing block equals the Schur complement, i.e. what full
        // factorization would factor next: L_C = L_22 L_22ᵀ of the remainder.
        let rest = n_total - pivots;
        let l22 = full.block(pivots, pivots, rest, rest);
        let mut schur = Mat::zeros(rest, rest);
        gemm(
            1.0,
            &l22,
            Transpose::No,
            &l22,
            Transpose::Yes,
            0.0,
            &mut schur,
        );
        for j in 0..rest {
            for i in j..rest {
                assert!(
                    (front[(pivots + i, pivots + j)] - schur[(i, j)]).abs() < 1e-8,
                    "schur ({i},{j}) differs"
                );
            }
        }
    }

    #[test]
    fn partial_factorization_matches_full_multi_panel() {
        // Pivot count spanning several NB panels, remainder forcing the
        // right-looking Schur accumulation across panels.
        let n_total = 140;
        let pivots = 110;
        let a = spd(n_total, 17);
        let mut full = a.clone();
        cholesky_in_place(&mut full).unwrap();
        let mut front = a.clone();
        partial_cholesky_in_place(&mut front, pivots).unwrap();
        for j in 0..pivots {
            for i in j..n_total {
                assert!(
                    (front[(i, j)] - full[(i, j)]).abs() < 1e-6,
                    "column {j} row {i} differs"
                );
            }
        }
        let rest = n_total - pivots;
        let l22 = full.block(pivots, pivots, rest, rest);
        let mut schur = Mat::zeros(rest, rest);
        gemm(
            1.0,
            &l22,
            Transpose::No,
            &l22,
            Transpose::Yes,
            0.0,
            &mut schur,
        );
        for j in 0..rest {
            for i in j..rest {
                assert!(
                    (front[(pivots + i, pivots + j)] - schur[(i, j)]).abs() < 1e-5,
                    "schur ({i},{j}) differs"
                );
            }
        }
    }

    #[test]
    fn partial_with_zero_remainder_is_plain_cholesky() {
        let a = spd(4, 7);
        let mut f = a.clone();
        partial_cholesky_in_place(&mut f, 4).unwrap();
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        for j in 0..4 {
            for i in j..4 {
                assert!((f[(i, j)] - l[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn partial_with_zero_pivots_leaves_front_untouched_values() {
        let a = spd(5, 3);
        let mut f = a.clone();
        partial_cholesky_in_place(&mut f, 0).unwrap();
        for (x, y) in f.as_slice().iter().zip(a.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
