//! Dense triangular solves with a lower-triangular factor.

use crate::Mat;

/// Solves `L y = b` in place for lower-triangular `L`, overwriting `b` with
/// `y` (forward substitution).
///
/// Only the lower triangle of `l` is read.
///
/// # Panics
///
/// Panics if `l` is not square or `b.len() != l.rows()`.
///
/// # Example
///
/// ```
/// use supernova_linalg::{solve_lower, Mat};
///
/// let l = Mat::from_rows(2, 2, &[2.0, 0.0, 1.0, 3.0]);
/// let mut b = vec![4.0, 8.0];
/// solve_lower(&l, &mut b);
/// assert_eq!(b, vec![2.0, 2.0]);
/// ```
pub fn solve_lower(l: &Mat, b: &mut [f64]) {
    assert_eq!(l.rows(), l.cols(), "triangle must be square");
    assert_eq!(b.len(), l.rows(), "rhs length mismatch");
    let n = l.rows();
    for j in 0..n {
        let yj = b[j] / l[(j, j)];
        b[j] = yj;
        // lint: allow(float-eq) — structural-zero skip: exact zeros from sparsity
        if yj != 0.0 {
            let col = l.col(j);
            for i in (j + 1)..n {
                b[i] -= col[i] * yj;
            }
        }
    }
}

/// Solves `Lᵀ x = b` in place for lower-triangular `L`, overwriting `b` with
/// `x` (backward substitution).
///
/// Only the lower triangle of `l` is read.
///
/// # Panics
///
/// Panics if `l` is not square or `b.len() != l.rows()`.
pub fn solve_lower_transpose(l: &Mat, b: &mut [f64]) {
    assert_eq!(l.rows(), l.cols(), "triangle must be square");
    assert_eq!(b.len(), l.rows(), "rhs length mismatch");
    let n = l.rows();
    for j in (0..n).rev() {
        let col = l.col(j);
        let mut s = b[j];
        for i in (j + 1)..n {
            s -= col[i] * b[i];
        }
        b[j] = s / col[j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky_in_place;

    #[test]
    fn forward_backward_solve_spd_system() {
        let a = Mat::from_rows(3, 3, &[10.0, 2.0, 1.0, 2.0, 8.0, 0.5, 1.0, 0.5, 6.0]);
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        let mut x = b;
        solve_lower(&l, &mut x);
        solve_lower_transpose(&l, &mut x);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_identity_is_noop() {
        let l = Mat::identity(4);
        let mut b = vec![1.0, 2.0, 3.0, 4.0];
        solve_lower(&l, &mut b);
        assert_eq!(b, vec![1.0, 2.0, 3.0, 4.0]);
        solve_lower_transpose(&l, &mut b);
        assert_eq!(b, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn solve_ignores_upper_triangle_garbage() {
        let mut l = Mat::from_rows(2, 2, &[2.0, 99.0, 1.0, 3.0]);
        l[(0, 1)] = 99.0;
        let mut b = vec![4.0, 8.0];
        solve_lower(&l, &mut b);
        assert_eq!(b, vec![2.0, 2.0]);
    }
}
