//! Server and per-session statistics snapshots.

use supernova_metrics::Histogram;

use crate::session::SessionId;

/// Latency histogram shape used for step latencies: 0.25 ms buckets up to
/// 250 ms, saturating above (the saturated bucket reports the recorded
/// maximum, so long-tail steps are still visible).
const LATENCY_BUCKET_SECONDS: f64 = 0.000_25;
const LATENCY_BUCKETS: usize = 1000;

/// Running statistics of one session.
#[derive(Clone, Debug)]
pub struct SessionStats {
    latency: Histogram,
    /// Steps applied at each degradation level (index = level).
    degraded_steps: Vec<u64>,
    max_queue_depth: usize,
    shed: u64,
}

impl SessionStats {
    /// Empty statistics able to count `degradation_levels + 1` levels.
    pub fn new(degradation_levels: u8) -> Self {
        SessionStats {
            latency: Histogram::new(LATENCY_BUCKET_SECONDS, LATENCY_BUCKETS),
            degraded_steps: vec![0; usize::from(degradation_levels) + 1],
            max_queue_depth: 0,
            shed: 0,
        }
    }

    /// Records one applied update: its processing wall time and the
    /// degradation level it ran at.
    pub fn record_step(&mut self, seconds: f64, level: u8) {
        self.latency.record(seconds);
        let idx = usize::from(level).min(self.degraded_steps.len() - 1);
        self.degraded_steps[idx] += 1;
    }

    /// Records an observed queue depth (tracks the high-water mark).
    pub fn record_depth(&mut self, depth: usize) {
        self.max_queue_depth = self.max_queue_depth.max(depth);
    }

    /// Records one shed (queue-full) update.
    pub fn record_shed(&mut self) {
        self.shed += 1;
    }

    /// The step-latency histogram.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Steps applied at each degradation level (index = level).
    pub fn degraded_steps(&self) -> &[u64] {
        &self.degraded_steps
    }

    /// Highest queue depth ever observed.
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }

    /// Updates shed at this session's queue.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

/// One session's row in a [`ServerStats`] snapshot.
#[derive(Clone, Debug)]
pub struct SessionSnapshot {
    /// The session.
    pub session: SessionId,
    /// Updates fully applied so far.
    pub completed: u64,
    /// Updates shed at admission.
    pub shed: u64,
    /// Updates queued right now.
    pub queue_depth: usize,
    /// Highest queue depth ever observed.
    pub max_queue_depth: usize,
    /// Median step latency in seconds.
    pub p50_seconds: f64,
    /// 95th-percentile step latency in seconds.
    pub p95_seconds: f64,
    /// 99th-percentile step latency in seconds.
    pub p99_seconds: f64,
    /// Largest recorded step latency in seconds.
    pub max_seconds: f64,
    /// Steps applied at each degradation level (index = level).
    pub degraded_steps: Vec<u64>,
}

/// A point-in-time snapshot of the whole server.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Per-session rows, ascending session id.
    pub sessions: Vec<SessionSnapshot>,
    /// The server's current degradation level.
    pub degradation_level: u8,
    /// Steps applied at each degradation level across all sessions, dead
    /// and alive (index = level).
    pub degradation_histogram: Vec<u64>,
    /// Total updates applied (live sessions only).
    pub total_completed: u64,
    /// Total updates shed at full queues (including closed sessions).
    pub total_shed: u64,
    /// Session creations refused at the pool limit.
    pub rejected_creates: u64,
    /// Total updates queued right now.
    pub total_queue_depth: usize,
    /// Aggregate latency percentiles across live sessions (p50, p95, p99),
    /// in seconds.
    pub aggregate_latency: (f64, f64, f64),
}

impl ServerStats {
    /// Whether any step anywhere ran degraded.
    pub fn any_degraded(&self) -> bool {
        self.degradation_histogram.iter().skip(1).any(|&c| c > 0)
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "server: level {} | completed {} | shed {} | queued {} | agg p50/p95/p99 \
             {:.2}/{:.2}/{:.2} ms",
            self.degradation_level,
            self.total_completed,
            self.total_shed,
            self.total_queue_depth,
            self.aggregate_latency.0 * 1e3,
            self.aggregate_latency.1 * 1e3,
            self.aggregate_latency.2 * 1e3,
        )?;
        for s in &self.sessions {
            writeln!(
                f,
                "  {}: {} done, {} shed, depth {}/{} max, p50 {:.2} ms, p95 {:.2} ms, p99 \
                 {:.2} ms",
                s.session,
                s.completed,
                s.shed,
                s.queue_depth,
                s.max_queue_depth,
                s.p50_seconds * 1e3,
                s.p95_seconds * 1e3,
                s.p99_seconds * 1e3,
            )?;
        }
        Ok(())
    }
}

/// Builds the latency histogram shape shared by all sessions (exposed so
/// aggregations outside the crate can merge into a matching shape).
pub(crate) fn latency_histogram() -> Histogram {
    Histogram::new(LATENCY_BUCKET_SECONDS, LATENCY_BUCKETS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_stats_track_levels_and_depth() {
        let mut s = SessionStats::new(2);
        s.record_step(0.001, 0);
        s.record_step(0.002, 2);
        s.record_step(0.002, 7); // clamped into the top level
        s.record_depth(3);
        s.record_depth(1);
        s.record_shed();
        assert_eq!(s.degraded_steps(), &[1, 0, 2]);
        assert_eq!(s.max_queue_depth(), 3);
        assert_eq!(s.shed(), 1);
        assert_eq!(s.latency().count(), 3);
    }
}
