//! The replay-serving session service: the request handler and
//! connection loop shared by the `serve_tcp` binary and the fleet shard
//! harness.
//!
//! Every connection must open with a [`Request::Hello`] naming the
//! protocol version; any other first frame — or an unsupported version —
//! is refused with a typed [`AdmissionError::ProtocolMismatch`] rendered
//! as an error response, and the connection closes. Decode failures never
//! panic the server.

use std::collections::BTreeMap;
use std::io::BufWriter;
use std::net::TcpStream;

use supernova_datasets::{Dataset, OnlineStep};
use supernova_factors::Key;

use crate::checkpoint::{decode_snapshot, encode_snapshot};
use crate::protocol::{
    recv_request, send_response, DatasetKind, Request, Response, WireError, PROTOCOL_VERSION,
};
use crate::{AdmissionError, Server, SessionId, UpdateRequest};

/// Server-side replay state of one session: its generator descriptor, the
/// regenerated step stream, and how far the client has pushed it.
pub struct Replay {
    /// The generator family.
    pub kind: DatasetKind,
    /// Online steps in the full replayed trajectory.
    pub total_steps: u32,
    /// Generator seed.
    pub seed: u64,
    /// The regenerated step stream.
    pub steps: Vec<OnlineStep>,
    /// Steps already submitted into the session's queue.
    pub cursor: usize,
}

/// Regenerates the dataset a session replays.
pub fn generate(kind: DatasetKind, steps: u32, seed: u64) -> Dataset {
    match kind {
        DatasetKind::Manhattan => Dataset::manhattan_seeded(steps as usize, seed),
        DatasetKind::Sphere => Dataset::sphere_seeded(steps as usize, seed),
    }
}

/// Applies one request. Returns the response and whether the server
/// should shut down after sending it.
pub fn handle(
    server: &Server,
    replays: &mut BTreeMap<u64, Replay>,
    req: Request,
) -> (Response, bool) {
    match req {
        Request::Hello { .. } => (
            // Version agreement was checked at connection open; a repeated
            // hello is an idempotent no-op.
            Response::Hello {
                version: PROTOCOL_VERSION,
            },
            false,
        ),
        Request::CreateSession { kind, steps, seed } => match server.create_session() {
            Ok(sid) => {
                let ds = generate(kind, steps, seed);
                replays.insert(
                    sid.0,
                    Replay {
                        kind,
                        total_steps: steps,
                        seed,
                        steps: ds.online_steps(),
                        cursor: 0,
                    },
                );
                (Response::Created { session: sid.0 }, false)
            }
            Err(e) => (Response::Error(e.to_string()), false),
        },
        Request::Submit {
            session,
            deadline,
            count,
        } => {
            let Some(replay) = replays.get_mut(&session) else {
                return (
                    Response::Error(AdmissionError::UnknownSession(SessionId(session)).to_string()),
                    false,
                );
            };
            let mut accepted = 0u32;
            let mut shed = 0u32;
            for i in 0..count {
                let Some(step) = replay.steps.get(replay.cursor) else {
                    break; // the replayed trajectory is exhausted
                };
                replay.cursor += 1;
                let req = UpdateRequest::new(
                    deadline + u64::from(i),
                    step.truth.clone(),
                    step.factors.clone(),
                );
                match server.submit(SessionId(session), req) {
                    Ok(()) => accepted += 1,
                    Err(AdmissionError::QueueFull { .. }) => shed += 1,
                    Err(e) => return (Response::Error(e.to_string()), false),
                }
            }
            (Response::Submitted { accepted, shed }, false)
        }
        Request::QueryEstimate { session } => match server.estimate(SessionId(session)) {
            Ok(values) => {
                let vars = (0..values.len())
                    .map(|i| values.get(Key(i)).clone())
                    .collect();
                (Response::Estimate(vars), false)
            }
            Err(e) => (Response::Error(e.to_string()), false),
        },
        Request::Close { session } => match server.close(SessionId(session)) {
            Ok(report) => {
                replays.remove(&session);
                (
                    Response::Closed {
                        completed: report.completed,
                        shed: report.shed,
                    },
                    false,
                )
            }
            Err(e) => (Response::Error(e.to_string()), false),
        },
        Request::Shutdown => (Response::ShuttingDown, true),
        Request::Snapshot { session } => {
            let Some(replay) = replays.get(&session) else {
                return (
                    Response::Error(AdmissionError::UnknownSession(SessionId(session)).to_string()),
                    false,
                );
            };
            match server.snapshot_session(SessionId(session)) {
                Ok(snap) => match encode_snapshot(&snap) {
                    Ok(bytes) => (
                        Response::Snapshot {
                            kind: replay.kind,
                            steps: replay.total_steps,
                            seed: replay.seed,
                            cursor: replay.cursor as u64,
                            applied: snap.updates.len() as u64,
                            checkpoint: bytes,
                        },
                        false,
                    ),
                    Err(e) => (Response::Error(format!("checkpoint encode: {e}")), false),
                },
                Err(e) => (Response::Error(e.to_string()), false),
            }
        }
        Request::Restore {
            kind,
            steps,
            seed,
            cursor,
            checkpoint,
        } => {
            let snap = match decode_snapshot(&checkpoint) {
                Ok(snap) => snap,
                Err(e) => return (Response::Error(format!("checkpoint rejected: {e}")), false),
            };
            let ds = generate(kind, steps, seed);
            let all = ds.online_steps();
            if cursor as usize > all.len() || (snap.updates.len() as u64) > cursor {
                return (
                    Response::Error(format!(
                        "checkpoint rejected: cursor {cursor} inconsistent with {} applied \
                         updates over a {}-step trajectory",
                        snap.updates.len(),
                        all.len()
                    )),
                    false,
                );
            }
            match server.restore_session(&snap) {
                Ok(sid) => {
                    replays.insert(
                        sid.0,
                        Replay {
                            kind,
                            total_steps: steps,
                            seed,
                            steps: all,
                            cursor: cursor as usize,
                        },
                    );
                    (Response::Created { session: sid.0 }, false)
                }
                Err(e) => (Response::Error(e.to_string()), false),
            }
        }
    }
}

/// Serves one connection until the peer hangs up or requests shutdown.
/// Returns whether the whole server should stop.
///
/// # Errors
///
/// Transport errors only; protocol violations (bad hello, malformed
/// frames) are answered with an error response and a clean `Ok(false)`.
pub fn serve_connection(
    stream: TcpStream,
    server: &Server,
    replays: &mut BTreeMap<u64, Replay>,
) -> Result<bool, WireError> {
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    let mut hello_done = false;
    loop {
        let req = match recv_request(&mut reader) {
            Ok(req) => req,
            Err(WireError::Closed) => return Ok(false),
            Err(WireError::Malformed(why)) => {
                // Framing survives a bad payload; tell the peer and drop
                // the connection (resync is not worth the complexity).
                let _ = send_response(&mut writer, &Response::Error(format!("malformed: {why}")));
                return Ok(false);
            }
            Err(e) => return Err(e),
        };
        if !hello_done {
            let client = match req {
                Request::Hello { version } => Some(version),
                _ => None,
            };
            if client != Some(PROTOCOL_VERSION) {
                let refusal = AdmissionError::ProtocolMismatch {
                    client,
                    supported: PROTOCOL_VERSION,
                };
                let _ = send_response(&mut writer, &Response::Error(refusal.to_string()));
                return Ok(false);
            }
            hello_done = true;
        }
        let (rsp, stop) = handle(server, replays, req);
        send_response(&mut writer, &rsp)?;
        if stop {
            return Ok(true);
        }
    }
}
