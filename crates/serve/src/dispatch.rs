//! The deadline-aware dispatcher: a fixed worker pool over the engine pool.
//!
//! Scheduling discipline:
//!
//! - **Earliest deadline first.** A worker picks the *ready* session (not
//!   busy, non-empty queue) whose head-of-queue request has the smallest
//!   deadline; ties go to the lowest session id. Within one session, updates
//!   apply strictly in submission order.
//! - **Per-session exclusivity.** While a worker applies an update it holds
//!   the session's engine outside the registry lock and the session is
//!   marked busy, so no second worker can touch it. A session therefore
//!   sees a serial, submission-ordered step sequence no matter how many
//!   workers run or how sessions interleave — which is what makes served
//!   estimates bit-identical to solo runs.
//! - **Graceful degradation.** The dispatcher derives a degradation level
//!   from the total queued depth (a deterministic step function) and stamps
//!   it onto the engine's [`StepBudget`](supernova_runtime::StepBudget)
//!   before each step. Overload shrinks per-step relinearization budgets
//!   instead of dropping admitted updates; queues stay bounded by admission
//!   control, not by shedding admitted work.
//!
//! Every dispatched step is recorded as a [`DispatchSpan`] (up to a
//! configured cap) so `supernova-analyze` can check the worker-exclusivity
//! and per-session happens-before invariants on real executions.

use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use supernova_factors::{Key, Values, Variable};
use supernova_hw::Platform;
use supernova_linalg::NumericMode;
use supernova_runtime::{CostModel, SchedulerConfig};
use supernova_solvers::{EngineSnapshot, RaIsam2Config, RestoreError, SolverEngine};
use supernova_sparse::ParallelExecutor;
use supernova_trace::{epoch_seconds, Category, StepKey, Trace, TraceConfig, Tracer};

use crate::admission::{AdmissionController, AdmissionError};
use crate::session::{SessionCloseReport, SessionId, SessionRegistry, UpdateRequest};
use crate::stats::{latency_histogram, ServerStats, SessionSnapshot};

/// Serving-layer configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Dispatcher worker threads. One worker serializes everything (the
    /// deterministic reference); more workers overlap distinct sessions.
    pub workers: usize,
    /// Engine-pool size = maximum concurrent sessions.
    pub max_sessions: usize,
    /// Per-session bounded queue capacity; a full queue sheds updates with
    /// [`AdmissionError::QueueFull`].
    pub queue_capacity: usize,
    /// RA-ISAM2 configuration shared by every pooled engine.
    pub ra: RaIsam2Config,
    /// Platform whose cost model drives relinearization selection.
    pub platform: Platform,
    /// Host-executor width each engine factors with (shared so per-session
    /// results do not depend on which engine a session lands on).
    pub executor_threads: usize,
    /// Numeric precision every pooled engine's dense kernels run under
    /// (shared for the same reason as [`executor_threads`]; see
    /// [`NumericMode`]).
    ///
    /// [`executor_threads`]: ServeConfig::executor_threads
    pub numeric: NumericMode,
    /// Total queued depth up to which the server runs undegraded.
    pub degrade_start: usize,
    /// Additional total depth per extra degradation level beyond the first.
    pub degrade_stride: usize,
    /// Degradation ceiling (each level halves the per-step budget).
    pub max_degradation: u8,
    /// Cap on recorded [`DispatchSpan`]s (0 disables recording).
    pub record_spans: usize,
    /// Unified span-tree tracing (`supernova-trace`). When enabled, every
    /// dispatched step records a full `serve.dispatch` → `solver.step` →
    /// `exec`/`hw` tree retrievable via [`Server::take_traces`]; engines
    /// additionally price each step on [`ServeConfig::platform`] so the
    /// tree reaches down to modeled hardware units. Disabled by default
    /// (zero cost beyond one branch per step).
    pub trace: TraceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_sessions: 8,
            queue_capacity: 64,
            ra: RaIsam2Config::default(),
            platform: Platform::supernova(2),
            executor_threads: 1,
            numeric: NumericMode::default(),
            degrade_start: 16,
            degrade_stride: 8,
            max_degradation: 4,
            record_spans: 65_536,
            trace: TraceConfig::default(),
        }
    }
}

impl ServeConfig {
    /// The degradation level for a total queued depth — a pure step
    /// function, so identical load histories produce identical budgets.
    pub fn level_for_depth(&self, depth: usize) -> u8 {
        if depth <= self.degrade_start {
            return 0;
        }
        let over = depth - self.degrade_start - 1;
        let extra = over / self.degrade_stride.max(1);
        let level = 1 + extra.min(usize::from(u8::MAX) - 1);
        (level as u8).min(self.max_degradation)
    }
}

/// One dispatched step, as executed: which worker applied which session's
/// `seq`-th update over which wall-clock interval (seconds on the
/// process-global trace epoch, the same timeline `supernova-trace` spans
/// use). The analyze crate checks worker exclusivity and per-session
/// ordering over these, and cross-checks them against the unified span
/// trees when tracing is enabled.
#[derive(Clone, Copy, Debug)]
pub struct DispatchSpan {
    /// The worker that applied the update.
    pub worker: usize,
    /// The session the update belonged to.
    pub session: SessionId,
    /// The update's per-session sequence number (0-based submission order).
    pub seq: u64,
    /// Wall-clock start, seconds since server start.
    pub start: f64,
    /// Wall-clock end, seconds since server start.
    pub end: f64,
    /// The degradation level the step ran at.
    pub level: u8,
}

impl DispatchSpan {
    /// The analyze-crate mirror, for
    /// [`validate_dispatch`](supernova_analyze::validate_dispatch).
    pub fn record(&self) -> supernova_analyze::DispatchRecord {
        supernova_analyze::DispatchRecord {
            worker: self.worker,
            session: self.session.0,
            seq: self.seq,
            start: self.start,
            end: self.end,
        }
    }
}

/// Why a checkpoint could not be admitted as a new session.
#[derive(Debug, PartialEq)]
pub enum SessionRestoreError {
    /// Admission refused the session (pool exhausted, shutting down).
    Admission(AdmissionError),
    /// Replay verification rejected the checkpoint.
    Engine(RestoreError),
    /// The checkpoint's numeric mode differs from the server's; restoring
    /// it here could not be bit-identical to the original run.
    NumericMode {
        /// The mode this server's engines run under.
        server: NumericMode,
        /// The mode the checkpoint was taken under.
        checkpoint: NumericMode,
    },
}

impl std::fmt::Display for SessionRestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionRestoreError::Admission(e) => write!(f, "restore refused: {e}"),
            SessionRestoreError::Engine(e) => write!(f, "restore rejected: {e}"),
            SessionRestoreError::NumericMode { server, checkpoint } => write!(
                f,
                "numeric-mode mismatch: server runs {server:?}, checkpoint is {checkpoint:?}"
            ),
        }
    }
}

impl std::error::Error for SessionRestoreError {}

impl From<AdmissionError> for SessionRestoreError {
    fn from(e: AdmissionError) -> Self {
        SessionRestoreError::Admission(e)
    }
}

/// Everything the registry lock protects.
struct State {
    registry: SessionRegistry,
    /// Idle engines (recycled on close).
    pool: Vec<SolverEngine>,
    admission: AdmissionController,
    /// Current degradation level (a function of total queued depth).
    level: u8,
    /// Steps applied at each level, across all sessions ever served.
    level_histogram: Vec<u64>,
    /// Completed updates of closed sessions (live ones count on their
    /// session).
    closed_completed: u64,
    spans: Vec<DispatchSpan>,
    shutdown: bool,
}

struct Inner {
    cfg: ServeConfig,
    state: Mutex<State>,
    /// Signalled when a session may have become ready (or on shutdown).
    work_cv: Condvar,
    /// Signalled when a session may have drained (queue empty, not busy).
    idle_cv: Condvar,
    /// Unified span-tree sink (inert when `cfg.trace` is disabled).
    tracer: Tracer,
}

/// The multi-session server: owns the engine pool and the worker threads.
///
/// See the [crate docs](crate) for the full contract; construct with
/// [`Server::start`], drive with [`Server::create_session`] /
/// [`Server::submit`], observe with [`Server::stats`] and
/// [`Server::spans`]. Dropping the server drains every admitted update,
/// then joins the workers.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers.len())
            .finish()
    }
}

// The registry lock only guards in-memory bookkeeping; a poisoned lock
// means a worker panicked mid-step, and propagating the panic to every
// caller is exactly right — hence the `.unwrap()`s below.
impl Server {
    /// Starts the server: warms `max_sessions` engines and spawns
    /// `workers` dispatcher threads.
    pub fn start(cfg: ServeConfig) -> Self {
        let cost = Arc::new(CostModel::new(cfg.platform.clone()));
        let exec = ParallelExecutor::new(cfg.executor_threads).with_numeric(cfg.numeric);
        let pool = (0..cfg.max_sessions.max(1))
            .map(|_| {
                let mut e = SolverEngine::new(cfg.ra, Arc::clone(&cost) as _);
                e.set_executor(exec.clone());
                if cfg.trace.enabled {
                    e.set_trace(cfg.trace);
                    e.set_trace_hw(cfg.platform.clone(), SchedulerConfig::default());
                }
                e
            })
            .collect::<Vec<_>>();
        let admission = AdmissionController::new(pool.len(), cfg.queue_capacity.max(1));
        let levels = usize::from(cfg.max_degradation) + 1;
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                registry: SessionRegistry::new(),
                pool,
                admission,
                level: 0,
                level_histogram: vec![0; levels],
                closed_completed: 0,
                spans: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            tracer: Tracer::new(cfg.trace),
            cfg,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|w| {
                let inner = Arc::clone(&inner);
                // lint: allow(thread-spawn) — the dispatcher worker pool
                thread::spawn(move || worker_loop(w, &inner))
            })
            .collect();
        Server { inner, workers }
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.cfg
    }

    /// Opens a new session, taking one engine from the pool.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::SessionLimit`] when the pool is exhausted,
    /// [`AdmissionError::ShuttingDown`] after shutdown began.
    pub fn create_session(&self) -> Result<SessionId, AdmissionError> {
        let mut st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
        if st.shutdown {
            return Err(AdmissionError::ShuttingDown);
        }
        let state = &mut *st;
        state.admission.admit_create(&state.registry)?;
        // Admission caps live sessions at the pool size, so an engine is
        // guaranteed free here. lint: allow(unwrap)
        let engine = state.pool.pop().expect("engine pool underflow");
        let levels = self.inner.cfg.max_degradation;
        Ok(state.registry.insert(engine, levels))
    }

    /// Enqueues one update on `session`'s bounded queue.
    ///
    /// # Errors
    ///
    /// Typed refusals per [`AdmissionError`]; on
    /// [`AdmissionError::QueueFull`] the update is counted as shed on both
    /// the server and the session.
    pub fn submit(&self, session: SessionId, req: UpdateRequest) -> Result<(), AdmissionError> {
        let mut st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
        if st.shutdown {
            return Err(AdmissionError::ShuttingDown);
        }
        let state = &mut *st;
        if let Err(e) = state.admission.admit_update(&state.registry, session) {
            if matches!(e, AdmissionError::QueueFull { .. }) {
                if let Some(s) = state.registry.get_mut(session) {
                    s.stats.record_shed();
                }
            }
            return Err(e);
        }
        // lint: allow(unwrap) — admit_update just proved the session is live
        let s = state
            .registry
            .get_mut(session)
            .expect("admitted session exists"); // lint: allow(unwrap)
        s.queue.push_back(req);
        let depth = s.depth();
        s.stats.record_depth(depth);
        state.level = self.inner.cfg.level_for_depth(state.registry.total_depth());
        drop(st);
        self.inner.work_cv.notify_one();
        Ok(())
    }

    /// Updates currently queued on `session` (`None` if it is not live).
    pub fn queue_depth(&self, session: SessionId) -> Option<usize> {
        let st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
        st.registry.get(session).map(|s| s.depth())
    }

    /// Blocks until every admitted update of `session` has been applied.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::UnknownSession`] if the session is not live.
    pub fn drain(&self, session: SessionId) -> Result<(), AdmissionError> {
        let mut st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
        loop {
            match st.registry.get(session) {
                None => return Err(AdmissionError::UnknownSession(session)),
                Some(s) if s.drained() => return Ok(()),
                Some(_) => st = self.inner.idle_cv.wait(st).unwrap(), // lint: allow(unwrap)
            }
        }
    }

    /// Blocks until every admitted update of every session has been applied.
    pub fn drain_all(&self) {
        let mut st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
        while !st.registry.iter().all(|s| s.drained()) {
            st = self.inner.idle_cv.wait(st).unwrap(); // lint: allow(unwrap)
        }
    }

    /// Drains `session`, then returns its full trajectory estimate.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::UnknownSession`] if the session is not live.
    pub fn estimate(&self, session: SessionId) -> Result<Values, AdmissionError> {
        self.drain(session)?;
        let st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
        let s = st
            .registry
            .get(session)
            .ok_or(AdmissionError::UnknownSession(session))?;
        // lint: allow(unwrap) — a drained session is not busy, so it holds its engine
        Ok(s.engine
            .as_ref()
            .expect("drained session holds its engine") // lint: allow(unwrap)
            .estimate())
    }

    /// Drains `session`, then returns its estimate of one pose.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::UnknownSession`] if the session is not live.
    pub fn pose_estimate(&self, session: SessionId, key: Key) -> Result<Variable, AdmissionError> {
        self.drain(session)?;
        let st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
        let s = st
            .registry
            .get(session)
            .ok_or(AdmissionError::UnknownSession(session))?;
        // lint: allow(unwrap) — a drained session is not busy, so it holds its engine
        Ok(s.engine
            .as_ref()
            .expect("drained session holds its engine") // lint: allow(unwrap)
            .pose_estimate(key))
    }

    /// Closes `session`: refuses further updates, drains what was admitted,
    /// recycles the engine back into the pool, and reports the session's
    /// lifetime statistics.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::UnknownSession`] if the session is not live.
    pub fn close(&self, session: SessionId) -> Result<SessionCloseReport, AdmissionError> {
        let mut st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
        match st.registry.get_mut(session) {
            None => return Err(AdmissionError::UnknownSession(session)),
            Some(s) => s.closing = true,
        }
        loop {
            // The session cannot disappear underneath us: removal happens
            // only here, and double-close is rejected above. lint: allow(unwrap)
            let drained = st
                .registry
                .get(session)
                .expect("closing session stays live") // lint: allow(unwrap)
                .drained();
            if drained {
                break;
            }
            st = self.inner.idle_cv.wait(st).unwrap(); // lint: allow(unwrap)
        }
        // lint: allow(unwrap) — same argument as the loop above
        let s = st
            .registry
            .remove(session)
            .expect("closing session stays live"); // lint: allow(unwrap)

        // drained ⇒ not busy ⇒ the engine is home
        let mut engine = s.engine.expect("drained session holds its engine"); // lint: allow(unwrap)
        engine.reset();
        st.pool.push(engine);
        st.closed_completed += s.completed;
        st.level = self.inner.cfg.level_for_depth(st.registry.total_depth());
        Ok(SessionCloseReport {
            session,
            completed: s.completed,
            shed: s.stats.shed(),
            stats: s.stats,
        })
    }

    /// Drains `session`, then captures its engine as a verified-replay
    /// checkpoint (the migration/failover source side). The session stays
    /// live and serviceable afterwards.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::UnknownSession`] if the session is not live.
    pub fn snapshot_session(&self, session: SessionId) -> Result<EngineSnapshot, AdmissionError> {
        self.drain(session)?;
        let st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
        let s = st
            .registry
            .get(session)
            .ok_or(AdmissionError::UnknownSession(session))?;
        // lint: allow(unwrap) — a drained session is not busy, so it holds its engine
        Ok(s.engine
            .as_ref()
            .expect("drained session holds its engine") // lint: allow(unwrap)
            .snapshot())
    }

    /// Opens a new session from a checkpoint (the migration/failover
    /// target side): takes an engine from the pool, replays the
    /// checkpoint's update log and verifies it against its witness. The
    /// new session's sequence counter continues from the checkpoint's
    /// update count, so journal seq numbers stay aligned across the move.
    ///
    /// # Errors
    ///
    /// Typed refusals per [`SessionRestoreError`]; on engine-replay
    /// rejection the engine is reset and returned to the pool, and no
    /// session is left behind.
    pub fn restore_session(
        &self,
        snapshot: &EngineSnapshot,
    ) -> Result<SessionId, SessionRestoreError> {
        if snapshot.numeric_mode != self.inner.cfg.numeric {
            return Err(SessionRestoreError::NumericMode {
                server: self.inner.cfg.numeric,
                checkpoint: snapshot.numeric_mode,
            });
        }
        // Admit and register the session first, then replay outside the
        // lock with the session marked busy — the same engine-out
        // protocol the workers use, so concurrent create_session calls
        // see a consistent pool and can never underflow it.
        let (session, mut engine) = {
            let mut st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
            if st.shutdown {
                return Err(AdmissionError::ShuttingDown.into());
            }
            let state = &mut *st;
            state.admission.admit_create(&state.registry)?;
            // lint: allow(unwrap) — admission caps live sessions at pool size
            let engine = state.pool.pop().expect("engine pool underflow");
            let session = state
                .registry
                .insert(engine, self.inner.cfg.max_degradation);
            // lint: allow(unwrap) — inserted one line above
            let s = state
                .registry
                .get_mut(session)
                .expect("restoring session exists");
            s.busy = true;
            let engine = s.engine.take().expect("fresh session holds its engine"); // lint: allow(unwrap)
            (session, engine)
        };
        let outcome = engine.restore(snapshot);
        let mut st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
        match outcome {
            Ok(()) => {
                // lint: allow(unwrap) — busy sessions cannot be removed
                let s = st
                    .registry
                    .get_mut(session)
                    .expect("busy session stays live");
                s.engine = Some(engine);
                s.busy = false;
                let applied = snapshot.updates.len() as u64;
                s.next_seq = applied;
                s.completed = applied;
                drop(st);
                self.inner.idle_cv.notify_all();
                Ok(session)
            }
            Err(e) => {
                // Roll back: the session never served a request, so it can
                // vanish without anyone observing it.
                st.registry.remove(session);
                engine.reset();
                st.pool.push(engine);
                drop(st);
                self.inner.idle_cv.notify_all();
                Err(SessionRestoreError::Engine(e))
            }
        }
    }

    /// The current degradation level.
    pub fn degradation(&self) -> u8 {
        self.inner.state.lock().unwrap().level // lint: allow(unwrap)
    }

    /// The recorded dispatch spans (up to the configured cap).
    pub fn spans(&self) -> Vec<DispatchSpan> {
        self.inner.state.lock().unwrap().spans.clone() // lint: allow(unwrap)
    }

    /// Drains the unified span trees recorded so far (empty unless
    /// [`ServeConfig::trace`] is enabled), sorted by `(session, seq)`.
    pub fn take_traces(&self) -> Vec<Trace> {
        self.inner.tracer.take()
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> ServerStats {
        let st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
        let mut sessions = Vec::new();
        let mut agg = latency_histogram();
        let mut total_completed = st.closed_completed;
        for s in st.registry.iter() {
            let h = s.stats.latency();
            assert!(agg.merge(h), "all latency histograms share one shape");
            total_completed += s.completed;
            sessions.push(SessionSnapshot {
                session: s.id,
                completed: s.completed,
                shed: s.stats.shed(),
                queue_depth: s.depth(),
                max_queue_depth: s.stats.max_queue_depth(),
                p50_seconds: h.percentile(0.50),
                p95_seconds: h.percentile(0.95),
                p99_seconds: h.percentile(0.99),
                max_seconds: h.max(),
                degraded_steps: s.stats.degraded_steps().to_vec(),
            });
        }
        ServerStats {
            sessions,
            degradation_level: st.level,
            degradation_histogram: st.level_histogram.clone(),
            total_completed,
            total_shed: st.admission.shed_updates(),
            rejected_creates: st.admission.rejected_creates(),
            total_queue_depth: st.registry.total_depth(),
            aggregate_latency: (
                agg.percentile(0.50),
                agg.percentile(0.95),
                agg.percentile(0.99),
            ),
        }
    }

    /// Initiates shutdown and joins the workers. Admitted updates are
    /// drained first; new submissions are refused. Called by `Drop`;
    /// explicit calls are idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.inner.state.lock().unwrap(); // lint: allow(unwrap)
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One dispatcher worker: pick the EDF session, take its engine, step
/// outside the lock, return the engine and account the step.
fn worker_loop(worker: usize, inner: &Inner) {
    loop {
        let (session, req, seq, level, mut engine) = {
            let mut st = inner.state.lock().unwrap(); // lint: allow(unwrap)
            let session = loop {
                if let Some(id) = st.registry.pick_earliest_deadline() {
                    break id;
                }
                // Exit only once no work can ever arrive: shutdown is set
                // and nothing is queued (a busy session's queue may still
                // hold updates; its worker will notify when it finishes).
                if st.shutdown && st.registry.total_depth() == 0 {
                    return;
                }
                st = inner.work_cv.wait(st).unwrap(); // lint: allow(unwrap)
            };
            // lint: allow(unwrap) — picked under the same lock, so still live
            let s = st.registry.get_mut(session).expect("picked session exists");
            s.busy = true;
            // lint: allow(unwrap) — `ready()` requires a non-empty queue
            let req = s
                .queue
                .pop_front()
                .expect("ready session has a head request"); // lint: allow(unwrap)
            let seq = s.next_seq;
            s.next_seq += 1;
            // lint: allow(unwrap) — `ready()` requires not-busy, which pins the engine
            let engine = s.engine.take().expect("non-busy session holds its engine");
            (session, req, seq, st.level, engine)
        };

        engine.set_degradation(level);
        let key = StepKey {
            session: session.0,
            seq,
            step: engine.steps() as u64 + 1,
        };
        let mut builder = inner.tracer.step(key, "serve.dispatch", Category::Serve);
        let t0 = epoch_seconds();
        let _trace = engine.step(req.initial, req.factors);
        let t1 = epoch_seconds();
        if let Some(mut b) = builder.take() {
            b.set_numeric_mode(engine.numeric_mode());
            let root = b.root_mut();
            root.set_track(worker as u32);
            root.counter("level", u64::from(level));
            if let Some(span) = engine.take_step_span() {
                root.child(span);
            }
            inner.tracer.finish(b);
        }

        let mut st = inner.state.lock().unwrap(); // lint: allow(unwrap)
                                                  // lint: allow(unwrap) — close() cannot remove a busy session
        let s = st
            .registry
            .get_mut(session)
            .expect("busy session stays live"); // lint: allow(unwrap)
        s.engine = Some(engine);
        s.busy = false;
        s.completed += 1;
        s.stats.record_step(t1 - t0, level);
        let idx = usize::from(level).min(st.level_histogram.len() - 1);
        st.level_histogram[idx] += 1;
        if st.spans.len() < inner.cfg.record_spans {
            st.spans.push(DispatchSpan {
                worker,
                session,
                seq,
                start: t0,
                end: t1,
                level,
            });
        }
        st.level = inner.cfg.level_for_depth(st.registry.total_depth());
        drop(st);
        // The session just freed may be ready again, and drain()/close()
        // waiters may have been unblocked.
        inner.work_cv.notify_all();
        inner.idle_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supernova_datasets::Dataset;

    fn solo_estimate(ds: &Dataset) -> Values {
        let cost = Arc::new(CostModel::new(Platform::supernova(2)));
        let mut e = SolverEngine::new(RaIsam2Config::default(), cost);
        e.set_executor(ParallelExecutor::new(1));
        for step in &ds.online_steps() {
            e.step(step.truth.clone(), step.factors.clone());
        }
        e.estimate()
    }

    fn submit_all(server: &Server, sid: SessionId, ds: &Dataset) {
        for (i, step) in ds.online_steps().into_iter().enumerate() {
            server
                .submit(sid, UpdateRequest::new(i as u64, step.truth, step.factors))
                .expect("bounded queue large enough for the fixture");
        }
    }

    #[test]
    fn served_sessions_match_solo_bit_for_bit() {
        // Two sessions interleaving across two workers must each produce
        // exactly the solo estimate for their dataset.
        let a = Dataset::manhattan_seeded(40, 9);
        let b = Dataset::sphere_seeded(30, 21);
        let server = Server::start(ServeConfig {
            workers: 2,
            max_sessions: 2,
            queue_capacity: 64,
            ..ServeConfig::default()
        });
        let sa = server.create_session().expect("slot a");
        let sb = server.create_session().expect("slot b");
        submit_all(&server, sa, &a);
        submit_all(&server, sb, &b);
        assert_eq!(server.estimate(sa).expect("live"), solo_estimate(&a));
        assert_eq!(server.estimate(sb).expect("live"), solo_estimate(&b));
        let ra = server.close(sa).expect("close a");
        assert_eq!(ra.completed, 40);
        assert_eq!(ra.shed, 0);
    }

    #[test]
    fn served_f32_sessions_match_solo_f32_bit_for_bit() {
        // The configured numeric mode must reach every pooled engine's
        // kernels: a served f32 session reproduces a solo f32 run exactly.
        let ds = Dataset::manhattan_seeded(30, 5);
        let cost = Arc::new(CostModel::new(Platform::supernova(2)));
        let mut solo = SolverEngine::new(RaIsam2Config::default(), cost);
        solo.set_executor(ParallelExecutor::new(1).with_numeric(NumericMode::F32));
        for step in &ds.online_steps() {
            solo.step(step.truth.clone(), step.factors.clone());
        }
        let server = Server::start(ServeConfig {
            workers: 2,
            max_sessions: 2,
            numeric: NumericMode::F32,
            ..ServeConfig::default()
        });
        let sid = server.create_session().expect("slot");
        submit_all(&server, sid, &ds);
        assert_eq!(server.estimate(sid).expect("live"), solo.estimate());
        let report = server.close(sid).expect("close");
        assert_eq!(report.completed, 30);
    }

    #[test]
    fn session_limit_then_close_frees_a_slot() {
        let server = Server::start(ServeConfig {
            workers: 1,
            max_sessions: 1,
            ..ServeConfig::default()
        });
        let s0 = server.create_session().expect("first slot");
        assert_eq!(
            server.create_session(),
            Err(AdmissionError::SessionLimit { max_sessions: 1 })
        );
        server.close(s0).expect("close");
        let s1 = server.create_session().expect("recycled slot");
        assert_eq!(s1.0, 1, "session ids are never reused");
    }

    #[test]
    fn full_queue_sheds_and_counts() {
        // No workers can keep up with capacity 2 if we stop them from
        // running: use deadline ordering against an already-busy session by
        // submitting faster than a 1-worker server on a tiny queue.
        let server = Server::start(ServeConfig {
            workers: 1,
            max_sessions: 1,
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        let sid = server.create_session().expect("slot");
        let ds = Dataset::manhattan_seeded(12, 3);
        let mut shed = 0u64;
        for (i, step) in ds.online_steps().into_iter().enumerate() {
            match server.submit(sid, UpdateRequest::new(i as u64, step.truth, step.factors)) {
                Ok(()) => {}
                Err(AdmissionError::QueueFull { capacity, .. }) => {
                    assert_eq!(capacity, 2);
                    shed += 1;
                }
                Err(e) => panic!("unexpected admission error {e}"),
            }
        }
        server.drain(sid).expect("live");
        let stats = server.stats();
        assert_eq!(stats.total_shed, shed);
        assert_eq!(stats.sessions[0].completed + shed, 12);
        assert!(
            stats.sessions[0].max_queue_depth <= 2,
            "queue stayed bounded"
        );
    }

    #[test]
    fn degradation_level_follows_queue_depth() {
        let cfg = ServeConfig {
            degrade_start: 4,
            degrade_stride: 2,
            max_degradation: 3,
            ..ServeConfig::default()
        };
        assert_eq!(cfg.level_for_depth(0), 0);
        assert_eq!(cfg.level_for_depth(4), 0);
        assert_eq!(cfg.level_for_depth(5), 1);
        assert_eq!(cfg.level_for_depth(6), 1);
        assert_eq!(cfg.level_for_depth(7), 2);
        assert_eq!(cfg.level_for_depth(9), 3);
        assert_eq!(cfg.level_for_depth(1000), 3, "clamped at the ceiling");
    }

    #[test]
    fn overload_degrades_instead_of_dropping() {
        // A deep backlog (beyond degrade_start) must push the server's
        // level up, and every admitted update must still be applied.
        let server = Server::start(ServeConfig {
            workers: 1,
            max_sessions: 1,
            queue_capacity: 64,
            degrade_start: 2,
            degrade_stride: 2,
            ..ServeConfig::default()
        });
        let sid = server.create_session().expect("slot");
        let ds = Dataset::manhattan_seeded(30, 17);
        submit_all(&server, sid, &ds);
        server.drain(sid).expect("live");
        let stats = server.stats();
        assert_eq!(
            stats.sessions[0].completed, 30,
            "nothing admitted was dropped"
        );
        assert_eq!(stats.total_shed, 0);
        assert!(
            stats.any_degraded(),
            "a 30-deep backlog over degrade_start=2 must degrade: {stats}"
        );
        assert_eq!(server.degradation(), 0, "level recovers once drained");
    }

    #[test]
    fn spans_cover_completed_steps_in_session_order() {
        let server = Server::start(ServeConfig {
            workers: 2,
            max_sessions: 2,
            ..ServeConfig::default()
        });
        let sa = server.create_session().expect("slot a");
        let sb = server.create_session().expect("slot b");
        submit_all(&server, sa, &Dataset::manhattan_seeded(10, 1));
        submit_all(&server, sb, &Dataset::manhattan_seeded(10, 2));
        server.drain_all();
        let spans = server.spans();
        assert_eq!(spans.len(), 20);
        for sid in [sa, sb] {
            let seqs: Vec<u64> = spans
                .iter()
                .filter(|s| s.session == sid)
                .map(|s| s.seq)
                .collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..10).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let mut server = Server::start(ServeConfig {
            workers: 2,
            max_sessions: 1,
            ..ServeConfig::default()
        });
        let sid = server.create_session().expect("slot");
        submit_all(&server, sid, &Dataset::manhattan_seeded(15, 5));
        server.shutdown();
        assert_eq!(
            server.submit(
                sid,
                UpdateRequest::new(
                    0,
                    Variable::Se2(supernova_factors::Se2::identity()),
                    Vec::new()
                )
            ),
            Err(AdmissionError::ShuttingDown)
        );
        let stats = server.stats();
        assert_eq!(stats.total_completed, 15, "shutdown drained the backlog");
    }
}
