//! Session identity, lifecycle state, and the registry.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use supernova_factors::{Factor, Variable};
use supernova_solvers::SolverEngine;

use crate::stats::SessionStats;

/// Opaque handle of one SLAM session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// One queued odometry / loop-closure update: the new pose's initial guess
/// plus every factor arriving with it (exactly one
/// [`OnlineStep`](supernova_datasets::OnlineStep) worth of work).
#[derive(Clone, Debug)]
pub struct UpdateRequest {
    /// Client-assigned logical deadline: the dispatcher serves the session
    /// whose head-of-queue request has the smallest deadline (earliest
    /// deadline first; ties go to the lowest session id). Any monotonic
    /// per-client counter works — load generators use the submission tick.
    pub deadline: u64,
    /// Initial guess for the new pose.
    pub initial: Variable,
    /// Factors arriving with the new pose.
    pub factors: Vec<Arc<dyn Factor>>,
}

impl UpdateRequest {
    /// Convenience constructor.
    pub fn new(deadline: u64, initial: Variable, factors: Vec<Arc<dyn Factor>>) -> Self {
        UpdateRequest {
            deadline,
            initial,
            factors,
        }
    }
}

/// What a closed session leaves behind.
#[derive(Clone, Debug)]
pub struct SessionCloseReport {
    /// The closed session.
    pub session: SessionId,
    /// Updates fully processed over the session's lifetime.
    pub completed: u64,
    /// Updates shed at admission (queue-full rejections).
    pub shed: u64,
    /// Final per-session statistics.
    pub stats: SessionStats,
}

/// One live session: its engine slot, bounded queue, and statistics.
///
/// `engine` is `None` exactly while a worker is stepping the session (the
/// worker holds the engine outside the registry lock); `busy` mirrors that
/// so admission and drain logic never need to touch the engine itself.
#[derive(Debug)]
pub(crate) struct Session {
    pub(crate) id: SessionId,
    pub(crate) engine: Option<SolverEngine>,
    pub(crate) queue: VecDeque<UpdateRequest>,
    /// A worker currently holds the engine and is applying an update.
    pub(crate) busy: bool,
    /// `close()` has begun: no further updates are admitted.
    pub(crate) closing: bool,
    /// Updates fully processed.
    pub(crate) completed: u64,
    /// Monotonic sequence of the next update to be dispatched (for span
    /// ordering checks).
    pub(crate) next_seq: u64,
    pub(crate) stats: SessionStats,
}

impl Session {
    pub(crate) fn new(id: SessionId, engine: SolverEngine, degradation_levels: u8) -> Self {
        Session {
            id,
            engine: Some(engine),
            queue: VecDeque::new(),
            busy: false,
            closing: false,
            completed: 0,
            next_seq: 0,
            stats: SessionStats::new(degradation_levels),
        }
    }

    /// Outstanding (queued, not yet applied) updates.
    pub(crate) fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Whether a worker could pick this session right now.
    pub(crate) fn ready(&self) -> bool {
        !self.busy && !self.queue.is_empty()
    }

    /// Whether all admitted work has been applied.
    pub(crate) fn drained(&self) -> bool {
        !self.busy && self.queue.is_empty()
    }
}

/// The table of live sessions, keyed by id (deterministic iteration order —
/// the EDF tie-break depends on it).
#[derive(Debug, Default)]
pub struct SessionRegistry {
    sessions: BTreeMap<u64, Session>,
    next_id: u64,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live sessions (including closing ones).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session is live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Total queued updates across all sessions — the dispatcher's load
    /// signal for the degradation policy.
    pub fn total_depth(&self) -> usize {
        self.sessions.values().map(Session::depth).sum()
    }

    pub(crate) fn insert(&mut self, engine: SolverEngine, degradation_levels: u8) -> SessionId {
        let id = SessionId(self.next_id);
        self.next_id += 1;
        self.sessions
            .insert(id.0, Session::new(id, engine, degradation_levels));
        id
    }

    pub(crate) fn get(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(&id.0)
    }

    pub(crate) fn get_mut(&mut self, id: SessionId) -> Option<&mut Session> {
        self.sessions.get_mut(&id.0)
    }

    pub(crate) fn remove(&mut self, id: SessionId) -> Option<Session> {
        self.sessions.remove(&id.0)
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &Session> {
        self.sessions.values()
    }

    /// The EDF pick: among ready sessions, the one whose head request has
    /// the earliest deadline; ties go to the lowest session id (ascending
    /// map order makes `<` do exactly that).
    pub(crate) fn pick_earliest_deadline(&self) -> Option<SessionId> {
        let mut best: Option<(u64, SessionId)> = None;
        for s in self.sessions.values().filter(|s| s.ready()) {
            // `ready()` guarantees a head request exists.
            if let Some(head) = s.queue.front() {
                if best.map_or(true, |(d, _)| head.deadline < d) {
                    best = Some((head.deadline, s.id));
                }
            }
        }
        best.map(|(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use supernova_hw::Platform;
    use supernova_runtime::CostModel;
    use supernova_solvers::RaIsam2Config;

    fn engine() -> SolverEngine {
        SolverEngine::new(
            RaIsam2Config::default(),
            Arc::new(CostModel::new(Platform::supernova(2))),
        )
    }

    fn request(deadline: u64) -> UpdateRequest {
        UpdateRequest::new(
            deadline,
            Variable::Se2(supernova_factors::Se2::identity()),
            Vec::new(),
        )
    }

    #[test]
    fn ids_are_sequential_and_stable_across_removal() {
        let mut reg = SessionRegistry::new();
        let a = reg.insert(engine(), 4);
        let b = reg.insert(engine(), 4);
        assert_eq!((a.0, b.0), (0, 1));
        let removed = reg.remove(a).expect("a exists");
        assert_eq!(removed.id, a);
        let c = reg.insert(removed.engine.expect("engine present"), 4);
        assert_eq!(c.0, 2, "ids are never reused");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn edf_picks_earliest_deadline_then_lowest_id() {
        let mut reg = SessionRegistry::new();
        let a = reg.insert(engine(), 4);
        let b = reg.insert(engine(), 4);
        let c = reg.insert(engine(), 4);
        reg.get_mut(a).expect("a").queue.push_back(request(9));
        reg.get_mut(b).expect("b").queue.push_back(request(5));
        reg.get_mut(c).expect("c").queue.push_back(request(5));
        assert_eq!(
            reg.pick_earliest_deadline(),
            Some(b),
            "earliest deadline, lowest id"
        );
        // A busy session is skipped even with the earliest deadline.
        reg.get_mut(b).expect("b").busy = true;
        assert_eq!(reg.pick_earliest_deadline(), Some(c));
        reg.get_mut(c).expect("c").queue.clear();
        assert_eq!(reg.pick_earliest_deadline(), Some(a));
        assert_eq!(reg.total_depth(), 2);
    }
}
