//! The length-prefixed wire protocol `serve_tcp` speaks.
//!
//! Every message is one frame: a little-endian `u32` payload length
//! followed by the payload, whose first byte is a message tag. The protocol
//! is *replay-serving*: a client opens a session by naming a seeded dataset
//! (kind, steps, seed) and the server regenerates the identical step stream
//! on its side — only indices and poses cross the wire, never factors. That
//! keeps the protocol std-only and the served estimates bit-comparable to
//! solo runs of the same seed.
//!
//! Poses are encoded losslessly: an SE(2) as its stored `(cos θ, sin θ)`
//! pair plus translation, an SE(3) as its stored 3×3 rotation matrix
//! (row-major) plus translation. Decoding reconstructs the exact bits, so
//! a round trip through the wire never perturbs an estimate.

use std::io::{Read, Write};

use supernova_factors::{Rot2, Rot3, Se2, Se3, Variable};
use supernova_linalg::Mat;

/// Hard cap on accepted frame payloads (16 MiB): a corrupt or hostile
/// length prefix must not convince the server to allocate unboundedly.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// The protocol version this build speaks. Version 2 added the
/// [`Request::Hello`] handshake (the first frame every connection must
/// send) and the [`Request::Snapshot`]/[`Request::Restore`] pair the fleet
/// router uses for migration and failover. Servers refuse other versions
/// with a typed admission error, never a decode panic.
pub const PROTOCOL_VERSION: u8 = 2;

/// Which seeded dataset a session replays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// [`Dataset::manhattan_seeded`](supernova_datasets::Dataset::manhattan_seeded).
    Manhattan,
    /// [`Dataset::sphere_seeded`](supernova_datasets::Dataset::sphere_seeded).
    Sphere,
}

impl DatasetKind {
    /// The kind's wire byte (also used by the fleet journal).
    pub fn code(self) -> u8 {
        match self {
            DatasetKind::Manhattan => 0,
            DatasetKind::Sphere => 1,
        }
    }

    /// Decodes a wire byte back to a kind.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on an unknown byte.
    pub fn from_code(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(DatasetKind::Manhattan),
            1 => Ok(DatasetKind::Sphere),
            _ => Err(WireError::Malformed("unknown dataset kind")),
        }
    }
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Version handshake; must be the first frame on every connection.
    Hello {
        /// The protocol version the client speaks.
        version: u8,
    },
    /// Open a session replaying a seeded dataset.
    CreateSession {
        /// The generator family.
        kind: DatasetKind,
        /// Online steps in the replayed trajectory.
        steps: u32,
        /// Generator seed.
        seed: u64,
    },
    /// Feed the session's next `count` replay steps into its queue, with
    /// logical deadlines `deadline, deadline + 1, …`.
    Submit {
        /// The target session.
        session: u64,
        /// Logical deadline of the first submitted step.
        deadline: u64,
        /// How many replay steps to submit.
        count: u32,
    },
    /// Drain the session and return its full trajectory estimate.
    QueryEstimate {
        /// The target session.
        session: u64,
    },
    /// Close the session and return its lifetime counters.
    Close {
        /// The target session.
        session: u64,
    },
    /// Stop the server once in-flight work drains.
    Shutdown,
    /// Drain the session and return a checkpoint of its engine state plus
    /// its replay descriptor (migration source side).
    Snapshot {
        /// The target session.
        session: u64,
    },
    /// Recreate a session from a checkpoint (migration/failover target
    /// side): the replay descriptor plus the serialized engine state.
    Restore {
        /// The generator family.
        kind: DatasetKind,
        /// Online steps in the replayed trajectory.
        steps: u32,
        /// Generator seed.
        seed: u64,
        /// Replay cursor: how many steps have already been submitted.
        cursor: u64,
        /// The serialized engine checkpoint (`SNVC` bytes).
        checkpoint: Vec<u8>,
    },
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The server accepted the handshake and states its own version.
    Hello {
        /// The protocol version the server speaks.
        version: u8,
    },
    /// The session was created.
    Created {
        /// Its id.
        session: u64,
    },
    /// A `Submit` outcome: how many steps were enqueued and how many the
    /// bounded queue shed.
    Submitted {
        /// Steps admitted to the queue.
        accepted: u32,
        /// Steps shed (queue full).
        shed: u32,
    },
    /// The drained trajectory estimate, pose per incorporated variable.
    Estimate(
        /// The poses, in key order.
        Vec<Variable>,
    ),
    /// The session closed.
    Closed {
        /// Updates applied over its lifetime.
        completed: u64,
        /// Updates shed over its lifetime.
        shed: u64,
    },
    /// The server acknowledged `Shutdown` and will exit.
    ShuttingDown,
    /// The drained session's checkpoint and replay descriptor.
    Snapshot {
        /// The generator family.
        kind: DatasetKind,
        /// Online steps in the replayed trajectory.
        steps: u32,
        /// Generator seed.
        seed: u64,
        /// Replay cursor: steps already submitted to the session.
        cursor: u64,
        /// Updates the engine has applied (equals the checkpoint's update
        /// count; the journal-suffix floor for failover replay).
        applied: u64,
        /// The serialized engine checkpoint (`SNVC` bytes).
        checkpoint: Vec<u8>,
    },
    /// The request was refused or malformed.
    Error(
        /// Human-readable reason.
        String,
    ),
}

/// What can go wrong reading or decoding a frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer closed the connection between frames (a clean EOF).
    Closed,
    /// The frame violates the protocol.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Closed => f.write_str("peer closed the connection"),
            WireError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

// --- primitive little-endian encoding ---------------------------------

pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .ok_or(WireError::Malformed("length overflow"))?;
        let s = self
            .buf
            .get(self.at..end)
            .ok_or(WireError::Malformed("truncated frame"))?;
        self.at = end;
        Ok(s)
    }

    /// Takes exactly `N` bytes as an array — the fixed-width primitive
    /// reads below go through this so no decode path ever indexes a slice.
    fn take_arr<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        for (dst, src) in a.iter_mut().zip(s) {
            *dst = *src;
        }
        Ok(a)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.take_arr::<1>()?;
        Ok(b)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_arr::<4>()?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_arr::<8>()?))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn done(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }

    /// Bytes left in the buffer — lets callers sanity-check an element
    /// count against the data that could actually back it before
    /// pre-allocating.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.at)
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

// --- pose encoding ----------------------------------------------------

const VAR_SE2: u8 = 0;
const VAR_SE3: u8 = 1;
const VAR_VEC: u8 = 2;

/// Appends one pose to `out` (tag + components, bit-exact).
pub fn encode_variable(out: &mut Vec<u8>, var: &Variable) {
    match var {
        Variable::Se2(p) => {
            out.push(VAR_SE2);
            let (c, s) = p.rotation().cos_sin();
            put_f64(out, c);
            put_f64(out, s);
            let [tx, ty] = p.translation();
            put_f64(out, tx);
            put_f64(out, ty);
        }
        Variable::Se3(p) => {
            out.push(VAR_SE3);
            let m = p.rotation().matrix();
            for r in 0..3 {
                for c in 0..3 {
                    // Encode side over internal state: indices are bounded
                    // by the literal 0..3 loops against a 3x3 rotation.
                    put_f64(out, m[(r, c)]); // lint: allow(panic-path)
                }
            }
            let t = p.translation();
            for v in t {
                put_f64(out, v);
            }
        }
        Variable::Vector(v) => {
            out.push(VAR_VEC);
            put_u32(out, v.len() as u32);
            for x in v {
                put_f64(out, *x);
            }
        }
    }
}

pub(crate) fn decode_variable(cur: &mut Cursor<'_>) -> Result<Variable, WireError> {
    match cur.u8()? {
        VAR_SE2 => {
            let c = cur.f64()?;
            let s = cur.f64()?;
            let x = cur.f64()?;
            let y = cur.f64()?;
            Ok(Variable::Se2(Se2::from_parts(
                [x, y],
                Rot2::from_cos_sin(c, s),
            )))
        }
        VAR_SE3 => {
            let mut m = [0.0f64; 9];
            for v in &mut m {
                *v = cur.f64()?;
            }
            let mut t = [0.0f64; 3];
            for v in &mut t {
                *v = cur.f64()?;
            }
            Ok(Variable::Se3(Se3::from_parts(
                t,
                Rot3::from_matrix(Mat::from_rows(3, 3, &m)),
            )))
        }
        VAR_VEC => {
            let n = cur.u32()? as usize;
            if n > MAX_FRAME_BYTES / 8 {
                return Err(WireError::Malformed("vector length exceeds frame cap"));
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(cur.f64()?);
            }
            Ok(Variable::Vector(v))
        }
        _ => Err(WireError::Malformed("unknown variable tag")),
    }
}

// --- message encoding -------------------------------------------------

const REQ_CREATE: u8 = 0x01;
const REQ_SUBMIT: u8 = 0x02;
const REQ_ESTIMATE: u8 = 0x03;
const REQ_CLOSE: u8 = 0x04;
const REQ_SHUTDOWN: u8 = 0x05;
const REQ_HELLO: u8 = 0x06;
const REQ_SNAPSHOT: u8 = 0x07;
const REQ_RESTORE: u8 = 0x08;

const RSP_CREATED: u8 = 0x81;
const RSP_SUBMITTED: u8 = 0x82;
const RSP_ESTIMATE: u8 = 0x83;
const RSP_CLOSED: u8 = 0x84;
const RSP_SHUTTING_DOWN: u8 = 0x85;
const RSP_HELLO: u8 = 0x86;
const RSP_SNAPSHOT: u8 = 0x87;
const RSP_ERROR: u8 = 0xFF;

impl Request {
    /// Serializes the request to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::CreateSession { kind, steps, seed } => {
                out.push(REQ_CREATE);
                out.push(kind.code());
                put_u32(&mut out, *steps);
                put_u64(&mut out, *seed);
            }
            Request::Submit {
                session,
                deadline,
                count,
            } => {
                out.push(REQ_SUBMIT);
                put_u64(&mut out, *session);
                put_u64(&mut out, *deadline);
                put_u32(&mut out, *count);
            }
            Request::QueryEstimate { session } => {
                out.push(REQ_ESTIMATE);
                put_u64(&mut out, *session);
            }
            Request::Close { session } => {
                out.push(REQ_CLOSE);
                put_u64(&mut out, *session);
            }
            Request::Shutdown => out.push(REQ_SHUTDOWN),
            Request::Hello { version } => {
                out.push(REQ_HELLO);
                out.push(*version);
            }
            Request::Snapshot { session } => {
                out.push(REQ_SNAPSHOT);
                put_u64(&mut out, *session);
            }
            Request::Restore {
                kind,
                steps,
                seed,
                cursor,
                checkpoint,
            } => {
                out.push(REQ_RESTORE);
                out.push(kind.code());
                put_u32(&mut out, *steps);
                put_u64(&mut out, *seed);
                put_u64(&mut out, *cursor);
                put_u32(&mut out, checkpoint.len() as u32);
                out.extend_from_slice(checkpoint);
            }
        }
        out
    }

    /// Parses a frame payload as a request.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on an unknown tag, truncation, or trailing
    /// bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut cur = Cursor::new(payload);
        let req = match cur.u8()? {
            REQ_CREATE => Request::CreateSession {
                kind: DatasetKind::from_code(cur.u8()?)?,
                steps: cur.u32()?,
                seed: cur.u64()?,
            },
            REQ_SUBMIT => Request::Submit {
                session: cur.u64()?,
                deadline: cur.u64()?,
                count: cur.u32()?,
            },
            REQ_ESTIMATE => Request::QueryEstimate {
                session: cur.u64()?,
            },
            REQ_CLOSE => Request::Close {
                session: cur.u64()?,
            },
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_HELLO => Request::Hello { version: cur.u8()? },
            REQ_SNAPSHOT => Request::Snapshot {
                session: cur.u64()?,
            },
            REQ_RESTORE => {
                let kind = DatasetKind::from_code(cur.u8()?)?;
                let steps = cur.u32()?;
                let seed = cur.u64()?;
                let cursor = cur.u64()?;
                let n = cur.u32()? as usize;
                let checkpoint = cur.take(n)?.to_vec();
                Request::Restore {
                    kind,
                    steps,
                    seed,
                    cursor,
                    checkpoint,
                }
            }
            _ => return Err(WireError::Malformed("unknown request tag")),
        };
        cur.done()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Created { session } => {
                out.push(RSP_CREATED);
                put_u64(&mut out, *session);
            }
            Response::Submitted { accepted, shed } => {
                out.push(RSP_SUBMITTED);
                put_u32(&mut out, *accepted);
                put_u32(&mut out, *shed);
            }
            Response::Estimate(vars) => {
                out.push(RSP_ESTIMATE);
                put_u32(&mut out, vars.len() as u32);
                for v in vars {
                    encode_variable(&mut out, v);
                }
            }
            Response::Closed { completed, shed } => {
                out.push(RSP_CLOSED);
                put_u64(&mut out, *completed);
                put_u64(&mut out, *shed);
            }
            Response::ShuttingDown => out.push(RSP_SHUTTING_DOWN),
            Response::Hello { version } => {
                out.push(RSP_HELLO);
                out.push(*version);
            }
            Response::Snapshot {
                kind,
                steps,
                seed,
                cursor,
                applied,
                checkpoint,
            } => {
                out.push(RSP_SNAPSHOT);
                out.push(kind.code());
                put_u32(&mut out, *steps);
                put_u64(&mut out, *seed);
                put_u64(&mut out, *cursor);
                put_u64(&mut out, *applied);
                put_u32(&mut out, checkpoint.len() as u32);
                out.extend_from_slice(checkpoint);
            }
            Response::Error(msg) => {
                out.push(RSP_ERROR);
                put_u32(&mut out, msg.len() as u32);
                out.extend_from_slice(msg.as_bytes());
            }
        }
        out
    }

    /// Parses a frame payload as a response.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on an unknown tag, truncation, or trailing
    /// bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut cur = Cursor::new(payload);
        let rsp = match cur.u8()? {
            RSP_CREATED => Response::Created {
                session: cur.u64()?,
            },
            RSP_SUBMITTED => Response::Submitted {
                accepted: cur.u32()?,
                shed: cur.u32()?,
            },
            RSP_ESTIMATE => {
                let n = cur.u32()? as usize;
                if n > MAX_FRAME_BYTES / 9 {
                    return Err(WireError::Malformed("estimate count exceeds frame cap"));
                }
                let mut vars = Vec::with_capacity(n);
                for _ in 0..n {
                    vars.push(decode_variable(&mut cur)?);
                }
                Response::Estimate(vars)
            }
            RSP_CLOSED => Response::Closed {
                completed: cur.u64()?,
                shed: cur.u64()?,
            },
            RSP_SHUTTING_DOWN => Response::ShuttingDown,
            RSP_HELLO => Response::Hello { version: cur.u8()? },
            RSP_SNAPSHOT => {
                let kind = DatasetKind::from_code(cur.u8()?)?;
                let steps = cur.u32()?;
                let seed = cur.u64()?;
                let cursor = cur.u64()?;
                let applied = cur.u64()?;
                let n = cur.u32()? as usize;
                let checkpoint = cur.take(n)?.to_vec();
                Response::Snapshot {
                    kind,
                    steps,
                    seed,
                    cursor,
                    applied,
                    checkpoint,
                }
            }
            RSP_ERROR => {
                let n = cur.u32()? as usize;
                let bytes = cur.take(n)?;
                let msg = std::str::from_utf8(bytes)
                    .map_err(|_| WireError::Malformed("error message is not UTF-8"))?;
                Response::Error(msg.to_string())
            }
            _ => return Err(WireError::Malformed("unknown response tag")),
        };
        cur.done()?;
        Ok(rsp)
    }
}

// --- framing ----------------------------------------------------------

/// Writes one frame (length prefix + payload) to `w`.
///
/// # Errors
///
/// Propagates transport errors; refuses payloads above
/// [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::Malformed("frame exceeds the size cap"));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r` and returns its payload.
///
/// # Errors
///
/// [`WireError::Closed`] on a clean EOF before the length prefix,
/// [`WireError::Malformed`] on an oversized length, transport errors
/// otherwise.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Err(WireError::Closed),
        Err(e) => return Err(e.into()),
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME_BYTES {
        return Err(WireError::Malformed("frame exceeds the size cap"));
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes a request as one frame.
///
/// # Errors
///
/// See [`write_frame`].
pub fn send_request(w: &mut impl Write, req: &Request) -> Result<(), WireError> {
    write_frame(w, &req.encode())
}

/// Reads and decodes one request frame.
///
/// # Errors
///
/// See [`read_frame`] and [`Request::decode`].
pub fn recv_request(r: &mut impl Read) -> Result<Request, WireError> {
    Request::decode(&read_frame(r)?)
}

/// Writes a response as one frame.
///
/// # Errors
///
/// See [`write_frame`].
pub fn send_response(w: &mut impl Write, rsp: &Response) -> Result<(), WireError> {
    write_frame(w, &rsp.encode())
}

/// Reads and decodes one response frame.
///
/// # Errors
///
/// See [`read_frame`] and [`Response::decode`].
pub fn recv_response(r: &mut impl Read) -> Result<Response, WireError> {
    Response::decode(&read_frame(r)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::CreateSession {
                kind: DatasetKind::Sphere,
                steps: 40,
                seed: 11,
            },
            Request::Submit {
                session: 3,
                deadline: 100,
                count: 5,
            },
            Request::QueryEstimate { session: 3 },
            Request::Close { session: 3 },
            Request::Shutdown,
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Snapshot { session: 7 },
            Request::Restore {
                kind: DatasetKind::Manhattan,
                steps: 40,
                seed: 101,
                cursor: 12,
                checkpoint: vec![0x53, 0x4E, 0x56, 0x43, 9, 9],
            },
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).expect("round trip"), req);
        }
    }

    #[test]
    fn v2_responses_round_trip() {
        let rsps = [
            Response::Hello {
                version: PROTOCOL_VERSION,
            },
            Response::Snapshot {
                kind: DatasetKind::Sphere,
                steps: 30,
                seed: 201,
                cursor: 9,
                applied: 9,
                checkpoint: vec![1, 2, 3],
            },
        ];
        for rsp in rsps {
            assert_eq!(Response::decode(&rsp.encode()).expect("round trip"), rsp);
        }
        // Truncated checkpoint payloads are rejected, not panicked.
        let mut enc = Response::Snapshot {
            kind: DatasetKind::Sphere,
            steps: 30,
            seed: 201,
            cursor: 9,
            applied: 9,
            checkpoint: vec![1, 2, 3],
        }
        .encode();
        enc.pop();
        assert!(matches!(
            Response::decode(&enc),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn poses_round_trip_bit_exactly() {
        // Non-representable angles: the (cos, sin) pair carries the exact
        // bits even when no angle reproduces them.
        let se2 = Variable::Se2(Se2::new(1.0 / 3.0, -7.2e-9, 2.5));
        let se3 = Variable::Se3(Se3::from_parts(
            [0.1, -0.2, 1e30],
            Rot3::exp(&[0.3, -0.1, 0.72]),
        ));
        let rsp = Response::Estimate(vec![se2.clone(), se3.clone()]);
        let back = Response::decode(&rsp.encode()).expect("round trip");
        let Response::Estimate(vars) = back else {
            panic!("wrong tag")
        };
        // Variable's PartialEq compares exact f64 bits componentwise.
        assert_eq!(vars, vec![se2, se3]);
    }

    #[test]
    fn framing_round_trips_over_a_buffer() {
        let mut buf = Vec::new();
        send_request(&mut buf, &Request::Shutdown).expect("write");
        send_response(
            &mut buf,
            &Response::Submitted {
                accepted: 4,
                shed: 1,
            },
        )
        .expect("write");
        let mut r = buf.as_slice();
        assert_eq!(recv_request(&mut r).expect("read"), Request::Shutdown);
        assert_eq!(
            recv_response(&mut r).expect("read"),
            Response::Submitted {
                accepted: 4,
                shed: 1
            }
        );
        assert!(
            matches!(recv_request(&mut r), Err(WireError::Closed)),
            "clean EOF"
        );
    }

    #[test]
    fn malformed_frames_are_rejected_not_panicked() {
        assert!(matches!(Request::decode(&[]), Err(WireError::Malformed(_))));
        assert!(matches!(
            Request::decode(&[0x7E]),
            Err(WireError::Malformed(_))
        ));
        // Truncated Submit.
        let mut good = Request::Submit {
            session: 1,
            deadline: 2,
            count: 3,
        }
        .encode();
        good.pop();
        assert!(matches!(
            Request::decode(&good),
            Err(WireError::Malformed(_))
        ));
        // Trailing garbage.
        let mut padded = Request::Shutdown.encode();
        padded.push(0);
        assert!(matches!(
            Request::decode(&padded),
            Err(WireError::Malformed(_))
        ));
        // Oversized length prefix.
        let mut framed = Vec::new();
        framed.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut framed.as_slice()),
            Err(WireError::Malformed(_))
        ));
    }
}
