//! The multi-session SLAM serving layer.
//!
//! The rest of the workspace reproduces SuperNoVA's single-robot stack: one
//! RA-ISAM2 instance, one elimination tree, one budget. This crate turns
//! that stack into a *server*: a fixed pool of
//! [`SolverEngine`](supernova_solvers::SolverEngine)s shared by many
//! concurrent SLAM sessions, with the three properties a production backend
//! needs and the paper's resource-awareness makes possible:
//!
//! - **Admission control** ([`AdmissionController`]) — every session owns a
//!   *bounded* request queue; when it fills, updates are shed with a typed
//!   error instead of growing memory without bound, and session creation
//!   beyond the engine pool is rejected outright.
//! - **Deadline scheduling** ([`Server`]) — a fixed worker pool picks the
//!   next session by earliest request deadline (ties to the lowest session
//!   id), holding *per-session exclusivity*: a session's updates are always
//!   applied in submission order by at most one worker at a time, so each
//!   session's estimates are bit-identical no matter how sessions
//!   interleave across workers.
//! - **Graceful degradation** — under overload the server does what
//!   RA-ISAM2 was built for: instead of dropping updates it tightens every
//!   session's [`StepBudget`](supernova_runtime::StepBudget) (fewer
//!   relinearized/reordered nodes per step), quantized into levels derived
//!   deterministically from the total queued depth, and relaxes again as
//!   queues drain.
//!
//! [`ServerStats`] snapshots per-session latency percentiles (from
//! [`Histogram`](supernova_metrics::Histogram)), queue depths, shed counts
//! and the degradation histogram. The `serve_tcp` binary exposes the layer
//! over a length-prefixed TCP protocol ([`protocol`]); `serve_smoke` is the
//! CI gate (solo-vs-served bit-identity, zero sheds at low rate, dispatcher
//! span invariants). The workspace load generator (`load_gen`, including
//! the single-server nominal/overload scenarios behind
//! `results/BENCH_serve_throughput.json`) lives in `supernova-fleet`,
//! which layers shard routing and crash failover on top of this crate.
//!
//! # Example
//!
//! ```
//! use supernova_serve::{Server, ServeConfig, UpdateRequest};
//! use supernova_datasets::Dataset;
//!
//! let server = Server::start(ServeConfig { workers: 1, ..ServeConfig::default() });
//! let sid = server.create_session().unwrap();
//! for (i, step) in Dataset::manhattan_seeded(8, 42).online_steps().iter().enumerate() {
//!     server
//!         .submit(sid, UpdateRequest::new(i as u64, step.truth.clone(), step.factors.clone()))
//!         .unwrap();
//! }
//! let estimate = server.estimate(sid).unwrap();
//! assert_eq!(estimate.len(), 8);
//! server.close(sid).unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod admission;
pub mod checkpoint;
mod dispatch;
pub mod protocol;
pub mod service;
mod session;
mod stats;

pub use admission::{AdmissionController, AdmissionError};
pub use checkpoint::{decode_snapshot, encode_snapshot, CheckpointError};
pub use dispatch::{DispatchSpan, ServeConfig, Server, SessionRestoreError};
pub use session::{SessionCloseReport, SessionId, SessionRegistry, UpdateRequest};
pub use stats::{ServerStats, SessionStats};
