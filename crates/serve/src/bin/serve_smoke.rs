//! `serve_smoke` — the CI gate for the multi-session serving layer.
//!
//! ```text
//! cargo run --release -p supernova-serve --bin serve_smoke
//! ```
//!
//! Two phases, both in-process (no sockets, no timing dependence in the
//! *checked* properties):
//!
//! 1. **Bit-identity at low rate.** Four sessions (two Manhattan, two
//!    sphere seeds) share two workers with queues large enough that
//!    nothing sheds and degradation never engages. Each session's drained
//!    estimate must equal — by exact `f64` bits — a solo replay of the
//!    same seed on a fresh engine, no matter how the sessions interleaved
//!    across the workers. Zero sheds is asserted.
//! 2. **Graceful degradation under overload.** One worker, a capacity-8
//!    queue and a burst of 50 updates: admitted work must all complete
//!    (shed + completed = submitted), the queue high-water mark must
//!    respect the bound, degradation must engage and then recover to
//!    level 0 once drained.
//!
//! Both phases run the recorded dispatch spans through
//! `supernova_analyze::validate_dispatch` (worker exclusivity,
//! per-session happens-before, sequence coverage).
//!
//! Exits nonzero on the first failed property.

use std::process::ExitCode;
use std::sync::Arc;

use supernova_analyze::validate_dispatch;
use supernova_datasets::Dataset;
use supernova_factors::Values;
use supernova_hw::Platform;
use supernova_runtime::CostModel;
use supernova_serve::{AdmissionError, ServeConfig, Server, UpdateRequest};
use supernova_solvers::{RaIsam2Config, SolverEngine};
use supernova_sparse::ParallelExecutor;

/// A solo replay of `ds` on a fresh engine — the bit-identity reference.
fn solo_estimate(ds: &Dataset) -> Values {
    let cost = Arc::new(CostModel::new(Platform::supernova(2)));
    let mut e = SolverEngine::new(RaIsam2Config::default(), cost);
    e.set_executor(ParallelExecutor::new(1));
    for step in &ds.online_steps() {
        e.step(step.truth.clone(), step.factors.clone());
    }
    e.estimate()
}

fn check_spans(server: &Server, phase: &str) -> bool {
    let records: Vec<_> = server.spans().iter().map(|s| s.record()).collect();
    let violations = validate_dispatch(server.config().workers, &records);
    if violations.is_empty() {
        println!("PASS {phase}: {} dispatch spans satisfy all invariants", records.len());
        true
    } else {
        for v in &violations {
            eprintln!("FAIL {phase}: {v}");
        }
        false
    }
}

fn phase_bit_identity() -> bool {
    let datasets = [
        Dataset::manhattan_seeded(40, 31),
        Dataset::sphere_seeded(30, 32),
        Dataset::manhattan_seeded(35, 33),
        Dataset::sphere_seeded(25, 34),
    ];
    let server = Server::start(ServeConfig {
        workers: 2,
        max_sessions: 4,
        queue_capacity: 128,
        // Low rate by construction: degradation never engages, so the
        // budget history matches a solo run exactly.
        degrade_start: 1 << 20,
        ..ServeConfig::default()
    });

    let ids: Vec<_> = datasets
        .iter()
        .map(|_| server.create_session().expect("4 slots configured"))
        .collect();
    // Interleave submissions round-robin with a global deadline tick, the
    // worst case for cross-session ordering.
    let step_lists: Vec<_> = datasets.iter().map(Dataset::online_steps).collect();
    let mut tick = 0u64;
    let mut cursors = vec![0usize; datasets.len()];
    loop {
        let mut any = false;
        for (i, steps) in step_lists.iter().enumerate() {
            if cursors[i] < steps.len() {
                let s = &steps[cursors[i]];
                server
                    .submit(ids[i], UpdateRequest::new(tick, s.truth.clone(), s.factors.clone()))
                    .expect("capacity 128 cannot shed these bursts");
                cursors[i] += 1;
                tick += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
    }

    let mut ok = true;
    for (i, ds) in datasets.iter().enumerate() {
        let served = server.estimate(ids[i]).expect("session is live");
        let solo = solo_estimate(ds);
        if served == solo {
            println!(
                "PASS bit-identity: {} ({} poses) served == solo",
                ds.name(),
                served.len()
            );
        } else {
            eprintln!("FAIL bit-identity: {} served estimate diverged from solo", ds.name());
            ok = false;
        }
    }

    let stats = server.stats();
    if stats.total_shed != 0 {
        eprintln!("FAIL low-rate: {} updates shed, expected 0", stats.total_shed);
        ok = false;
    } else {
        println!("PASS low-rate: zero sheds across {} updates", stats.total_completed);
    }
    if stats.any_degraded() {
        eprintln!("FAIL low-rate: degradation engaged ({:?})", stats.degradation_histogram);
        ok = false;
    }
    ok &= check_spans(&server, "bit-identity");
    for id in ids {
        server.close(id).expect("close");
    }
    ok
}

fn phase_overload() -> bool {
    let server = Server::start(ServeConfig {
        workers: 1,
        max_sessions: 1,
        queue_capacity: 8,
        degrade_start: 2,
        degrade_stride: 2,
        ..ServeConfig::default()
    });
    let sid = server.create_session().expect("slot");
    let ds = Dataset::manhattan_seeded(50, 35);
    let mut shed = 0u64;
    let mut admitted = 0u64;
    for (i, step) in ds.online_steps().into_iter().enumerate() {
        match server.submit(sid, UpdateRequest::new(i as u64, step.truth, step.factors)) {
            Ok(()) => admitted += 1,
            Err(AdmissionError::QueueFull { .. }) => shed += 1,
            Err(e) => {
                eprintln!("FAIL overload: unexpected admission error {e}");
                return false;
            }
        }
    }
    server.drain(sid).expect("session is live");
    let stats = server.stats();
    let mut ok = true;

    if stats.sessions[0].completed != admitted {
        eprintln!(
            "FAIL overload: {} admitted but {} completed — admitted work was dropped",
            admitted, stats.sessions[0].completed
        );
        ok = false;
    } else {
        println!("PASS overload: all {admitted} admitted updates completed ({shed} shed at admission)");
    }
    if stats.sessions[0].max_queue_depth > 8 {
        eprintln!(
            "FAIL overload: queue depth peaked at {} over the bound 8",
            stats.sessions[0].max_queue_depth
        );
        ok = false;
    } else {
        println!(
            "PASS overload: queue stayed bounded (peak {} <= 8)",
            stats.sessions[0].max_queue_depth
        );
    }
    if !stats.any_degraded() {
        eprintln!("FAIL overload: a 50-update burst never engaged degradation");
        ok = false;
    } else {
        println!(
            "PASS overload: degradation engaged (histogram {:?})",
            stats.degradation_histogram
        );
    }
    if server.degradation() != 0 {
        eprintln!("FAIL overload: level {} after drain, expected 0", server.degradation());
        ok = false;
    } else {
        println!("PASS overload: degradation recovered to level 0 after drain");
    }
    ok &= check_spans(&server, "overload");
    ok
}

fn main() -> ExitCode {
    let mut ok = phase_bit_identity();
    ok &= phase_overload();
    if ok {
        println!("serve_smoke: all properties hold");
        ExitCode::SUCCESS
    } else {
        eprintln!("serve_smoke: FAILED");
        ExitCode::FAILURE
    }
}
