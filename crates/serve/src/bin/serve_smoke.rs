//! `serve_smoke` — the CI gate for the multi-session serving layer.
//!
//! ```text
//! cargo run --release -p supernova-serve --bin serve_smoke
//! ```
//!
//! Three phases, all in-process (no sockets, no timing dependence in the
//! *checked* properties):
//!
//! 1. **Bit-identity at low rate.** Four sessions (two Manhattan, two
//!    sphere seeds) share two workers with queues large enough that
//!    nothing sheds and degradation never engages. Each session's drained
//!    estimate must equal — by exact `f64` bits — a solo replay of the
//!    same seed on a fresh engine, no matter how the sessions interleaved
//!    across the workers. Zero sheds is asserted.
//! 2. **Graceful degradation under overload.** One worker, a capacity-8
//!    queue and a burst of 50 updates: admitted work must all complete
//!    (shed + completed = submitted), the queue high-water mark must
//!    respect the bound, degradation must engage and then recover to
//!    level 0 once drained.
//! 3. **Trace emission.** Two sessions on two workers with
//!    `TraceConfig::on()`: every dispatched step must emit a span tree
//!    that passes `validate_trace`, and the collected trees must
//!    cross-check against the dispatch ledger
//!    (`validate_trace_dispatch`: one tree per record, matching worker
//!    tracks, record interval inside the root span).
//!
//! Phases 1 and 2 also run the recorded dispatch spans through
//! `supernova_analyze::validate_dispatch` (worker exclusivity,
//! per-session happens-before, sequence coverage).
//!
//! Every sub-check has a stable name and reports `PASS`/`FAIL` in a fixed
//! order; the run ends with one summary line naming any failed checks.

use std::process::ExitCode;
use std::sync::Arc;

use supernova_analyze::{validate_dispatch, validate_trace, validate_trace_dispatch};
use supernova_datasets::Dataset;
use supernova_factors::Values;
use supernova_hw::Platform;
use supernova_runtime::CostModel;
use supernova_serve::{AdmissionError, ServeConfig, Server, UpdateRequest};
use supernova_solvers::{RaIsam2Config, SolverEngine};
use supernova_sparse::ParallelExecutor;
use supernova_trace::TraceConfig;

/// Ordered pass/fail ledger: every sub-check lands here under a stable
/// name, in execution order, so failures read the same way run to run.
struct Report {
    results: Vec<(String, bool)>,
}

impl Report {
    fn new() -> Self {
        Report {
            results: Vec::new(),
        }
    }

    /// Records one named sub-check and prints its verdict immediately.
    fn check(&mut self, name: &str, ok: bool, detail: &str) {
        if ok {
            println!("PASS {name}: {detail}");
        } else {
            eprintln!("FAIL {name}: {detail}");
        }
        self.results.push((name.to_string(), ok));
    }

    /// Prints the summary line and converts the ledger to an exit code.
    fn finish(self, bin: &str) -> ExitCode {
        let failed: Vec<&str> = self
            .results
            .iter()
            .filter(|(_, ok)| !ok)
            .map(|(name, _)| name.as_str())
            .collect();
        let total = self.results.len();
        if failed.is_empty() {
            println!("{bin}: {total}/{total} checks passed");
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "{bin}: {}/{} checks passed; FAILED: {}",
                total - failed.len(),
                total,
                failed.join(", ")
            );
            ExitCode::FAILURE
        }
    }
}

/// A solo replay of `ds` on a fresh engine — the bit-identity reference.
fn solo_estimate(ds: &Dataset) -> Values {
    let cost = Arc::new(CostModel::new(Platform::supernova(2)));
    let mut e = SolverEngine::new(RaIsam2Config::default(), cost);
    e.set_executor(ParallelExecutor::new(1));
    for step in &ds.online_steps() {
        e.step(step.truth.clone(), step.factors.clone());
    }
    e.estimate()
}

fn check_spans(report: &mut Report, server: &Server, phase: &str) {
    let records: Vec<_> = server.spans().iter().map(|s| s.record()).collect();
    let violations = validate_dispatch(server.config().workers, &records);
    let detail = if violations.is_empty() {
        format!("{} dispatch spans satisfy all invariants", records.len())
    } else {
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    };
    report.check(
        &format!("{phase}/dispatch-invariants"),
        violations.is_empty(),
        &detail,
    );
}

fn phase_bit_identity(report: &mut Report) {
    let datasets = [
        Dataset::manhattan_seeded(40, 31),
        Dataset::sphere_seeded(30, 32),
        Dataset::manhattan_seeded(35, 33),
        Dataset::sphere_seeded(25, 34),
    ];
    let server = Server::start(ServeConfig {
        workers: 2,
        max_sessions: 4,
        queue_capacity: 128,
        // Low rate by construction: degradation never engages, so the
        // budget history matches a solo run exactly.
        degrade_start: 1 << 20,
        ..ServeConfig::default()
    });

    let ids: Vec<_> = datasets
        .iter()
        .map(|_| server.create_session().expect("4 slots configured"))
        .collect();
    // Interleave submissions round-robin with a global deadline tick, the
    // worst case for cross-session ordering.
    let step_lists: Vec<_> = datasets.iter().map(Dataset::online_steps).collect();
    let mut tick = 0u64;
    let mut cursors = vec![0usize; datasets.len()];
    loop {
        let mut any = false;
        for (i, steps) in step_lists.iter().enumerate() {
            if cursors[i] < steps.len() {
                let s = &steps[cursors[i]];
                server
                    .submit(
                        ids[i],
                        UpdateRequest::new(tick, s.truth.clone(), s.factors.clone()),
                    )
                    .expect("capacity 128 cannot shed these bursts");
                cursors[i] += 1;
                tick += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
    }

    for (i, ds) in datasets.iter().enumerate() {
        let served = server.estimate(ids[i]).expect("session is live");
        let solo = solo_estimate(ds);
        report.check(
            &format!("bit-identity/served-eq-solo[{}#{i}]", ds.name()),
            served == solo,
            &format!("{} poses", served.len()),
        );
    }

    let stats = server.stats();
    report.check(
        "bit-identity/zero-sheds",
        stats.total_shed == 0,
        &format!(
            "{} shed across {} completed updates",
            stats.total_shed, stats.total_completed
        ),
    );
    report.check(
        "bit-identity/no-degradation",
        !stats.any_degraded(),
        &format!("histogram {:?}", stats.degradation_histogram),
    );
    check_spans(report, &server, "bit-identity");
    for id in ids {
        server.close(id).expect("close");
    }
}

fn phase_overload(report: &mut Report) {
    let server = Server::start(ServeConfig {
        workers: 1,
        max_sessions: 1,
        queue_capacity: 8,
        degrade_start: 2,
        degrade_stride: 2,
        ..ServeConfig::default()
    });
    let sid = server.create_session().expect("slot");
    let ds = Dataset::manhattan_seeded(50, 35);
    let mut shed = 0u64;
    let mut admitted = 0u64;
    for (i, step) in ds.online_steps().into_iter().enumerate() {
        match server.submit(sid, UpdateRequest::new(i as u64, step.truth, step.factors)) {
            Ok(()) => admitted += 1,
            Err(AdmissionError::QueueFull { .. }) => shed += 1,
            Err(e) => {
                report.check(
                    "overload/admission",
                    false,
                    &format!("unexpected admission error {e}"),
                );
                return;
            }
        }
    }
    server.drain(sid).expect("session is live");
    let stats = server.stats();

    report.check(
        "overload/admitted-completes",
        stats.sessions[0].completed == admitted,
        &format!(
            "{admitted} admitted, {} completed ({shed} shed at admission)",
            stats.sessions[0].completed
        ),
    );
    report.check(
        "overload/queue-bounded",
        stats.sessions[0].max_queue_depth <= 8,
        &format!(
            "queue depth peaked at {} (bound 8)",
            stats.sessions[0].max_queue_depth
        ),
    );
    report.check(
        "overload/degradation-engages",
        stats.any_degraded(),
        &format!("histogram {:?}", stats.degradation_histogram),
    );
    report.check(
        "overload/degradation-recovers",
        server.degradation() == 0,
        &format!("level {} after drain", server.degradation()),
    );
    check_spans(report, &server, "overload");
}

fn phase_traces(report: &mut Report) {
    let datasets = [
        Dataset::manhattan_seeded(30, 41),
        Dataset::sphere_seeded(25, 42),
    ];
    let server = Server::start(ServeConfig {
        workers: 2,
        max_sessions: 2,
        queue_capacity: 128,
        degrade_start: 1 << 20,
        trace: TraceConfig::on(),
        ..ServeConfig::default()
    });
    let ids: Vec<_> = datasets
        .iter()
        .map(|_| server.create_session().expect("2 slots configured"))
        .collect();
    let step_lists: Vec<_> = datasets.iter().map(Dataset::online_steps).collect();
    let mut tick = 0u64;
    let mut cursors = vec![0usize; datasets.len()];
    loop {
        let mut any = false;
        for (i, steps) in step_lists.iter().enumerate() {
            if cursors[i] < steps.len() {
                let s = &steps[cursors[i]];
                server
                    .submit(
                        ids[i],
                        UpdateRequest::new(tick, s.truth.clone(), s.factors.clone()),
                    )
                    .expect("capacity 128 cannot shed these bursts");
                cursors[i] += 1;
                tick += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    for &id in &ids {
        server.drain(id).expect("session is live");
    }

    let traces = server.take_traces();
    let records: Vec<_> = server.spans().iter().map(|s| s.record()).collect();
    let submitted: usize = step_lists.iter().map(Vec::len).sum();
    report.check(
        "traces/one-per-step",
        traces.len() == submitted,
        &format!("{} trace(s) for {submitted} submitted steps", traces.len()),
    );

    let mut tree_violations: Vec<String> = Vec::new();
    let mut spans = 0usize;
    for t in &traces {
        spans += t.span_count();
        for v in validate_trace(t) {
            tree_violations.push(format!("session {} seq {}: {v}", t.key.session, t.key.seq));
        }
    }
    let detail = if tree_violations.is_empty() {
        format!("{} span tree(s), {spans} spans clean", traces.len())
    } else {
        tree_violations.join("; ")
    };
    report.check("traces/span-trees", tree_violations.is_empty(), &detail);

    let cross = validate_trace_dispatch(&traces, &records);
    let detail = if cross.is_empty() {
        format!(
            "{} trace(s) consistent with {} dispatch record(s)",
            traces.len(),
            records.len()
        )
    } else {
        cross
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    };
    report.check("traces/dispatch-crosscheck", cross.is_empty(), &detail);
    for id in ids {
        server.close(id).expect("close");
    }
}

fn main() -> ExitCode {
    let mut report = Report::new();
    phase_bit_identity(&mut report);
    phase_overload(&mut report);
    phase_traces(&mut report);
    report.finish("serve_smoke")
}
