//! `serve_tcp` — the serving layer behind a length-prefixed TCP protocol.
//!
//! ```text
//! cargo run --release -p supernova-serve --bin serve_tcp [addr] [--trace <path>]
//! ```
//!
//! Binds `addr` (default `127.0.0.1:7654`; use port `0` for an ephemeral
//! port) and prints `serve_tcp listening on <addr>` once ready. With
//! `--trace <path>`, span emission is enabled on every pooled engine and
//! a Chrome trace-event document (wall-clock layout, one row per worker
//! plus virtual hardware rows) covering every dispatched step is written
//! to `<path>` at shutdown — load it in `chrome://tracing` or Perfetto. The
//! protocol is *replay-serving* (see `supernova_serve::protocol`): a
//! client opens a session by naming a seeded dataset and the server
//! regenerates the identical step stream locally, so only indices and
//! bit-exact poses cross the wire — never factors.
//!
//! Connections are handled one at a time (each may multiplex many
//! sessions); a `Shutdown` request drains in-flight work and exits. A
//! malformed frame closes the offending connection with an error
//! response where possible; admission refusals are reported per-request
//! and never kill the connection.

use std::collections::BTreeMap;
use std::io::BufWriter;
use std::net::{TcpListener, TcpStream};

use supernova_datasets::{Dataset, OnlineStep};
use supernova_factors::Key;
use supernova_serve::protocol::{
    recv_request, send_response, DatasetKind, Request, Response, WireError,
};
use supernova_serve::{AdmissionError, ServeConfig, Server, SessionId, UpdateRequest};
use supernova_trace::{chrome_document_wall, TraceConfig};

/// Server-side replay state of one session: the regenerated step stream
/// and how far the client has pushed it.
struct Replay {
    steps: Vec<OnlineStep>,
    cursor: usize,
}

fn generate(kind: DatasetKind, steps: u32, seed: u64) -> Dataset {
    match kind {
        DatasetKind::Manhattan => Dataset::manhattan_seeded(steps as usize, seed),
        DatasetKind::Sphere => Dataset::sphere_seeded(steps as usize, seed),
    }
}

/// Applies one request. Returns the response and whether the server
/// should shut down after sending it.
fn handle(server: &Server, replays: &mut BTreeMap<u64, Replay>, req: Request) -> (Response, bool) {
    match req {
        Request::CreateSession { kind, steps, seed } => match server.create_session() {
            Ok(sid) => {
                let ds = generate(kind, steps, seed);
                replays.insert(
                    sid.0,
                    Replay {
                        steps: ds.online_steps(),
                        cursor: 0,
                    },
                );
                (Response::Created { session: sid.0 }, false)
            }
            Err(e) => (Response::Error(e.to_string()), false),
        },
        Request::Submit {
            session,
            deadline,
            count,
        } => {
            let Some(replay) = replays.get_mut(&session) else {
                return (
                    Response::Error(AdmissionError::UnknownSession(SessionId(session)).to_string()),
                    false,
                );
            };
            let mut accepted = 0u32;
            let mut shed = 0u32;
            for i in 0..count {
                let Some(step) = replay.steps.get(replay.cursor) else {
                    break; // the replayed trajectory is exhausted
                };
                replay.cursor += 1;
                let req = UpdateRequest::new(
                    deadline + u64::from(i),
                    step.truth.clone(),
                    step.factors.clone(),
                );
                match server.submit(SessionId(session), req) {
                    Ok(()) => accepted += 1,
                    Err(AdmissionError::QueueFull { .. }) => shed += 1,
                    Err(e) => return (Response::Error(e.to_string()), false),
                }
            }
            (Response::Submitted { accepted, shed }, false)
        }
        Request::QueryEstimate { session } => match server.estimate(SessionId(session)) {
            Ok(values) => {
                let vars = (0..values.len())
                    .map(|i| values.get(Key(i)).clone())
                    .collect();
                (Response::Estimate(vars), false)
            }
            Err(e) => (Response::Error(e.to_string()), false),
        },
        Request::Close { session } => match server.close(SessionId(session)) {
            Ok(report) => {
                replays.remove(&session);
                (
                    Response::Closed {
                        completed: report.completed,
                        shed: report.shed,
                    },
                    false,
                )
            }
            Err(e) => (Response::Error(e.to_string()), false),
        },
        Request::Shutdown => (Response::ShuttingDown, true),
    }
}

/// Serves one connection until the peer hangs up or requests shutdown.
/// Returns whether the whole server should stop.
fn serve_connection(
    stream: TcpStream,
    server: &Server,
    replays: &mut BTreeMap<u64, Replay>,
) -> Result<bool, WireError> {
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    loop {
        let req = match recv_request(&mut reader) {
            Ok(req) => req,
            Err(WireError::Closed) => return Ok(false),
            Err(WireError::Malformed(why)) => {
                // Framing survives a bad payload; tell the peer and drop
                // the connection (resync is not worth the complexity).
                let _ = send_response(&mut writer, &Response::Error(format!("malformed: {why}")));
                return Ok(false);
            }
            Err(e) => return Err(e),
        };
        let (rsp, stop) = handle(server, replays, req);
        send_response(&mut writer, &rsp)?;
        if stop {
            return Ok(true);
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:7654".to_string();
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            trace_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("serve_tcp: --trace needs a file path");
                std::process::exit(2);
            }));
        } else {
            addr = arg;
        }
    }
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("serve_tcp: cannot bind {addr}: {e}");
        std::process::exit(2);
    });
    match listener.local_addr() {
        Ok(local) => println!("serve_tcp listening on {local}"),
        Err(_) => println!("serve_tcp listening on {addr}"),
    }

    let server = Server::start(ServeConfig {
        trace: if trace_path.is_some() {
            TraceConfig::on()
        } else {
            TraceConfig::off()
        },
        ..ServeConfig::default()
    });
    let mut replays: BTreeMap<u64, Replay> = BTreeMap::new();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve_tcp: accept failed: {e}");
                continue;
            }
        };
        match serve_connection(stream, &server, &mut replays) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => eprintln!("serve_tcp: connection error: {e}"),
        }
    }
    if let Some(path) = trace_path {
        let traces = server.take_traces();
        let doc = chrome_document_wall(&traces);
        match std::fs::write(&path, doc) {
            Ok(()) => eprintln!(
                "serve_tcp: wrote {} step trace(s) to {path} (open in chrome://tracing)",
                traces.len()
            ),
            Err(e) => eprintln!("serve_tcp: cannot write trace to {path}: {e}"),
        }
    }
    eprintln!("serve_tcp: shutting down");
}
