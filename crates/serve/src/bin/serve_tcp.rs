//! `serve_tcp` — the serving layer behind a length-prefixed TCP protocol.
//!
//! ```text
//! cargo run --release -p supernova-serve --bin serve_tcp [addr] [--trace <path>]
//! ```
//!
//! Binds `addr` (default `127.0.0.1:7654`; use port `0` for an ephemeral
//! port) and prints `serve_tcp listening on <addr>` once ready. With
//! `--trace <path>`, span emission is enabled on every pooled engine and
//! a Chrome trace-event document (wall-clock layout, one row per worker
//! plus virtual hardware rows) covering every dispatched step is written
//! to `<path>` at shutdown — load it in `chrome://tracing` or Perfetto. The
//! protocol is *replay-serving* (see `supernova_serve::protocol`): a
//! client opens a session by naming a seeded dataset and the server
//! regenerates the identical step stream locally, so only indices and
//! bit-exact poses cross the wire — never factors.
//!
//! Every connection opens with a version hello (protocol version 2);
//! unsupported versions are refused with a typed error. Connections are
//! handled one at a time (each may multiplex many sessions); a `Shutdown`
//! request drains in-flight work and exits. A malformed frame closes the
//! offending connection with an error response where possible; admission
//! refusals are reported per-request and never kill the connection.

use std::collections::BTreeMap;
use std::net::TcpListener;

use supernova_serve::service::{serve_connection, Replay};
use supernova_serve::{ServeConfig, Server};
use supernova_trace::{chrome_document_wall, TraceConfig};

fn main() {
    let mut addr = "127.0.0.1:7654".to_string();
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            trace_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("serve_tcp: --trace needs a file path");
                std::process::exit(2);
            }));
        } else {
            addr = arg;
        }
    }
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("serve_tcp: cannot bind {addr}: {e}");
        std::process::exit(2);
    });
    match listener.local_addr() {
        Ok(local) => println!("serve_tcp listening on {local}"),
        Err(_) => println!("serve_tcp listening on {addr}"),
    }

    let server = Server::start(ServeConfig {
        trace: if trace_path.is_some() {
            TraceConfig::on()
        } else {
            TraceConfig::off()
        },
        ..ServeConfig::default()
    });
    let mut replays: BTreeMap<u64, Replay> = BTreeMap::new();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve_tcp: accept failed: {e}");
                continue;
            }
        };
        match serve_connection(stream, &server, &mut replays) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => eprintln!("serve_tcp: connection error: {e}"),
        }
    }
    if let Some(path) = trace_path {
        let traces = server.take_traces();
        let doc = chrome_document_wall(&traces);
        match std::fs::write(&path, doc) {
            Ok(()) => eprintln!(
                "serve_tcp: wrote {} step trace(s) to {path} (open in chrome://tracing)",
                traces.len()
            ),
            Err(e) => eprintln!("serve_tcp: cannot write trace to {path}: {e}"),
        }
    }
    eprintln!("serve_tcp: shutting down");
}
