//! `load_gen` — replays seeded datasets as N concurrent serving sessions
//! and records throughput, latency percentiles and degradation behaviour.
//!
//! ```text
//! cargo run --release -p supernova-serve --bin load_gen [sessions] [workers]
//! ```
//!
//! Defaults: 8 sessions, 2 workers. Sessions alternate between
//! `manhattan_seeded` and `sphere_seeded` trajectories (distinct seeds),
//! submitted round-robin with a global logical deadline tick — the
//! adversarial interleaving for the EDF dispatcher. Two scenarios run:
//!
//! - **nominal**: queues sized so nothing sheds and degradation stays
//!   off; every session's drained estimate is checked bit-for-bit against
//!   a solo replay of the same seed (the serving layer must be invisible
//!   to the numbers).
//! - **overload**: capacity-8 queues and an aggressive degradation knee;
//!   the generator bursts everything at once and records shed counts, the
//!   degradation histogram and the bounded queue high-water mark.
//!
//! Results land in `results/BENCH_serve_throughput.json`. Exits nonzero
//! if the nominal scenario's bit-identity check or either scenario's
//! dispatch-span invariants fail.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use supernova_analyze::validate_dispatch;
use supernova_datasets::Dataset;
use supernova_factors::Values;
use supernova_hw::Platform;
use supernova_runtime::CostModel;
use supernova_serve::{AdmissionError, ServeConfig, Server, ServerStats, UpdateRequest};
use supernova_solvers::{RaIsam2Config, SolverEngine};
use supernova_sparse::ParallelExecutor;

/// The i-th session's dataset (alternating families, distinct seeds).
fn session_dataset(i: usize) -> Dataset {
    if i % 2 == 0 {
        Dataset::manhattan_seeded(40, 101 + i as u64)
    } else {
        Dataset::sphere_seeded(30, 201 + i as u64)
    }
}

fn solo_estimate(ds: &Dataset) -> Values {
    let cost = Arc::new(CostModel::new(Platform::supernova(2)));
    let mut e = SolverEngine::new(RaIsam2Config::default(), cost);
    e.set_executor(ParallelExecutor::new(1));
    for step in &ds.online_steps() {
        e.step(step.truth.clone(), step.factors.clone());
    }
    e.estimate()
}

struct ScenarioResult {
    name: &'static str,
    /// Whether the scenario's admission counts are timing-independent.
    /// Nominal queues never fill, so shed counts are deterministic (zero);
    /// overload sheds race the workers' drain rate, so its exact counts
    /// vary run to run and `bench_check` gates on conservation instead.
    deterministic_counts: bool,
    sessions: usize,
    workers: usize,
    queue_capacity: usize,
    submitted: u64,
    shed_at_submit: u64,
    wall_s: f64,
    stats: ServerStats,
    max_depth: usize,
    bit_identical: Option<bool>,
    span_violations: usize,
}

fn run_scenario(
    name: &'static str,
    cfg: ServeConfig,
    sessions: usize,
    check_identity: bool,
    deterministic_counts: bool,
) -> ScenarioResult {
    let workers = cfg.workers;
    let queue_capacity = cfg.queue_capacity;
    let server = Server::start(cfg);
    let ids: Vec<_> = (0..sessions)
        .map(|_| {
            server
                .create_session()
                .expect("pool sized to the session count")
        })
        .collect();
    let datasets: Vec<Dataset> = (0..sessions).map(session_dataset).collect();
    let step_lists: Vec<_> = datasets.iter().map(Dataset::online_steps).collect();

    let t0 = Instant::now();
    let mut cursors = vec![0usize; sessions];
    let mut tick = 0u64;
    let mut submitted = 0u64;
    let mut shed_at_submit = 0u64;
    loop {
        let mut any = false;
        for i in 0..sessions {
            if cursors[i] < step_lists[i].len() {
                let s = &step_lists[i][cursors[i]];
                match server.submit(
                    ids[i],
                    UpdateRequest::new(tick, s.truth.clone(), s.factors.clone()),
                ) {
                    Ok(()) => submitted += 1,
                    Err(AdmissionError::QueueFull { .. }) => shed_at_submit += 1,
                    Err(e) => panic!("unexpected admission error: {e}"),
                }
                cursors[i] += 1;
                tick += 1;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    server.drain_all();
    let wall_s = t0.elapsed().as_secs_f64();

    let bit_identical = if check_identity {
        let mut all = true;
        for (i, ds) in datasets.iter().enumerate() {
            let served = server.estimate(ids[i]).expect("session is live");
            if served != solo_estimate(ds) {
                eprintln!("{name}: session {i} ({}) diverged from solo", ds.name());
                all = false;
            }
        }
        Some(all)
    } else {
        None
    };

    let stats = server.stats();
    let max_depth = stats
        .sessions
        .iter()
        .map(|s| s.max_queue_depth)
        .max()
        .unwrap_or(0);
    let records: Vec<_> = server.spans().iter().map(|s| s.record()).collect();
    let violations = validate_dispatch(workers, &records);
    for v in &violations {
        eprintln!("{name}: dispatch invariant violated: {v}");
    }
    ScenarioResult {
        name,
        deterministic_counts,
        sessions,
        workers,
        queue_capacity,
        submitted,
        shed_at_submit,
        wall_s,
        stats,
        max_depth,
        bit_identical,
        span_violations: violations.len(),
    }
}

fn emit_json(results: &[ScenarioResult]) -> String {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"serve_throughput\",");
    let _ = writeln!(out, "  \"host_cpus\": {host_cpus},");
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        let (p50, p95, p99) = r.stats.aggregate_latency;
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"sessions\": {},", r.sessions);
        let _ = writeln!(out, "      \"workers\": {},", r.workers);
        let _ = writeln!(out, "      \"queue_capacity\": {},", r.queue_capacity);
        let _ = writeln!(
            out,
            "      \"deterministic_counts\": {},",
            r.deterministic_counts
        );
        let _ = writeln!(out, "      \"updates_submitted\": {},", r.submitted);
        let _ = writeln!(
            out,
            "      \"updates_completed\": {},",
            r.stats.total_completed
        );
        let _ = writeln!(out, "      \"updates_shed\": {},", r.stats.total_shed);
        let _ = writeln!(
            out,
            "      \"updates_shed_at_submit\": {},",
            r.shed_at_submit
        );
        let _ = writeln!(out, "      \"wall_s\": {:.6},", r.wall_s);
        let _ = writeln!(
            out,
            "      \"throughput_updates_per_s\": {:.2},",
            r.stats.total_completed as f64 / r.wall_s.max(1e-12)
        );
        let _ = writeln!(out, "      \"latency_p50_ms\": {:.4},", p50 * 1e3);
        let _ = writeln!(out, "      \"latency_p95_ms\": {:.4},", p95 * 1e3);
        let _ = writeln!(out, "      \"latency_p99_ms\": {:.4},", p99 * 1e3);
        let _ = writeln!(out, "      \"max_queue_depth\": {},", r.max_depth);
        let hist: Vec<String> = r
            .stats
            .degradation_histogram
            .iter()
            .map(|c| c.to_string())
            .collect();
        let _ = writeln!(
            out,
            "      \"degradation_histogram\": [{}],",
            hist.join(", ")
        );
        let _ = writeln!(
            out,
            "      \"bit_identical_to_solo\": {},",
            match r.bit_identical {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            }
        );
        let _ = writeln!(
            out,
            "      \"dispatch_span_violations\": {}",
            r.span_violations
        );
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let sessions: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    eprintln!("load_gen: {sessions} sessions on {workers} workers");

    let nominal = run_scenario(
        "nominal",
        ServeConfig {
            workers,
            max_sessions: sessions,
            queue_capacity: 256,
            degrade_start: 1 << 20,
            ..ServeConfig::default()
        },
        sessions,
        true,
        true,
    );
    let overload = run_scenario(
        "overload",
        ServeConfig {
            workers,
            max_sessions: sessions,
            queue_capacity: 8,
            degrade_start: 4,
            degrade_stride: 4,
            ..ServeConfig::default()
        },
        sessions,
        false,
        false,
    );

    let results = [nominal, overload];
    let json = emit_json(&results);
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_serve_throughput.json", &json)
        .expect("write results/BENCH_serve_throughput.json");
    print!("{json}");

    let ok = results
        .iter()
        .all(|r| r.span_violations == 0 && r.bit_identical.unwrap_or(true));
    if ok {
        eprintln!("load_gen: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("load_gen: FAILED");
        ExitCode::FAILURE
    }
}
