//! Admission control: bounded queues, typed rejections, shed accounting.

use crate::session::{SessionId, SessionRegistry};

/// Why the server refused a request. Every refusal is cheap, typed, and
/// deterministic — the client can tell "back off" (`QueueFull`,
/// `SessionLimit`) apart from "you are wrong" (`UnknownSession`,
/// `SessionClosing`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The engine pool is exhausted: no more concurrent sessions fit.
    SessionLimit {
        /// The configured maximum number of concurrent sessions.
        max_sessions: usize,
    },
    /// The session's bounded queue is full; the update was shed.
    QueueFull {
        /// The session whose queue is full.
        session: SessionId,
        /// The configured per-session queue capacity.
        capacity: usize,
    },
    /// No live session has this id.
    UnknownSession(SessionId),
    /// The session is closing; it accepts no further updates.
    SessionClosing(SessionId),
    /// The server is shutting down.
    ShuttingDown,
    /// The connection spoke an unsupported protocol version (or skipped
    /// the hello handshake entirely).
    ProtocolMismatch {
        /// The version the client announced (`None`: no hello frame).
        client: Option<u8>,
        /// The version this server speaks.
        supported: u8,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::SessionLimit { max_sessions } => {
                write!(
                    f,
                    "session limit reached ({max_sessions} concurrent sessions)"
                )
            }
            AdmissionError::QueueFull { session, capacity } => {
                write!(f, "{session} queue full (capacity {capacity}); update shed")
            }
            AdmissionError::UnknownSession(id) => write!(f, "{id} does not exist"),
            AdmissionError::SessionClosing(id) => write!(f, "{id} is closing"),
            AdmissionError::ShuttingDown => write!(f, "server is shutting down"),
            AdmissionError::ProtocolMismatch { client, supported } => match client {
                Some(v) => write!(
                    f,
                    "unsupported protocol version {v} (this server speaks {supported})"
                ),
                None => write!(
                    f,
                    "connection must open with a hello frame (protocol version {supported})"
                ),
            },
        }
    }
}

impl std::error::Error for AdmissionError {}

/// The admission policy plus its shed/rejection counters.
///
/// The controller never blocks: it answers "admit or refuse" from the
/// registry state it is shown, and counts every refusal by class so
/// [`ServerStats`](crate::ServerStats) can report shed rates without
/// scanning sessions.
#[derive(Debug)]
pub struct AdmissionController {
    max_sessions: usize,
    queue_capacity: usize,
    rejected_creates: u64,
    shed_updates: u64,
}

impl AdmissionController {
    /// A controller for the given limits.
    ///
    /// # Panics
    ///
    /// Panics unless both limits are at least 1.
    pub fn new(max_sessions: usize, queue_capacity: usize) -> Self {
        assert!(max_sessions >= 1, "need at least one session slot");
        assert!(queue_capacity >= 1, "need at least one queue slot");
        AdmissionController {
            max_sessions,
            queue_capacity,
            rejected_creates: 0,
            shed_updates: 0,
        }
    }

    /// The configured per-session queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The configured concurrent-session ceiling.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// Session creations refused because the pool was exhausted.
    pub fn rejected_creates(&self) -> u64 {
        self.rejected_creates
    }

    /// Updates shed because a session queue was full.
    pub fn shed_updates(&self) -> u64 {
        self.shed_updates
    }

    /// Decides whether another session fits.
    pub fn admit_create(&mut self, registry: &SessionRegistry) -> Result<(), AdmissionError> {
        if registry.len() >= self.max_sessions {
            self.rejected_creates += 1;
            return Err(AdmissionError::SessionLimit {
                max_sessions: self.max_sessions,
            });
        }
        Ok(())
    }

    /// Decides whether `session` may enqueue one more update. On success
    /// the caller pushes the request; on `QueueFull` the update counts as
    /// shed (both here and on the session's stats, which the caller owns).
    pub fn admit_update(
        &mut self,
        registry: &SessionRegistry,
        session: SessionId,
    ) -> Result<(), AdmissionError> {
        let s = registry
            .get(session)
            .ok_or(AdmissionError::UnknownSession(session))?;
        if s.closing {
            return Err(AdmissionError::SessionClosing(session));
        }
        if s.depth() >= self.queue_capacity {
            self.shed_updates += 1;
            return Err(AdmissionError::QueueFull {
                session,
                capacity: self.queue_capacity,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use supernova_factors::{Se2, Variable};
    use supernova_hw::Platform;
    use supernova_runtime::CostModel;
    use supernova_solvers::{RaIsam2Config, SolverEngine};

    fn engine() -> SolverEngine {
        SolverEngine::new(
            RaIsam2Config::default(),
            Arc::new(CostModel::new(Platform::supernova(2))),
        )
    }

    fn push(reg: &mut SessionRegistry, id: SessionId) {
        reg.get_mut(id)
            .expect("session")
            .queue
            .push_back(crate::UpdateRequest::new(
                0,
                Variable::Se2(Se2::identity()),
                Vec::new(),
            ));
    }

    #[test]
    fn session_limit_is_enforced_and_counted() {
        let mut reg = SessionRegistry::new();
        let mut adm = AdmissionController::new(2, 4);
        assert!(adm.admit_create(&reg).is_ok());
        reg.insert(engine(), 4);
        assert!(adm.admit_create(&reg).is_ok());
        reg.insert(engine(), 4);
        assert_eq!(
            adm.admit_create(&reg),
            Err(AdmissionError::SessionLimit { max_sessions: 2 })
        );
        assert_eq!(adm.rejected_creates(), 1);
    }

    #[test]
    fn queue_full_sheds_with_typed_error() {
        let mut reg = SessionRegistry::new();
        let mut adm = AdmissionController::new(4, 2);
        let id = reg.insert(engine(), 4);
        assert!(adm.admit_update(&reg, id).is_ok());
        push(&mut reg, id);
        assert!(adm.admit_update(&reg, id).is_ok());
        push(&mut reg, id);
        assert_eq!(
            adm.admit_update(&reg, id),
            Err(AdmissionError::QueueFull {
                session: id,
                capacity: 2
            })
        );
        assert_eq!(adm.shed_updates(), 1);
    }

    #[test]
    fn unknown_and_closing_sessions_are_distinct_errors() {
        let mut reg = SessionRegistry::new();
        let mut adm = AdmissionController::new(4, 2);
        let ghost = SessionId(99);
        assert_eq!(
            adm.admit_update(&reg, ghost),
            Err(AdmissionError::UnknownSession(ghost))
        );
        let id = reg.insert(engine(), 4);
        reg.get_mut(id).expect("session").closing = true;
        assert_eq!(
            adm.admit_update(&reg, id),
            Err(AdmissionError::SessionClosing(id))
        );
        // Neither counts as a shed (the client misused the API; nothing
        // was load-shed).
        assert_eq!(adm.shed_updates(), 0);
    }
}
