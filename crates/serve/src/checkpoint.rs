//! The `SNVC` session-checkpoint codec.
//!
//! A checkpoint serializes an [`EngineSnapshot`] — the engine's
//! applied-update log plus a witness estimate — in the same style as the
//! wire protocol: little-endian primitives, bit-exact pose encoding, and a
//! decode path that returns typed errors on any malformed input instead of
//! panicking. The update log is the ground truth;
//! [`SolverEngine::restore`](supernova_solvers::SolverEngine::restore)
//! replays it and verifies the rebuilt estimate against the witness, so a
//! checkpoint that decodes but lies is still rejected.
//!
//! Only the factor kinds the datasets produce ([`PriorFactor`],
//! [`BetweenFactor`]) are serializable; encoding any other factor is a
//! typed [`CheckpointError::UnsupportedFactor`], never a silent drop.

use std::sync::Arc;

use supernova_factors::{BetweenFactor, Factor, Key, NoiseModel, PriorFactor};
use supernova_linalg::NumericMode;
use supernova_solvers::{EngineSnapshot, UpdateRecord};

use crate::protocol::{decode_variable, encode_variable, put_f64, put_u32, put_u64, Cursor};

/// Checkpoint magic: `SNVC`.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"SNVC";

/// Checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Hard cap on serialized checkpoints (matches the wire frame cap: a
/// checkpoint must fit in one `Restore`/`Snapshot` frame).
pub const MAX_CHECKPOINT_BYTES: usize = crate::protocol::MAX_FRAME_BYTES;

const FACTOR_PRIOR: u8 = 0;
const FACTOR_BETWEEN: u8 = 1;

/// Why checkpoint bytes could not be produced or understood.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The first four bytes are not `SNVC`.
    BadMagic,
    /// The format version is not one this build reads.
    BadVersion(
        /// The version found in the header.
        u16,
    ),
    /// The numeric-mode byte names no known mode.
    BadNumericMode(
        /// The offending byte.
        u8,
    ),
    /// A factor tag names no serializable factor kind.
    BadFactorTag(
        /// The offending byte.
        u8,
    ),
    /// A noise model carried non-positive or non-finite weights.
    BadNoise,
    /// A factor's noise dimension disagrees with its measurement.
    DimensionMismatch,
    /// An element count implies more data than the buffer holds.
    TooLarge,
    /// The buffer is truncated or carries trailing/invalid bytes.
    Malformed(
        /// What the decoder tripped on.
        &'static str,
    ),
    /// The snapshot holds a factor kind the codec cannot serialize.
    UnsupportedFactor,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => f.write_str("not an SNVC checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadNumericMode(b) => write!(f, "unknown numeric-mode byte {b}"),
            CheckpointError::BadFactorTag(b) => write!(f, "unknown factor tag {b}"),
            CheckpointError::BadNoise => f.write_str("noise weights must be finite and positive"),
            CheckpointError::DimensionMismatch => {
                f.write_str("noise/measurement dimension mismatch")
            }
            CheckpointError::TooLarge => f.write_str("element count exceeds the buffer"),
            CheckpointError::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
            CheckpointError::UnsupportedFactor => {
                f.write_str("snapshot holds a non-serializable factor kind")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<crate::protocol::WireError> for CheckpointError {
    fn from(e: crate::protocol::WireError) -> Self {
        match e {
            crate::protocol::WireError::Malformed(why) => CheckpointError::Malformed(why),
            // A checkpoint decodes from an in-memory buffer; transport
            // errors cannot occur, but the conversion must stay total.
            _ => CheckpointError::Malformed("transport error in buffer decode"),
        }
    }
}

fn encode_noise(out: &mut Vec<u8>, noise: &NoiseModel) {
    put_u32(out, noise.dim() as u32);
    for w in noise.sqrt_info() {
        put_f64(out, *w);
    }
    match noise.huber_k() {
        None => out.push(0),
        Some(k) => {
            out.push(1);
            put_f64(out, k);
        }
    }
}

fn decode_noise(cur: &mut Cursor<'_>) -> Result<NoiseModel, CheckpointError> {
    let dim = cur.u32()? as usize;
    if dim > cur.remaining() / 8 {
        return Err(CheckpointError::TooLarge);
    }
    let mut sqrt_info = Vec::with_capacity(dim);
    for _ in 0..dim {
        sqrt_info.push(cur.f64()?);
    }
    let huber = match cur.u8()? {
        0 => None,
        1 => Some(cur.f64()?),
        _ => return Err(CheckpointError::Malformed("bad huber flag")),
    };
    NoiseModel::from_sqrt_info(sqrt_info, huber).ok_or(CheckpointError::BadNoise)
}

fn encode_factor(out: &mut Vec<u8>, factor: &dyn Factor) -> Result<(), CheckpointError> {
    if let Some(prior) = factor.as_any().downcast_ref::<PriorFactor>() {
        let &[key] = prior.keys() else {
            return Err(CheckpointError::Malformed("prior factor key arity"));
        };
        out.push(FACTOR_PRIOR);
        put_u64(out, key.0 as u64);
        encode_variable(out, prior.prior());
        encode_noise(out, prior.noise());
        return Ok(());
    }
    if let Some(between) = factor.as_any().downcast_ref::<BetweenFactor>() {
        let &[a, b] = between.keys() else {
            return Err(CheckpointError::Malformed("between factor key arity"));
        };
        out.push(FACTOR_BETWEEN);
        put_u64(out, a.0 as u64);
        put_u64(out, b.0 as u64);
        encode_variable(out, between.measured());
        encode_noise(out, between.noise());
        return Ok(());
    }
    Err(CheckpointError::UnsupportedFactor)
}

fn decode_factor(cur: &mut Cursor<'_>) -> Result<Arc<dyn Factor>, CheckpointError> {
    match cur.u8()? {
        FACTOR_PRIOR => {
            let key = Key(cur.u64()? as usize);
            let prior = decode_variable(cur)?;
            let noise = decode_noise(cur)?;
            // The constructor asserts dimension agreement; pre-validate so
            // hostile bytes surface as a typed error, not a panic.
            if noise.dim() != prior.dim() {
                return Err(CheckpointError::DimensionMismatch);
            }
            Ok(Arc::new(PriorFactor::new(key, prior, noise)))
        }
        FACTOR_BETWEEN => {
            let a = Key(cur.u64()? as usize);
            let b = Key(cur.u64()? as usize);
            let measured = decode_variable(cur)?;
            let noise = decode_noise(cur)?;
            if noise.dim() != measured.dim() {
                return Err(CheckpointError::DimensionMismatch);
            }
            Ok(Arc::new(BetweenFactor::new(a, b, measured, noise)))
        }
        other => Err(CheckpointError::BadFactorTag(other)),
    }
}

/// Serializes a snapshot to `SNVC` bytes.
///
/// # Errors
///
/// [`CheckpointError::UnsupportedFactor`] when the update log holds a
/// factor kind the codec cannot represent, [`CheckpointError::TooLarge`]
/// when the result would exceed [`MAX_CHECKPOINT_BYTES`].
pub fn encode_snapshot(snapshot: &EngineSnapshot) -> Result<Vec<u8>, CheckpointError> {
    let mut out = Vec::new();
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.push(snapshot.numeric_mode.as_byte());
    put_u64(&mut out, snapshot.plan_generation as u64);
    put_u32(&mut out, snapshot.updates.len() as u32);
    for rec in &snapshot.updates {
        out.push(rec.level);
        encode_variable(&mut out, &rec.initial);
        put_u32(&mut out, rec.factors.len() as u32);
        for f in &rec.factors {
            encode_factor(&mut out, f.as_ref())?;
        }
    }
    put_u32(&mut out, snapshot.estimate.len() as u32);
    for v in &snapshot.estimate {
        encode_variable(&mut out, v);
    }
    if out.len() > MAX_CHECKPOINT_BYTES {
        return Err(CheckpointError::TooLarge);
    }
    Ok(out)
}

/// Parses `SNVC` bytes back into a snapshot.
///
/// # Errors
///
/// Any [`CheckpointError`]; the decode path never panics, whatever the
/// bytes. A decoded snapshot still faces replay verification in
/// [`SolverEngine::restore`](supernova_solvers::SolverEngine::restore).
pub fn decode_snapshot(bytes: &[u8]) -> Result<EngineSnapshot, CheckpointError> {
    if bytes.len() > MAX_CHECKPOINT_BYTES {
        return Err(CheckpointError::TooLarge);
    }
    let mut cur = Cursor::new(bytes);
    if cur.take(4)? != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u16::from_le_bytes([cur.u8()?, cur.u8()?]);
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let mode_byte = cur.u8()?;
    let numeric_mode =
        NumericMode::from_byte(mode_byte).map_err(CheckpointError::BadNumericMode)?;
    let plan_generation = cur.u64()? as usize;
    let update_count = cur.u32()? as usize;
    // Each update is at least 6 bytes (level + variable tag + empty factor
    // and component counts); reject counts the buffer cannot back.
    if update_count > cur.remaining() / 6 {
        return Err(CheckpointError::TooLarge);
    }
    let mut updates = Vec::with_capacity(update_count);
    for _ in 0..update_count {
        let level = cur.u8()?;
        let initial = decode_variable(&mut cur)?;
        let factor_count = cur.u32()? as usize;
        if factor_count > cur.remaining() {
            return Err(CheckpointError::TooLarge);
        }
        let mut factors = Vec::with_capacity(factor_count);
        for _ in 0..factor_count {
            factors.push(decode_factor(&mut cur)?);
        }
        updates.push(UpdateRecord {
            level,
            initial,
            factors,
        });
    }
    let estimate_count = cur.u32()? as usize;
    if estimate_count > cur.remaining() {
        return Err(CheckpointError::TooLarge);
    }
    let mut estimate = Vec::with_capacity(estimate_count);
    for _ in 0..estimate_count {
        estimate.push(decode_variable(&mut cur)?);
    }
    cur.done()?;
    Ok(EngineSnapshot {
        numeric_mode,
        plan_generation,
        updates,
        estimate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use supernova_factors::{Se2, Variable};

    fn sample_snapshot() -> EngineSnapshot {
        let prior: Arc<dyn Factor> = Arc::new(PriorFactor::se2(
            Key(0),
            Se2::new(0.0, 0.0, 0.0),
            NoiseModel::isotropic(3, 0.1),
        ));
        let odom: Arc<dyn Factor> = Arc::new(BetweenFactor::se2(
            Key(0),
            Key(1),
            Se2::new(1.0, 0.0, 0.1),
            NoiseModel::from_sigmas(&[0.05, 0.05, 0.02]).with_huber(1.5),
        ));
        EngineSnapshot {
            numeric_mode: NumericMode::F32F64,
            plan_generation: 3,
            updates: vec![
                UpdateRecord {
                    level: 0,
                    initial: Variable::Se2(Se2::new(0.0, 0.0, 0.0)),
                    factors: vec![prior],
                },
                UpdateRecord {
                    level: 2,
                    initial: Variable::Se2(Se2::new(1.0, 0.0, 0.1)),
                    factors: vec![odom],
                },
            ],
            estimate: vec![
                Variable::Se2(Se2::new(0.0, 0.0, 0.0)),
                Variable::Se2(Se2::new(1.0 / 3.0, -7.2e-9, 2.5)),
            ],
        }
    }

    fn assert_records_equal(a: &EngineSnapshot, b: &EngineSnapshot) {
        assert_eq!(a.numeric_mode, b.numeric_mode);
        assert_eq!(a.plan_generation, b.plan_generation);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.updates.len(), b.updates.len());
        for (x, y) in a.updates.iter().zip(&b.updates) {
            assert_eq!(x.level, y.level);
            assert_eq!(x.initial, y.initial);
            assert_eq!(x.factors.len(), y.factors.len());
            for (f, g) in x.factors.iter().zip(&y.factors) {
                assert_eq!(f.keys(), g.keys());
                assert_eq!(f.noise().sqrt_info(), g.noise().sqrt_info());
                assert_eq!(f.noise().huber_k(), g.noise().huber_k());
            }
        }
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let snap = sample_snapshot();
        let bytes = encode_snapshot(&snap).expect("encode");
        assert_eq!(&bytes[..4], b"SNVC");
        let back = decode_snapshot(&bytes).expect("decode");
        assert_records_equal(&snap, &back);
        // Idempotent: re-encoding the decoded snapshot is byte-identical.
        assert_eq!(encode_snapshot(&back).expect("re-encode"), bytes);
    }

    #[test]
    fn every_truncation_is_rejected_not_panicked() {
        let bytes = encode_snapshot(&sample_snapshot()).expect("encode");
        for n in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..n]).is_err(),
                "prefix of {n} bytes decoded"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected_or_roundtrips() {
        // Flipping any one byte must never panic; it either fails typed or
        // yields a snapshot (bit flips inside an f64 payload decode fine —
        // replay verification catches those downstream).
        let bytes = encode_snapshot(&sample_snapshot()).expect("encode");
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            let _ = decode_snapshot(&bad);
        }
    }

    #[test]
    fn header_violations_are_typed() {
        let bytes = encode_snapshot(&sample_snapshot()).expect("encode");
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            decode_snapshot(&wrong_magic),
            Err(CheckpointError::BadMagic)
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xEE;
        assert!(matches!(
            decode_snapshot(&wrong_version),
            Err(CheckpointError::BadVersion(_))
        ));
        let mut wrong_mode = bytes.clone();
        wrong_mode[6] = 0x7F;
        assert!(matches!(
            decode_snapshot(&wrong_mode),
            Err(CheckpointError::BadNumericMode(0x7F))
        ));
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            decode_snapshot(&trailing),
            Err(CheckpointError::Malformed("trailing bytes"))
        ));
    }

    #[test]
    fn hostile_noise_and_dims_are_typed_errors() {
        // A negative sqrt-info weight: flip the sign bit of the first
        // noise weight. Locate it by decoding structure: simpler to build
        // a snapshot whose noise weight sign we flip via raw bytes of a
        // known constant is brittle; instead check from_sqrt_info's gate
        // feeds through the decoder by constructing bytes directly.
        let mut out = Vec::new();
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.push(NumericMode::F64.as_byte());
        put_u64(&mut out, 0);
        put_u32(&mut out, 1); // one update
        out.push(0); // level
        encode_variable(&mut out, &Variable::Vector(vec![1.0]));
        put_u32(&mut out, 1); // one factor
        out.push(FACTOR_PRIOR);
        put_u64(&mut out, 0);
        encode_variable(&mut out, &Variable::Vector(vec![1.0]));
        // Noise: dim 1, weight -1.0 (invalid), no huber.
        let mut bad_noise = out.clone();
        put_u32(&mut bad_noise, 1);
        put_f64(&mut bad_noise, -1.0);
        bad_noise.push(0);
        put_u32(&mut bad_noise, 0); // estimate count
        assert!(matches!(
            decode_snapshot(&bad_noise),
            Err(CheckpointError::BadNoise)
        ));
        // Noise: dim 2 against a 1-D measurement.
        let mut bad_dim = out;
        put_u32(&mut bad_dim, 2);
        put_f64(&mut bad_dim, 1.0);
        put_f64(&mut bad_dim, 1.0);
        bad_dim.push(0);
        put_u32(&mut bad_dim, 0);
        assert!(matches!(
            decode_snapshot(&bad_dim),
            Err(CheckpointError::DimensionMismatch)
        ));
    }
}
