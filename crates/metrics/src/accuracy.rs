//! Absolute pose error and incremental RMSE (§5.3).

use supernova_factors::Values;

/// Absolute-pose-error summary over one trajectory comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ApeStats {
    /// Maximum translation error across compared poses (the paper's MAX).
    pub max: f64,
    /// Root-mean-square translation error.
    pub rmse: f64,
    /// Number of poses compared.
    pub count: usize,
}

/// Computes the absolute pose error (translation part) of `estimate`
/// against `reference` over their common prefix.
///
/// No alignment step is needed: both trajectories share the gauge fixed by
/// the dataset's prior factor (the paper's reference trajectories are
/// optimized in the same frame).
pub fn ape(estimate: &Values, reference: &Values) -> ApeStats {
    let n = estimate.len().min(reference.len());
    let mut max = 0.0f64;
    let mut sum2 = 0.0f64;
    for i in 0..n {
        let d = estimate
            .get(i.into())
            .translation_distance(reference.get(i.into()));
        max = max.max(d);
        sum2 += d * d;
    }
    ApeStats {
        max,
        rmse: if n > 0 { (sum2 / n as f64).sqrt() } else { 0.0 },
        count: n,
    }
}

/// Accumulates per-step APE into the incremental metrics of Equation (3):
/// `iRMSE = (1/K) Σ_k RMSE(X⁽ᵏ⁾, X_ref⁽ᵏ⁾)`, plus the worst per-step MAX.
///
/// In online SLAM the error must be measured at *each* timestep, not just
/// over the final trajectory — a late loop-closure fix cannot repair frames
/// that were already rendered.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IrmseAccumulator {
    rmse_sum: f64,
    steps: usize,
    max: f64,
}

impl IrmseAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one evaluated step.
    pub fn push(&mut self, step_stats: ApeStats) {
        self.rmse_sum += step_stats.rmse;
        self.max = self.max.max(step_stats.max);
        self.steps += 1;
    }

    /// The incremental RMSE over the recorded steps.
    pub fn irmse(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.rmse_sum / self.steps as f64
        }
    }

    /// The worst per-step maximum translation error (the paper's MAX rows
    /// in Table 4).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Steps recorded.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supernova_factors::{Se2, Values};

    fn traj(offsets: &[f64]) -> Values {
        let mut v = Values::new();
        for (i, o) in offsets.iter().enumerate() {
            v.insert_se2(Se2::new(i as f64 + o, 0.0, 0.0));
        }
        v
    }

    #[test]
    fn ape_of_identical_trajectories_is_zero() {
        let a = traj(&[0.0, 0.0, 0.0]);
        let s = ape(&a, &a);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn ape_max_and_rmse() {
        let est = traj(&[0.0, 0.3, 0.4]);
        let reference = traj(&[0.0, 0.0, 0.0]);
        let s = ape(&est, &reference);
        assert!((s.max - 0.4).abs() < 1e-12);
        let expect = ((0.0 + 0.09 + 0.16) / 3.0f64).sqrt();
        assert!((s.rmse - expect).abs() < 1e-12);
    }

    #[test]
    fn ape_uses_common_prefix() {
        let est = traj(&[0.1, 0.1]);
        let reference = traj(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(ape(&est, &reference).count, 2);
    }

    #[test]
    fn irmse_averages_and_tracks_worst() {
        let mut acc = IrmseAccumulator::new();
        acc.push(ApeStats {
            max: 0.5,
            rmse: 0.2,
            count: 10,
        });
        acc.push(ApeStats {
            max: 1.5,
            rmse: 0.4,
            count: 11,
        });
        assert!((acc.irmse() - 0.3).abs() < 1e-12);
        assert_eq!(acc.max(), 1.5);
        assert_eq!(acc.steps(), 2);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = IrmseAccumulator::new();
        assert_eq!(acc.irmse(), 0.0);
        assert_eq!(acc.max(), 0.0);
    }
}
