//! Latency statistics for the Figure 10 box plots.

/// Five-number summary (plus mean) of a latency sample set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BoxStats {
    /// Smallest sample.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest sample (outliers included, as in Figure 10).
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub count: usize,
}

impl BoxStats {
    /// Computes the summary. Returns the default (all zeros) for an empty
    /// input.
    pub fn from_samples(samples: &[f64]) -> BoxStats {
        if samples.is_empty() {
            return BoxStats::default();
        }
        let mut s = samples.to_vec();
        // lint: allow(unwrap) — latencies come from the simulator and are finite
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let q = |p: f64| -> f64 {
            let idx = p * (s.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let w = idx - lo as f64;
            s[lo] * (1.0 - w) + s[hi] * w
        };
        BoxStats {
            min: s[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            // lint: allow(unwrap) — guarded by the is_empty() early return above
            max: *s.last().expect("nonempty"),
            mean: s.iter().sum::<f64>() / s.len() as f64,
            count: s.len(),
        }
    }
}

/// A fixed-bucket latency histogram that supports merging and percentile
/// queries without retaining samples.
///
/// Buckets are uniform: bucket `i` covers `[i·width, (i+1)·width)`; values
/// at or above `buckets · width` land in the final *saturated* bucket (the
/// histogram never loses a count, it only loses resolution at the top).
/// Negative values clamp into bucket 0. Two histograms with the same
/// `(width, buckets)` shape can be added together, which is how the serving
/// layer aggregates per-session recordings into server-wide statistics.
///
/// Percentile queries return the *upper edge* of the bucket containing the
/// requested rank — a conservative (never underestimating) answer with
/// error bounded by one bucket width, except in the saturated bucket where
/// the largest recorded value is returned instead.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    total: u64,
    max_seen: f64,
}

impl Histogram {
    /// An empty histogram of `buckets` uniform buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics unless `width > 0` and `buckets >= 1`.
    pub fn new(width: f64, buckets: usize) -> Histogram {
        assert!(width > 0.0, "bucket width must be positive");
        assert!(buckets >= 1, "need at least one bucket");
        Histogram {
            width,
            counts: vec![0; buckets],
            total: 0,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// The bucket width in sample units.
    pub fn bucket_width(&self) -> f64 {
        self.width
    }

    /// The number of buckets (including the saturated top bucket).
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The raw bucket counts (index `i` covers `[i·width, (i+1)·width)`).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Records one sample. Non-finite samples are clamped into the
    /// saturated bucket (NaN) or bucket 0 (−∞) rather than dropped.
    pub fn record(&mut self, value: f64) {
        let idx = if value.is_nan() {
            self.counts.len() - 1
        } else {
            let i = (value / self.width).floor();
            if i < 0.0 {
                0
            } else {
                (i as usize).min(self.counts.len() - 1)
            }
        };
        self.counts[idx] += 1;
        self.total += 1;
        if value > self.max_seen {
            self.max_seen = value;
        }
    }

    /// Adds every count of `other` into `self`. Returns `false` (and
    /// changes nothing) when the shapes differ.
    #[must_use]
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.width != other.width || self.counts.len() != other.counts.len() {
            return false;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        if other.max_seen > self.max_seen {
            self.max_seen = other.max_seen;
        }
        true
    }

    /// The value at or below which a fraction `p ∈ [0, 1]` of samples lie
    /// (upper bucket edge; the recorded maximum for the saturated bucket).
    /// Returns 0.0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.total == 0 {
            return 0.0;
        }
        // Rank of the sample we are after, 1-based: ⌈p·n⌉ clamped to ≥ 1.
        let rank = ((p * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i + 1 == self.counts.len() {
                    // Saturated bucket: the upper edge is unbounded; report
                    // the largest value actually recorded.
                    self.max_seen.max((i as f64) * self.width)
                } else {
                    (i + 1) as f64 * self.width
                };
            }
        }
        // Unreachable: seen == total >= rank by the loop's end.
        self.max_seen
    }

    /// The largest recorded sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max_seen
        }
    }
}

/// Fraction of samples strictly exceeding `target` — the "target miss rate"
/// annotated above each box in Figure 10.
pub fn miss_rate(samples: &[f64], target: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&s| s > target).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_known_set() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = BoxStats::from_samples(&[5.0, 1.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn empty_input_is_zeroed() {
        assert_eq!(BoxStats::from_samples(&[]), BoxStats::default());
        assert_eq!(miss_rate(&[], 1.0), 0.0);
    }

    #[test]
    fn histogram_percentiles_of_empty_are_zero() {
        let h = Histogram::new(0.001, 64);
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.0), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.percentile(1.0), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn histogram_single_sample_dominates_every_percentile() {
        let mut h = Histogram::new(0.01, 100);
        h.record(0.034);
        assert_eq!(h.count(), 1);
        // 0.034 lands in [0.03, 0.04); every percentile reports that
        // bucket's upper edge.
        for p in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 0.04, "p={p}");
        }
        assert_eq!(h.max(), 0.034);
    }

    #[test]
    fn histogram_saturated_bucket_reports_recorded_max() {
        let mut h = Histogram::new(1.0, 4); // saturates at 4.0
        h.record(0.5);
        h.record(100.0);
        h.record(250.0);
        assert_eq!(h.bucket_counts(), &[1, 0, 0, 2]);
        assert_eq!(h.percentile(0.33), 1.0);
        // Percentiles in the saturated bucket: the recorded max, not the
        // (meaningless) bucket edge.
        assert_eq!(h.percentile(0.9), 250.0);
        assert_eq!(h.percentile(1.0), 250.0);
        assert_eq!(h.max(), 250.0);
    }

    #[test]
    fn histogram_percentiles_of_uniform_fill() {
        let mut h = Histogram::new(1.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5); // one sample per bucket
        }
        assert_eq!(h.percentile(0.1), 1.0);
        assert_eq!(h.percentile(0.5), 5.0);
        // Rank 10 lands in the top bucket, which is saturated by
        // definition and therefore reports the recorded maximum.
        assert_eq!(h.percentile(0.95), 9.5);
        // p=0 clamps to the first sample's bucket.
        assert_eq!(h.percentile(0.0), 1.0);
    }

    #[test]
    fn histogram_negative_and_nan_clamp_instead_of_dropping() {
        let mut h = Histogram::new(1.0, 4);
        h.record(-3.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts(), &[1, 0, 0, 1]);
    }

    #[test]
    fn histogram_merge_requires_identical_shape() {
        let mut a = Histogram::new(1.0, 4);
        let mut b = Histogram::new(1.0, 4);
        a.record(0.5);
        b.record(2.5);
        b.record(7.0);
        assert!(a.merge(&b));
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_counts(), &[1, 0, 1, 1]);
        assert_eq!(a.max(), 7.0);
        // Mismatched shapes are rejected untouched.
        let other_width = Histogram::new(0.5, 4);
        let other_len = Histogram::new(1.0, 8);
        assert!(!a.merge(&other_width));
        assert!(!a.merge(&other_len));
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn histogram_percentile_out_of_range_panics() {
        Histogram::new(1.0, 2).percentile(1.5);
    }

    #[test]
    fn miss_rate_is_strict() {
        let samples = [1.0, 2.0, 3.0];
        assert_eq!(miss_rate(&samples, 2.0), 1.0 / 3.0);
        assert_eq!(miss_rate(&samples, 3.0), 0.0);
        assert_eq!(miss_rate(&samples, 0.5), 1.0);
    }
}
