//! Latency statistics for the Figure 10 box plots.

/// Five-number summary (plus mean) of a latency sample set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BoxStats {
    /// Smallest sample.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest sample (outliers included, as in Figure 10).
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub count: usize,
}

impl BoxStats {
    /// Computes the summary. Returns the default (all zeros) for an empty
    /// input.
    pub fn from_samples(samples: &[f64]) -> BoxStats {
        if samples.is_empty() {
            return BoxStats::default();
        }
        let mut s = samples.to_vec();
        // lint: allow(unwrap) — latencies come from the simulator and are finite
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let q = |p: f64| -> f64 {
            let idx = p * (s.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let w = idx - lo as f64;
            s[lo] * (1.0 - w) + s[hi] * w
        };
        BoxStats {
            min: s[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            // lint: allow(unwrap) — guarded by the is_empty() early return above
            max: *s.last().expect("nonempty"),
            mean: s.iter().sum::<f64>() / s.len() as f64,
            count: s.len(),
        }
    }
}

/// Fraction of samples strictly exceeding `target` — the "target miss rate"
/// annotated above each box in Figure 10.
pub fn miss_rate(samples: &[f64], target: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&s| s > target).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_known_set() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = BoxStats::from_samples(&[5.0, 1.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn empty_input_is_zeroed() {
        assert_eq!(BoxStats::from_samples(&[]), BoxStats::default());
        assert_eq!(miss_rate(&[], 1.0), 0.0);
    }

    #[test]
    fn miss_rate_is_strict() {
        let samples = [1.0, 2.0, 3.0];
        assert_eq!(miss_rate(&samples, 2.0), 1.0 / 3.0);
        assert_eq!(miss_rate(&samples, 3.0), 0.0);
        assert_eq!(miss_rate(&samples, 0.5), 1.0);
    }
}
