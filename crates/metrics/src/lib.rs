//! Trajectory-accuracy and latency metrics for the SuperNoVA evaluation
//! (§5.3 of the paper).
//!
//! - [`ape`] — absolute pose error of an estimate against a reference
//!   trajectory: the maximum translation error (MAX) and the RMSE;
//! - [`IrmseAccumulator`] — the incremental RMSE of Equation (3): the
//!   per-step RMSE averaged over steps (and the incremental MAX);
//! - [`BoxStats`] / [`miss_rate`] — the Figure 10 statistics: latency
//!   quartiles and target-miss rates;
//! - [`Histogram`] — a fixed-bucket, merge-able latency histogram for
//!   long-running collection (the serving layer's per-session p50/p95/p99
//!   come from it).
//!
//! # Example
//!
//! ```
//! use supernova_metrics::{miss_rate, BoxStats};
//!
//! let latencies = [0.010, 0.020, 0.031, 0.050];
//! assert_eq!(miss_rate(&latencies, 1.0 / 30.0), 0.25);
//! assert!(BoxStats::from_samples(&latencies).median > 0.02);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod accuracy;
mod stats;

pub use accuracy::{ape, ApeStats, IrmseAccumulator};
pub use stats::{miss_rate, BoxStats, Histogram};
