//! Compact binary trace encoding (`SNVT`), for golden-file tests.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "SNVT" | version u16 | numeric_mode u8
//! key: session u64, seq u64, step u64
//! string table: count u32, then per string: len u32, utf-8 bytes
//! span tree (pre-order recursive):
//!   name_idx u32 | cat u8 | timebase u8 | track u32
//!   start f64-bits u64 | end f64-bits u64 | ticks u64
//!   n_counters u32, per counter: name_idx u32, value u64
//!   n_children u32, children...
//! ```
//!
//! The string table is sorted, so encoding a canonical trace (see
//! [`Trace::canonical`]) yields byte-identical output across runs —
//! exactly what the committed golden fixtures rely on.

use std::collections::BTreeMap;

use supernova_linalg::NumericMode;

use crate::span::{Category, CounterSet, Span, StepKey, Timebase};
use crate::tracer::Trace;

const MAGIC: &[u8; 4] = b"SNVT";
// v2 added the numeric_mode header byte (precision the step's kernels ran
// under); v1 buffers are rejected with `BadVersion`.
const VERSION: u16 = 2;
const MAX_DEPTH: usize = 512;

/// Why a byte buffer failed to decode as a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended before the structure was complete.
    Truncated,
    /// The magic prefix was not `SNVT`.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The numeric-mode header byte named no known [`NumericMode`].
    BadNumericMode(u8),
    /// A string-table index was out of range.
    BadStringIndex(u32),
    /// An enum discriminant byte was out of range.
    BadDiscriminant(u8),
    /// A string-table entry was not valid UTF-8.
    BadUtf8,
    /// The span tree nested deeper than the decoder allows.
    TooDeep,
    /// Trailing bytes after a complete trace.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::BadMagic => write!(f, "bad magic (want SNVT)"),
            CodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            CodecError::BadNumericMode(b) => write!(f, "unknown numeric mode byte {b}"),
            CodecError::BadStringIndex(i) => write!(f, "string index {i} out of range"),
            CodecError::BadDiscriminant(d) => write!(f, "bad enum discriminant {d}"),
            CodecError::BadUtf8 => write!(f, "string table entry is not UTF-8"),
            CodecError::TooDeep => write!(f, "span tree nested deeper than {MAX_DEPTH}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after trace"),
        }
    }
}

impl std::error::Error for CodecError {}

fn gather_strings<'a>(span: &'a Span, table: &mut BTreeMap<&'a str, u32>) {
    table.entry(span.name.as_str()).or_insert(0);
    for (name, _) in span.counters.iter() {
        table.entry(name).or_insert(0);
    }
    for c in &span.children {
        gather_strings(c, table);
    }
}

fn encode_span(span: &Span, table: &BTreeMap<&str, u32>, out: &mut Vec<u8>) {
    // Encode side: the table was gathered from these exact spans, so every
    // name is present by construction.
    out.extend_from_slice(&table[span.name.as_str()].to_le_bytes()); // lint: allow(panic-path)
    out.push(match span.cat {
        Category::Serve => 0,
        Category::Solver => 1,
        Category::Exec => 2,
        Category::Hw => 3,
    });
    out.push(match span.timebase {
        Timebase::Wall => 0,
        Timebase::Virtual => 1,
    });
    out.extend_from_slice(&span.track.to_le_bytes());
    out.extend_from_slice(&span.start.to_bits().to_le_bytes());
    out.extend_from_slice(&span.end.to_bits().to_le_bytes());
    out.extend_from_slice(&span.ticks.to_le_bytes());
    out.extend_from_slice(&(span.counters.len() as u32).to_le_bytes());
    for (name, value) in span.counters.iter() {
        // Present by construction — same gather as the span name above.
        out.extend_from_slice(&table[name].to_le_bytes()); // lint: allow(panic-path)
        out.extend_from_slice(&value.to_le_bytes());
    }
    out.extend_from_slice(&(span.children.len() as u32).to_le_bytes());
    for c in &span.children {
        encode_span(c, table, out);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Takes exactly `N` bytes as an array — the fixed-width reads below
    /// go through this so the decode path never indexes a slice.
    fn arr<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let s = self.bytes(N)?;
        let mut a = [0u8; N];
        for (dst, src) in a.iter_mut().zip(s) {
            *dst = *src;
        }
        Ok(a)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        let [b] = self.arr::<1>()?;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.arr::<2>()?))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.arr::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.arr::<8>()?))
    }
}

fn decode_span(c: &mut Cursor<'_>, strings: &[String], depth: usize) -> Result<Span, CodecError> {
    if depth > MAX_DEPTH {
        return Err(CodecError::TooDeep);
    }
    let lookup = |i: u32, strings: &[String]| -> Result<String, CodecError> {
        strings
            .get(i as usize)
            .cloned()
            .ok_or(CodecError::BadStringIndex(i))
    };
    let name = lookup(c.u32()?, strings)?;
    let cat = match c.u8()? {
        0 => Category::Serve,
        1 => Category::Solver,
        2 => Category::Exec,
        3 => Category::Hw,
        d => return Err(CodecError::BadDiscriminant(d)),
    };
    let timebase = match c.u8()? {
        0 => Timebase::Wall,
        1 => Timebase::Virtual,
        d => return Err(CodecError::BadDiscriminant(d)),
    };
    let track = c.u32()?;
    let start = f64::from_bits(c.u64()?);
    let end = f64::from_bits(c.u64()?);
    let ticks = c.u64()?;
    let n_counters = c.u32()?;
    let mut counters = CounterSet::new();
    for _ in 0..n_counters {
        let cname = lookup(c.u32()?, strings)?;
        let value = c.u64()?;
        counters.set(&cname, value);
    }
    let n_children = c.u32()?;
    let mut children = Vec::new();
    for _ in 0..n_children {
        children.push(decode_span(c, strings, depth + 1)?);
    }
    Ok(Span {
        name,
        cat,
        timebase,
        track,
        start,
        end,
        ticks,
        counters,
        children,
    })
}

impl Trace {
    /// Encodes the trace as `SNVT` bytes. Encoding a
    /// [`canonical`](Trace::canonical) trace is deterministic.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut table: BTreeMap<&str, u32> = BTreeMap::new();
        gather_strings(&self.root, &mut table);
        for (i, (_, idx)) in table.iter_mut().enumerate() {
            *idx = i as u32;
        }
        let mut out = Vec::with_capacity(64 + self.span_count() * 48);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.numeric_mode.as_byte());
        out.extend_from_slice(&self.key.session.to_le_bytes());
        out.extend_from_slice(&self.key.seq.to_le_bytes());
        out.extend_from_slice(&self.key.step.to_le_bytes());
        out.extend_from_slice(&(table.len() as u32).to_le_bytes());
        for (s, _) in &table {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        encode_span(&self.root, &table, &mut out);
        out
    }

    /// Decodes `SNVT` bytes produced by [`to_bytes`](Trace::to_bytes).
    pub fn from_bytes(buf: &[u8]) -> Result<Trace, CodecError> {
        let mut c = Cursor { buf, pos: 0 };
        if c.bytes(4)? != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = c.u16()?;
        if version != VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let numeric_mode = NumericMode::from_byte(c.u8()?).map_err(CodecError::BadNumericMode)?;
        let key = StepKey {
            session: c.u64()?,
            seq: c.u64()?,
            step: c.u64()?,
        };
        let n_strings = c.u32()?;
        let mut strings = Vec::new();
        for _ in 0..n_strings {
            let len = c.u32()? as usize;
            let bytes = c.bytes(len)?;
            strings.push(String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)?);
        }
        let root = decode_span(&mut c, &strings, 0)?;
        if c.pos != buf.len() {
            return Err(CodecError::TrailingBytes(buf.len() - c.pos));
        }
        Ok(Trace {
            key,
            numeric_mode,
            root,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut root = Span::wall("serve.dispatch", Category::Serve, 4.25, 4.5);
        root.track = 1;
        root.counters.set("level", 2);
        let mut solver = Span::wall("solver.step", Category::Solver, 4.26, 4.49);
        solver.counters.set("poses", 17);
        let mut hw = Span::virtual_time("hw", Category::Hw, 0.0, 1.5e-3, 123456);
        hw.children.push(Span::virtual_time(
            "hw.unit COMP0",
            Category::Hw,
            0.0,
            1.0e-3,
            99999,
        ));
        solver.children.push(hw);
        solver
            .children
            .push(Span::marker("solver.relin", Category::Solver, 4200));
        root.children.push(solver);
        Trace {
            key: StepKey {
                session: 9,
                seq: 3,
                step: 4,
            },
            numeric_mode: NumericMode::F32,
            root,
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).expect("decode");
        assert_eq!(back, t);
        // Canonical bytes are deterministic: two encodes agree.
        assert_eq!(t.canonical().to_bytes(), t.canonical().to_bytes());
    }

    #[test]
    fn decode_rejects_corruption() {
        let t = sample();
        let bytes = t.to_bytes();
        assert_eq!(Trace::from_bytes(&bytes[..3]), Err(CodecError::Truncated));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(Trace::from_bytes(&bad_magic), Err(CodecError::BadMagic));
        let mut bad_version = bytes.clone();
        bad_version[4] = 0xEE;
        assert!(matches!(
            Trace::from_bytes(&bad_version),
            Err(CodecError::BadVersion(_))
        ));
        // Byte 6 is the numeric-mode header byte; an unknown mode must
        // surface as a typed error, never a panic or a silent default.
        let mut bad_mode = bytes.clone();
        bad_mode[6] = 0x7F;
        assert_eq!(
            Trace::from_bytes(&bad_mode),
            Err(CodecError::BadNumericMode(0x7F))
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            Trace::from_bytes(&trailing),
            Err(CodecError::TrailingBytes(1))
        );
        // Truncation anywhere in the body must error, never panic.
        for cut in (8..bytes.len()).step_by(7) {
            assert!(Trace::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
