//! Unified hierarchical tracing for the SuperNoVA workspace.
//!
//! The serving, solver, host-executor and hardware-simulator layers each
//! keep their own execution record (`serve::DispatchSpan`,
//! `sparse::HostSchedule`, `runtime::StepTrace`, `runtime::ExecTrace`).
//! This crate unifies them into **one span tree per step**, keyed by
//! `(session, seq, step)`, so a single artifact answers "where did this
//! update's time go" from the moment a request was dispatched down to the
//! busy interval of one systolic-array tile.
//!
//! Three properties drive the design:
//!
//! 1. **Zero cost when disabled.** Emission sites check one
//!    [`TraceConfig::enabled`] bool; nothing is allocated or sampled when
//!    tracing is off.
//! 2. **Deterministic export.** Every span carries a wall/virtual-time
//!    interval *and* a deterministic `ticks` weight (flops, simulated
//!    cycles, element counts). [`Trace::canonical`] drops the
//!    nondeterministic parts (wall timestamps, worker assignment) and
//!    sorts children into a canonical order, so
//!    [`Trace::to_chrome_json`] and the binary encoding are byte-identical
//!    across runs and across host thread counts.
//! 3. **Checkable.** `supernova-analyze::validate_trace` replays the
//!    invariants (parent/child containment, per-track exclusivity, child
//!    ticks ≤ parent ticks) against real traces in CI.
//!
//! Thread safety follows the `metrics::stats` pattern: spans are built
//! per-thread without locks and finished traces merge into the shared
//! [`Tracer`] under one short-lived mutex.
//!
//! See DESIGN.md §10 for the span taxonomy and the emission-point map.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod binary;
pub mod chrome;
pub mod clock;
pub mod span;
pub mod tracer;

pub use binary::CodecError;
pub use chrome::chrome_document_wall;
pub use clock::epoch_seconds;
pub use span::{Category, CounterSet, Span, SpanGuard, StepKey, Timebase};
pub use tracer::{StepBuilder, Trace, TraceConfig, Tracer};
