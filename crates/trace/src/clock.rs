//! A process-global monotonic clock shared by every emission site.
//!
//! Spans from different crates (serve dispatcher, solver engine, host
//! executor) must land on one timeline for parent/child containment to be
//! checkable. `Instant`s are not comparable across independently captured
//! origins, so everything samples seconds since a single lazily
//! initialized epoch instead.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Seconds elapsed since the process-global trace epoch (the first call to
/// this function anywhere in the process). Monotonic, comparable across
/// threads and crates.
pub fn epoch_seconds() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}
