//! The trace collector: configuration, per-step builders and the shared
//! sink finished traces merge into.

use std::sync::Mutex;

use supernova_linalg::NumericMode;

use crate::span::{Category, Span, SpanGuard, StepKey};

/// Whether (and how) emission sites build spans.
///
/// Cheap to copy and to check: every emission point is guarded by one
/// `enabled` test, so a disabled configuration costs a predicted branch
/// and nothing else.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch; `false` (the default) disables all span building.
    pub enabled: bool,
}

impl TraceConfig {
    /// A configuration with tracing on.
    pub fn on() -> Self {
        TraceConfig { enabled: true }
    }

    /// A configuration with tracing off (same as `Default`).
    pub fn off() -> Self {
        TraceConfig { enabled: false }
    }
}

/// One step's finished span tree plus its identity.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Which session/update/step produced this tree.
    pub key: StepKey,
    /// Numeric precision the step's kernels ran under — part of the
    /// `SNVT` header so replays can't silently mix precisions.
    pub numeric_mode: NumericMode,
    /// The root span (`serve.dispatch` under the serving layer,
    /// `solver.step` for solo runs).
    pub root: Span,
}

impl Trace {
    /// The deterministic form: wall timestamps and worker tracks zeroed,
    /// siblings canonically ordered. Equal across runs and across host
    /// thread counts for the same workload.
    pub fn canonical(&self) -> Trace {
        Trace {
            key: self.key,
            numeric_mode: self.numeric_mode,
            root: self.root.canonicalized(),
        }
    }

    /// Total spans in the tree.
    pub fn span_count(&self) -> usize {
        self.root.count()
    }
}

/// Builder for one step's span tree, handed out by [`Tracer::step`].
///
/// Wraps the root [`SpanGuard`]; emission sites attach finished child
/// spans and counters, then return it to [`Tracer::finish`].
#[derive(Debug)]
pub struct StepBuilder {
    key: StepKey,
    numeric: NumericMode,
    root: SpanGuard,
}

impl StepBuilder {
    /// The step identity this builder records under.
    pub fn key(&self) -> StepKey {
        self.key
    }

    /// Stamps the numeric precision the step ran under (defaults to
    /// [`NumericMode::F64`]); carried into the finished trace's header.
    pub fn set_numeric_mode(&mut self, mode: NumericMode) {
        self.numeric = mode;
    }

    /// The root span guard (set track/ticks/counters, attach children).
    pub fn root_mut(&mut self) -> &mut SpanGuard {
        &mut self.root
    }

    /// Closes the root span and produces the finished trace.
    pub fn into_trace(self) -> Trace {
        Trace {
            key: self.key,
            numeric_mode: self.numeric,
            root: self.root.finish(),
        }
    }
}

/// The shared trace sink.
///
/// Builders are created and filled per-thread without synchronization;
/// only [`finish`](Tracer::finish)/[`record`](Tracer::record) touch the
/// mutex, once per step — the same record-locally-merge-centrally shape as
/// `metrics::stats`.
#[derive(Debug, Default)]
pub struct Tracer {
    cfg: TraceConfig,
    done: Mutex<Vec<Trace>>,
}

impl Tracer {
    /// A tracer with the given configuration.
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            cfg,
            done: Mutex::new(Vec::new()),
        }
    }

    /// Whether emission sites should build spans.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The tracer's configuration.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Opens a step builder rooted at a wall span named `root_name`, or
    /// `None` when tracing is disabled (the zero-cost path).
    pub fn step(&self, key: StepKey, root_name: &str, cat: Category) -> Option<StepBuilder> {
        if !self.cfg.enabled {
            return None;
        }
        Some(StepBuilder {
            key,
            numeric: NumericMode::default(),
            root: SpanGuard::begin(root_name, cat),
        })
    }

    /// Closes a builder and records its trace.
    pub fn finish(&self, builder: StepBuilder) {
        self.record(builder.into_trace());
    }

    /// Records an externally built trace.
    pub fn record(&self, trace: Trace) {
        if let Ok(mut done) = self.done.lock() {
            done.push(trace);
        }
    }

    /// Number of recorded traces.
    pub fn len(&self) -> usize {
        self.done.lock().map(|d| d.len()).unwrap_or(0)
    }

    /// Whether no traces have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains all recorded traces, sorted by step key (so the drain order
    /// does not depend on worker interleaving).
    pub fn take(&self) -> Vec<Trace> {
        let mut out = match self.done.lock() {
            Ok(mut d) => std::mem::take(&mut *d),
            Err(_) => Vec::new(),
        };
        out.sort_by_key(|t| t.key);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_hands_out_nothing() {
        let t = Tracer::new(TraceConfig::off());
        assert!(t
            .step(StepKey::default(), "solver.step", Category::Solver)
            .is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_tracer_collects_sorted_by_key() {
        let t = Tracer::new(TraceConfig::on());
        for (session, seq) in [(2u64, 0u64), (1, 1), (1, 0)] {
            let key = StepKey {
                session,
                seq,
                step: seq + 1,
            };
            let b = t.step(key, "serve.dispatch", Category::Serve).expect("on");
            t.finish(b);
        }
        assert_eq!(t.len(), 3);
        let traces = t.take();
        let keys: Vec<(u64, u64)> = traces.iter().map(|t| (t.key.session, t.key.seq)).collect();
        assert_eq!(keys, [(1, 0), (1, 1), (2, 0)]);
        assert!(t.is_empty());
        assert!(traces.iter().all(|t| t.root.has_interval()));
    }
}
