//! Chrome trace-event (`chrome://tracing` / Perfetto) JSON export.
//!
//! Two exports with different contracts:
//!
//! - [`Trace::to_chrome_json`] — the **canonical** export. Timestamps are
//!   derived from each span's deterministic `ticks` (1 tick = 1 µs in the
//!   viewer), children are laid out sequentially inside their parent in
//!   canonical order, and worker tracks are normalized away. The output is
//!   byte-identical across runs and across host thread counts; golden
//!   tests and CI diff it directly.
//! - [`Trace::to_chrome_json_wall`] — the **profile** export. Real wall
//!   (and simulator virtual) intervals in microseconds, one viewer row per
//!   worker track. Not deterministic; meant for humans.

use crate::span::{Span, Timebase};
use crate::tracer::Trace;

/// Escapes a string for a JSON string literal (ASCII control, quote,
/// backslash).
fn esc(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// The canonical-layout duration of a span: at least its own ticks, at
/// least the sum of its children, never zero (so every span is visible).
fn canonical_dur(span: &Span) -> u64 {
    let child_sum: u64 = span.children.iter().map(canonical_dur).sum();
    span.ticks.max(child_sum).max(1)
}

fn write_args(span: &Span, trace: Option<&Trace>, out: &mut String) {
    out.push_str("\"args\":{");
    let mut first = true;
    if let Some(t) = trace {
        out.push_str(&format!(
            "\"session\":{},\"seq\":{},\"step\":{}",
            t.key.session, t.key.seq, t.key.step
        ));
        first = false;
    }
    if span.ticks > 0 {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("\"ticks\":{}", span.ticks));
        first = false;
    }
    for (name, value) in span.counters.iter() {
        if !first {
            out.push(',');
        }
        out.push('"');
        esc(name, out);
        out.push_str(&format!("\":{value}"));
        first = false;
    }
    out.push('}');
}

fn emit_canonical(span: &Span, ts: u64, trace: Option<&Trace>, out: &mut String, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":\"");
    esc(&span.name, out);
    out.push_str("\",\"cat\":\"");
    out.push_str(span.cat.as_str());
    out.push_str("\",\"ph\":\"X\",\"ts\":");
    out.push_str(&ts.to_string());
    out.push_str(&format!(
        ",\"dur\":{},\"pid\":1,\"tid\":0,",
        canonical_dur(span)
    ));
    write_args(span, trace, out);
    out.push('}');
    let mut child_ts = ts;
    for c in &span.children {
        emit_canonical(c, child_ts, None, out, first);
        child_ts += canonical_dur(c);
    }
}

fn emit_wall(span: &Span, base: f64, trace: Option<&Trace>, out: &mut String, first: &mut bool) {
    // Markers have no interval of their own; they surface via their
    // parent's args in the profile view.
    if span.has_interval() {
        if !*first {
            out.push(',');
        }
        *first = false;
        let (ts, tid) = match span.timebase {
            Timebase::Wall => ((span.start - base) * 1e6, span.track),
            // Virtual spans render on their own lane block so the two
            // timebases do not visually interleave.
            Timebase::Virtual => (span.start * 1e6, 100 + span.track),
        };
        out.push_str("{\"name\":\"");
        esc(&span.name, out);
        out.push_str("\",\"cat\":\"");
        out.push_str(span.cat.as_str());
        out.push_str(&format!(
            "\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{tid},",
            span.duration() * 1e6
        ));
        write_args(span, trace, out);
        out.push('}');
    }
    for c in &span.children {
        emit_wall(c, base, None, out, first);
    }
}

impl Trace {
    /// The canonical Chrome trace-event JSON document for this step.
    ///
    /// Deterministic: byte-identical across runs at any host thread count
    /// for the same workload. Timestamps are tick-derived (1 tick = 1 µs),
    /// children are packed sequentially inside their parent.
    pub fn to_chrome_json(&self) -> String {
        let canon = self.canonical();
        let mut out = String::with_capacity(canon.span_count() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        emit_canonical(&canon.root, 0, Some(&canon), &mut out, &mut first);
        out.push_str("]}");
        out
    }

    /// The wall-clock (profile) Chrome trace-event JSON document:
    /// real intervals in microseconds, one `tid` per worker track,
    /// virtual-time hardware spans on `tid >= 100`. Not deterministic.
    pub fn to_chrome_json_wall(&self) -> String {
        let mut out = String::with_capacity(self.span_count() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        emit_wall(
            &self.root,
            self.root.start,
            Some(self),
            &mut out,
            &mut first,
        );
        out.push_str("]}");
        out
    }
}

/// One wall-clock Chrome document spanning many traces (e.g. everything a
/// serving run recorded), on a shared timeline anchored at the earliest
/// root start. This is what `serve_tcp --trace` and the step bench dump.
pub fn chrome_document_wall(traces: &[Trace]) -> String {
    let base = traces
        .iter()
        .map(|t| t.root.start)
        .fold(f64::INFINITY, f64::min);
    let base = if base.is_finite() { base } else { 0.0 };
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for t in traces {
        emit_wall(&t.root, base, Some(t), &mut out, &mut first);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Category, CounterSet, StepKey};

    fn sample() -> Trace {
        let mut root = Span::wall("solver.step", Category::Solver, 10.0, 10.5);
        root.counters.set("poses", 42);
        let mut task_b = Span::wall("exec.task", Category::Exec, 10.1, 10.2);
        task_b.ticks = 30;
        task_b.counters.set("node", 5);
        task_b.track = 1;
        let mut task_a = Span::wall("exec.task", Category::Exec, 10.2, 10.3);
        task_a.ticks = 20;
        task_a.counters.set("node", 2);
        let mut exec = Span::wall("exec", Category::Exec, 10.05, 10.4);
        exec.ticks = 50;
        exec.children = vec![task_b, task_a];
        root.children.push(exec);
        root.children
            .push(Span::virtual_time("hw", Category::Hw, 0.0, 2.0e-3, 9000));
        Trace {
            key: StepKey {
                session: 3,
                seq: 7,
                step: 8,
            },
            numeric_mode: Default::default(),
            root,
        }
    }

    #[test]
    fn canonical_json_is_stable_and_orders_children() {
        let t = sample();
        let json = t.to_chrome_json();
        // Same content with children emitted in a different order and
        // different wall times / tracks must export identically.
        let mut shuffled = t.clone();
        shuffled.root.children.reverse();
        shuffled.root.children[1].children.reverse();
        shuffled.root.start = 99.0;
        shuffled.root.end = 99.9;
        shuffled.root.children[1].children[0].track = 3;
        assert_eq!(shuffled.to_chrome_json(), json);
        // tick-derived layout: exec dur = max(50, 30+20, 1) = 50, root
        // dur = max(0, 50 + 9000, 1).
        assert!(
            json.contains("\"name\":\"exec\",\"cat\":\"exec\",\"ph\":\"X\",\"ts\":0,\"dur\":50")
        );
        assert!(json.contains("\"dur\":9050"));
        assert!(json.contains("\"session\":3,\"seq\":7,\"step\":8"));
        // node 2 sorts before node 5 in canonical order.
        let n2 = json.find("\"node\":2").expect("node 2 present");
        let n5 = json.find("\"node\":5").expect("node 5 present");
        assert!(n2 < n5);
    }

    #[test]
    fn wall_json_uses_real_intervals() {
        let t = sample();
        let json = t.to_chrome_json_wall();
        // Root starts at ts 0 (anchored at its own start), 0.5 s long.
        assert!(json.contains("\"ts\":0.000,\"dur\":500000.000"));
        // Virtual hw span lands on the tid >= 100 block.
        assert!(json.contains("\"tid\":100"));
        // Worker track of task_b survives.
        assert!(json.contains("\"tid\":1"));
        let doc = chrome_document_wall(&[t.clone(), t]);
        assert!(doc.starts_with("{\"displayTimeUnit\""));
        assert!(doc.ends_with("]}"));
    }

    #[test]
    fn escapes_hostile_names() {
        let mut c = CounterSet::new();
        c.set("a\"b", 1);
        let mut root = Span::marker("we\\ird\n", Category::Serve, 1);
        root.counters = c;
        let t = Trace {
            key: StepKey::default(),
            numeric_mode: Default::default(),
            root,
        };
        let json = t.to_chrome_json();
        assert!(json.contains("we\\\\ird\\n"));
        assert!(json.contains("a\\\"b"));
    }
}
