//! Span tree primitives: categories, counters, spans and RAII guards.

use crate::clock::epoch_seconds;

/// Which layer of the stack emitted a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Serving layer (dispatcher, admission).
    Serve,
    /// Solver layer (RA-ISAM2 selection, relinearization, symbolic).
    Solver,
    /// Host plan executor (thread-pool task spans).
    Exec,
    /// Modeled hardware (virtual-time simulator units and nodes).
    Hw,
}

impl Category {
    /// Stable lowercase label used by both exporters.
    pub fn as_str(&self) -> &'static str {
        match self {
            Category::Serve => "serve",
            Category::Solver => "solver",
            Category::Exec => "exec",
            Category::Hw => "hw",
        }
    }
}

/// Which clock a span's `[start, end]` interval was sampled from.
///
/// Wall spans share the process-global epoch of
/// [`crate::clock::epoch_seconds`]; virtual spans live in
/// the hardware simulator's virtual seconds (zero at the start of the
/// step's numeric phase). Containment is only meaningful between spans of
/// the same timebase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Timebase {
    /// Host wall-clock seconds since the global trace epoch.
    Wall,
    /// Simulator virtual seconds since the start of the step.
    Virtual,
}

/// The identity of one traced step: which session's update produced it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StepKey {
    /// Serving-layer session id (0 for solo/bench runs).
    pub session: u64,
    /// Submission sequence number within the session.
    pub seq: u64,
    /// Engine step counter after the step (1-based).
    pub step: u64,
}

/// An ordered, mergeable set of named integer counters.
///
/// Kept sorted by name so iteration, export and comparison are
/// deterministic regardless of insertion order (the `metrics::stats`
/// merge discipline applied to counters).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct CounterSet {
    entries: Vec<(String, u64)>,
}

impl CounterSet {
    /// An empty counter set.
    pub fn new() -> Self {
        CounterSet {
            entries: Vec::new(),
        }
    }

    /// Sets `name` to `value`, replacing any previous value.
    pub fn set(&mut self, name: &str, value: u64) {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (name.to_string(), value)),
        }
    }

    /// Adds `delta` to `name` (starting from zero if absent).
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.entries[i].1 = self.entries[i].1.saturating_add(delta),
            Err(i) => self.entries.insert(i, (name.to_string(), delta)),
        }
    }

    /// The value of `name`, if set.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Merges another set into this one, summing shared names.
    pub fn merge(&mut self, other: &CounterSet) {
        for (n, v) in &other.entries {
            self.add(n, *v);
        }
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no counters are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One node of a step's span tree.
///
/// A span either has a measured interval (`start < end` on its timebase)
/// or is a zero-width *marker* carrying only `ticks` and counters (work
/// that happened inside the parent but was not separately clocked, e.g.
/// relinearization inside `solver.step`). [`Span::has_interval`]
/// distinguishes the two; validators skip interval checks on markers.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Span name, e.g. `"serve.dispatch"`, `"exec.task"`, `"hw.unit COMP0"`.
    pub name: String,
    /// Emitting layer.
    pub cat: Category,
    /// Clock the interval was sampled from.
    pub timebase: Timebase,
    /// Execution lane within the parent: host worker index for
    /// `exec.task`, serve worker for `serve.dispatch`, unit ordinal for
    /// `hw.unit`. Normalized to 0 by [`Trace::canonical`](crate::Trace::canonical).
    pub track: u32,
    /// Interval start in timebase seconds (0.0 together with `end` marks
    /// a zero-width marker span).
    pub start: f64,
    /// Interval end in timebase seconds.
    pub end: f64,
    /// Deterministic work weight: flops for exec tasks, simulated cycles
    /// for hw spans, element counts for solver markers. This — not the
    /// wall interval — drives the canonical export layout.
    pub ticks: u64,
    /// Named counters (node ids, byte counts, levels...).
    pub counters: CounterSet,
    /// Child spans, in emission order (canonicalization sorts them).
    pub children: Vec<Span>,
}

impl Span {
    /// A zero-width marker span carrying only `ticks` (and counters added
    /// afterwards).
    pub fn marker(name: &str, cat: Category, ticks: u64) -> Self {
        Span {
            name: name.to_string(),
            cat,
            timebase: Timebase::Wall,
            track: 0,
            start: 0.0,
            end: 0.0,
            ticks,
            counters: CounterSet::new(),
            children: Vec::new(),
        }
    }

    /// A wall-clock span over `[start, end]` epoch seconds.
    pub fn wall(name: &str, cat: Category, start: f64, end: f64) -> Self {
        let mut s = Span::marker(name, cat, 0);
        s.start = start;
        s.end = end;
        s
    }

    /// A virtual-time span over `[start, end]` simulator seconds.
    pub fn virtual_time(name: &str, cat: Category, start: f64, end: f64, ticks: u64) -> Self {
        let mut s = Span::marker(name, cat, ticks);
        s.timebase = Timebase::Virtual;
        s.start = start;
        s.end = end;
        s
    }

    /// Whether the span has a measured interval (false for markers).
    pub fn has_interval(&self) -> bool {
        !(self.start.to_bits() == 0 && self.end.to_bits() == 0)
    }

    /// Interval duration in timebase seconds (0.0 for markers).
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Total spans in this subtree, including self.
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(Span::count).sum::<usize>()
    }

    /// Depth-first pre-order visit of the subtree.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Span, usize)) {
        self.visit_depth(f, 0);
    }

    fn visit_depth<'a>(&'a self, f: &mut impl FnMut(&'a Span, usize), depth: usize) {
        f(self, depth);
        for c in &self.children {
            c.visit_depth(f, depth + 1);
        }
    }

    /// The deterministic ordering key canonicalization sorts siblings by:
    /// name, then the `node` counter (so per-node spans order by node id),
    /// then ticks, then the full counter set.
    fn sort_key(&self) -> (&str, u64, u64, &CounterSet) {
        (
            self.name.as_str(),
            self.counters.get("node").unwrap_or(u64::MAX),
            self.ticks,
            &self.counters,
        )
    }

    /// A canonical copy: wall/virtual timestamps zeroed, tracks zeroed,
    /// children sorted by a deterministic key, recursively. Two
    /// runs of the same workload produce equal canonical spans regardless
    /// of host thread count or worker assignment.
    pub fn canonicalized(&self) -> Span {
        let mut children: Vec<Span> = self.children.iter().map(Span::canonicalized).collect();
        children.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        Span {
            name: self.name.clone(),
            cat: self.cat,
            timebase: self.timebase,
            track: 0,
            start: 0.0,
            end: 0.0,
            ticks: self.ticks,
            counters: self.counters.clone(),
            children,
        }
    }
}

/// RAII-style builder for a wall-clock span: samples the global clock at
/// [`begin`](SpanGuard::begin), accumulates children and counters while
/// the traced region runs, and samples the end time at
/// [`finish`](SpanGuard::finish).
///
/// Deliberately not `Drop`-based: emission sites hand the finished
/// [`Span`] to a parent (or to [`Tracer::finish`](crate::Tracer::finish)),
/// and an explicit `finish(self) -> Span` keeps that hand-off visible.
#[derive(Debug)]
pub struct SpanGuard {
    span: Span,
}

impl SpanGuard {
    /// Opens a wall-clock span starting now.
    pub fn begin(name: &str, cat: Category) -> Self {
        let t0 = epoch_seconds();
        let mut span = Span::marker(name, cat, 0);
        span.start = t0;
        SpanGuard { span }
    }

    /// Sets the execution lane (worker index).
    pub fn set_track(&mut self, track: u32) {
        self.span.track = track;
    }

    /// The wall start of the open span, in epoch seconds (lets emission
    /// sites reject attaching stale records that predate this span).
    pub fn start(&self) -> f64 {
        self.span.start
    }

    /// Sets the deterministic work weight.
    pub fn set_ticks(&mut self, ticks: u64) {
        self.span.ticks = ticks;
    }

    /// Sets a counter on the span.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.span.counters.set(name, value);
    }

    /// Appends a finished child span.
    pub fn child(&mut self, child: Span) {
        self.span.children.push(child);
    }

    /// Closes the span at the current clock and returns it. The end is
    /// nudged past the start if the clock did not visibly advance, so a
    /// finished wall span is never mistaken for a zero-width marker.
    pub fn finish(mut self) -> Span {
        let t1 = epoch_seconds();
        self.span.end = if t1 > self.span.start {
            t1
        } else {
            self.span.start + 1e-9
        };
        self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sort_merge_and_replace() {
        let mut c = CounterSet::new();
        c.set("zeta", 5);
        c.set("alpha", 1);
        c.add("zeta", 2);
        c.set("mid", 3);
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        assert_eq!(c.get("zeta"), Some(7));
        let mut d = CounterSet::new();
        d.set("alpha", 10);
        d.set("new", 4);
        c.merge(&d);
        assert_eq!(c.get("alpha"), Some(11));
        assert_eq!(c.get("new"), Some(4));
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn guard_produces_measured_interval() {
        let g = SpanGuard::begin("x", Category::Solver);
        let s = g.finish();
        assert!(s.has_interval());
        assert!(s.duration() > 0.0);
        assert!(!Span::marker("m", Category::Solver, 3).has_interval());
    }

    #[test]
    fn canonical_sorts_children_and_zeroes_nondeterminism() {
        let mut root = Span::wall("root", Category::Serve, 1.0, 2.0);
        root.track = 7;
        let mut a = Span::wall("exec.task", Category::Exec, 1.1, 1.2);
        a.counters.set("node", 9);
        let mut b = Span::wall("exec.task", Category::Exec, 1.3, 1.4);
        b.counters.set("node", 2);
        b.track = 3;
        root.children.push(a);
        root.children.push(b);
        let c = root.canonicalized();
        assert_eq!(c.track, 0);
        assert!(!c.has_interval());
        assert_eq!(c.children[0].counters.get("node"), Some(2));
        assert_eq!(c.children[1].counters.get("node"), Some(9));
        assert_eq!(c.children[0].track, 0);
        // Order of emission does not matter.
        let mut flipped = Span::wall("root", Category::Serve, 5.0, 6.0);
        flipped.children = vec![c.children[1].clone(), c.children[0].clone()];
        assert_eq!(flipped.canonicalized(), c);
    }

    #[test]
    fn span_count_and_visit_cover_subtree() {
        let mut root = Span::marker("r", Category::Solver, 0);
        let mut mid = Span::marker("m", Category::Exec, 0);
        mid.children.push(Span::marker("leaf", Category::Hw, 1));
        root.children.push(mid);
        assert_eq!(root.count(), 3);
        let mut depths = Vec::new();
        root.visit(&mut |s, d| depths.push((s.name.clone(), d)));
        assert_eq!(
            depths,
            vec![
                ("r".to_string(), 0),
                ("m".to_string(), 1),
                ("leaf".to_string(), 2)
            ]
        );
    }
}
