//! The factor graph container.

use std::sync::Arc;

use crate::{Factor, Key};

/// A factor graph: the set of measurement factors plus the
/// variable → factors adjacency the relinearization machinery needs.
///
/// Factors are stored behind `Arc` so solver snapshots (e.g. the background
/// loop-closure solver of the Local+Global baseline) can share them cheaply.
///
/// # Example
///
/// ```
/// use supernova_factors::{BetweenFactor, FactorGraph, NoiseModel, Se2, Values};
///
/// let mut values = Values::new();
/// let a = values.insert_se2(Se2::identity());
/// let b = values.insert_se2(Se2::new(1.0, 0.0, 0.0));
/// let mut graph = FactorGraph::new();
/// let idx = graph.add(BetweenFactor::se2(a, b, Se2::new(1.0, 0.0, 0.0), NoiseModel::isotropic(3, 0.1)));
/// assert_eq!(graph.factors_of(a), &[idx]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FactorGraph {
    factors: Vec<Arc<dyn Factor>>,
    var_factors: Vec<Vec<usize>>,
}

impl FactorGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a factor, returning its index.
    pub fn add(&mut self, factor: impl Factor + 'static) -> usize {
        self.add_arc(Arc::new(factor))
    }

    /// Adds an already-shared factor, returning its index.
    pub fn add_arc(&mut self, factor: Arc<dyn Factor>) -> usize {
        let idx = self.factors.len();
        for &k in factor.keys() {
            if k.0 >= self.var_factors.len() {
                self.var_factors.resize_with(k.0 + 1, Vec::new);
            }
            self.var_factors[k.0].push(idx);
        }
        self.factors.push(factor);
        idx
    }

    /// Number of factors.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// `true` when the graph has no factors.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// The factor at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn factor(&self, idx: usize) -> &dyn Factor {
        self.factors[idx].as_ref()
    }

    /// The shared handle of the factor at `idx`.
    pub fn factor_arc(&self, idx: usize) -> Arc<dyn Factor> {
        Arc::clone(&self.factors[idx])
    }

    /// Indices of the factors constraining `key` (empty for unknown keys).
    pub fn factors_of(&self, key: Key) -> &[usize] {
        self.var_factors
            .get(key.0)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All variables that share a factor with `key` (excluding `key`) — the
    /// "affected_variables" of Algorithm 1, line 2.
    pub fn neighbors(&self, key: Key) -> Vec<Key> {
        let mut out: Vec<Key> = self
            .factors_of(key)
            .iter()
            .flat_map(|&f| self.factors[f].keys().iter().copied())
            .filter(|&k| k != key)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Iterates `(index, factor)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &dyn Factor)> {
        self.factors
            .iter()
            .enumerate()
            .map(|(i, f)| (i, f.as_ref()))
    }

    /// Total weighted squared error `Σ ‖Σ^{-1/2} φ_i‖²` at `values`.
    pub fn total_error2(&self, values: &crate::Values) -> f64 {
        self.factors.iter().map(|f| f.weighted_error2(values)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BetweenFactor, NoiseModel, PriorFactor, Se2, Values};

    fn chain(n: usize) -> (FactorGraph, Values) {
        let mut values = Values::new();
        let mut graph = FactorGraph::new();
        let keys: Vec<Key> = (0..n)
            .map(|i| values.insert_se2(Se2::new(i as f64, 0.0, 0.0)))
            .collect();
        graph.add(PriorFactor::se2(
            keys[0],
            Se2::identity(),
            NoiseModel::isotropic(3, 0.1),
        ));
        for w in keys.windows(2) {
            graph.add(BetweenFactor::se2(
                w[0],
                w[1],
                Se2::new(1.0, 0.0, 0.0),
                NoiseModel::isotropic(3, 0.1),
            ));
        }
        (graph, values)
    }

    #[test]
    fn adjacency_tracks_factors() {
        let (graph, _) = chain(4);
        assert_eq!(graph.len(), 4);
        assert_eq!(graph.factors_of(Key(0)).len(), 2); // prior + between
        assert_eq!(graph.factors_of(Key(1)).len(), 2);
        assert_eq!(graph.factors_of(Key(3)).len(), 1);
        assert!(graph.factors_of(Key(99)).is_empty());
    }

    #[test]
    fn neighbors_excludes_self_and_dedups() {
        let (mut graph, mut values) = chain(4);
        let extra = values.insert_se2(Se2::identity());
        graph.add(BetweenFactor::se2(
            Key(1),
            extra,
            Se2::identity(),
            NoiseModel::isotropic(3, 1.0),
        ));
        graph.add(BetweenFactor::se2(
            Key(1),
            extra,
            Se2::identity(),
            NoiseModel::isotropic(3, 1.0),
        ));
        let n = graph.neighbors(Key(1));
        assert_eq!(n, vec![Key(0), Key(2), extra]);
    }

    #[test]
    fn total_error_zero_at_ground_truth() {
        let (graph, values) = chain(5);
        assert!(graph.total_error2(&values) < 1e-16);
    }
}
