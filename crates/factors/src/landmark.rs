//! Landmark observation factors.
//!
//! §3.1 of the paper defines variables as "a pose or a landmark"; these
//! factors provide the landmark side: planar range-bearing observations
//! (the classic 2-D landmark SLAM measurement) and 3-D point observations
//! in the body frame.

use crate::{Factor, Key, NoiseModel, Variable};

/// Wraps an angle to `(-π, π]`.
fn wrap_angle(a: f64) -> f64 {
    let mut a = a % (2.0 * std::f64::consts::PI);
    if a > std::f64::consts::PI {
        a -= 2.0 * std::f64::consts::PI;
    } else if a <= -std::f64::consts::PI {
        a += 2.0 * std::f64::consts::PI;
    }
    a
}

/// A planar range-bearing observation of a 2-D point landmark from an SE(2)
/// pose: residual `[range − r̂, wrap(bearing − θ̂)]`.
///
/// The landmark is a [`Variable::Vector`] of length 2.
///
/// # Example
///
/// ```
/// use supernova_factors::{Factor, NoiseModel, RangeBearingFactor, Se2, Values, Variable};
///
/// let mut values = Values::new();
/// let pose = values.insert_se2(Se2::identity());
/// let lm = values.insert(Variable::Vector(vec![2.0, 0.0]));
/// let f = RangeBearingFactor::new(pose, lm, 2.0, 0.0, NoiseModel::from_sigmas(&[0.1, 0.01]));
/// assert!(f.weighted_error2(&values) < 1e-18);
/// ```
#[derive(Clone, Debug)]
pub struct RangeBearingFactor {
    keys: [Key; 2],
    range: f64,
    bearing: f64,
    noise: NoiseModel,
}

impl RangeBearingFactor {
    /// Observation of landmark `lm` from `pose`: measured `range` (meters)
    /// and `bearing` (radians, in the pose frame).
    ///
    /// # Panics
    ///
    /// Panics if the noise model is not 2-dimensional or the range is not
    /// positive.
    pub fn new(pose: Key, lm: Key, range: f64, bearing: f64, noise: NoiseModel) -> Self {
        assert_eq!(noise.dim(), 2, "range-bearing noise must be 2-D");
        assert!(range > 0.0, "range must be positive");
        RangeBearingFactor {
            keys: [pose, lm],
            range,
            bearing,
            noise,
        }
    }

    /// The measured range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The measured bearing.
    pub fn bearing(&self) -> f64 {
        self.bearing
    }
}

impl Factor for RangeBearingFactor {
    fn keys(&self) -> &[Key] {
        &self.keys
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    fn error(&self, vars: &[&Variable]) -> Vec<f64> {
        let (pose, lm) = match (vars[0], vars[1]) {
            (Variable::Se2(p), Variable::Vector(l)) if l.len() == 2 => (p, l),
            _ => panic!("range-bearing factor expects (Se2, Vector2)"),
        };
        // Landmark in the pose frame.
        let world = [lm[0] - pose.x(), lm[1] - pose.y()];
        let local = pose.rotation().inverse().rotate(world);
        let predicted_range = (local[0] * local[0] + local[1] * local[1])
            .sqrt()
            .max(1e-12);
        let predicted_bearing = local[1].atan2(local[0]);
        vec![
            predicted_range - self.range,
            wrap_angle(predicted_bearing - self.bearing),
        ]
    }
}

/// A 3-D point-landmark observation in the body frame of an SE(3) pose:
/// residual `X⁻¹·l − ẑ` (three components).
///
/// The landmark is a [`Variable::Vector`] of length 3.
#[derive(Clone, Debug)]
pub struct PointObservationFactor {
    keys: [Key; 2],
    measured: [f64; 3],
    noise: NoiseModel,
}

impl PointObservationFactor {
    /// Observation of landmark `lm` from `pose` at body-frame coordinates
    /// `measured`.
    ///
    /// # Panics
    ///
    /// Panics if the noise model is not 3-dimensional.
    pub fn new(pose: Key, lm: Key, measured: [f64; 3], noise: NoiseModel) -> Self {
        assert_eq!(noise.dim(), 3, "point observation noise must be 3-D");
        PointObservationFactor {
            keys: [pose, lm],
            measured,
            noise,
        }
    }
}

impl Factor for PointObservationFactor {
    fn keys(&self) -> &[Key] {
        &self.keys
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    fn error(&self, vars: &[&Variable]) -> Vec<f64> {
        let (pose, lm) = match (vars[0], vars[1]) {
            (Variable::Se3(p), Variable::Vector(l)) if l.len() == 3 => (p, l),
            _ => panic!("point observation factor expects (Se3, Vector3)"),
        };
        let t = pose.translation();
        let world = [lm[0] - t[0], lm[1] - t[1], lm[2] - t[2]];
        let local = pose.rotation().inverse().rotate(world);
        (0..3).map(|i| local[i] - self.measured[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{linearize, Rot3, Se2, Se3, Values};

    #[test]
    fn range_bearing_zero_at_truth() {
        let mut vals = Values::new();
        let pose = vals.insert_se2(Se2::new(1.0, 1.0, std::f64::consts::FRAC_PI_2));
        let lm = vals.insert(Variable::Vector(vec![1.0, 4.0]));
        // Landmark is 3 m straight ahead (the pose faces +y).
        let f = RangeBearingFactor::new(pose, lm, 3.0, 0.0, NoiseModel::from_sigmas(&[0.1, 0.02]));
        assert!(f.weighted_error2(&vals) < 1e-16);
    }

    #[test]
    fn bearing_wraps() {
        assert!((wrap_angle(3.0 * std::f64::consts::PI) - std::f64::consts::PI).abs() < 1e-12);
        assert!(wrap_angle(-3.0 * std::f64::consts::PI) > -std::f64::consts::PI - 1e-12);
    }

    #[test]
    fn range_bearing_jacobian_first_order() {
        let mut vals = Values::new();
        let pose = vals.insert_se2(Se2::new(0.3, -0.4, 0.7));
        let lm = vals.insert(Variable::Vector(vec![2.5, 1.5]));
        let f = RangeBearingFactor::new(pose, lm, 2.0, 0.3, NoiseModel::from_sigmas(&[0.1, 0.05]));
        let lin = linearize(&f, &vals);
        let delta = [1e-4, -5e-5];
        let mut v2 = vals.clone();
        v2.retract_at(lm, &delta);
        let vars: Vec<&Variable> = f.keys().iter().map(|&k| v2.get(k)).collect();
        let actual = f.noise().whiten(&f.error(&vars));
        let jd = lin.jacobians[1].matvec(&delta);
        for k in 0..2 {
            let predicted = lin.residual[k] + jd[k];
            assert!(
                (actual[k] - predicted).abs() < 1e-6,
                "{k}: {} vs {predicted}",
                actual[k]
            );
        }
    }

    #[test]
    fn point_observation_zero_at_truth() {
        let mut vals = Values::new();
        let pose = vals.insert_se3(Se3::from_parts(
            [1.0, 0.0, 0.0],
            Rot3::exp(&[0.0, 0.0, 0.4]),
        ));
        let world = [3.0, 2.0, 1.0];
        let lm = vals.insert(Variable::Vector(world.to_vec()));
        let p = vals.get(pose).as_se3().unwrap().clone();
        let t = p.translation();
        let local =
            p.rotation()
                .inverse()
                .rotate([world[0] - t[0], world[1] - t[1], world[2] - t[2]]);
        let f = PointObservationFactor::new(pose, lm, local, NoiseModel::isotropic(3, 0.1));
        assert!(f.weighted_error2(&vals) < 1e-16);
    }

    #[test]
    #[should_panic(expected = "expects (Se2, Vector2)")]
    fn wrong_variable_kinds_panic() {
        let mut vals = Values::new();
        let a = vals.insert_se2(Se2::identity());
        let b = vals.insert_se2(Se2::identity());
        let f = RangeBearingFactor::new(a, b, 1.0, 0.0, NoiseModel::isotropic(2, 0.1));
        let vars: Vec<&Variable> = f.keys().iter().map(|&k| vals.get(k)).collect();
        let _ = f.error(&vars);
    }
}
