//! The planar rigid transforms SO(2) and SE(2).

use std::fmt;

/// A planar rotation (an element of SO(2)), stored as `(cos θ, sin θ)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rot2 {
    c: f64,
    s: f64,
}

impl Rot2 {
    /// Rotation by `theta` radians.
    pub fn from_angle(theta: f64) -> Self {
        Rot2 {
            c: theta.cos(),
            s: theta.sin(),
        }
    }

    /// The identity rotation.
    pub fn identity() -> Self {
        Rot2 { c: 1.0, s: 0.0 }
    }

    /// Reconstructs a rotation from stored `(cos θ, sin θ)` components —
    /// the bit-exact inverse of [`cos_sin`](Self::cos_sin). No
    /// renormalization is applied, so a serialize/deserialize round trip
    /// preserves the exact bits.
    pub fn from_cos_sin(c: f64, s: f64) -> Self {
        Rot2 { c, s }
    }

    /// The stored `(cos θ, sin θ)` components.
    pub fn cos_sin(self) -> (f64, f64) {
        (self.c, self.s)
    }

    /// The rotation angle in `(-π, π]`.
    pub fn angle(self) -> f64 {
        self.s.atan2(self.c)
    }

    /// Composition `self · other`.
    pub fn compose(self, other: Rot2) -> Rot2 {
        Rot2 {
            c: self.c * other.c - self.s * other.s,
            s: self.s * other.c + self.c * other.s,
        }
    }

    /// The inverse rotation.
    pub fn inverse(self) -> Rot2 {
        Rot2 {
            c: self.c,
            s: -self.s,
        }
    }

    /// Rotates a 2-vector.
    pub fn rotate(self, v: [f64; 2]) -> [f64; 2] {
        [self.c * v[0] - self.s * v[1], self.s * v[0] + self.c * v[1]]
    }

    /// Renormalizes `(c, s)` onto the unit circle (drift control after long
    /// composition chains).
    pub fn normalized(self) -> Rot2 {
        let n = (self.c * self.c + self.s * self.s).sqrt();
        Rot2 {
            c: self.c / n,
            s: self.s / n,
        }
    }
}

impl Default for Rot2 {
    fn default() -> Self {
        Self::identity()
    }
}

/// A planar rigid transform (an element of SE(2)): rotation plus
/// translation.
///
/// The tangent convention is `[vx, vy, ω]` with the retraction
/// `X ⊕ δ = X · Exp(δ)` (right perturbation), matching the `⊕` of
/// Equation (2) in the paper.
///
/// # Example
///
/// ```
/// use supernova_factors::Se2;
///
/// let a = Se2::new(1.0, 0.0, std::f64::consts::FRAC_PI_2);
/// let b = a.compose(Se2::new(1.0, 0.0, 0.0));
/// assert!((b.y() - 1.0).abs() < 1e-12);
/// let delta = a.local(b);
/// assert!((a.retract(&delta).x() - b.x()).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Se2 {
    rot: Rot2,
    t: [f64; 2],
}

impl Se2 {
    /// Tangent-space dimension.
    pub const DIM: usize = 3;

    /// Creates a pose from translation `(x, y)` and heading `theta`.
    pub fn new(x: f64, y: f64, theta: f64) -> Self {
        Se2 {
            rot: Rot2::from_angle(theta),
            t: [x, y],
        }
    }

    /// The identity pose.
    pub fn identity() -> Self {
        Se2::default()
    }

    /// Creates a pose from translation and rotation, exactly as given (no
    /// renormalization — the bit-exact counterpart of
    /// [`translation`](Self::translation) / [`rotation`](Self::rotation)).
    pub fn from_parts(t: [f64; 2], rot: Rot2) -> Self {
        Se2 { rot, t }
    }

    /// X translation.
    pub fn x(&self) -> f64 {
        self.t[0]
    }

    /// Y translation.
    pub fn y(&self) -> f64 {
        self.t[1]
    }

    /// Heading in `(-π, π]`.
    pub fn theta(&self) -> f64 {
        self.rot.angle()
    }

    /// The rotation part.
    pub fn rotation(&self) -> Rot2 {
        self.rot
    }

    /// The translation part.
    pub fn translation(&self) -> [f64; 2] {
        self.t
    }

    /// Group composition `self · other`.
    pub fn compose(&self, other: Se2) -> Se2 {
        let rt = self.rot.rotate(other.t);
        Se2 {
            rot: self.rot.compose(other.rot).normalized(),
            t: [self.t[0] + rt[0], self.t[1] + rt[1]],
        }
    }

    /// Group inverse.
    pub fn inverse(&self) -> Se2 {
        let rinv = self.rot.inverse();
        let ti = rinv.rotate([-self.t[0], -self.t[1]]);
        Se2 { rot: rinv, t: ti }
    }

    /// Exponential map from the tangent `[vx, vy, ω]`.
    pub fn exp(xi: &[f64]) -> Se2 {
        let (vx, vy, w) = (xi[0], xi[1], xi[2]);
        let (a, b) = if w.abs() < 1e-9 {
            // sin(w)/w ≈ 1 − w²/6, (1−cos w)/w ≈ w/2.
            (1.0 - w * w / 6.0, w / 2.0)
        } else {
            (w.sin() / w, (1.0 - w.cos()) / w)
        };
        Se2 {
            rot: Rot2::from_angle(w),
            t: [a * vx - b * vy, b * vx + a * vy],
        }
    }

    /// Logarithm map to the tangent `[vx, vy, ω]`.
    pub fn log(&self) -> [f64; 3] {
        let w = self.rot.angle();
        let (a, b) = if w.abs() < 1e-9 {
            (1.0 - w * w / 6.0, w / 2.0)
        } else {
            (w.sin() / w, (1.0 - w.cos()) / w)
        };
        let det = a * a + b * b;
        let (x, y) = (self.t[0], self.t[1]);
        [(a * x + b * y) / det, (-b * x + a * y) / det, w]
    }

    /// Right retraction `self · Exp(delta)`.
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != 3`.
    pub fn retract(&self, delta: &[f64]) -> Se2 {
        assert_eq!(delta.len(), Self::DIM, "Se2 tangent must have length 3");
        self.compose(Se2::exp(delta))
    }

    /// Local coordinates of `other` around `self`: `Log(self⁻¹ · other)`.
    pub fn local(&self, other: Se2) -> [f64; 3] {
        self.inverse().compose(other).log()
    }

    /// Euclidean distance between the translation parts.
    pub fn translation_distance(&self, other: &Se2) -> f64 {
        let dx = self.t[0] - other.t[0];
        let dy = self.t[1] - other.t[1];
        (dx * dx + dy * dy).sqrt()
    }
}

impl fmt::Display for Se2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.3}, {:.3}; {:.3} rad)",
            self.t[0],
            self.t[1],
            self.theta()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn rot2_compose_inverse() {
        let r = Rot2::from_angle(0.7);
        let i = r.compose(r.inverse());
        assert!((i.angle()).abs() < 1e-12);
        let v = r.rotate([1.0, 0.0]);
        assert!((v[0] - 0.7f64.cos()).abs() < 1e-12);
    }

    #[test]
    fn compose_inverse_is_identity() {
        let p = Se2::new(1.5, -2.0, 0.8);
        let e = p.compose(p.inverse());
        assert!(e.x().abs() < 1e-12 && e.y().abs() < 1e-12 && e.theta().abs() < 1e-12);
    }

    #[test]
    fn exp_log_roundtrip() {
        for xi in [
            [0.3, -0.2, 0.9],
            [1.0, 2.0, 0.0],
            [0.0, 0.0, -2.5],
            [1e-12, 0.0, 1e-12],
        ] {
            let p = Se2::exp(&xi);
            let back = p.log();
            for k in 0..3 {
                assert!((back[k] - xi[k]).abs() < 1e-9, "{xi:?} -> {back:?}");
            }
        }
    }

    #[test]
    fn retract_local_roundtrip() {
        let a = Se2::new(0.4, 0.2, -1.2);
        let b = Se2::new(-0.3, 1.1, 2.0);
        let d = a.local(b);
        let b2 = a.retract(&d);
        assert!(a
            .local(b2)
            .iter()
            .zip(&d)
            .all(|(x, y)| (x - y).abs() < 1e-9));
        assert!((b2.x() - b.x()).abs() < 1e-9);
        assert!((b2.theta() - b.theta()).abs() < 1e-9);
    }

    #[test]
    fn quarter_turn_translation() {
        let a = Se2::new(0.0, 0.0, FRAC_PI_2);
        let b = a.compose(Se2::new(1.0, 0.0, 0.0));
        assert!(b.x().abs() < 1e-12);
        assert!((b.y() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn angle_wraps_to_principal_range() {
        let p = Se2::new(0.0, 0.0, PI + 0.5);
        assert!(p.theta() <= PI && p.theta() >= -PI);
    }

    #[test]
    fn translation_distance() {
        let a = Se2::new(0.0, 0.0, 1.0);
        let b = Se2::new(3.0, 4.0, -1.0);
        assert!((a.translation_distance(&b) - 5.0).abs() < 1e-12);
    }
}
