//! Variable keys.

use std::fmt;

/// Identifies one variable (pose or landmark) in a [`Values`] container and
/// a [`FactorGraph`].
///
/// Keys are dense indices assigned in insertion order, which for online SLAM
/// coincides with time order — the natural elimination ordering the
/// incremental solvers use.
///
/// [`Values`]: crate::Values
/// [`FactorGraph`]: crate::FactorGraph
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub usize);

impl Key {
    /// The dense index of this key.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for Key {
    fn from(i: usize) -> Self {
        Key(i)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip_and_display() {
        let k = Key::from(7);
        assert_eq!(k.index(), 7);
        assert_eq!(k.to_string(), "x7");
        assert!(Key(1) < Key(2));
    }
}
