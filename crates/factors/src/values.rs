//! Heterogeneous state containers.

use crate::{Key, Se2, Se3};

/// One state variable: a planar pose, a 3-D pose, or a plain Euclidean
/// vector (landmarks, biases).
#[derive(Clone, Debug, PartialEq)]
pub enum Variable {
    /// A planar pose.
    Se2(Se2),
    /// A 3-D pose.
    Se3(Se3),
    /// A Euclidean vector.
    Vector(Vec<f64>),
}

impl Variable {
    /// Tangent-space dimension.
    pub fn dim(&self) -> usize {
        match self {
            Variable::Se2(_) => Se2::DIM,
            Variable::Se3(_) => Se3::DIM,
            Variable::Vector(v) => v.len(),
        }
    }

    /// Retraction `self ⊕ delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != self.dim()`.
    pub fn retract(&self, delta: &[f64]) -> Variable {
        match self {
            Variable::Se2(p) => Variable::Se2(p.retract(delta)),
            Variable::Se3(p) => Variable::Se3(p.retract(delta)),
            Variable::Vector(v) => {
                assert_eq!(delta.len(), v.len(), "vector tangent length mismatch");
                Variable::Vector(v.iter().zip(delta).map(|(a, b)| a + b).collect())
            }
        }
    }

    /// Local coordinates of `other` around `self`.
    ///
    /// # Panics
    ///
    /// Panics if the variants differ or dimensions mismatch.
    pub fn local(&self, other: &Variable) -> Vec<f64> {
        match (self, other) {
            (Variable::Se2(a), Variable::Se2(b)) => a.local(*b).to_vec(),
            (Variable::Se3(a), Variable::Se3(b)) => a.local(b).to_vec(),
            (Variable::Vector(a), Variable::Vector(b)) => {
                assert_eq!(a.len(), b.len(), "vector length mismatch");
                b.iter().zip(a).map(|(x, y)| x - y).collect()
            }
            _ => panic!("local() between different variable kinds"),
        }
    }

    /// Euclidean distance between the translation (or vector) parts — the
    /// quantity APE measures.
    pub fn translation_distance(&self, other: &Variable) -> f64 {
        match (self, other) {
            (Variable::Se2(a), Variable::Se2(b)) => a.translation_distance(b),
            (Variable::Se3(a), Variable::Se3(b)) => a.translation_distance(b),
            (Variable::Vector(a), Variable::Vector(b)) => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            _ => panic!("distance between different variable kinds"),
        }
    }

    /// The contained planar pose, if any.
    pub fn as_se2(&self) -> Option<&Se2> {
        match self {
            Variable::Se2(p) => Some(p),
            _ => None,
        }
    }

    /// The contained 3-D pose, if any.
    pub fn as_se3(&self) -> Option<&Se3> {
        match self {
            Variable::Se3(p) => Some(p),
            _ => None,
        }
    }
}

impl From<Se2> for Variable {
    fn from(p: Se2) -> Self {
        Variable::Se2(p)
    }
}

impl From<Se3> for Variable {
    fn from(p: Se3) -> Self {
        Variable::Se3(p)
    }
}

/// A dense map from [`Key`] to [`Variable`] — the state estimate `X` (or the
/// linearization point `Θ`) of the SLAM backend.
///
/// # Example
///
/// ```
/// use supernova_factors::{Se2, Values};
///
/// let mut values = Values::new();
/// let k = values.insert_se2(Se2::new(1.0, 2.0, 0.0));
/// assert_eq!(values.get(k).dim(), 3);
/// assert_eq!(values.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Values {
    vars: Vec<Variable>,
}

impl Values {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` when no variables are stored.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Inserts a variable, returning its key (insertion order).
    pub fn insert(&mut self, v: impl Into<Variable>) -> Key {
        self.vars.push(v.into());
        Key(self.vars.len() - 1)
    }

    /// Inserts a planar pose.
    pub fn insert_se2(&mut self, p: Se2) -> Key {
        self.insert(Variable::Se2(p))
    }

    /// Inserts a 3-D pose.
    pub fn insert_se3(&mut self, p: Se3) -> Key {
        self.insert(Variable::Se3(p))
    }

    /// The variable at `key`.
    ///
    /// # Panics
    ///
    /// Panics if the key is out of bounds.
    pub fn get(&self, key: Key) -> &Variable {
        &self.vars[key.0]
    }

    /// Replaces the variable at `key`.
    ///
    /// # Panics
    ///
    /// Panics if the key is out of bounds.
    pub fn set(&mut self, key: Key, v: Variable) {
        self.vars[key.0] = v;
    }

    /// Applies the retraction at `key`: `x ← x ⊕ delta`.
    pub fn retract_at(&mut self, key: Key, delta: &[f64]) {
        self.vars[key.0] = self.vars[key.0].retract(delta);
    }

    /// Retracts every variable by the corresponding slice of the stacked
    /// tangent vector `delta` (in key order).
    ///
    /// # Panics
    ///
    /// Panics if `delta.len()` is not the total tangent dimension.
    pub fn retract_all(&self, delta: &[f64]) -> Values {
        let mut off = 0usize;
        let vars = self
            .vars
            .iter()
            .map(|v| {
                let d = v.dim();
                let out = v.retract(&delta[off..off + d]);
                off += d;
                out
            })
            .collect();
        assert_eq!(off, delta.len(), "stacked tangent length mismatch");
        Values { vars }
    }

    /// Per-variable tangent dimensions in key order.
    pub fn dims(&self) -> Vec<usize> {
        self.vars.iter().map(Variable::dim).collect()
    }

    /// Total tangent dimension.
    pub fn total_dim(&self) -> usize {
        self.vars.iter().map(Variable::dim).sum()
    }

    /// Iterates `(key, variable)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &Variable)> {
        self.vars.iter().enumerate().map(|(i, v)| (Key(i), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut vals = Values::new();
        let a = vals.insert_se2(Se2::new(1.0, 2.0, 0.5));
        let b = vals.insert(Variable::Vector(vec![1.0, 2.0]));
        assert_eq!(a, Key(0));
        assert_eq!(b, Key(1));
        assert_eq!(vals.total_dim(), 5);
        assert_eq!(vals.dims(), vec![3, 2]);
        assert!(vals.get(a).as_se2().is_some());
        assert!(vals.get(a).as_se3().is_none());
    }

    #[test]
    fn retract_all_applies_slices() {
        let mut vals = Values::new();
        vals.insert_se2(Se2::identity());
        vals.insert(Variable::Vector(vec![1.0]));
        let out = vals.retract_all(&[0.5, 0.0, 0.0, 2.0]);
        assert!((out.get(Key(0)).as_se2().unwrap().x() - 0.5).abs() < 1e-12);
        assert_eq!(out.get(Key(1)), &Variable::Vector(vec![3.0]));
    }

    #[test]
    fn local_distance_consistency() {
        let a = Variable::Se2(Se2::new(0.0, 0.0, 0.0));
        let b = Variable::Se2(Se2::new(1.0, 0.0, 0.0));
        assert!((a.translation_distance(&b) - 1.0).abs() < 1e-12);
        let d = a.local(&b);
        assert!((d[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different variable kinds")]
    fn local_between_kinds_panics() {
        let a = Variable::Se2(Se2::identity());
        let b = Variable::Vector(vec![0.0; 3]);
        let _ = a.local(&b);
    }
}
