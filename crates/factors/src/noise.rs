//! Gaussian noise models.

use supernova_linalg::Mat;

/// A Gaussian measurement noise model, stored as the square-root information
/// (whitening) diagonal.
///
/// Whitening maps a raw residual `r` and Jacobian `J` to `Σ^{-1/2} r` and
/// `Σ^{-1/2} J`, so the whitened least-squares problem carries unit
/// covariance — the form Equation (2) of the paper assumes.
///
/// # Example
///
/// ```
/// use supernova_factors::NoiseModel;
///
/// let n = NoiseModel::from_sigmas(&[0.1, 0.2]);
/// let w = n.whiten(&[0.1, 0.2]);
/// assert!((w[0] - 1.0).abs() < 1e-12);
/// assert!((w[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseModel {
    sqrt_info: Vec<f64>,
    huber_k: Option<f64>,
}

impl NoiseModel {
    /// Isotropic noise: `dim` dimensions with standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    pub fn isotropic(dim: usize, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        NoiseModel {
            sqrt_info: vec![1.0 / sigma; dim],
            huber_k: None,
        }
    }

    /// Diagonal noise from per-dimension standard deviations.
    ///
    /// # Panics
    ///
    /// Panics if any sigma is not positive.
    pub fn from_sigmas(sigmas: &[f64]) -> Self {
        assert!(sigmas.iter().all(|&s| s > 0.0), "sigmas must be positive");
        NoiseModel {
            sqrt_info: sigmas.iter().map(|s| 1.0 / s).collect(),
            huber_k: None,
        }
    }

    /// Diagonal noise from per-dimension precisions (`1/σ²`).
    ///
    /// # Panics
    ///
    /// Panics if any precision is not positive.
    pub fn from_precisions(precisions: &[f64]) -> Self {
        assert!(
            precisions.iter().all(|&p| p > 0.0),
            "precisions must be positive"
        );
        NoiseModel {
            sqrt_info: precisions.iter().map(|p| p.sqrt()).collect(),
            huber_k: None,
        }
    }

    /// Wraps the model in a Huber robust kernel with threshold `k` (in
    /// whitened units): residuals beyond `k` are down-weighted, which keeps
    /// spurious loop closures from dragging the whole map (IRLS weighting).
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0`.
    pub fn with_huber(mut self, k: f64) -> Self {
        assert!(k > 0.0, "huber threshold must be positive");
        self.huber_k = Some(k);
        self
    }

    /// Rebuilds a model from raw whitening weights, as produced by
    /// [`sqrt_info`](Self::sqrt_info) — the lossless (bit-exact) round-trip
    /// path checkpoint codecs need, where reconstructing through sigmas
    /// would re-divide and perturb the last bit. Returns `None` (instead of
    /// panicking) when any weight or the Huber threshold is non-finite or
    /// non-positive, so decode paths stay panic-free on hostile bytes.
    pub fn from_sqrt_info(sqrt_info: Vec<f64>, huber_k: Option<f64>) -> Option<Self> {
        if sqrt_info.iter().any(|w| !w.is_finite() || *w <= 0.0) {
            return None;
        }
        if let Some(k) = huber_k {
            if !k.is_finite() || k <= 0.0 {
                return None;
            }
        }
        Some(NoiseModel { sqrt_info, huber_k })
    }

    /// The square-root information (whitening) diagonal.
    pub fn sqrt_info(&self) -> &[f64] {
        &self.sqrt_info
    }

    /// The Huber robust-kernel threshold, if one is installed.
    pub fn huber_k(&self) -> Option<f64> {
        self.huber_k
    }

    /// The IRLS weight for a whitened residual under the robust kernel
    /// (1 without a kernel, or within the Huber threshold). Residuals and
    /// Jacobians are scaled by the square root of this weight.
    pub fn robust_weight(&self, whitened: &[f64]) -> f64 {
        match self.huber_k {
            None => 1.0,
            Some(k) => {
                let n = whitened.iter().map(|x| x * x).sum::<f64>().sqrt();
                if n <= k {
                    1.0
                } else {
                    k / n
                }
            }
        }
    }

    /// Residual dimension.
    pub fn dim(&self) -> usize {
        self.sqrt_info.len()
    }

    /// Whitens a residual: `Σ^{-1/2} r`.
    ///
    /// # Panics
    ///
    /// Panics if `r.len() != self.dim()`.
    pub fn whiten(&self, r: &[f64]) -> Vec<f64> {
        assert_eq!(r.len(), self.dim(), "residual dimension mismatch");
        r.iter().zip(&self.sqrt_info).map(|(x, w)| x * w).collect()
    }

    /// Whitens a Jacobian block in place: each row `i` is scaled by
    /// `sqrt_info[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `j.rows() != self.dim()`.
    pub fn whiten_jacobian(&self, j: &mut Mat) {
        assert_eq!(j.rows(), self.dim(), "jacobian row dimension mismatch");
        for c in 0..j.cols() {
            let col = j.col_mut(c);
            for (x, w) in col.iter_mut().zip(&self.sqrt_info) {
                *x *= w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_whiten() {
        let n = NoiseModel::isotropic(3, 0.5);
        assert_eq!(n.dim(), 3);
        assert_eq!(n.whiten(&[1.0, 2.0, 0.0]), vec![2.0, 4.0, 0.0]);
    }

    #[test]
    fn precisions_equal_sigmas() {
        let a = NoiseModel::from_sigmas(&[0.1, 0.2]);
        let b = NoiseModel::from_precisions(&[100.0, 25.0]);
        assert_eq!(a.whiten(&[1.0, 1.0]), b.whiten(&[1.0, 1.0]));
    }

    #[test]
    fn whiten_jacobian_scales_rows() {
        let n = NoiseModel::from_sigmas(&[0.5, 1.0]);
        let mut j = Mat::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        n.whiten_jacobian(&mut j);
        assert_eq!(j[(0, 0)], 2.0);
        assert_eq!(j[(0, 1)], 4.0);
        assert_eq!(j[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_rejected() {
        let _ = NoiseModel::isotropic(1, 0.0);
    }

    #[test]
    fn huber_downweights_large_residuals() {
        let n = NoiseModel::isotropic(2, 1.0).with_huber(1.0);
        assert_eq!(n.robust_weight(&[0.3, 0.4]), 1.0); // |r| = 0.5 <= k
        let w = n.robust_weight(&[3.0, 4.0]); // |r| = 5
        assert!((w - 0.2).abs() < 1e-12);
        // Without a kernel the weight is always 1.
        assert_eq!(
            NoiseModel::isotropic(2, 1.0).robust_weight(&[100.0, 0.0]),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "huber threshold must be positive")]
    fn huber_rejects_nonpositive_threshold() {
        let _ = NoiseModel::isotropic(1, 1.0).with_huber(0.0);
    }
}
