//! Factor graphs and Lie-group manifolds for SLAM state estimation.
//!
//! The SLAM backend is the nonlinear least-squares problem of Equation (1)
//! of the paper: `argmin_X Σ_i ‖φ_i(X)‖²`, where each factor `φ_i`
//! constrains a small set of variables (poses). This crate provides:
//!
//! - [`Rot2`]/[`Se2`] and [`Rot3`]/[`Se3`] Lie groups with `exp`/`log` and
//!   the retraction `X ⊕ δ = X · Exp(δ)`;
//! - [`Variable`] / [`Values`] — heterogeneous state containers keyed by
//!   [`Key`];
//! - Gaussian [`NoiseModel`]s that whiten residuals and Jacobians;
//! - the [`Factor`] trait with [`PriorFactor`] and [`BetweenFactor`]
//!   implementations (Jacobians by central differences, validated against
//!   first-order Taylor expansion in the property tests);
//! - [`FactorGraph`] with variable↔factor adjacency, the structure the
//!   relinearization logic of ISAM2/RA-ISAM2 walks.
//!
//! # Example
//!
//! ```
//! use supernova_factors::{BetweenFactor, FactorGraph, Key, NoiseModel, PriorFactor, Se2, Values};
//!
//! let mut values = Values::new();
//! let x0 = values.insert_se2(Se2::identity());
//! let x1 = values.insert_se2(Se2::new(0.9, 0.1, 0.05));
//!
//! let mut graph = FactorGraph::new();
//! graph.add(PriorFactor::se2(x0, Se2::identity(), NoiseModel::isotropic(3, 0.01)));
//! graph.add(BetweenFactor::se2(x0, x1, Se2::new(1.0, 0.0, 0.0), NoiseModel::isotropic(3, 0.1)));
//! assert_eq!(graph.len(), 2);
//! assert_eq!(graph.factors_of(x1).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod factor;
mod graph;
mod key;
mod landmark;
mod noise;
mod se2;
mod se3;
mod values;

pub use factor::{
    linearize, numeric_jacobians, BetweenFactor, Factor, LinearizedFactor, PriorFactor,
};
pub use graph::FactorGraph;
pub use key::Key;
pub use landmark::{PointObservationFactor, RangeBearingFactor};
pub use noise::NoiseModel;
pub use se2::{Rot2, Se2};
pub use se3::{Rot3, Se3};
pub use values::{Values, Variable};
