//! The factor abstraction and the built-in factor types.

use supernova_linalg::Mat;

use crate::{Key, NoiseModel, Values, Variable};

/// One measurement constraint `φ_i(X)` over a small set of variables
/// (Equation (1) of the paper).
///
/// Implementations provide the *raw* residual at given variable values; the
/// solver layer obtains whitened Jacobians through [`linearize`], which uses
/// central differences on the manifold retraction.
///
/// [`linearize`]: Factor::linearize
pub trait Factor: std::fmt::Debug + Send + Sync {
    /// The variables this factor constrains, in Jacobian-block order.
    fn keys(&self) -> &[Key];

    /// The concrete factor behind the trait object; checkpoint codecs
    /// downcast through this to serialize the factor kinds they know.
    fn as_any(&self) -> &dyn std::any::Any;

    /// The measurement noise model (also fixes the residual dimension).
    fn noise(&self) -> &NoiseModel;

    /// The raw (unwhitened) residual evaluated at `vars`, which correspond
    /// to [`keys`](Self::keys) in order.
    fn error(&self, vars: &[&Variable]) -> Vec<f64>;

    /// Linearizes this factor at `values`: whitened Jacobian blocks (one per
    /// key) and whitened residual. This is the block row `J_i` of §3.3.
    fn linearize(&self, values: &Values) -> LinearizedFactor
    where
        Self: Sized,
    {
        linearize(self, values)
    }

    /// The weighted squared error `‖Σ^{-1/2} φ_i‖²` at `values` (IRLS
    /// down-weighted when the noise model carries a robust kernel).
    fn weighted_error2(&self, values: &Values) -> f64 {
        let vars: Vec<&Variable> = self.keys().iter().map(|&k| values.get(k)).collect();
        let w = self.noise().whiten(&self.error(&vars));
        self.noise().robust_weight(&w) * w.iter().map(|x| x * x).sum::<f64>()
    }
}

/// A factor linearized at some linearization point: the whitened block row
/// of the Jacobian `J` and the whitened residual.
#[derive(Clone, Debug)]
pub struct LinearizedFactor {
    /// Constrained variables, matching `jacobians` in order.
    pub keys: Vec<Key>,
    /// Whitened Jacobian block per key (`dim × var_dim`).
    pub jacobians: Vec<Mat>,
    /// Whitened residual (length `dim`).
    pub residual: Vec<f64>,
}

impl LinearizedFactor {
    /// Residual dimension.
    pub fn dim(&self) -> usize {
        self.residual.len()
    }

    /// Total number of scalar Jacobian entries (the factor's "size" for
    /// prefetch metering).
    pub fn jacobian_elems(&self) -> usize {
        self.jacobians.iter().map(|j| j.rows() * j.cols()).sum()
    }
}

/// Linearizes `factor` at `values` by central differences on the retraction.
///
/// The property tests verify first-order agreement:
/// `e(x ⊕ δ) ≈ e(x) + J δ` with `O(‖δ‖²)` error.
pub fn linearize<F: Factor + ?Sized>(factor: &F, values: &Values) -> LinearizedFactor {
    const H: f64 = 1e-6;
    let keys = factor.keys().to_vec();
    let vars: Vec<Variable> = keys.iter().map(|&k| values.get(k).clone()).collect();
    let refs: Vec<&Variable> = vars.iter().collect();
    let r0 = factor.error(&refs);
    let dim = r0.len();
    debug_assert_eq!(
        dim,
        factor.noise().dim(),
        "residual/noise dimension mismatch"
    );

    let whitened0 = factor.noise().whiten(&r0);
    let robust = factor.noise().robust_weight(&whitened0).sqrt();
    let mut jacobians = Vec::with_capacity(keys.len());
    for (vi, var) in vars.iter().enumerate() {
        let vdim = var.dim();
        let mut j = Mat::zeros(dim, vdim);
        let mut delta = vec![0.0; vdim];
        for d in 0..vdim {
            delta[d] = H;
            let plus = var.retract(&delta);
            delta[d] = -H;
            let minus = var.retract(&delta);
            delta[d] = 0.0;

            let mut probe: Vec<&Variable> = vars.iter().collect();
            probe[vi] = &plus;
            let rp = factor.error(&probe);
            probe[vi] = &minus;
            let rm = factor.error(&probe);
            for row in 0..dim {
                j[(row, d)] = (rp[row] - rm[row]) / (2.0 * H);
            }
        }
        factor.noise().whiten_jacobian(&mut j);
        if robust != 1.0 {
            j.scale(robust);
        }
        jacobians.push(j);
    }
    let residual = whitened0.iter().map(|x| x * robust).collect();
    LinearizedFactor {
        keys,
        jacobians,
        residual,
    }
}

/// Back-compat alias of [`linearize`] emphasizing the numeric scheme.
pub fn numeric_jacobians<F: Factor + ?Sized>(factor: &F, values: &Values) -> LinearizedFactor {
    linearize(factor, values)
}

/// Anchors a variable to a known value — the gauge constraint of every SLAM
/// problem (and the marginalization device of the fixed-lag smoother).
#[derive(Clone, Debug)]
pub struct PriorFactor {
    keys: [Key; 1],
    prior: Variable,
    noise: NoiseModel,
}

impl PriorFactor {
    /// Prior on an arbitrary variable.
    ///
    /// # Panics
    ///
    /// Panics if the noise dimension differs from the variable dimension.
    pub fn new(key: Key, prior: impl Into<Variable>, noise: NoiseModel) -> Self {
        let prior = prior.into();
        assert_eq!(
            noise.dim(),
            prior.dim(),
            "noise/variable dimension mismatch"
        );
        PriorFactor {
            keys: [key],
            prior,
            noise,
        }
    }

    /// Prior on a planar pose.
    pub fn se2(key: Key, prior: crate::Se2, noise: NoiseModel) -> Self {
        Self::new(key, prior, noise)
    }

    /// Prior on a 3-D pose.
    pub fn se3(key: Key, prior: crate::Se3, noise: NoiseModel) -> Self {
        Self::new(key, prior, noise)
    }

    /// The anchored value.
    pub fn prior(&self) -> &Variable {
        &self.prior
    }
}

impl Factor for PriorFactor {
    fn keys(&self) -> &[Key] {
        &self.keys
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    fn error(&self, vars: &[&Variable]) -> Vec<f64> {
        self.prior.local(vars[0])
    }
}

/// A relative-pose (odometry or loop-closure) constraint between two
/// variables: `e = Log(Z⁻¹ · (X_a⁻¹ · X_b))`.
#[derive(Clone, Debug)]
pub struct BetweenFactor {
    keys: [Key; 2],
    measured: Variable,
    noise: NoiseModel,
}

impl BetweenFactor {
    /// Relative constraint between two variables of the same kind.
    ///
    /// # Panics
    ///
    /// Panics if the noise dimension differs from the measurement dimension.
    pub fn new(a: Key, b: Key, measured: impl Into<Variable>, noise: NoiseModel) -> Self {
        let measured = measured.into();
        assert_eq!(
            noise.dim(),
            measured.dim(),
            "noise/measurement dimension mismatch"
        );
        BetweenFactor {
            keys: [a, b],
            measured,
            noise,
        }
    }

    /// Relative planar-pose constraint.
    pub fn se2(a: Key, b: Key, measured: crate::Se2, noise: NoiseModel) -> Self {
        Self::new(a, b, measured, noise)
    }

    /// Relative 3-D-pose constraint.
    pub fn se3(a: Key, b: Key, measured: crate::Se3, noise: NoiseModel) -> Self {
        Self::new(a, b, measured, noise)
    }

    /// The measured relative transform.
    pub fn measured(&self) -> &Variable {
        &self.measured
    }
}

impl Factor for BetweenFactor {
    fn keys(&self) -> &[Key] {
        &self.keys
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    fn error(&self, vars: &[&Variable]) -> Vec<f64> {
        match (vars[0], vars[1], &self.measured) {
            (Variable::Se2(a), Variable::Se2(b), Variable::Se2(z)) => {
                z.local(a.inverse().compose(*b)).to_vec()
            }
            (Variable::Se3(a), Variable::Se3(b), Variable::Se3(z)) => {
                z.local(&a.inverse().compose(b)).to_vec()
            }
            (Variable::Vector(a), Variable::Vector(b), Variable::Vector(z)) => a
                .iter()
                .zip(b)
                .zip(z)
                .map(|((x, y), m)| (y - x) - m)
                .collect(),
            _ => panic!("between factor over mismatched variable kinds"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Se2, Se3};

    #[test]
    fn prior_zero_error_at_prior() {
        let mut vals = Values::new();
        let k = vals.insert_se2(Se2::new(1.0, 2.0, 0.3));
        let f = PriorFactor::se2(k, Se2::new(1.0, 2.0, 0.3), NoiseModel::isotropic(3, 0.1));
        assert!(f.weighted_error2(&vals) < 1e-18);
    }

    #[test]
    fn between_zero_error_at_measurement() {
        let mut vals = Values::new();
        let a = vals.insert_se2(Se2::new(0.0, 0.0, 0.0));
        let b = vals.insert_se2(Se2::new(1.0, 0.0, 0.1));
        let f = BetweenFactor::se2(a, b, Se2::new(1.0, 0.0, 0.1), NoiseModel::isotropic(3, 0.1));
        assert!(f.weighted_error2(&vals) < 1e-16);
    }

    #[test]
    fn between_error_grows_with_mismatch() {
        let mut vals = Values::new();
        let a = vals.insert_se2(Se2::identity());
        let b = vals.insert_se2(Se2::new(2.0, 0.0, 0.0));
        let f = BetweenFactor::se2(a, b, Se2::new(1.0, 0.0, 0.0), NoiseModel::isotropic(3, 1.0));
        let e2 = f.weighted_error2(&vals);
        assert!((e2 - 1.0).abs() < 1e-9, "expected 1.0, got {e2}");
    }

    #[test]
    fn linearize_shapes() {
        let mut vals = Values::new();
        let a = vals.insert_se3(Se3::identity());
        let b = vals.insert_se3(Se3::from_parts([1.0, 0.0, 0.0], crate::Rot3::identity()));
        let f = BetweenFactor::se3(
            a,
            b,
            Se3::from_parts([1.0, 0.0, 0.0], crate::Rot3::identity()),
            NoiseModel::isotropic(6, 0.1),
        );
        let lin = f.linearize(&vals);
        assert_eq!(lin.keys, vec![a, b]);
        assert_eq!(lin.dim(), 6);
        assert_eq!(lin.jacobians[0].rows(), 6);
        assert_eq!(lin.jacobians[0].cols(), 6);
        assert_eq!(lin.jacobian_elems(), 72);
    }

    #[test]
    fn jacobian_first_order_accuracy_se2() {
        // e(x ⊕ δ) ≈ e(x) + J δ for small δ.
        let mut vals = Values::new();
        let a = vals.insert_se2(Se2::new(0.3, -0.2, 0.4));
        let b = vals.insert_se2(Se2::new(1.2, 0.5, 0.9));
        let f = BetweenFactor::se2(a, b, Se2::new(1.0, 0.0, 0.3), NoiseModel::isotropic(3, 1.0));
        let lin = f.linearize(&vals);

        let delta = [1e-4, -2e-4, 1.5e-4];
        let mut vals2 = vals.clone();
        vals2.retract_at(b, &delta);
        let vars2: Vec<&Variable> = f.keys().iter().map(|&k| vals2.get(k)).collect();
        let e2 = f.noise().whiten(&f.error(&vars2));

        let predicted: Vec<f64> = {
            let jd = lin.jacobians[1].matvec(&delta);
            lin.residual.iter().zip(jd).map(|(r, d)| r + d).collect()
        };
        for (got, want) in e2.iter().zip(&predicted) {
            assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
    }

    #[test]
    fn vector_between() {
        let mut vals = Values::new();
        let a = vals.insert(Variable::Vector(vec![1.0, 1.0]));
        let b = vals.insert(Variable::Vector(vec![3.0, 0.0]));
        let f = BetweenFactor::new(
            a,
            b,
            Variable::Vector(vec![2.0, -1.0]),
            NoiseModel::isotropic(2, 1.0),
        );
        assert!(f.weighted_error2(&vals) < 1e-18);
    }
}
