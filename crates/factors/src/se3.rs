//! The 3-D rigid transforms SO(3) and SE(3).

use std::fmt;

use supernova_linalg::Mat;

/// A 3-D rotation (an element of SO(3)), stored as a 3×3 rotation matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Rot3 {
    m: Mat,
}

impl Rot3 {
    /// The identity rotation.
    pub fn identity() -> Self {
        Rot3 {
            m: Mat::identity(3),
        }
    }

    /// Builds a rotation from a matrix.
    ///
    /// The matrix is trusted to be orthonormal; use
    /// [`normalized`](Self::normalized) after long composition chains.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not 3×3.
    pub fn from_matrix(m: Mat) -> Self {
        assert!(
            m.rows() == 3 && m.cols() == 3,
            "rotation matrix must be 3x3"
        );
        Rot3 { m }
    }

    /// Exponential map (Rodrigues) from an axis-angle vector.
    pub fn exp(w: &[f64]) -> Self {
        let theta2 = w[0] * w[0] + w[1] * w[1] + w[2] * w[2];
        let theta = theta2.sqrt();
        let (a, b) = if theta < 1e-9 {
            (1.0 - theta2 / 6.0, 0.5 - theta2 / 24.0)
        } else {
            (theta.sin() / theta, (1.0 - theta.cos()) / theta2)
        };
        let wx = hat(w);
        let mut wx2 = Mat::zeros(3, 3);
        supernova_linalg::gemm(
            1.0,
            &wx,
            supernova_linalg::Transpose::No,
            &wx,
            supernova_linalg::Transpose::No,
            0.0,
            &mut wx2,
        );
        let mut m = Mat::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                m[(i, j)] += a * wx[(i, j)] + b * wx2[(i, j)];
            }
        }
        Rot3 { m }
    }

    /// Logarithm map to an axis-angle vector, robust near 0 and π.
    pub fn log(&self) -> [f64; 3] {
        let m = &self.m;
        let trace = m[(0, 0)] + m[(1, 1)] + m[(2, 2)];
        let cos_theta = ((trace - 1.0) * 0.5).clamp(-1.0, 1.0);
        let theta = cos_theta.acos();
        if theta < 1e-9 {
            // R ≈ I + [w]×: read off the skew part.
            return [
                0.5 * (m[(2, 1)] - m[(1, 2)]),
                0.5 * (m[(0, 2)] - m[(2, 0)]),
                0.5 * (m[(1, 0)] - m[(0, 1)]),
            ];
        }
        if (std::f64::consts::PI - theta) < 1e-6 {
            // Near π the skew part vanishes; recover the axis from the
            // largest diagonal of R + I.
            let mut axis = [0.0; 3];
            let diag = [m[(0, 0)], m[(1, 1)], m[(2, 2)]];
            let k = if diag[0] >= diag[1] && diag[0] >= diag[2] {
                0
            } else if diag[1] >= diag[2] {
                1
            } else {
                2
            };
            let denom = (2.0 * (1.0 + diag[k])).sqrt();
            for i in 0..3 {
                axis[i] = (m[(i, k)] + if i == k { 1.0 } else { 0.0 }) / denom;
            }
            // Fix the sign using the (small but informative) skew part.
            let skew = [
                m[(2, 1)] - m[(1, 2)],
                m[(0, 2)] - m[(2, 0)],
                m[(1, 0)] - m[(0, 1)],
            ];
            let dotp = axis[0] * skew[0] + axis[1] * skew[1] + axis[2] * skew[2];
            let sign = if dotp < 0.0 { -1.0 } else { 1.0 };
            return [
                sign * theta * axis[0],
                sign * theta * axis[1],
                sign * theta * axis[2],
            ];
        }
        let k = theta / (2.0 * theta.sin());
        [
            k * (m[(2, 1)] - m[(1, 2)]),
            k * (m[(0, 2)] - m[(2, 0)]),
            k * (m[(1, 0)] - m[(0, 1)]),
        ]
    }

    /// Composition `self · other`.
    pub fn compose(&self, other: &Rot3) -> Rot3 {
        let mut m = Mat::zeros(3, 3);
        supernova_linalg::gemm(
            1.0,
            &self.m,
            supernova_linalg::Transpose::No,
            &other.m,
            supernova_linalg::Transpose::No,
            0.0,
            &mut m,
        );
        Rot3 { m }
    }

    /// The inverse (= transpose) rotation.
    pub fn inverse(&self) -> Rot3 {
        Rot3 {
            m: self.m.transposed(),
        }
    }

    /// Rotates a 3-vector.
    pub fn rotate(&self, v: [f64; 3]) -> [f64; 3] {
        let r = self.m.matvec(&v);
        [r[0], r[1], r[2]]
    }

    /// The underlying 3×3 matrix.
    pub fn matrix(&self) -> &Mat {
        &self.m
    }

    /// Re-orthonormalizes via one Gram–Schmidt pass (drift control).
    pub fn normalized(&self) -> Rot3 {
        let mut c0 = [self.m[(0, 0)], self.m[(1, 0)], self.m[(2, 0)]];
        let n0 = (c0[0] * c0[0] + c0[1] * c0[1] + c0[2] * c0[2]).sqrt();
        c0 = [c0[0] / n0, c0[1] / n0, c0[2] / n0];
        let mut c1 = [self.m[(0, 1)], self.m[(1, 1)], self.m[(2, 1)]];
        let d = c0[0] * c1[0] + c0[1] * c1[1] + c0[2] * c1[2];
        c1 = [c1[0] - d * c0[0], c1[1] - d * c0[1], c1[2] - d * c0[2]];
        let n1 = (c1[0] * c1[0] + c1[1] * c1[1] + c1[2] * c1[2]).sqrt();
        c1 = [c1[0] / n1, c1[1] / n1, c1[2] / n1];
        let c2 = [
            c0[1] * c1[2] - c0[2] * c1[1],
            c0[2] * c1[0] - c0[0] * c1[2],
            c0[0] * c1[1] - c0[1] * c1[0],
        ];
        let mut m = Mat::zeros(3, 3);
        for i in 0..3 {
            m[(i, 0)] = c0[i];
            m[(i, 1)] = c1[i];
            m[(i, 2)] = c2[i];
        }
        Rot3 { m }
    }
}

impl Default for Rot3 {
    fn default() -> Self {
        Self::identity()
    }
}

/// The skew-symmetric (hat) matrix of a 3-vector.
fn hat(w: &[f64]) -> Mat {
    let mut m = Mat::zeros(3, 3);
    m[(0, 1)] = -w[2];
    m[(0, 2)] = w[1];
    m[(1, 0)] = w[2];
    m[(1, 2)] = -w[0];
    m[(2, 0)] = -w[1];
    m[(2, 1)] = w[0];
    m
}

/// A 3-D rigid transform (an element of SE(3)): rotation plus translation.
///
/// The tangent convention is `[v, ω]` (translation first) with the right
/// retraction `X ⊕ δ = X · Exp(δ)`.
///
/// # Example
///
/// ```
/// use supernova_factors::Se3;
///
/// let a = Se3::from_parts([1.0, 2.0, 3.0], supernova_factors::Rot3::exp(&[0.1, 0.0, 0.3]));
/// let b = a.retract(&[0.1, 0.0, 0.0, 0.0, 0.05, 0.0]);
/// let d = a.local(&b);
/// assert!((d[0] - 0.1).abs() < 1e-9);
/// assert!((d[4] - 0.05).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Se3 {
    rot: Rot3,
    t: [f64; 3],
}

impl Se3 {
    /// Tangent-space dimension.
    pub const DIM: usize = 6;

    /// The identity pose.
    pub fn identity() -> Self {
        Se3::default()
    }

    /// Creates a pose from translation and rotation.
    pub fn from_parts(t: [f64; 3], rot: Rot3) -> Self {
        Se3 { rot, t }
    }

    /// The translation part.
    pub fn translation(&self) -> [f64; 3] {
        self.t
    }

    /// The rotation part.
    pub fn rotation(&self) -> &Rot3 {
        &self.rot
    }

    /// Group composition `self · other`.
    pub fn compose(&self, other: &Se3) -> Se3 {
        let rt = self.rot.rotate(other.t);
        Se3 {
            rot: self.rot.compose(&other.rot).normalized(),
            t: [self.t[0] + rt[0], self.t[1] + rt[1], self.t[2] + rt[2]],
        }
    }

    /// Group inverse.
    pub fn inverse(&self) -> Se3 {
        let rinv = self.rot.inverse();
        let ti = rinv.rotate([-self.t[0], -self.t[1], -self.t[2]]);
        Se3 { rot: rinv, t: ti }
    }

    /// Exponential map from the tangent `[vx, vy, vz, ωx, ωy, ωz]`.
    pub fn exp(xi: &[f64]) -> Se3 {
        let v = [xi[0], xi[1], xi[2]];
        let w = [xi[3], xi[4], xi[5]];
        let rot = Rot3::exp(&w);
        let theta2 = w[0] * w[0] + w[1] * w[1] + w[2] * w[2];
        let theta = theta2.sqrt();
        // V = I + b·[w]× + c·[w]×², b = (1−cosθ)/θ², c = (θ−sinθ)/θ³.
        let (b, c) = if theta < 1e-9 {
            (0.5 - theta2 / 24.0, 1.0 / 6.0 - theta2 / 120.0)
        } else {
            (
                (1.0 - theta.cos()) / theta2,
                (theta - theta.sin()) / (theta2 * theta),
            )
        };
        let t = apply_v(&w, b, c, v);
        Se3 { rot, t }
    }

    /// Logarithm map to the tangent `[vx, vy, vz, ωx, ωy, ωz]`.
    pub fn log(&self) -> [f64; 6] {
        let w = self.rot.log();
        let theta2 = w[0] * w[0] + w[1] * w[1] + w[2] * w[2];
        let theta = theta2.sqrt();
        // V⁻¹ = I − ½[w]× + d·[w]×², d = (1 − θ·cot(θ/2)/2)/θ².
        let d = if theta < 1e-9 {
            1.0 / 12.0 + theta2 / 720.0
        } else {
            let half = theta / 2.0;
            (1.0 - half * half.cos() / half.sin()) / theta2
        };
        let v = apply_v(&w, -0.5, d, self.t);
        [v[0], v[1], v[2], w[0], w[1], w[2]]
    }

    /// Right retraction `self · Exp(delta)`.
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != 6`.
    pub fn retract(&self, delta: &[f64]) -> Se3 {
        assert_eq!(delta.len(), Self::DIM, "Se3 tangent must have length 6");
        self.compose(&Se3::exp(delta))
    }

    /// Local coordinates of `other` around `self`: `Log(self⁻¹ · other)`.
    pub fn local(&self, other: &Se3) -> [f64; 6] {
        self.inverse().compose(other).log()
    }

    /// Euclidean distance between the translation parts.
    pub fn translation_distance(&self, other: &Se3) -> f64 {
        let dx = self.t[0] - other.t[0];
        let dy = self.t[1] - other.t[1];
        let dz = self.t[2] - other.t[2];
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

/// Applies `(I + b·[w]× + c·[w]×²) v`.
fn apply_v(w: &[f64; 3], b: f64, c: f64, v: [f64; 3]) -> [f64; 3] {
    let wxv = [
        w[1] * v[2] - w[2] * v[1],
        w[2] * v[0] - w[0] * v[2],
        w[0] * v[1] - w[1] * v[0],
    ];
    let wxwxv = [
        w[1] * wxv[2] - w[2] * wxv[1],
        w[2] * wxv[0] - w[0] * wxv[2],
        w[0] * wxv[1] - w[1] * wxv[0],
    ];
    [
        v[0] + b * wxv[0] + c * wxwxv[0],
        v[1] + b * wxv[1] + c * wxwxv[1],
        v[2] + b * wxv[2] + c * wxwxv[2],
    ]
}

impl fmt::Display for Se3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.t[0], self.t[1], self.t[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rot3_exp_log_roundtrip() {
        for w in [
            [0.1, -0.2, 0.3],
            [0.0, 0.0, 0.0],
            [1.0, 1.0, -1.0],
            [3.0, 0.5, 0.1],
            [1e-12, 0.0, 0.0],
        ] {
            let r = Rot3::exp(&w);
            let back = r.log();
            for k in 0..3 {
                assert!((back[k] - w[k]).abs() < 1e-7, "{w:?} -> {back:?}");
            }
        }
    }

    #[test]
    fn rot3_log_near_pi() {
        let w = [std::f64::consts::PI - 1e-8, 0.0, 0.0];
        let r = Rot3::exp(&w);
        let back = r.log();
        let norm = (back[0] * back[0] + back[1] * back[1] + back[2] * back[2]).sqrt();
        assert!((norm - w[0]).abs() < 1e-5, "norm {norm} vs {}", w[0]);
    }

    #[test]
    fn rot3_orthonormal_after_exp() {
        let r = Rot3::exp(&[0.4, -0.9, 1.3]);
        let i = r.compose(&r.inverse());
        for a in 0..3 {
            for b in 0..3 {
                let want = if a == b { 1.0 } else { 0.0 };
                assert!((i.matrix()[(a, b)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn se3_exp_log_roundtrip() {
        for xi in [
            [0.1, 0.2, 0.3, 0.4, -0.5, 0.6],
            [1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, 0.0, 2.0],
            [0.5, -0.5, 0.5, 1e-11, 0.0, 0.0],
        ] {
            let p = Se3::exp(&xi);
            let back = p.log();
            for k in 0..6 {
                assert!((back[k] - xi[k]).abs() < 1e-8, "{xi:?} -> {back:?}");
            }
        }
    }

    #[test]
    fn se3_retract_local_roundtrip() {
        let a = Se3::from_parts([1.0, -2.0, 0.5], Rot3::exp(&[0.3, 0.2, -0.7]));
        let b = Se3::from_parts([0.1, 0.4, -1.0], Rot3::exp(&[-0.2, 0.9, 0.1]));
        let d = a.local(&b);
        let b2 = a.retract(&d);
        assert!(b2.translation_distance(&b) < 1e-9);
        let dd = b.local(&b2);
        assert!(dd.iter().all(|x| x.abs() < 1e-9));
    }

    #[test]
    fn compose_inverse_is_identity() {
        let p = Se3::from_parts([3.0, 1.0, -2.0], Rot3::exp(&[0.1, 0.5, 0.2]));
        let e = p.compose(&p.inverse());
        assert!(e.translation_distance(&Se3::identity()) < 1e-12);
        assert!(e.rotation().log().iter().all(|x| x.abs() < 1e-12));
    }

    #[test]
    fn normalization_restores_orthonormality() {
        let mut m = Rot3::exp(&[0.2, 0.3, 0.4]).matrix().clone();
        m[(0, 0)] += 1e-4; // inject drift
        let r = Rot3::from_matrix(m).normalized();
        let i = r.compose(&r.inverse());
        for a in 0..3 {
            assert!((i.matrix()[(a, a)] - 1.0).abs() < 1e-10);
        }
    }
}
