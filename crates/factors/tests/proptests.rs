//! Property tests: manifold axioms and Jacobian first-order accuracy.

use proptest::prelude::*;
use supernova_factors::{
    BetweenFactor, Factor, NoiseModel, PriorFactor, Rot3, Se2, Se3, Values, Variable,
};

fn se2() -> impl Strategy<Value = Se2> {
    (-5.0f64..5.0, -5.0f64..5.0, -3.0f64..3.0).prop_map(|(x, y, t)| Se2::new(x, y, t))
}

fn se3() -> impl Strategy<Value = Se3> {
    (
        proptest::array::uniform3(-5.0f64..5.0),
        proptest::array::uniform3(-1.5f64..1.5),
    )
        .prop_map(|(t, w)| Se3::from_parts(t, Rot3::exp(&w)))
}

fn tangent3() -> impl Strategy<Value = [f64; 3]> {
    proptest::array::uniform3(-2.0f64..2.0)
}

fn tangent6() -> impl Strategy<Value = [f64; 6]> {
    proptest::array::uniform6(-1.0f64..1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn se2_retract_local_inverse(a in se2(), b in se2()) {
        let d = a.local(b);
        let b2 = a.retract(&d);
        prop_assert!(b2.translation_distance(&b) < 1e-9);
        prop_assert!((b2.theta() - b.theta()).abs() < 1e-9
            || (b2.theta() - b.theta()).abs() > 2.0 * std::f64::consts::PI - 1e-9);
    }

    #[test]
    fn se2_exp_log_roundtrip(xi in tangent3()) {
        // log returns the principal angle; restrict to |ω| < π.
        prop_assume!(xi[2].abs() < std::f64::consts::PI - 1e-3);
        let p = Se2::exp(&xi);
        let back = p.log();
        for k in 0..3 {
            prop_assert!((back[k] - xi[k]).abs() < 1e-8);
        }
    }

    #[test]
    fn se2_compose_associative(a in se2(), b in se2(), c in se2()) {
        let left = a.compose(b).compose(c);
        let right = a.compose(b.compose(c));
        prop_assert!(left.translation_distance(&right) < 1e-9);
    }

    #[test]
    fn se3_retract_local_inverse(a in se3(), b in se3()) {
        let d = a.local(&b);
        let b2 = a.retract(&d);
        prop_assert!(b2.translation_distance(&b) < 1e-8);
        let dd = b.local(&b2);
        prop_assert!(dd.iter().all(|x| x.abs() < 1e-7));
    }

    #[test]
    fn se3_exp_log_roundtrip(xi in tangent6()) {
        let wnorm = (xi[3] * xi[3] + xi[4] * xi[4] + xi[5] * xi[5]).sqrt();
        prop_assume!(wnorm < std::f64::consts::PI - 1e-3);
        let p = Se3::exp(&xi);
        let back = p.log();
        for k in 0..6 {
            prop_assert!((back[k] - xi[k]).abs() < 1e-7, "{:?} vs {:?}", xi, back);
        }
    }

    #[test]
    fn se3_inverse_composes_to_identity(a in se3()) {
        let e = a.compose(&a.inverse());
        prop_assert!(e.translation_distance(&Se3::identity()) < 1e-9);
        prop_assert!(e.rotation().log().iter().all(|x| x.abs() < 1e-7));
    }

    #[test]
    fn between_se2_jacobian_first_order(a in se2(), b in se2(), z in se2(),
                                        delta in proptest::array::uniform3(-1e-4f64..1e-4)) {
        let mut vals = Values::new();
        let ka = vals.insert_se2(a);
        let kb = vals.insert_se2(b);
        let f = BetweenFactor::se2(ka, kb, z, NoiseModel::isotropic(3, 1.0));
        let lin = f.linearize(&vals);

        // Perturb b and compare against the linear prediction.
        let mut v2 = vals.clone();
        v2.retract_at(kb, &delta);
        let vars: Vec<&Variable> = f.keys().iter().map(|&k| v2.get(k)).collect();
        let actual = f.noise().whiten(&f.error(&vars));
        let jd = lin.jacobians[1].matvec(&delta);
        for k in 0..3 {
            let predicted = lin.residual[k] + jd[k];
            prop_assert!((actual[k] - predicted).abs() < 1e-6,
                "component {}: {} vs {}", k, actual[k], predicted);
        }
    }

    #[test]
    fn between_se3_jacobian_first_order(a in se3(), b in se3(),
                                        delta in proptest::array::uniform6(-1e-4f64..1e-4)) {
        let mut vals = Values::new();
        let ka = vals.insert_se3(a.clone());
        let kb = vals.insert_se3(b.clone());
        let z = a.inverse().compose(&b); // zero-residual measurement
        let f = BetweenFactor::se3(ka, kb, z, NoiseModel::isotropic(6, 1.0));
        let lin = f.linearize(&vals);

        let mut v2 = vals.clone();
        v2.retract_at(ka, &delta);
        let vars: Vec<&Variable> = f.keys().iter().map(|&k| v2.get(k)).collect();
        let actual = f.noise().whiten(&f.error(&vars));
        let jd = lin.jacobians[0].matvec(&delta);
        for k in 0..6 {
            let predicted = lin.residual[k] + jd[k];
            prop_assert!((actual[k] - predicted).abs() < 1e-6);
        }
    }

    #[test]
    fn prior_jacobian_first_order(a in se3(), delta in proptest::array::uniform6(-1e-4f64..1e-4)) {
        let mut vals = Values::new();
        let k = vals.insert_se3(a.clone());
        let f = PriorFactor::se3(k, a, NoiseModel::isotropic(6, 0.5));
        let lin = f.linearize(&vals);
        let mut v2 = vals.clone();
        v2.retract_at(k, &delta);
        let vars: Vec<&Variable> = f.keys().iter().map(|&kk| v2.get(kk)).collect();
        let actual = f.noise().whiten(&f.error(&vars));
        let jd = lin.jacobians[0].matvec(&delta);
        for c in 0..6 {
            prop_assert!((actual[c] - (lin.residual[c] + jd[c])).abs() < 1e-6);
        }
    }
}
