//! Randomized tests: manifold axioms and Jacobian first-order accuracy,
//! seeded through the in-tree PRNG so every case replays offline.

use supernova_factors::{
    BetweenFactor, Factor, NoiseModel, PriorFactor, Rot3, Se2, Se3, Values, Variable,
};
use supernova_linalg::rng::XorShift64;

const CASES: u64 = 128;

fn se2(rng: &mut XorShift64) -> Se2 {
    Se2::new(
        rng.gen_range(-5.0, 5.0),
        rng.gen_range(-5.0, 5.0),
        rng.gen_range(-3.0, 3.0),
    )
}

fn se3(rng: &mut XorShift64) -> Se3 {
    let t = [
        rng.gen_range(-5.0, 5.0),
        rng.gen_range(-5.0, 5.0),
        rng.gen_range(-5.0, 5.0),
    ];
    let w = [
        rng.gen_range(-1.5, 1.5),
        rng.gen_range(-1.5, 1.5),
        rng.gen_range(-1.5, 1.5),
    ];
    Se3::from_parts(t, Rot3::exp(&w))
}

fn tangent3(rng: &mut XorShift64) -> [f64; 3] {
    [
        rng.gen_range(-2.0, 2.0),
        rng.gen_range(-2.0, 2.0),
        rng.gen_range(-2.0, 2.0),
    ]
}

fn tangent6(rng: &mut XorShift64) -> [f64; 6] {
    let mut xi = [0.0; 6];
    for x in &mut xi {
        *x = rng.gen_range(-1.0, 1.0);
    }
    xi
}

fn small_delta3(rng: &mut XorShift64) -> [f64; 3] {
    [
        rng.gen_range(-1e-4, 1e-4),
        rng.gen_range(-1e-4, 1e-4),
        rng.gen_range(-1e-4, 1e-4),
    ]
}

fn small_delta6(rng: &mut XorShift64) -> [f64; 6] {
    let mut d = [0.0; 6];
    for x in &mut d {
        *x = rng.gen_range(-1e-4, 1e-4);
    }
    d
}

#[test]
fn se2_retract_local_inverse() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xfac0_0000 + case);
        let a = se2(&mut rng);
        let b = se2(&mut rng);
        let d = a.local(b);
        let b2 = a.retract(&d);
        assert!(b2.translation_distance(&b) < 1e-9, "case {case}");
        assert!(
            (b2.theta() - b.theta()).abs() < 1e-9
                || (b2.theta() - b.theta()).abs() > 2.0 * std::f64::consts::PI - 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn se2_exp_log_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xfac1_0000 + case);
        let xi = tangent3(&mut rng);
        // log returns the principal angle; restrict to |ω| < π.
        if xi[2].abs() >= std::f64::consts::PI - 1e-3 {
            continue;
        }
        let p = Se2::exp(&xi);
        let back = p.log();
        for k in 0..3 {
            assert!((back[k] - xi[k]).abs() < 1e-8, "case {case} component {k}");
        }
    }
}

#[test]
fn se2_compose_associative() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xfac2_0000 + case);
        let a = se2(&mut rng);
        let b = se2(&mut rng);
        let c = se2(&mut rng);
        let left = a.compose(b).compose(c);
        let right = a.compose(b.compose(c));
        assert!(left.translation_distance(&right) < 1e-9, "case {case}");
    }
}

#[test]
fn se3_retract_local_inverse() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xfac3_0000 + case);
        let a = se3(&mut rng);
        let b = se3(&mut rng);
        let d = a.local(&b);
        let b2 = a.retract(&d);
        assert!(b2.translation_distance(&b) < 1e-8, "case {case}");
        let dd = b.local(&b2);
        assert!(dd.iter().all(|x| x.abs() < 1e-7), "case {case}: {dd:?}");
    }
}

#[test]
fn se3_exp_log_roundtrip() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xfac4_0000 + case);
        let xi = tangent6(&mut rng);
        let wnorm = (xi[3] * xi[3] + xi[4] * xi[4] + xi[5] * xi[5]).sqrt();
        if wnorm >= std::f64::consts::PI - 1e-3 {
            continue;
        }
        let p = Se3::exp(&xi);
        let back = p.log();
        for k in 0..6 {
            assert!(
                (back[k] - xi[k]).abs() < 1e-7,
                "case {case}: {xi:?} vs {back:?}"
            );
        }
    }
}

#[test]
fn se3_inverse_composes_to_identity() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xfac5_0000 + case);
        let a = se3(&mut rng);
        let e = a.compose(&a.inverse());
        assert!(
            e.translation_distance(&Se3::identity()) < 1e-9,
            "case {case}"
        );
        assert!(
            e.rotation().log().iter().all(|x| x.abs() < 1e-7),
            "case {case}"
        );
    }
}

#[test]
fn between_se2_jacobian_first_order() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xfac6_0000 + case);
        let a = se2(&mut rng);
        let b = se2(&mut rng);
        let z = se2(&mut rng);
        let delta = small_delta3(&mut rng);
        let mut vals = Values::new();
        let ka = vals.insert_se2(a);
        let kb = vals.insert_se2(b);
        let f = BetweenFactor::se2(ka, kb, z, NoiseModel::isotropic(3, 1.0));
        let lin = f.linearize(&vals);

        // Perturb b and compare against the linear prediction.
        let mut v2 = vals.clone();
        v2.retract_at(kb, &delta);
        let vars: Vec<&Variable> = f.keys().iter().map(|&k| v2.get(k)).collect();
        let actual = f.noise().whiten(&f.error(&vars));
        let jd = lin.jacobians[1].matvec(&delta);
        for k in 0..3 {
            let predicted = lin.residual[k] + jd[k];
            assert!(
                (actual[k] - predicted).abs() < 1e-6,
                "case {case} component {k}: {} vs {}",
                actual[k],
                predicted
            );
        }
    }
}

#[test]
fn between_se3_jacobian_first_order() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xfac7_0000 + case);
        let a = se3(&mut rng);
        let b = se3(&mut rng);
        let delta = small_delta6(&mut rng);
        let mut vals = Values::new();
        let ka = vals.insert_se3(a.clone());
        let kb = vals.insert_se3(b.clone());
        let z = a.inverse().compose(&b); // zero-residual measurement
        let f = BetweenFactor::se3(ka, kb, z, NoiseModel::isotropic(6, 1.0));
        let lin = f.linearize(&vals);

        let mut v2 = vals.clone();
        v2.retract_at(ka, &delta);
        let vars: Vec<&Variable> = f.keys().iter().map(|&k| v2.get(k)).collect();
        let actual = f.noise().whiten(&f.error(&vars));
        let jd = lin.jacobians[0].matvec(&delta);
        for k in 0..6 {
            let predicted = lin.residual[k] + jd[k];
            assert!(
                (actual[k] - predicted).abs() < 1e-6,
                "case {case} component {k}"
            );
        }
    }
}

#[test]
fn prior_jacobian_first_order() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0xfac8_0000 + case);
        let a = se3(&mut rng);
        let delta = small_delta6(&mut rng);
        let mut vals = Values::new();
        let k = vals.insert_se3(a.clone());
        let f = PriorFactor::se3(k, a, NoiseModel::isotropic(6, 0.5));
        let lin = f.linearize(&vals);
        let mut v2 = vals.clone();
        v2.retract_at(k, &delta);
        let vars: Vec<&Variable> = f.keys().iter().map(|&kk| v2.get(kk)).collect();
        let actual = f.noise().whiten(&f.error(&vars));
        let jd = lin.jacobians[0].matvec(&delta);
        for c in 0..6 {
            assert!(
                (actual[c] - (lin.residual[c] + jd[c])).abs() < 1e-6,
                "case {case} component {c}"
            );
        }
    }
}
