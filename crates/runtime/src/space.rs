//! Workspace accounting (Algorithm 2, `calc_space`).

use crate::NodeWork;

/// Cap on the Hessian-staging workspace per node, in bytes (the
/// `H_workspace_size` bound of Algorithm 2, line 6).
pub const H_WORKSPACE_CAP_BYTES: usize = 64 << 10;

/// Workspace bytes a node occupies while being processed: the staged factor
/// data (capped), its own frontal workspace, and the parent front it merges
/// into (Algorithm 2, lines 5–9).
///
/// The runtime admits concurrent nodes only while the sum of their
/// `calc_space` fits the shared LLC — the cache-thrashing guard of §4.3.1.
///
/// # Example
///
/// ```
/// use supernova_runtime::{calc_space, NodeWork};
///
/// let w = NodeWork { pivot_dim: 8, rem_dim: 8, factor_bytes: 256, ..NodeWork::default() };
/// assert!(calc_space(&w, Some(24)) > w.front_bytes());
/// ```
pub fn calc_space(work: &NodeWork, parent_front_dim: Option<usize>) -> usize {
    let h = work.factor_bytes.min(H_WORKSPACE_CAP_BYTES);
    let f = work.front_bytes();
    let next_f = parent_front_dim.map(|d| d * d * 4).unwrap_or(0);
    h + f + next_f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_includes_all_three_terms() {
        let w = NodeWork {
            pivot_dim: 4,
            rem_dim: 4,
            factor_bytes: 100,
            ..NodeWork::default()
        };
        let s = calc_space(&w, Some(10));
        assert_eq!(s, 100 + 8 * 8 * 4 + 10 * 10 * 4);
    }

    #[test]
    fn factor_staging_is_capped() {
        let w = NodeWork {
            pivot_dim: 4,
            rem_dim: 0,
            factor_bytes: usize::MAX / 2,
            ..NodeWork::default()
        };
        let s = calc_space(&w, None);
        assert_eq!(s, H_WORKSPACE_CAP_BYTES + 4 * 4 * 4);
    }

    #[test]
    fn root_has_no_parent_term() {
        let w = NodeWork {
            pivot_dim: 4,
            rem_dim: 4,
            factor_bytes: 0,
            ..NodeWork::default()
        };
        assert!(calc_space(&w, None) < calc_space(&w, Some(12)));
    }
}
