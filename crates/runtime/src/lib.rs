//! The SuperNoVA runtime: virtual-time scheduling of supernodes over
//! virtualized accelerators (§4.3 of the paper).
//!
//! The runtime sits between the algorithm layer (`supernova-solvers`) and
//! the hardware model (`supernova-hw`):
//!
//! - the solvers emit a [`StepTrace`] per SLAM step — the recomputed
//!   supernodes with their op traces and tree dependencies, plus the
//!   non-numeric work volumes;
//! - [`simulate_step`] prices that trace on a [`Platform`](supernova_hw::Platform), reproducing
//!   Algorithm 2's accelerator acquisition with LLC-fit admission
//!   ([`calc_space`]), inter-node parallelism across elimination-tree
//!   branches, intra-node parallelism by partitioning a large node across
//!   several accelerator sets, and heterogeneous COMP‖MEM overlap;
//! - [`CostModel`] exposes the same per-node cost estimates to the
//!   RA-ISAM2 selection algorithm (§4.3.3), abstracting the hardware from
//!   the algorithm.
//!
//! The scheduler is a deterministic discrete-event simulation in virtual
//! time — no OS threads — so target-miss statistics are exactly
//! reproducible (DESIGN.md decision 3).
//!
//! # Example
//!
//! ```
//! use supernova_hw::Platform;
//! use supernova_runtime::{simulate_step, SchedulerConfig, StepTrace};
//!
//! let trace = StepTrace::default();
//! let lat = simulate_step(&Platform::supernova(2), &trace, &SchedulerConfig::default());
//! assert_eq!(lat.numeric, 0.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod budget;
mod cost;
mod energy;
pub mod exec;
mod queue;
mod sched;
mod space;
pub mod spans;
mod trace;

pub use budget::StepBudget;
pub use cost::{CostModel, RelinCostModel};
pub use energy::{step_energy, step_energy_ledger, StepEnergy};
pub use exec::{ExecTrace, NodeExec, OpExec, Phase, Unit};
pub use queue::NodeQueue;
pub use sched::{simulate_step, simulate_step_traced, SchedulerConfig, StepLatency};
pub use space::calc_space;
pub use spans::{exec_span, hw_span};
pub use trace::{node_work_from_plan, NodeWork, StepTrace};
