//! Builders that lift the runtime's execution records into
//! `supernova-trace` spans.
//!
//! The records themselves ([`supernova_sparse::HostSchedule`],
//! [`crate::ExecTrace`], [`crate::StepTrace`]) stay
//! the source of truth; these functions are a pure post-hoc projection run
//! once per step by whoever owns the step's
//! [`StepBuilder`](supernova_trace::StepBuilder) — nothing here executes
//! on the hot path, and nothing runs at all when tracing is disabled.

use std::collections::BTreeMap;

use supernova_sparse::HostSchedule;
use supernova_trace::{Category, Span};

use crate::{ExecTrace, StepTrace};

/// Builds the `exec` span for one host plan execution: a wall-clock span
/// over the schedule's makespan with one `exec.task` child per executed
/// task (track = worker index, ticks = the task's deterministic flop
/// count from the step trace).
pub fn exec_span(sched: &HostSchedule, trace: &StepTrace) -> Span {
    let flops: BTreeMap<usize, u64> = trace
        .nodes
        .iter()
        .map(|n| (n.node, n.ops.flops().max(1)))
        .collect();
    let start = sched
        .spans
        .iter()
        .map(|s| s.start)
        .fold(f64::INFINITY, f64::min);
    let end = sched.spans.iter().map(|s| s.end).fold(0.0f64, f64::max);
    let mut span = if sched.spans.is_empty() {
        Span::marker("exec", Category::Exec, 0)
    } else {
        Span::wall(
            "exec",
            Category::Exec,
            sched.origin + start,
            sched.origin + end,
        )
    };
    let mut total = 0u64;
    for t in &sched.spans {
        let ticks = flops.get(&t.node).copied().unwrap_or(1);
        total += ticks;
        let mut child = Span::wall(
            "exec.task",
            Category::Exec,
            sched.origin + t.start,
            sched.origin + t.end,
        );
        child.ticks = ticks;
        child.track = t.worker as u32;
        child.counters.set("node", t.node as u64);
        // Measured (not modeled) flops from the worker's kernel arena —
        // deterministic, a pure function of the task's front shape.
        child.counters.set("kernel_flops", t.kernel_flops);
        span.children.push(child);
    }
    span.ticks = total;
    span.counters.set("workers", sched.workers as u64);
    span.counters.set("tasks", sched.spans.len() as u64);
    span.counters.set("kernel_flops", sched.kernel_flops());
    // Which dispatch strategy sequenced the execution (serial /
    // dep-counted / level-batched) — lets bench_check gate the
    // dispatch-overhead-per-task metric against the mode that produced it.
    span.counters.set("dispatch_mode", sched.mode.as_u64());
    // Numeric precision the workers' kernels ran under (f64 / f32 /
    // mixed) — step artifacts and bench_check gate against the mode that
    // produced the numbers.
    span.counters.set("numeric_mode", sched.numeric.as_u64());
    // How many intra-front sub-units the split pass dispatched (0 = the
    // plan executed at whole-task granularity). Thread-invariant for
    // certified plans: the serial path walks the same sub-unit overlay
    // the batched path claims from.
    span.counters.set("split_mode", sched.split_units as u64);
    span
}

/// Builds the `hw` span for one simulated step: a virtual-time span over
/// the numeric makespan (ticks = modeled cycles at `freq_hz`), with one
/// `hw.unit <UNIT>` child per occupied unit (ticks = busy cycles, so the
/// per-unit busy-bound invariant becomes a child-ticks ≤ parent-ticks
/// check) and one `hw.node` child per scheduled supernode.
pub fn hw_span(exec: &ExecTrace, freq_hz: f64) -> Span {
    let cycles = |seconds: f64| (seconds * freq_hz).round().max(0.0) as u64;
    let mut span = Span::virtual_time(
        "hw",
        Category::Hw,
        0.0,
        exec.makespan,
        cycles(exec.makespan),
    );
    span.counters.set("sets", exec.sets as u64);
    span.counters.set("cpu_tiles", exec.cpu_tiles as u64);
    span.counters.set("llc_bytes", exec.llc_bytes as u64);
    span.counters.set("ops", exec.ops.len() as u64);
    for (ordinal, unit) in exec.units().into_iter().enumerate() {
        let ops: Vec<_> = exec.ops.iter().filter(|o| o.unit == unit).collect();
        let start = ops.iter().map(|o| o.start).fold(f64::INFINITY, f64::min);
        let end = ops.iter().map(|o| o.end).fold(0.0f64, f64::max);
        let mut child = Span::virtual_time(
            &format!("hw.unit {unit}"),
            Category::Hw,
            start,
            end,
            cycles(exec.busy_seconds(unit)),
        );
        child.track = ordinal as u32;
        child.counters.set("ops", ops.len() as u64);
        span.children.push(child);
    }
    for node in &exec.nodes {
        let mut child = Span::virtual_time(
            "hw.node",
            Category::Hw,
            node.start,
            node.end,
            cycles(node.end - node.start),
        );
        child.track = node.node as u32;
        child.counters.set("node", node.node as u64);
        child.counters.set("cpu_tile", node.cpu_tile as u64);
        child.counters.set("sets", node.sets.len() as u64);
        child.counters.set("fits", u64::from(node.fits));
        child.counters.set("space", node.space as u64);
        span.children.push(child);
    }
    span
}
