//! The dynamically adjustable per-step resource budget.
//!
//! RA-ISAM2's whole contribution is that per-step work is a *knob*: the
//! selection of §4.1 fills exactly the time budget it is handed and defers
//! the rest. This module makes that knob first-class so layers above the
//! solver — most importantly the multi-session serving layer — can turn it
//! at runtime: under overload a server tightens every session's budget
//! (fewer relinearized/reordered nodes per step) instead of shedding
//! updates, and widens it again when the queues drain.
//!
//! Degradation is quantized into integer *levels* so policy decisions are
//! reproducible: level `d` scales the effective budget by `2⁻ᵈ`. The level
//! is clamped to [`StepBudget::max_degradation`], below which the budget
//! still covers the mandatory work of a step (the new pose's dirty path),
//! so a degraded session loses relinearization freshness, never updates.

/// A per-step time budget with a quantized degradation knob.
///
/// The *effective* budget handed to the solver is
/// `target_seconds · safety · 2^-degradation`.
///
/// # Example
///
/// ```
/// use supernova_runtime::StepBudget;
///
/// let mut b = StepBudget::new(1.0 / 30.0, 0.8);
/// let full = b.effective_seconds();
/// b.degrade();
/// assert_eq!(b.effective_seconds(), full / 2.0);
/// b.recover();
/// assert_eq!(b.effective_seconds(), full);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepBudget {
    target_seconds: f64,
    safety: f64,
    degradation: u8,
    max_degradation: u8,
}

impl StepBudget {
    /// The default ceiling on degradation levels (a 16× budget cut).
    pub const DEFAULT_MAX_DEGRADATION: u8 = 4;

    /// A budget at degradation level 0.
    ///
    /// # Panics
    ///
    /// Panics unless `target_seconds > 0` and `0 < safety <= 1`.
    pub fn new(target_seconds: f64, safety: f64) -> Self {
        assert!(target_seconds > 0.0, "target must be positive");
        assert!(safety > 0.0 && safety <= 1.0, "safety must be in (0, 1]");
        StepBudget {
            target_seconds,
            safety,
            degradation: 0,
            max_degradation: Self::DEFAULT_MAX_DEGRADATION,
        }
    }

    /// Overrides the degradation ceiling (clamping the current level).
    pub fn with_max_degradation(mut self, max: u8) -> Self {
        self.max_degradation = max;
        self.degradation = self.degradation.min(max);
        self
    }

    /// The undegraded per-step target in seconds.
    pub fn target_seconds(&self) -> f64 {
        self.target_seconds
    }

    /// The safety fraction absorbing cost-model error.
    pub fn safety(&self) -> f64 {
        self.safety
    }

    /// The current degradation level (0 = full budget).
    pub fn degradation(&self) -> u8 {
        self.degradation
    }

    /// The degradation ceiling.
    pub fn max_degradation(&self) -> u8 {
        self.max_degradation
    }

    /// The budget the solver should fill this step:
    /// `target · safety · 2^-degradation`.
    pub fn effective_seconds(&self) -> f64 {
        self.target_seconds * self.safety / f64::from(1u32 << u32::from(self.degradation))
    }

    /// Tightens the budget one level. Returns `false` (and changes
    /// nothing) when already at the ceiling.
    pub fn degrade(&mut self) -> bool {
        if self.degradation >= self.max_degradation {
            return false;
        }
        self.degradation += 1;
        true
    }

    /// Relaxes the budget one level. Returns `false` (and changes nothing)
    /// when already at level 0.
    pub fn recover(&mut self) -> bool {
        if self.degradation == 0 {
            return false;
        }
        self.degradation -= 1;
        true
    }

    /// Jumps straight to `level` (clamped to the ceiling).
    pub fn set_degradation(&mut self, level: u8) {
        self.degradation = level.min(self.max_degradation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_budget_halves_per_level() {
        let mut b = StepBudget::new(0.04, 0.5);
        assert_eq!(b.effective_seconds(), 0.02);
        assert!(b.degrade());
        assert_eq!(b.effective_seconds(), 0.01);
        assert!(b.degrade());
        assert_eq!(b.effective_seconds(), 0.005);
        assert_eq!(b.degradation(), 2);
    }

    #[test]
    fn degrade_and_recover_clamp_at_the_ends() {
        let mut b = StepBudget::new(1.0, 1.0).with_max_degradation(2);
        assert!(!b.recover(), "already at level 0");
        assert!(b.degrade());
        assert!(b.degrade());
        assert!(!b.degrade(), "ceiling is 2");
        assert_eq!(b.degradation(), 2);
        assert!(b.recover());
        assert!(b.recover());
        assert!(!b.recover());
        assert_eq!(b.effective_seconds(), 1.0);
    }

    #[test]
    fn set_degradation_clamps() {
        let mut b = StepBudget::new(1.0, 1.0).with_max_degradation(3);
        b.set_degradation(200);
        assert_eq!(b.degradation(), 3);
        b.set_degradation(1);
        assert_eq!(b.effective_seconds(), 0.5);
    }

    #[test]
    #[should_panic(expected = "safety")]
    fn zero_safety_rejected() {
        let _ = StepBudget::new(1.0, 0.0);
    }
}
