//! The node cost model exposed to the algorithm layer (§4.3.3).

use supernova_hw::Platform;
use supernova_linalg::ops::{Op, OpTrace};

use crate::SchedulerConfig;

/// Cost estimates the RA-ISAM2 selection algorithm queries while deciding
/// which variables to relinearize (Algorithm 1's `ComputeNodeCost`).
///
/// The trait abstracts the hardware layer from the algorithm, exactly as the
/// paper's runtime does: the solver crate depends only on this interface.
/// Implementations must be thread-safe: the serving layer moves engines
/// (which hold an `Arc<dyn RelinCostModel>`) across its worker pool.
pub trait RelinCostModel: Send + Sync {
    /// Predicted seconds to recompute a supernode with the given scalar
    /// front dimensions and staged factor bytes, on this platform with its
    /// current accelerator resources.
    fn predict_node_seconds(&self, pivot_dim: usize, rem_dim: usize, factor_bytes: usize) -> f64;

    /// Predicted seconds to relinearize `factors` factors totalling
    /// `jacobian_elems` Jacobian elements.
    fn relin_seconds(&self, jacobian_elems: usize, factors: usize) -> f64;

    /// Predicted seconds of symbolic re-analysis over `pattern_elems`
    /// entries.
    fn symbolic_seconds(&self, pattern_elems: usize) -> f64;

    /// Predicted seconds of triangular solves over a factor with
    /// `l_nnz_scalars` stored nonzeros.
    fn solve_seconds(&self, l_nnz_scalars: usize) -> f64;
}

/// The concrete cost model over a [`Platform`](supernova_hw::Platform),
/// consistent with the
/// [`simulate_step`](crate::simulate_step) scheduler: the same op-level
/// prices, discounted by the expected multi-set speedup.
#[derive(Clone, Debug)]
pub struct CostModel {
    platform: Platform,
    cfg: SchedulerConfig,
}

impl CostModel {
    /// Builds a cost model for `platform` with the default scheduler
    /// configuration.
    pub fn new(platform: Platform) -> Self {
        Self::with_config(platform, SchedulerConfig::default())
    }

    /// Builds a cost model with an explicit scheduler configuration.
    pub fn with_config(platform: Platform, cfg: SchedulerConfig) -> Self {
        CostModel { platform, cfg }
    }

    /// The modeled platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Effective parallel speedup the selection algorithm assumes across the
    /// platform's accelerator sets (conservative Amdahl-style discount; the
    /// scheduler realizes roughly this much on branchy trees).
    fn effective_sets(&self) -> f64 {
        let sets = self.platform.accel_sets();
        if sets <= 1 || !self.cfg.inter_node {
            1.0
        } else {
            1.0 + 0.7 * (sets as f64 - 1.0)
        }
    }

    /// Serial time of `ops` on one accelerator set (or the host CPU for
    /// non-accelerated platforms).
    fn serial_ops_time(&self, ops: &OpTrace, fits: bool) -> f64 {
        let mut comp_t = 0.0;
        let mut mem_ops = Vec::new();
        if self.platform.is_accelerated() {
            // lint: allow(unwrap) — cost model is only built for accelerated platforms
            let comp = self.platform.comp().expect("accelerated");
            for op in ops.ops() {
                if op.is_memory() && self.platform.has_mem_accel() {
                    mem_ops.push(*op);
                } else if let Some(t) = comp.op_time(op, fits) {
                    comp_t += t;
                } else {
                    comp_t += self.platform.host().op_time(op, fits);
                }
            }
            let mem_t = self
                .platform
                .mem()
                .map(|m| m.batch_time(&mem_ops, fits))
                .unwrap_or(0.0);
            if self.cfg.hetero_overlap && self.platform.has_mem_accel() {
                comp_t.max(mem_t) + 0.07 * comp_t.min(mem_t)
            } else {
                comp_t + mem_t
            }
        } else {
            ops.ops()
                .iter()
                .map(|op| self.platform.numeric_engine().op_time_ctx(op, fits))
                .sum()
        }
    }
}

impl RelinCostModel for CostModel {
    fn predict_node_seconds(&self, pivot_dim: usize, rem_dim: usize, factor_bytes: usize) -> f64 {
        let ops = node_ops_profile(pivot_dim, rem_dim, factor_bytes);
        let fits = (pivot_dim + rem_dim).pow(2) * 4 <= self.platform.cache_bytes();
        self.serial_ops_time(&ops, fits) / self.effective_sets()
    }

    fn relin_seconds(&self, jacobian_elems: usize, factors: usize) -> f64 {
        self.platform.relin_time(jacobian_elems, factors)
    }

    fn symbolic_seconds(&self, pattern_elems: usize) -> f64 {
        self.platform.symbolic_time(pattern_elems)
    }

    fn solve_seconds(&self, l_nnz_scalars: usize) -> f64 {
        // Two triangular sweeps over the stored factor; sequential chain.
        let op = Op::Gemv {
            m: 1,
            n: 2 * l_nnz_scalars,
        };
        self.serial_ops_time(&[op].into_iter().collect(), true)
    }
}

/// The synthetic op profile of recomputing one supernode — the model the
/// runtime exposes for cost prediction before the node is actually executed
/// (front reset, factor staging and scatter, the three factorization steps,
/// and the column store).
pub(crate) fn node_ops_profile(pivot_dim: usize, rem_dim: usize, factor_bytes: usize) -> OpTrace {
    let m = pivot_dim;
    let n = rem_dim;
    let t = m + n;
    let mut ops = OpTrace::new();
    ops.push(Op::Memset { bytes: t * t * 4 });
    if factor_bytes > 0 {
        let elems = factor_bytes / 4;
        ops.push(Op::Memcpy {
            bytes: factor_bytes,
        });
        ops.push(Op::ScatterAdd {
            blocks: (elems / 36).max(1),
            elems,
        });
    }
    if n > 0 {
        // Children extend-add is roughly one full update-matrix scatter.
        let elems = n * (n + 1) / 2;
        ops.push(Op::Memcpy { bytes: elems * 4 });
        ops.push(Op::ScatterAdd {
            blocks: (elems / 36).max(1),
            elems,
        });
    }
    ops.push(Op::Chol { n: m });
    if n > 0 {
        ops.push(Op::Trsm { m: n, n: m });
        ops.push(Op::Syrk { n, k: m });
    }
    ops.push(Op::Memcpy { bytes: t * m * 4 });
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_scales_with_node_size() {
        let cm = CostModel::new(Platform::supernova(2));
        let small = cm.predict_node_seconds(12, 12, 500);
        let large = cm.predict_node_seconds(96, 96, 5000);
        assert!(large > 10.0 * small);
    }

    #[test]
    fn more_sets_predict_cheaper_nodes() {
        let one = CostModel::new(Platform::supernova(1)).predict_node_seconds(48, 48, 2000);
        let four = CostModel::new(Platform::supernova(4)).predict_node_seconds(48, 48, 2000);
        assert!(four < one);
    }

    #[test]
    fn cpu_cost_model_prices_higher_than_accelerated() {
        let cpu = CostModel::new(Platform::server_cpu());
        let sn = CostModel::new(Platform::supernova(2));
        // Large dense node: the accelerator should win.
        assert!(sn.predict_node_seconds(96, 96, 4000) < cpu.predict_node_seconds(96, 96, 4000));
    }

    #[test]
    fn nonnumeric_estimates_positive() {
        let cm = CostModel::new(Platform::supernova(2));
        assert!(cm.relin_seconds(100, 5) > 0.0);
        assert!(cm.symbolic_seconds(100) > 0.0);
        assert!(cm.solve_seconds(1000) > 0.0);
    }
}
