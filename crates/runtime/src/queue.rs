//! The supernode ready queue (§4.3.1).

/// Dependency-tracking ready queue over this step's recomputed supernodes.
///
/// A node becomes *ready* once all of its recomputed children have been
/// merged in (Algorithm 2's `ChildrenDone`). The queue exposes ready nodes
/// in ascending id order, which for the solvers' postorder labeling means
/// leaves first — the order that maximizes inter-node parallelism.
///
/// # Example
///
/// ```
/// use supernova_runtime::NodeQueue;
///
/// // Two leaves (0, 1) feeding a root (2).
/// let mut q = NodeQueue::new(&[(0, Some(2)), (1, Some(2)), (2, None)]);
/// assert_eq!(q.ready(), &[0, 1]);
/// q.take(0);
/// q.complete(0);
/// assert_eq!(q.ready(), &[1]);
/// q.take(1);
/// q.complete(1);
/// assert_eq!(q.ready(), &[2]);
/// ```
#[derive(Clone, Debug)]
pub struct NodeQueue {
    /// Remaining unfinished children per slot (indexed by position).
    pending_children: Vec<usize>,
    parent_slot: Vec<Option<usize>>,
    ids: Vec<usize>,
    slot_of_id: std::collections::BTreeMap<usize, usize>,
    ready: Vec<usize>,
    taken: Vec<bool>,
    done: Vec<bool>,
}

impl NodeQueue {
    /// Builds the queue from `(node_id, parent_id)` pairs; `parent_id` must
    /// reference another listed node or be `None`.
    ///
    /// # Panics
    ///
    /// Panics if a parent id is not in the list.
    pub fn new(nodes: &[(usize, Option<usize>)]) -> Self {
        let ids: Vec<usize> = nodes.iter().map(|&(id, _)| id).collect();
        let slot_of_id: std::collections::BTreeMap<usize, usize> =
            ids.iter().enumerate().map(|(s, &id)| (id, s)).collect();
        let parent_slot: Vec<Option<usize>> = nodes
            .iter()
            .map(|&(_, p)| p.map(|pid| *slot_of_id.get(&pid).expect("parent listed"))) // lint: allow(unwrap)
            .collect();
        let mut pending_children = vec![0usize; nodes.len()];
        for p in parent_slot.iter().flatten() {
            pending_children[*p] += 1;
        }
        let mut ready: Vec<usize> = (0..nodes.len())
            .filter(|&s| pending_children[s] == 0)
            .map(|s| ids[s])
            .collect();
        ready.sort_unstable();
        NodeQueue {
            pending_children,
            parent_slot,
            taken: vec![false; nodes.len()],
            done: vec![false; nodes.len()],
            ids,
            slot_of_id,
            ready,
        }
    }

    /// Node ids currently ready (ascending), excluding taken ones.
    pub fn ready(&self) -> &[usize] {
        &self.ready
    }

    /// Marks a ready node as claimed by a worker.
    ///
    /// # Panics
    ///
    /// Panics if the node is not currently ready.
    pub fn take(&mut self, id: usize) {
        // lint: allow(unwrap) — panic documented in the method contract
        let pos = self
            .ready
            .iter()
            .position(|&r| r == id)
            .expect("node must be ready"); // lint: allow(unwrap)
        self.ready.remove(pos);
        self.taken[self.slot_of_id[&id]] = true;
    }

    /// Marks a taken node complete, possibly making its parent ready.
    ///
    /// # Panics
    ///
    /// Panics if the node was not taken or is already complete.
    pub fn complete(&mut self, id: usize) {
        let slot = self.slot_of_id[&id];
        assert!(
            self.taken[slot] && !self.done[slot],
            "complete() on node not in flight"
        );
        self.done[slot] = true;
        if let Some(p) = self.parent_slot[slot] {
            self.pending_children[p] -= 1;
            if self.pending_children[p] == 0 {
                let pid = self.ids[p];
                let pos = self.ready.binary_search(&pid).unwrap_err();
                self.ready.insert(pos, pid);
            }
        }
    }

    /// `true` when every node has completed.
    pub fn all_done(&self) -> bool {
        self.done.iter().all(|&d| d)
    }

    /// Number of nodes not yet completed.
    pub fn remaining(&self) -> usize {
        self.done.iter().filter(|&&d| !d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_dependencies_resolve_in_order() {
        // 0,1 -> 2 ; 3 -> 4 ; 2,4 -> 5
        let q0 = [
            (0, Some(2)),
            (1, Some(2)),
            (2, Some(5)),
            (3, Some(4)),
            (4, Some(5)),
            (5, None),
        ];
        let mut q = NodeQueue::new(&q0);
        assert_eq!(q.ready(), &[0, 1, 3]);
        for id in [0, 1, 3] {
            q.take(id);
            q.complete(id);
        }
        assert_eq!(q.ready(), &[2, 4]);
        q.take(2);
        q.take(4);
        assert!(q.ready().is_empty());
        q.complete(2);
        q.complete(4);
        assert_eq!(q.ready(), &[5]);
        q.take(5);
        q.complete(5);
        assert!(q.all_done());
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "must be ready")]
    fn taking_blocked_node_panics() {
        let mut q = NodeQueue::new(&[(0, Some(1)), (1, None)]);
        q.take(1);
    }

    #[test]
    fn single_node_graph() {
        let mut q = NodeQueue::new(&[(7, None)]);
        assert_eq!(q.ready(), &[7]);
        q.take(7);
        q.complete(7);
        assert!(q.all_done());
    }
}
