//! The solver → runtime interchange format.

use supernova_linalg::ops::OpTrace;
use supernova_sparse::{ExecutionPlan, RefactorStats};

/// The work to recompute one supernode in a step.
#[derive(Clone, Debug, Default)]
pub struct NodeWork {
    /// Supernode id (stable within the step).
    pub node: usize,
    /// Parent supernode, when the parent is also recomputed this step.
    /// (The ancestor closure guarantees the parent of any recomputed node is
    /// recomputed, so `None` marks the roots of this step's forest.)
    pub parent: Option<usize>,
    /// Primitive operations, in execution order.
    pub ops: OpTrace,
    /// Scalar pivot dimension `m` of the front.
    pub pivot_dim: usize,
    /// Scalar remainder dimension `n` of the front.
    pub rem_dim: usize,
    /// Bytes of factor data assembled into this node (the `H` term of
    /// Algorithm 2's `calc_space`).
    pub factor_bytes: usize,
}

impl NodeWork {
    /// Scalar dimension of the square frontal workspace.
    pub fn front_dim(&self) -> usize {
        self.pivot_dim + self.rem_dim
    }

    /// Bytes of the frontal workspace (FP32 datapath).
    pub fn front_bytes(&self) -> usize {
        self.front_dim() * self.front_dim() * 4
    }
}

/// Builds a step's recomputed-node work list from the execution plan that
/// produced it — the plan is the single source of truth shared by the host
/// executor and this simulator, so dimensions, parents and op traces cannot
/// drift apart. `factor_bytes[node]` is the assembled-Hessian byte count
/// per supernode (Algorithm 2's `H` term); stats traces arrive in
/// children-before-parents plan postorder and that order is preserved.
pub fn node_work_from_plan(
    plan: &ExecutionPlan,
    stats: &RefactorStats,
    factor_bytes: &[usize],
) -> Vec<NodeWork> {
    let mut recomputed = vec![false; plan.num_tasks()];
    for nt in &stats.recomputed {
        recomputed[nt.node] = true;
    }
    stats
        .recomputed
        .iter()
        .map(|nt| {
            let task = &plan.tasks()[nt.node];
            NodeWork {
                node: nt.node,
                parent: task.parent.filter(|&p| recomputed[p]),
                ops: nt.ops.clone(),
                pivot_dim: task.pivot_dim,
                rem_dim: task.rem_dim,
                factor_bytes: factor_bytes[nt.node],
            }
        })
        .collect()
}

/// Everything one SLAM backend step did, for pricing on a platform model.
///
/// Produced by the incremental solvers; consumed by
/// [`simulate_step`](crate::simulate_step). `nodes` is ordered children
/// before parents (the solver's postorder).
#[derive(Clone, Debug, Default)]
pub struct StepTrace {
    /// Recomputed supernodes, children before parents.
    pub nodes: Vec<NodeWork>,
    /// Eager Hessian-construction operations (small `JᵀJ` GEMMs and their
    /// scatter-adds); independent of each other, scheduled before the tree.
    pub hessian_ops: OpTrace,
    /// Forward/backward supernodal solve operations (a sequential dependency
    /// chain over the whole tree).
    pub solve_ops: OpTrace,
    /// Jacobian elements recomputed by relinearization (host CPU work).
    pub relin_jacobian_elems: usize,
    /// Number of factors relinearized.
    pub relin_factors: usize,
    /// Pattern entries re-analyzed by symbolic factorization (host CPU
    /// work, proportional to the affected subtree).
    pub symbolic_pattern_elems: usize,
    /// Elimination-tree nodes visited by the RA-ISAM2 selection algorithm
    /// (Algorithm 1); zero for non-resource-aware solvers.
    pub selection_nodes_visited: usize,
}

impl StepTrace {
    /// Total flops across all numeric operations in the step.
    pub fn numeric_flops(&self) -> u64 {
        self.nodes.iter().map(|n| n.ops.flops()).sum::<u64>()
            + self.hessian_ops.flops()
            + self.solve_ops.flops()
    }

    /// `true` when the step did no numeric work.
    pub fn is_numeric_empty(&self) -> bool {
        self.nodes.is_empty() && self.hessian_ops.is_empty() && self.solve_ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supernova_linalg::ops::Op;

    #[test]
    fn front_bytes_fp32() {
        let w = NodeWork {
            pivot_dim: 6,
            rem_dim: 10,
            ..NodeWork::default()
        };
        assert_eq!(w.front_dim(), 16);
        assert_eq!(w.front_bytes(), 16 * 16 * 4);
    }

    #[test]
    fn flops_aggregate() {
        let mut t = StepTrace::default();
        assert!(t.is_numeric_empty());
        t.hessian_ops.push(Op::Gemm { m: 2, n: 2, k: 2 });
        t.solve_ops.push(Op::Gemv { m: 2, n: 2 });
        let mut w = NodeWork::default();
        w.ops.push(Op::Chol { n: 4 });
        t.nodes.push(w);
        assert!(!t.is_numeric_empty());
        assert_eq!(
            t.numeric_flops(),
            Op::Gemm { m: 2, n: 2, k: 2 }.flops()
                + Op::Gemv { m: 2, n: 2 }.flops()
                + Op::Chol { n: 4 }.flops()
        );
    }
}
