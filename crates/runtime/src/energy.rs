//! Per-step energy accounting — the §7 energy-aware extension.

use supernova_hw::{EnergyModel, Platform};

use crate::{StepLatency, StepTrace};

/// Energy of one backend step on `platform`, in joules: the dynamic energy
/// of every recorded operation plus the platform's static draw over the
/// step's (priced) busy time.
///
/// This is the quantity an energy-aware RA-ISAM2 would budget instead of —
/// or alongside — wall-clock time; see `repro energy` for the resulting
/// platform comparison.
///
/// # Example
///
/// ```
/// use supernova_hw::Platform;
/// use supernova_runtime::{simulate_step, step_energy, SchedulerConfig, StepTrace};
///
/// let trace = StepTrace::default();
/// let lat = simulate_step(&Platform::supernova(2), &trace, &SchedulerConfig::default());
/// assert_eq!(step_energy(&Platform::supernova(2), &trace, &lat), 0.0);
/// ```
pub fn step_energy(platform: &Platform, trace: &StepTrace, latency: &StepLatency) -> f64 {
    if trace.is_numeric_empty() && latency.total() == 0.0 {
        return 0.0;
    }
    let model = EnergyModel::of(platform);
    let mut dynamic = 0.0;
    for op in trace.hessian_ops.ops() {
        dynamic += model.op_joules(op);
    }
    for node in &trace.nodes {
        for op in node.ops.ops() {
            dynamic += model.op_joules(op);
        }
    }
    for op in trace.solve_ops.ops() {
        dynamic += model.op_joules(op);
    }
    model.total_joules(dynamic, latency.total())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_step, NodeWork, SchedulerConfig};
    use supernova_linalg::ops::Op;

    fn trace() -> StepTrace {
        let mut w = NodeWork { node: 0, pivot_dim: 48, rem_dim: 48, ..NodeWork::default() };
        w.ops.push(Op::Chol { n: 48 });
        w.ops.push(Op::Syrk { n: 48, k: 48 });
        w.ops.push(Op::Memset { bytes: 96 * 96 * 4 });
        StepTrace { nodes: vec![w], ..StepTrace::default() }
    }

    #[test]
    fn accelerator_uses_less_energy_than_server_cpu() {
        let t = trace();
        let cfg = SchedulerConfig::default();
        let sn = Platform::supernova(2);
        let server = Platform::server_cpu();
        let e_sn = step_energy(&sn, &t, &simulate_step(&sn, &t, &cfg));
        let e_srv = step_energy(&server, &t, &simulate_step(&server, &t, &cfg));
        assert!(e_sn < e_srv, "supernova {e_sn} J !< server {e_srv} J");
    }

    #[test]
    fn energy_scales_with_work() {
        let cfg = SchedulerConfig::default();
        let sn = Platform::supernova(2);
        let small = trace();
        let mut big = trace();
        for i in 1..=10 {
            let mut w = big.nodes[0].clone();
            w.node = i;
            big.nodes.push(w);
        }
        let e_small = step_energy(&sn, &small, &simulate_step(&sn, &small, &cfg));
        let e_big = step_energy(&sn, &big, &simulate_step(&sn, &big, &cfg));
        assert!(e_big > e_small);
    }
}
