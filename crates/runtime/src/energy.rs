//! Per-step energy accounting — the §7 energy-aware extension.

use supernova_hw::{EnergyLedger, EnergyModel, Platform};

use crate::{StepLatency, StepTrace};

/// Itemized per-step energy: the dynamic joules of every op charged into a
/// per-class [`EnergyLedger`], plus the platform's static draw over the
/// step.
///
/// The ledger is the auditable form of [`step_energy`]: its
/// [`total`](EnergyLedger::total) must equal the sum of per-op joules (the
/// conservation invariant `supernova-analyze` checks), and
/// `ledger.total() + static_joules` equals the scalar `step_energy`
/// returns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepEnergy {
    /// Dynamic energy itemized per operation class.
    pub ledger: EnergyLedger,
    /// Static/leakage energy over the step's wall time, in joules.
    pub static_joules: f64,
}

impl StepEnergy {
    /// Total step energy in joules (dynamic + static).
    pub fn total(&self) -> f64 {
        self.ledger.total() + self.static_joules
    }
}

/// Energy of one backend step on `platform`, in joules: the dynamic energy
/// of every recorded operation plus the platform's static draw over the
/// step's (priced) busy time.
///
/// This is the quantity an energy-aware RA-ISAM2 would budget instead of —
/// or alongside — wall-clock time; see `repro energy` for the resulting
/// platform comparison.
///
/// # Example
///
/// ```
/// use supernova_hw::Platform;
/// use supernova_runtime::{simulate_step, step_energy, SchedulerConfig, StepTrace};
///
/// let trace = StepTrace::default();
/// let lat = simulate_step(&Platform::supernova(2), &trace, &SchedulerConfig::default());
/// assert_eq!(step_energy(&Platform::supernova(2), &trace, &lat), 0.0);
/// ```
pub fn step_energy(platform: &Platform, trace: &StepTrace, latency: &StepLatency) -> f64 {
    step_energy_ledger(platform, trace, latency).total()
}

/// Like [`step_energy`], but returns the itemized [`StepEnergy`] instead of
/// the collapsed scalar: per-class dynamic joules plus the static draw.
pub fn step_energy_ledger(
    platform: &Platform,
    trace: &StepTrace,
    latency: &StepLatency,
) -> StepEnergy {
    if trace.is_numeric_empty() && latency.total() == 0.0 {
        return StepEnergy::default();
    }
    let model = EnergyModel::of(platform);
    let mut ledger = EnergyLedger::new();
    for op in trace.hessian_ops.ops() {
        ledger.add(op, model.op_joules(op));
    }
    for node in &trace.nodes {
        for op in node.ops.ops() {
            ledger.add(op, model.op_joules(op));
        }
    }
    for op in trace.solve_ops.ops() {
        ledger.add(op, model.op_joules(op));
    }
    StepEnergy {
        ledger,
        static_joules: model.static_watts * latency.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_step, NodeWork, SchedulerConfig};
    use supernova_linalg::ops::Op;

    fn trace() -> StepTrace {
        let mut w = NodeWork {
            node: 0,
            pivot_dim: 48,
            rem_dim: 48,
            ..NodeWork::default()
        };
        w.ops.push(Op::Chol { n: 48 });
        w.ops.push(Op::Syrk { n: 48, k: 48 });
        w.ops.push(Op::Memset { bytes: 96 * 96 * 4 });
        StepTrace {
            nodes: vec![w],
            ..StepTrace::default()
        }
    }

    #[test]
    fn accelerator_uses_less_energy_than_server_cpu() {
        let t = trace();
        let cfg = SchedulerConfig::default();
        let sn = Platform::supernova(2);
        let server = Platform::server_cpu();
        let e_sn = step_energy(&sn, &t, &simulate_step(&sn, &t, &cfg));
        let e_srv = step_energy(&server, &t, &simulate_step(&server, &t, &cfg));
        assert!(e_sn < e_srv, "supernova {e_sn} J !< server {e_srv} J");
    }

    #[test]
    fn energy_scales_with_work() {
        let cfg = SchedulerConfig::default();
        let sn = Platform::supernova(2);
        let small = trace();
        let mut big = trace();
        for i in 1..=10 {
            let mut w = big.nodes[0].clone();
            w.node = i;
            big.nodes.push(w);
        }
        let e_small = step_energy(&sn, &small, &simulate_step(&sn, &small, &cfg));
        let e_big = step_energy(&sn, &big, &simulate_step(&sn, &big, &cfg));
        assert!(e_big > e_small);
    }

    #[test]
    fn ledger_totals_match_scalar_energy() {
        let t = trace();
        let cfg = SchedulerConfig::default();
        for p in [
            Platform::supernova(2),
            Platform::boom(),
            Platform::embedded_gpu(),
        ] {
            let lat = simulate_step(&p, &t, &cfg);
            let itemized = step_energy_ledger(&p, &t, &lat);
            let scalar = step_energy(&p, &t, &lat);
            assert!(
                (itemized.total() - scalar).abs() <= 1e-12 * scalar.max(1.0),
                "{}: {} != {}",
                p.name(),
                itemized.total(),
                scalar
            );
            assert_eq!(itemized.ledger.num_ops(), 3, "{}", p.name());
        }
    }
}
