//! The executed schedule of one step — unit assignments and per-op
//! start/end timestamps.
//!
//! [`simulate_step`](crate::simulate_step) returns only the priced
//! [`StepLatency`](crate::StepLatency);
//! [`simulate_step_traced`](crate::simulate_step_traced) additionally
//! returns an [`ExecTrace`]: which COMP/MEM/CPU unit every operation ran
//! on and when. The trace exists so the schedule can be *checked* — the
//! `supernova-analyze` crate validates happens-before legality, per-unit
//! exclusivity, LLC capacity and ledger conservation against it — rather
//! than trusting the scheduler.

use supernova_linalg::ops::Op;

/// A hardware unit of the modeled SoC, identified by tile index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Unit {
    /// COMP accelerator tile of accelerator set `0`-based index.
    Comp(usize),
    /// MEM DMA tile of accelerator set `0`-based index.
    Mem(usize),
    /// Controller CPU tile (also the serial engine of non-accelerated
    /// platforms, always tile 0 there).
    Cpu(usize),
}

impl std::fmt::Display for Unit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unit::Comp(i) => write!(f, "COMP{i}"),
            Unit::Mem(i) => write!(f, "MEM{i}"),
            Unit::Cpu(i) => write!(f, "CPU{i}"),
        }
    }
}

/// Which part of the step an executed op belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Eager Hessian construction (independent small ops before the tree).
    Hessian,
    /// Elimination-tree factorization (the Algorithm 2 event loop).
    Tree,
    /// Forward/backward supernodal solves (sequential chain).
    Solve,
}

/// One operation's executed interval on one unit.
///
/// An op partitioned across `k` accelerator sets (intra-node parallelism)
/// is recorded once per occupied unit with the same interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpExec {
    /// The supernode this op belongs to; `None` for Hessian/solve ops.
    pub node: Option<usize>,
    /// Step phase.
    pub phase: Phase,
    /// The priced operation.
    pub op: Op,
    /// The unit the op (or this op's share) ran on.
    pub unit: Unit,
    /// Virtual-time start, seconds from the start of the numeric phase.
    pub start: f64,
    /// Virtual-time end, seconds.
    pub end: f64,
}

/// One supernode's executed interval and resource grant.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeExec {
    /// Supernode id (matches `NodeWork::node`).
    pub node: usize,
    /// Accelerator-set ids granted to this node (empty on serial
    /// platforms).
    pub sets: Vec<usize>,
    /// Controller CPU tile driving the node.
    pub cpu_tile: usize,
    /// Virtual-time start, seconds.
    pub start: f64,
    /// Virtual-time end, seconds.
    pub end: f64,
    /// LLC bytes reserved for the node (its `calc_space`); zero when the
    /// node was admitted oversized at DRAM-rate pricing.
    pub space: usize,
    /// Whether the working set was priced as LLC-resident.
    pub fits: bool,
}

/// The full executed schedule of one step's numeric phase.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecTrace {
    /// Per-op unit assignments and intervals.
    pub ops: Vec<OpExec>,
    /// Per-node intervals and resource grants.
    pub nodes: Vec<NodeExec>,
    /// End-to-end numeric makespan in seconds (equals
    /// `StepLatency::numeric`).
    pub makespan: f64,
    /// Accelerator sets on the priced platform (0 for serial platforms).
    pub sets: usize,
    /// Scheduler worker threads (CPU tiles) available to the event loop.
    pub cpu_tiles: usize,
    /// Capacity of the shared LLC the admission check guards, in bytes.
    pub llc_bytes: usize,
}

impl ExecTrace {
    /// Busy seconds accumulated on `unit` across all recorded ops.
    pub fn busy_seconds(&self, unit: Unit) -> f64 {
        self.ops
            .iter()
            .filter(|o| o.unit == unit)
            .map(|o| o.end - o.start)
            .sum()
    }

    /// All units that appear in the trace, sorted and deduplicated.
    pub fn units(&self) -> Vec<Unit> {
        let mut u: Vec<Unit> = self.ops.iter().map(|o| o.unit).collect();
        u.sort_unstable();
        u.dedup();
        u
    }
}

/// Sink for schedule events. The scheduler is generic over this so the
/// untraced path ([`simulate_step`](crate::simulate_step)) pays no
/// recording cost — `NoRecord` compiles to nothing.
pub(crate) trait Recorder {
    /// Whether op-level recording is live (lets callers skip layout work).
    fn enabled(&self) -> bool;
    /// Records one op interval.
    fn op(&mut self, rec: OpExec);
    /// Records one node interval.
    fn node(&mut self, rec: NodeExec);
}

/// The zero-cost recorder used by the untraced scheduling path.
pub(crate) struct NoRecord;

impl Recorder for NoRecord {
    fn enabled(&self) -> bool {
        false
    }
    fn op(&mut self, _: OpExec) {}
    fn node(&mut self, _: NodeExec) {}
}

impl Recorder for ExecTrace {
    fn enabled(&self) -> bool {
        true
    }
    fn op(&mut self, rec: OpExec) {
        self.ops.push(rec);
    }
    fn node(&mut self, rec: NodeExec) {
        self.nodes.push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_seconds_sums_per_unit() {
        let mut t = ExecTrace::default();
        let op = Op::Chol { n: 4 };
        t.ops.push(OpExec {
            node: Some(0),
            phase: Phase::Tree,
            op,
            unit: Unit::Comp(0),
            start: 0.0,
            end: 2.0,
        });
        t.ops.push(OpExec {
            node: Some(1),
            phase: Phase::Tree,
            op,
            unit: Unit::Comp(0),
            start: 3.0,
            end: 4.0,
        });
        t.ops.push(OpExec {
            node: Some(1),
            phase: Phase::Tree,
            op,
            unit: Unit::Mem(1),
            start: 0.0,
            end: 1.0,
        });
        assert_eq!(t.busy_seconds(Unit::Comp(0)), 3.0);
        assert_eq!(t.busy_seconds(Unit::Mem(1)), 1.0);
        assert_eq!(t.units(), vec![Unit::Comp(0), Unit::Mem(1)]);
    }

    #[test]
    fn unit_display_names() {
        assert_eq!(Unit::Comp(0).to_string(), "COMP0");
        assert_eq!(Unit::Mem(2).to_string(), "MEM2");
        assert_eq!(Unit::Cpu(1).to_string(), "CPU1");
    }
}
