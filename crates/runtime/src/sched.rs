//! The virtual-time step scheduler (Algorithm 2 and §4.3.1–4.3.2).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use supernova_hw::Platform;
use supernova_linalg::ops::Op;

use crate::{calc_space, NodeQueue, NodeWork, StepTrace};

/// Which runtime parallelism optimizations are enabled (the Figure 9
/// ablation axes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Overlap MEM (DMA) operations with independent COMP operations of the
    /// same node (§4.3.2 heterogeneous orchestration).
    pub hetero_overlap: bool,
    /// Process independent elimination-tree branches on different
    /// accelerator sets (§4.3.1 inter-node parallelism).
    pub inter_node: bool,
    /// Partition one large node's operations across multiple idle sets
    /// (§4.3.1 intra-node parallelism, used near the root).
    pub intra_node: bool,
}

impl SchedulerConfig {
    /// Everything disabled: single thread, single set, serial COMP+MEM.
    pub fn serial() -> Self {
        SchedulerConfig { hetero_overlap: false, inter_node: false, intra_node: false }
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { hetero_overlap: true, inter_node: true, intra_node: true }
    }
}

/// Per-step latency, broken down the way Figure 11 reports it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepLatency {
    /// Relinearization (host CPU Jacobian recomputation).
    pub relin: f64,
    /// Symbolic re-analysis of the affected subtree (host CPU).
    pub symbolic: f64,
    /// Numeric work: Hessian construction, factorization, solves.
    pub numeric: f64,
    /// RA-ISAM2 selection-algorithm overhead (zero for baselines).
    pub overhead: f64,
}

impl StepLatency {
    /// End-to-end backend latency for the step.
    pub fn total(&self) -> f64 {
        self.relin + self.symbolic + self.numeric + self.overhead
    }
}

/// Seconds the RA selection algorithm spends per visited tree node on the
/// host CPU (two pointer-chasing visits per node, Algorithm 1).
const SELECTION_CYCLES_PER_NODE: f64 = 55.0;

/// Serial residue of a node when COMP and MEM overlap: the fraction of the
/// shorter stream that cannot be hidden (dependent prefix/suffix).
const OVERLAP_RESIDUE: f64 = 0.07;

/// Parallel efficiency when fanning independent work across sets.
const FAN_OUT_EFFICIENCY: f64 = 0.85;

/// Prices a full backend step on `platform`.
///
/// Accelerated platforms (SuperNoVA, Spatula) run the virtual-time
/// Algorithm 2 scheduler; serial platforms price the trace in order; the
/// GPU adds its per-step transfer overhead.
pub fn simulate_step(platform: &Platform, trace: &StepTrace, cfg: &SchedulerConfig) -> StepLatency {
    let relin = platform.relin_time(trace.relin_jacobian_elems, trace.relin_factors);
    let symbolic = platform.symbolic_time(trace.symbolic_pattern_elems);
    let overhead = trace.selection_nodes_visited as f64 * SELECTION_CYCLES_PER_NODE
        / platform.host().freq_hz;
    let numeric = if platform.is_accelerated() {
        accelerated_numeric(platform, trace, cfg)
    } else {
        serial_numeric(platform, trace)
    };
    StepLatency { relin, symbolic, numeric, overhead }
}

/// Serial pricing for CPU/DSP/GPU platforms.
fn serial_numeric(platform: &Platform, trace: &StepTrace) -> f64 {
    let engine = platform.numeric_engine();
    let mut t = if trace.is_numeric_empty() { 0.0 } else { platform.step_overhead() };
    for op in trace.hessian_ops.ops() {
        t += engine.op_time(op);
    }
    for work in &trace.nodes {
        let fits = work.front_bytes() <= platform.cache_bytes();
        for op in work.ops.ops() {
            t += engine.op_time_ctx(op, fits);
        }
    }
    for op in trace.solve_ops.ops() {
        t += engine.op_time(op);
    }
    t
}

/// Duration of one node on `k` accelerator sets of `platform`.
///
/// Returns the node's wall time. COMP-mappable ops parallelize across sets
/// with per-class parallel fractions (Amdahl); MEM ops run on the sets' MEM
/// tiles and overlap with COMP when heterogeneous orchestration is on.
/// Platforms without MEM/SIU (Spatula) execute those portions on the
/// controller CPU, serially with the accelerator.
fn node_duration(platform: &Platform, work: &NodeWork, k: usize, fits: bool, cfg: &SchedulerConfig) -> f64 {
    let comp = platform.comp().expect("accelerated platform");
    let kf = k.max(1) as f64;
    let mut comp_t = 0.0;
    let mut cpu_t = 0.0;
    let mut mem_ops: Vec<Op> = Vec::new();
    for op in work.ops.ops() {
        if op.is_memory() {
            if platform.has_mem_accel() {
                mem_ops.push(*op);
            } else {
                cpu_t += platform.host().op_time(op, fits);
            }
            continue;
        }
        match comp.op_time(op, fits) {
            Some(t1) => {
                // Per-class parallel fraction for intra-node partitioning.
                let f = match op {
                    Op::Gemm { .. } | Op::Syrk { .. } => 0.95,
                    Op::ScatterAdd { .. } => 0.80,
                    Op::Trsm { .. } => 0.60,
                    Op::Gemv { .. } => 0.50,
                    Op::Chol { .. } => 0.25,
                    _ => 0.0,
                };
                comp_t += t1 * (f / kf + (1.0 - f));
            }
            None => cpu_t += platform.host().op_time(op, fits), // no SIU
        }
    }
    let mem_t = platform
        .mem()
        .map(|m| m.batch_time(&mem_ops, fits) / kf)
        .unwrap_or(0.0);
    if cfg.hetero_overlap && platform.has_mem_accel() {
        comp_t.max(mem_t) + OVERLAP_RESIDUE * comp_t.min(mem_t) + cpu_t
    } else {
        comp_t + mem_t + cpu_t
    }
}

/// The Algorithm 2 discrete-event scheduler over the step's node forest.
fn accelerated_numeric(platform: &Platform, trace: &StepTrace, cfg: &SchedulerConfig) -> f64 {
    let soc = platform.soc();
    let sets = platform.accel_sets().max(1);
    let threads = if cfg.inter_node { soc.cpu_tiles.max(1) } else { 1 };
    let llc = soc.llc_bytes;

    // --- Hessian construction preamble: independent small ops.
    let mut hess_comp = 0.0;
    let mut hess_cpu = 0.0;
    let mut hess_mem: Vec<Op> = Vec::new();
    if let Some(comp) = platform.comp() {
        for op in trace.hessian_ops.ops() {
            if op.is_memory() {
                if platform.has_mem_accel() {
                    hess_mem.push(*op);
                } else {
                    hess_cpu += platform.host().op_time(op, true);
                }
            } else if let Some(t) = comp.op_time(op, true) {
                hess_comp += t;
            } else {
                hess_cpu += platform.host().op_time(op, true);
            }
        }
    }
    let fan = if cfg.inter_node { 1.0 + FAN_OUT_EFFICIENCY * (sets as f64 - 1.0) } else { 1.0 };
    let hess_mem_t = platform.mem().map(|m| m.batch_time(&hess_mem, true) / fan).unwrap_or(0.0);
    let hess_comp_t = hess_comp / fan;
    let hessian_time = if cfg.hetero_overlap && platform.has_mem_accel() {
        hess_comp_t.max(hess_mem_t) + OVERLAP_RESIDUE * hess_comp_t.min(hess_mem_t) + hess_cpu
    } else {
        hess_comp_t + hess_mem_t + hess_cpu
    };

    // --- Elimination-tree factorization via the event loop.
    let tree_time = if trace.nodes.is_empty() {
        0.0
    } else {
        let works: std::collections::HashMap<usize, &NodeWork> =
            trace.nodes.iter().map(|w| (w.node, w)).collect();
        let parent_front: std::collections::HashMap<usize, usize> =
            trace.nodes.iter().map(|w| (w.node, w.front_dim())).collect();
        let mut queue =
            NodeQueue::new(&trace.nodes.iter().map(|w| (w.node, w.parent)).collect::<Vec<_>>());

        // (finish_time, node, sets_used, space) ordered by finish time.
        let mut in_flight: BinaryHeap<Reverse<(u64, usize, usize, usize)>> = BinaryHeap::new();
        let to_fixed = |t: f64| (t * 1e15) as u64; // femtosecond grid keeps ordering exact
        let mut now = 0.0f64;
        let mut idle_threads = threads;
        let mut idle_sets = sets;
        let mut llc_free = llc;

        loop {
            // Admit ready nodes while a thread and a set are available.
            loop {
                if idle_threads == 0 || idle_sets == 0 {
                    break;
                }
                let ready = queue.ready().to_vec();
                if ready.is_empty() {
                    break;
                }
                // First ready node whose workspace fits the remaining LLC
                // (Algorithm 2 lines 12–17); if nothing is running and even
                // the first ready node does not fit, run it anyway with
                // DRAM-rate pricing.
                let mut pick = None;
                let mut fits = true;
                for &id in &ready {
                    let w = works[&id];
                    let space =
                        calc_space(w, w.parent.and_then(|p| parent_front.get(&p).copied()));
                    if space <= llc_free {
                        pick = Some((id, space));
                        break;
                    }
                }
                if pick.is_none() {
                    if in_flight.is_empty() {
                        let id = ready[0];
                        pick = Some((id, 0));
                        fits = false;
                    } else {
                        break; // wait for LLC space (thread de-schedules)
                    }
                }
                let (id, space) = pick.expect("picked");
                // Intra-node: grab a fair share of the idle sets.
                let k = if cfg.intra_node {
                    (idle_sets / ready.len().max(idle_threads.min(ready.len())).max(1)).max(1)
                } else {
                    1
                };
                let k = k.min(idle_sets);
                queue.take(id);
                let dur = node_duration(platform, works[&id], k, fits, cfg);
                in_flight.push(Reverse((to_fixed(now + dur), id, k, space)));
                idle_threads -= 1;
                idle_sets -= k;
                llc_free -= space.min(llc_free);
            }
            match in_flight.pop() {
                None => break,
                Some(Reverse((fin, id, k, space))) => {
                    now = fin as f64 / 1e15;
                    idle_threads += 1;
                    idle_sets += k;
                    llc_free = (llc_free + space).min(llc);
                    queue.complete(id);
                }
            }
        }
        debug_assert!(queue.all_done());
        now
    };

    // --- Solves: a sequential dependency chain over the tree.
    let mut solve_time = 0.0;
    if let Some(comp) = platform.comp() {
        for op in trace.solve_ops.ops() {
            solve_time += comp
                .op_time(op, true)
                .unwrap_or_else(|| platform.host().op_time(op, true));
        }
    }

    hessian_time + tree_time + solve_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use supernova_linalg::ops::OpTrace;

    fn node(id: usize, parent: Option<usize>, m: usize, n: usize) -> NodeWork {
        let mut ops = OpTrace::new();
        let t = m + n;
        ops.push(Op::Memset { bytes: t * t * 4 });
        ops.push(Op::Memcpy { bytes: m * t * 4 });
        ops.push(Op::ScatterAdd { blocks: 4, elems: m * m });
        ops.push(Op::Chol { n: m });
        if n > 0 {
            ops.push(Op::Trsm { m: n, n: m });
            ops.push(Op::Syrk { n, k: m });
        }
        NodeWork { node: id, parent, ops, pivot_dim: m, rem_dim: n, factor_bytes: m * m * 4 }
    }

    fn wide_trace() -> StepTrace {
        // 8 leaves feeding 4 mid nodes feeding a root: plenty of branch
        // parallelism.
        let mut nodes = Vec::new();
        for i in 0..8 {
            nodes.push(node(i, Some(8 + i / 2), 24, 24));
        }
        for i in 0..4 {
            nodes.push(node(8 + i, Some(12), 24, 24));
        }
        nodes.push(node(12, None, 48, 0));
        StepTrace { nodes, ..StepTrace::default() }
    }

    #[test]
    fn empty_trace_costs_nothing_numeric() {
        let lat = simulate_step(&Platform::supernova(2), &StepTrace::default(), &SchedulerConfig::default());
        assert_eq!(lat.numeric, 0.0);
        assert_eq!(lat.total(), 0.0);
    }

    #[test]
    fn more_sets_reduce_numeric_latency() {
        let trace = wide_trace();
        let cfg = SchedulerConfig::default();
        let one = simulate_step(&Platform::supernova(1), &trace, &cfg).numeric;
        let two = simulate_step(&Platform::supernova(2), &trace, &cfg).numeric;
        let four = simulate_step(&Platform::supernova(4), &trace, &cfg).numeric;
        assert!(two < one, "2 sets {two} !< 1 set {one}");
        assert!(four < two, "4 sets {four} !< 2 sets {two}");
    }

    #[test]
    fn each_parallelism_level_helps() {
        let trace = wide_trace();
        let p = Platform::supernova(2);
        let serial = simulate_step(&p, &trace, &SchedulerConfig::serial()).numeric;
        let hetero = simulate_step(
            &p,
            &trace,
            &SchedulerConfig { hetero_overlap: true, inter_node: false, intra_node: false },
        )
        .numeric;
        let inter = simulate_step(
            &p,
            &trace,
            &SchedulerConfig { hetero_overlap: true, inter_node: true, intra_node: false },
        )
        .numeric;
        let intra = simulate_step(&p, &trace, &SchedulerConfig::default()).numeric;
        assert!(hetero < serial, "hetero {hetero} !< serial {serial}");
        assert!(inter < hetero, "inter {inter} !< hetero {hetero}");
        assert!(intra <= inter, "intra {intra} !> inter {inter}");
    }

    #[test]
    fn supernova_beats_spatula_on_memory_heavy_tree() {
        let trace = wide_trace();
        let cfg = SchedulerConfig::default();
        let sn = simulate_step(&Platform::supernova(2), &trace, &cfg).numeric;
        let sp = simulate_step(&Platform::spatula(2), &trace, &cfg).numeric;
        assert!(sn < sp, "supernova {sn} !< spatula {sp}");
    }

    #[test]
    fn serial_platforms_price_serially() {
        let trace = wide_trace();
        let cfg = SchedulerConfig::default();
        let boom = simulate_step(&Platform::boom(), &trace, &cfg).numeric;
        let server = simulate_step(&Platform::server_cpu(), &trace, &cfg).numeric;
        assert!(server < boom);
        let sn = simulate_step(&Platform::supernova(2), &trace, &cfg).numeric;
        assert!(sn < boom);
    }

    #[test]
    fn gpu_pays_step_overhead_once() {
        let mut trace = StepTrace::default();
        trace.nodes.push(node(0, None, 8, 0));
        let lat = simulate_step(&Platform::embedded_gpu(), &trace, &SchedulerConfig::default());
        assert!(lat.numeric > Platform::embedded_gpu().step_overhead());
    }

    #[test]
    fn selection_overhead_counted() {
        let trace = StepTrace { selection_nodes_visited: 1000, ..StepTrace::default() };
        let lat = simulate_step(&Platform::supernova(2), &trace, &SchedulerConfig::default());
        assert!(lat.overhead > 0.0);
        assert_eq!(lat.numeric, 0.0);
    }

    #[test]
    fn oversized_node_still_completes() {
        // A node whose front exceeds the whole LLC must still be scheduled.
        let trace = StepTrace { nodes: vec![node(0, None, 1200, 0)], ..StepTrace::default() };
        let lat = simulate_step(&Platform::supernova(1), &trace, &SchedulerConfig::default());
        assert!(lat.numeric > 0.0 && lat.numeric.is_finite());
    }
}
