//! The virtual-time step scheduler (Algorithm 2 and §4.3.1–4.3.2).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use supernova_hw::Platform;
use supernova_linalg::ops::Op;

use crate::exec::{ExecTrace, NoRecord, NodeExec, OpExec, Phase, Recorder, Unit};
use crate::{calc_space, NodeQueue, NodeWork, StepTrace};

/// Which runtime parallelism optimizations are enabled (the Figure 9
/// ablation axes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Overlap MEM (DMA) operations with independent COMP operations of the
    /// same node (§4.3.2 heterogeneous orchestration).
    pub hetero_overlap: bool,
    /// Process independent elimination-tree branches on different
    /// accelerator sets (§4.3.1 inter-node parallelism).
    pub inter_node: bool,
    /// Partition one large node's operations across multiple idle sets
    /// (§4.3.1 intra-node parallelism, used near the root).
    pub intra_node: bool,
}

impl SchedulerConfig {
    /// Everything disabled: single thread, single set, serial COMP+MEM.
    pub fn serial() -> Self {
        SchedulerConfig {
            hetero_overlap: false,
            inter_node: false,
            intra_node: false,
        }
    }

    /// The Figure 9 ablation ladder: serial, each optimization added in
    /// order, up to the full default configuration.
    pub fn ablations() -> [SchedulerConfig; 4] {
        [
            SchedulerConfig::serial(),
            SchedulerConfig {
                hetero_overlap: true,
                inter_node: false,
                intra_node: false,
            },
            SchedulerConfig {
                hetero_overlap: true,
                inter_node: true,
                intra_node: false,
            },
            SchedulerConfig::default(),
        ]
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            hetero_overlap: true,
            inter_node: true,
            intra_node: true,
        }
    }
}

/// Per-step latency, broken down the way Figure 11 reports it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepLatency {
    /// Relinearization (host CPU Jacobian recomputation).
    pub relin: f64,
    /// Symbolic re-analysis of the affected subtree (host CPU).
    pub symbolic: f64,
    /// Numeric work: Hessian construction, factorization, solves.
    pub numeric: f64,
    /// RA-ISAM2 selection-algorithm overhead (zero for baselines).
    pub overhead: f64,
}

impl StepLatency {
    /// End-to-end backend latency for the step.
    pub fn total(&self) -> f64 {
        self.relin + self.symbolic + self.numeric + self.overhead
    }
}

/// Seconds the RA selection algorithm spends per visited tree node on the
/// host CPU (two pointer-chasing visits per node, Algorithm 1).
const SELECTION_CYCLES_PER_NODE: f64 = 55.0;

/// Serial residue of a node when COMP and MEM overlap: the fraction of the
/// shorter stream that cannot be hidden (dependent prefix/suffix).
const OVERLAP_RESIDUE: f64 = 0.07;

/// Parallel efficiency when fanning independent work across sets.
const FAN_OUT_EFFICIENCY: f64 = 0.85;

/// Prices a full backend step on `platform`.
///
/// Accelerated platforms (SuperNoVA, Spatula) run the virtual-time
/// Algorithm 2 scheduler; serial platforms price the trace in order; the
/// GPU adds its per-step transfer overhead.
pub fn simulate_step(platform: &Platform, trace: &StepTrace, cfg: &SchedulerConfig) -> StepLatency {
    simulate_step_rec(platform, trace, cfg, &mut NoRecord)
}

/// Prices a step like [`simulate_step`] and additionally returns the
/// executed schedule: per-op unit assignments with start/end timestamps,
/// per-node intervals with their accelerator-set grants and LLC
/// reservations. The latency returned is bit-identical to
/// [`simulate_step`]'s — recording observes the schedule, it never
/// perturbs it.
pub fn simulate_step_traced(
    platform: &Platform,
    trace: &StepTrace,
    cfg: &SchedulerConfig,
) -> (StepLatency, ExecTrace) {
    let mut exec = ExecTrace::default();
    if platform.is_accelerated() {
        let soc = platform.soc();
        exec.sets = platform.accel_sets().max(1);
        exec.cpu_tiles = if cfg.inter_node {
            soc.cpu_tiles.max(1)
        } else {
            1
        };
        exec.llc_bytes = soc.llc_bytes;
    } else {
        exec.sets = 0;
        exec.cpu_tiles = 1;
        exec.llc_bytes = platform.cache_bytes();
    }
    let lat = simulate_step_rec(platform, trace, cfg, &mut exec);
    exec.makespan = lat.numeric;
    (lat, exec)
}

/// Shared implementation behind the traced and untraced entry points.
fn simulate_step_rec<R: Recorder>(
    platform: &Platform,
    trace: &StepTrace,
    cfg: &SchedulerConfig,
    rec: &mut R,
) -> StepLatency {
    let relin = platform.relin_time(trace.relin_jacobian_elems, trace.relin_factors);
    let symbolic = platform.symbolic_time(trace.symbolic_pattern_elems);
    let overhead =
        trace.selection_nodes_visited as f64 * SELECTION_CYCLES_PER_NODE / platform.host().freq_hz;
    let numeric = if platform.is_accelerated() {
        accelerated_numeric(platform, trace, cfg, rec)
    } else {
        serial_numeric(platform, trace, rec)
    };
    StepLatency {
        relin,
        symbolic,
        numeric,
        overhead,
    }
}

/// Serial pricing for CPU/DSP/GPU platforms. Every op runs on the single
/// engine, recorded as `CPU0`.
fn serial_numeric<R: Recorder>(platform: &Platform, trace: &StepTrace, rec: &mut R) -> f64 {
    let engine = platform.numeric_engine();
    let mut t = if trace.is_numeric_empty() {
        0.0
    } else {
        platform.step_overhead()
    };
    for op in trace.hessian_ops.ops() {
        let dt = engine.op_time(op);
        rec.op(OpExec {
            node: None,
            phase: Phase::Hessian,
            op: *op,
            unit: Unit::Cpu(0),
            start: t,
            end: t + dt,
        });
        t += dt;
    }
    for work in &trace.nodes {
        let fits = work.front_bytes() <= platform.cache_bytes();
        let start = t;
        for op in work.ops.ops() {
            let dt = engine.op_time_ctx(op, fits);
            rec.op(OpExec {
                node: Some(work.node),
                phase: Phase::Tree,
                op: *op,
                unit: Unit::Cpu(0),
                start: t,
                end: t + dt,
            });
            t += dt;
        }
        rec.node(NodeExec {
            node: work.node,
            sets: Vec::new(),
            cpu_tile: 0,
            start,
            end: t,
            space: 0,
            fits,
        });
    }
    for op in trace.solve_ops.ops() {
        let dt = engine.op_time(op);
        rec.op(OpExec {
            node: None,
            phase: Phase::Solve,
            op: *op,
            unit: Unit::Cpu(0),
            start: t,
            end: t + dt,
        });
        t += dt;
    }
    t
}

/// The concrete placement of one scheduled node, threaded through
/// [`node_duration`] so op intervals can be recorded on real unit ids.
struct NodeSlot<'a> {
    /// Supernode id.
    node: usize,
    /// Virtual-time start of the node.
    start: f64,
    /// Accelerator-set ids granted to the node.
    sets: &'a [usize],
    /// Controller CPU tile driving the node.
    cpu_tile: usize,
}

/// Duration of one node on `k` accelerator sets of `platform`.
///
/// Returns the node's wall time. COMP-mappable ops parallelize across sets
/// with per-class parallel fractions (Amdahl); MEM ops run on the sets' MEM
/// tiles and overlap with COMP when heterogeneous orchestration is on.
/// Platforms without MEM/SIU (Spatula) execute those portions on the
/// controller CPU, serially with the accelerator.
///
/// When `rec` is live and `slot` is given, every op's interval is recorded
/// on its concrete units; the recorded intervals tile exactly the COMP,
/// MEM and CPU streams the duration is computed from.
fn node_duration<R: Recorder>(
    platform: &Platform,
    work: &NodeWork,
    k: usize,
    fits: bool,
    cfg: &SchedulerConfig,
    slot: Option<&NodeSlot<'_>>,
    rec: &mut R,
) -> f64 {
    let comp = platform.comp().expect("accelerated platform"); // lint: allow(unwrap)
    let kf = k.max(1) as f64;
    let slot = if rec.enabled() { slot } else { None };
    let mut comp_t = 0.0;
    let mut cpu_t = 0.0;
    let mut mem_ops: Vec<Op> = Vec::new();
    let mut comp_items: Vec<(Op, f64)> = Vec::new();
    let mut cpu_items: Vec<(Op, f64)> = Vec::new();
    for op in work.ops.ops() {
        if op.is_memory() {
            if platform.has_mem_accel() {
                mem_ops.push(*op);
            } else {
                let t = platform.host().op_time(op, fits);
                cpu_t += t;
                if slot.is_some() {
                    cpu_items.push((*op, t));
                }
            }
            continue;
        }
        match comp.op_time(op, fits) {
            Some(t1) => {
                // Per-class parallel fraction for intra-node partitioning.
                let f = match op {
                    Op::Gemm { .. } | Op::Syrk { .. } => 0.95,
                    Op::ScatterAdd { .. } => 0.80,
                    Op::Trsm { .. } => 0.60,
                    Op::Gemv { .. } => 0.50,
                    Op::Chol { .. } => 0.25,
                    _ => 0.0,
                };
                let t = t1 * (f / kf + (1.0 - f));
                comp_t += t;
                if slot.is_some() {
                    comp_items.push((*op, t));
                }
            }
            None => {
                // No SIU: the host CPU performs the scatter.
                let t = platform.host().op_time(op, fits);
                cpu_t += t;
                if slot.is_some() {
                    cpu_items.push((*op, t));
                }
            }
        }
    }
    let mem_t = platform
        .mem()
        .map(|m| m.batch_time(&mem_ops, fits) / kf)
        .unwrap_or(0.0);
    let overlap = cfg.hetero_overlap && platform.has_mem_accel();
    let dur = if overlap {
        comp_t.max(mem_t) + OVERLAP_RESIDUE * comp_t.min(mem_t) + cpu_t
    } else {
        comp_t + mem_t + cpu_t
    };

    if let Some(slot) = slot {
        // Stream placement: under overlap the COMP and MEM streams both
        // start at the node start and the CPU tail follows the overlap
        // residue; serially the streams run COMP → MEM → CPU.
        let (comp_start, mem_start, cpu_start) = if overlap {
            let joined = comp_t.max(mem_t) + OVERLAP_RESIDUE * comp_t.min(mem_t);
            (slot.start, slot.start, slot.start + joined)
        } else {
            (slot.start, slot.start + comp_t, slot.start + comp_t + mem_t)
        };
        let mut cur = comp_start;
        for (op, dt) in &comp_items {
            for &s in slot.sets {
                rec.op(OpExec {
                    node: Some(slot.node),
                    phase: Phase::Tree,
                    op: *op,
                    unit: Unit::Comp(s),
                    start: cur,
                    end: cur + dt,
                });
            }
            cur += dt;
        }
        if mem_t > 0.0 {
            if let Some(m) = platform.mem() {
                // The batch is priced as a whole (VC-overlapped setups), so
                // apportion the batch time across ops by their solo times.
                let weights: Vec<f64> = mem_ops
                    .iter()
                    .map(|op| m.batch_time(std::slice::from_ref(op), fits))
                    .collect();
                let wsum: f64 = weights.iter().sum();
                let mut cur = mem_start;
                for (op, w) in mem_ops.iter().zip(&weights) {
                    let dt = if wsum > 0.0 {
                        mem_t * w / wsum
                    } else {
                        mem_t / mem_ops.len() as f64
                    };
                    for &s in slot.sets {
                        rec.op(OpExec {
                            node: Some(slot.node),
                            phase: Phase::Tree,
                            op: *op,
                            unit: Unit::Mem(s),
                            start: cur,
                            end: cur + dt,
                        });
                    }
                    cur += dt;
                }
            }
        }
        let mut cur = cpu_start;
        for (op, dt) in &cpu_items {
            rec.op(OpExec {
                node: Some(slot.node),
                phase: Phase::Tree,
                op: *op,
                unit: Unit::Cpu(slot.cpu_tile),
                start: cur,
                end: cur + dt,
            });
            cur += dt;
        }
    }
    dur
}

/// The Algorithm 2 discrete-event scheduler over the step's node forest.
fn accelerated_numeric<R: Recorder>(
    platform: &Platform,
    trace: &StepTrace,
    cfg: &SchedulerConfig,
    rec: &mut R,
) -> f64 {
    let soc = platform.soc();
    let sets = platform.accel_sets().max(1);
    let threads = if cfg.inter_node {
        soc.cpu_tiles.max(1)
    } else {
        1
    };
    let llc = soc.llc_bytes;

    // --- Hessian construction preamble: independent small ops.
    let mut hess_comp = 0.0;
    let mut hess_cpu = 0.0;
    let mut hess_mem: Vec<Op> = Vec::new();
    let mut hess_comp_items: Vec<(Op, f64)> = Vec::new();
    let mut hess_cpu_items: Vec<(Op, f64)> = Vec::new();
    if let Some(comp) = platform.comp() {
        for op in trace.hessian_ops.ops() {
            if op.is_memory() {
                if platform.has_mem_accel() {
                    hess_mem.push(*op);
                } else {
                    let t = platform.host().op_time(op, true);
                    hess_cpu += t;
                    if rec.enabled() {
                        hess_cpu_items.push((*op, t));
                    }
                }
            } else if let Some(t) = comp.op_time(op, true) {
                hess_comp += t;
                if rec.enabled() {
                    hess_comp_items.push((*op, t));
                }
            } else {
                let t = platform.host().op_time(op, true);
                hess_cpu += t;
                if rec.enabled() {
                    hess_cpu_items.push((*op, t));
                }
            }
        }
    }
    let fan = if cfg.inter_node {
        1.0 + FAN_OUT_EFFICIENCY * (sets as f64 - 1.0)
    } else {
        1.0
    };
    let hess_mem_t = platform
        .mem()
        .map(|m| m.batch_time(&hess_mem, true) / fan)
        .unwrap_or(0.0);
    let hess_comp_t = hess_comp / fan;
    let hess_overlap = cfg.hetero_overlap && platform.has_mem_accel();
    let hessian_time = if hess_overlap {
        hess_comp_t.max(hess_mem_t) + OVERLAP_RESIDUE * hess_comp_t.min(hess_mem_t) + hess_cpu
    } else {
        hess_comp_t + hess_mem_t + hess_cpu
    };
    if rec.enabled() {
        // The fanned-out streams occupy every set's units; independent
        // small ops have no inter-op dependencies, so tile them in order.
        let active_sets = if cfg.inter_node { sets } else { 1 };
        let mut cur = 0.0;
        for (op, t) in &hess_comp_items {
            let dt = t / fan;
            for s in 0..active_sets {
                rec.op(OpExec {
                    node: None,
                    phase: Phase::Hessian,
                    op: *op,
                    unit: Unit::Comp(s),
                    start: cur,
                    end: cur + dt,
                });
            }
            cur += dt;
        }
        if hess_mem_t > 0.0 {
            if let Some(m) = platform.mem() {
                let weights: Vec<f64> = hess_mem
                    .iter()
                    .map(|op| m.batch_time(std::slice::from_ref(op), true))
                    .collect();
                let wsum: f64 = weights.iter().sum();
                let mut cur = 0.0;
                for (op, w) in hess_mem.iter().zip(&weights) {
                    let dt = if wsum > 0.0 {
                        hess_mem_t * w / wsum
                    } else {
                        hess_mem_t / hess_mem.len() as f64
                    };
                    for s in 0..active_sets {
                        rec.op(OpExec {
                            node: None,
                            phase: Phase::Hessian,
                            op: *op,
                            unit: Unit::Mem(s),
                            start: cur,
                            end: cur + dt,
                        });
                    }
                    cur += dt;
                }
            }
        }
        let mut cur = if hess_overlap {
            hess_comp_t.max(hess_mem_t) + OVERLAP_RESIDUE * hess_comp_t.min(hess_mem_t)
        } else {
            hess_comp_t + hess_mem_t
        };
        for (op, t) in &hess_cpu_items {
            rec.op(OpExec {
                node: None,
                phase: Phase::Hessian,
                op: *op,
                unit: Unit::Cpu(0),
                start: cur,
                end: cur + *t,
            });
            cur += t;
        }
    }

    // --- Elimination-tree factorization via the event loop. Recorded
    // timestamps are absolute (offset by the hessian preamble).
    let t0 = hessian_time;
    let tree_time = if trace.nodes.is_empty() {
        0.0
    } else {
        let works: BTreeMap<usize, &NodeWork> = trace.nodes.iter().map(|w| (w.node, w)).collect();
        let parent_front: BTreeMap<usize, usize> = trace
            .nodes
            .iter()
            .map(|w| (w.node, w.front_dim()))
            .collect();
        let mut queue = NodeQueue::new(
            &trace
                .nodes
                .iter()
                .map(|w| (w.node, w.parent))
                .collect::<Vec<_>>(),
        );

        // (finish_time, node, cpu_tile, granted_sets, space) ordered by
        // finish time, ties broken by node id — deterministic.
        let mut in_flight: BinaryHeap<Reverse<(u64, usize, usize, Vec<usize>, usize)>> =
            BinaryHeap::new();
        let to_fixed = |t: f64| (t * 1e15) as u64; // femtosecond grid keeps ordering exact
        let mut now = 0.0f64;
        // Free sets of concrete unit ids; ordered sets make "grant the
        // lowest ids first" an O(log n) pop instead of the old
        // remove(0)-then-re-sort, which was O(n²) across a step's events.
        let mut idle_threads: BTreeSet<usize> = (0..threads).collect();
        let mut idle_sets: BTreeSet<usize> = (0..sets).collect();
        let mut llc_free = llc;

        loop {
            // Admit ready nodes while a thread and a set are available.
            loop {
                if idle_threads.is_empty() || idle_sets.is_empty() {
                    break;
                }
                let ready = queue.ready().to_vec();
                if ready.is_empty() {
                    break;
                }
                // First ready node whose workspace fits the remaining LLC
                // (Algorithm 2 lines 12–17); if nothing is running and even
                // the first ready node does not fit, run it anyway with
                // DRAM-rate pricing.
                let mut pick = None;
                let mut fits = true;
                for &id in &ready {
                    let w = works[&id];
                    let space = calc_space(w, w.parent.and_then(|p| parent_front.get(&p).copied()));
                    if space <= llc_free {
                        pick = Some((id, space));
                        break;
                    }
                }
                if pick.is_none() {
                    if in_flight.is_empty() {
                        let id = ready[0];
                        pick = Some((id, 0));
                        fits = false;
                    } else {
                        break; // wait for LLC space (thread de-schedules)
                    }
                }
                let (id, space) = match pick {
                    Some(p) => p,
                    None => break,
                };
                // Intra-node: grab a fair share of the idle sets.
                let k = if cfg.intra_node {
                    (idle_sets.len() / ready.len().max(idle_threads.len().min(ready.len())).max(1))
                        .max(1)
                } else {
                    1
                };
                let k = k.min(idle_sets.len());
                queue.take(id);
                let grant: Vec<usize> = (0..k).filter_map(|_| idle_sets.pop_first()).collect();
                // lint: allow(unwrap) — loop guard proved the set non-empty
                let tid = idle_threads.pop_first().expect("idle thread available");
                let slot = NodeSlot {
                    node: id,
                    start: t0 + now,
                    sets: &grant,
                    cpu_tile: tid,
                };
                let dur = node_duration(platform, works[&id], k, fits, cfg, Some(&slot), rec);
                rec.node(NodeExec {
                    node: id,
                    sets: grant.clone(),
                    cpu_tile: tid,
                    start: t0 + now,
                    end: t0 + now + dur,
                    space,
                    fits,
                });
                in_flight.push(Reverse((to_fixed(now + dur), id, tid, grant, space)));
                llc_free -= space.min(llc_free);
            }
            match in_flight.pop() {
                None => break,
                Some(Reverse((fin, id, tid, grant, space))) => {
                    now = fin as f64 / 1e15;
                    idle_threads.insert(tid);
                    idle_sets.extend(grant);
                    llc_free = (llc_free + space).min(llc);
                    queue.complete(id);
                }
            }
        }
        debug_assert!(queue.all_done());
        now
    };

    // --- Solves: a sequential dependency chain over the tree.
    let mut solve_time = 0.0;
    if let Some(comp) = platform.comp() {
        let mut cur = hessian_time + tree_time;
        for op in trace.solve_ops.ops() {
            let (dt, unit) = match comp.op_time(op, true) {
                Some(t) => (t, Unit::Comp(0)),
                None => (platform.host().op_time(op, true), Unit::Cpu(0)),
            };
            rec.op(OpExec {
                node: None,
                phase: Phase::Solve,
                op: *op,
                unit,
                start: cur,
                end: cur + dt,
            });
            solve_time += dt;
            cur += dt;
        }
    }

    hessian_time + tree_time + solve_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use supernova_linalg::ops::OpTrace;

    fn node(id: usize, parent: Option<usize>, m: usize, n: usize) -> NodeWork {
        let mut ops = OpTrace::new();
        let t = m + n;
        ops.push(Op::Memset { bytes: t * t * 4 });
        ops.push(Op::Memcpy { bytes: m * t * 4 });
        ops.push(Op::ScatterAdd {
            blocks: 4,
            elems: m * m,
        });
        ops.push(Op::Chol { n: m });
        if n > 0 {
            ops.push(Op::Trsm { m: n, n: m });
            ops.push(Op::Syrk { n, k: m });
        }
        NodeWork {
            node: id,
            parent,
            ops,
            pivot_dim: m,
            rem_dim: n,
            factor_bytes: m * m * 4,
        }
    }

    fn wide_trace() -> StepTrace {
        // 8 leaves feeding 4 mid nodes feeding a root: plenty of branch
        // parallelism.
        let mut nodes = Vec::new();
        for i in 0..8 {
            nodes.push(node(i, Some(8 + i / 2), 24, 24));
        }
        for i in 0..4 {
            nodes.push(node(8 + i, Some(12), 24, 24));
        }
        nodes.push(node(12, None, 48, 0));
        StepTrace {
            nodes,
            ..StepTrace::default()
        }
    }

    /// Latencies captured from the pre-`BTreeSet` admission code (sorted
    /// `Vec` free lists with `remove(0)` + re-sort). The free-list refactor
    /// must not move a single timestamp: grants still take the lowest unit
    /// ids first.
    #[test]
    fn idle_list_refactor_keeps_latencies_unchanged() {
        let golden = [
            (
                1usize,
                [
                    3.7170714284e-5,
                    3.3252624283e-5,
                    3.3252624283e-5,
                    3.3252624283e-5,
                ],
            ),
            (
                2,
                [
                    3.7170714284e-5,
                    3.3252624283e-5,
                    1.8594307142e-5,
                    1.7922562142e-5,
                ],
            ),
            (
                4,
                [
                    3.7170714284e-5,
                    3.3252624283e-5,
                    1.1265148571e-5,
                    1.0257531071e-5,
                ],
            ),
        ];
        let trace = wide_trace();
        for (sets, expected) in golden {
            for (cfg, want) in SchedulerConfig::ablations().iter().zip(expected) {
                let got = simulate_step(&Platform::supernova(sets), &trace, cfg).numeric;
                assert!(
                    (got - want).abs() <= want * 1e-12,
                    "supernova({sets}) {cfg:?}: {got} != golden {want}"
                );
            }
        }
        let got = simulate_step(&Platform::spatula(2), &trace, &SchedulerConfig::default()).numeric;
        let want = 4.5953107142e-5;
        assert!(
            (got - want).abs() <= want * 1e-12,
            "spatula(2): {got} != golden {want}"
        );
    }

    #[test]
    fn empty_trace_costs_nothing_numeric() {
        let lat = simulate_step(
            &Platform::supernova(2),
            &StepTrace::default(),
            &SchedulerConfig::default(),
        );
        assert_eq!(lat.numeric, 0.0);
        assert_eq!(lat.total(), 0.0);
    }

    #[test]
    fn more_sets_reduce_numeric_latency() {
        let trace = wide_trace();
        let cfg = SchedulerConfig::default();
        let one = simulate_step(&Platform::supernova(1), &trace, &cfg).numeric;
        let two = simulate_step(&Platform::supernova(2), &trace, &cfg).numeric;
        let four = simulate_step(&Platform::supernova(4), &trace, &cfg).numeric;
        assert!(two < one, "2 sets {two} !< 1 set {one}");
        assert!(four < two, "4 sets {four} !< 2 sets {two}");
    }

    #[test]
    fn each_parallelism_level_helps() {
        let trace = wide_trace();
        let p = Platform::supernova(2);
        let serial = simulate_step(&p, &trace, &SchedulerConfig::serial()).numeric;
        let hetero = simulate_step(
            &p,
            &trace,
            &SchedulerConfig {
                hetero_overlap: true,
                inter_node: false,
                intra_node: false,
            },
        )
        .numeric;
        let inter = simulate_step(
            &p,
            &trace,
            &SchedulerConfig {
                hetero_overlap: true,
                inter_node: true,
                intra_node: false,
            },
        )
        .numeric;
        let intra = simulate_step(&p, &trace, &SchedulerConfig::default()).numeric;
        assert!(hetero < serial, "hetero {hetero} !< serial {serial}");
        assert!(inter < hetero, "inter {inter} !< hetero {hetero}");
        assert!(intra <= inter, "intra {intra} !> inter {inter}");
    }

    #[test]
    fn supernova_beats_spatula_on_memory_heavy_tree() {
        let trace = wide_trace();
        let cfg = SchedulerConfig::default();
        let sn = simulate_step(&Platform::supernova(2), &trace, &cfg).numeric;
        let sp = simulate_step(&Platform::spatula(2), &trace, &cfg).numeric;
        assert!(sn < sp, "supernova {sn} !< spatula {sp}");
    }

    #[test]
    fn serial_platforms_price_serially() {
        let trace = wide_trace();
        let cfg = SchedulerConfig::default();
        let boom = simulate_step(&Platform::boom(), &trace, &cfg).numeric;
        let server = simulate_step(&Platform::server_cpu(), &trace, &cfg).numeric;
        assert!(server < boom);
        let sn = simulate_step(&Platform::supernova(2), &trace, &cfg).numeric;
        assert!(sn < boom);
    }

    #[test]
    fn gpu_pays_step_overhead_once() {
        let mut trace = StepTrace::default();
        trace.nodes.push(node(0, None, 8, 0));
        let lat = simulate_step(
            &Platform::embedded_gpu(),
            &trace,
            &SchedulerConfig::default(),
        );
        assert!(lat.numeric > Platform::embedded_gpu().step_overhead());
    }

    #[test]
    fn selection_overhead_counted() {
        let trace = StepTrace {
            selection_nodes_visited: 1000,
            ..StepTrace::default()
        };
        let lat = simulate_step(&Platform::supernova(2), &trace, &SchedulerConfig::default());
        assert!(lat.overhead > 0.0);
        assert_eq!(lat.numeric, 0.0);
    }

    #[test]
    fn oversized_node_still_completes() {
        // A node whose front exceeds the whole LLC must still be scheduled.
        let trace = StepTrace {
            nodes: vec![node(0, None, 1200, 0)],
            ..StepTrace::default()
        };
        let lat = simulate_step(&Platform::supernova(1), &trace, &SchedulerConfig::default());
        assert!(lat.numeric > 0.0 && lat.numeric.is_finite());
    }

    #[test]
    fn traced_latency_matches_untraced() {
        let trace = wide_trace();
        for p in [
            Platform::supernova(2),
            Platform::spatula(2),
            Platform::boom(),
        ] {
            for cfg in SchedulerConfig::ablations() {
                let plain = simulate_step(&p, &trace, &cfg);
                let (traced, exec) = simulate_step_traced(&p, &trace, &cfg);
                assert_eq!(plain, traced, "{} {cfg:?}", p.name());
                assert_eq!(exec.makespan, plain.numeric);
                assert_eq!(exec.nodes.len(), trace.nodes.len());
                assert!(!exec.ops.is_empty());
            }
        }
    }

    #[test]
    fn trace_assigns_distinct_sets_to_concurrent_nodes() {
        let trace = wide_trace();
        let (_, exec) = simulate_step_traced(
            &Platform::supernova(4),
            &trace,
            &SchedulerConfig {
                hetero_overlap: true,
                inter_node: true,
                intra_node: false,
            },
        );
        // Any two nodes whose intervals overlap must hold disjoint sets
        // (allowing the event heap's femtosecond quantization slack).
        let eps = 1e-12;
        for a in &exec.nodes {
            for b in &exec.nodes {
                if a.node < b.node && a.start < b.end - eps && b.start < a.end - eps {
                    for s in &a.sets {
                        assert!(!b.sets.contains(s), "set {s} double-granted: {a:?} {b:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn serial_trace_is_sequential_on_cpu0() {
        let trace = wide_trace();
        let (lat, exec) =
            simulate_step_traced(&Platform::boom(), &trace, &SchedulerConfig::serial());
        assert_eq!(exec.units(), vec![Unit::Cpu(0)]);
        let mut prev_end = 0.0;
        for op in &exec.ops {
            assert!(op.start >= prev_end - 1e-12);
            prev_end = op.end;
        }
        assert!((prev_end - lat.numeric).abs() < 1e-12 * lat.numeric.max(1.0));
    }
}
