//! Randomized tests for the virtual-time scheduler: determinism, resource
//! monotonicity and dependency correctness on random elimination forests.
//!
//! Formerly proptest-based; now a seeded loop over the in-tree
//! [`XorShift64`] so the suite resolves and runs fully offline with
//! reproducible cases.

use supernova_hw::Platform;
use supernova_linalg::ops::Op;
use supernova_linalg::rng::XorShift64;
use supernova_runtime::{simulate_step, NodeQueue, NodeWork, SchedulerConfig, StepTrace};

const CASES: u64 = 64;

/// A random forest of node works: each node's parent is a later-indexed
/// node (children-before-parents order holds by construction).
fn forest(rng: &mut XorShift64) -> Vec<NodeWork> {
    let n = 2 + rng.gen_index(22);
    (0..n)
        .map(|i| {
            let parent = if i + 1 < n {
                let p = i + 1 + rng.gen_index(1000) % (n - i - 1).max(1);
                (p < n).then_some(p)
            } else {
                None
            };
            let m = 4 + rng.gen_index(44);
            let nn = rng.gen_index(48);
            let mut ops: Vec<Op> = vec![
                Op::Memset {
                    bytes: (m + nn) * (m + nn) * 4,
                },
                Op::Chol { n: m },
            ];
            if nn > 0 {
                ops.push(Op::Trsm { m: nn, n: m });
                ops.push(Op::Syrk { n: nn, k: m });
            }
            NodeWork {
                node: i,
                parent,
                ops: ops.into_iter().collect(),
                pivot_dim: m,
                rem_dim: nn,
                factor_bytes: m * m,
            }
        })
        .collect()
}

#[test]
fn scheduler_is_deterministic() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x5e11_0000 + case);
        let trace = StepTrace {
            nodes: forest(&mut rng),
            ..StepTrace::default()
        };
        let p = Platform::supernova(2);
        let cfg = SchedulerConfig::default();
        let a = simulate_step(&p, &trace, &cfg);
        let b = simulate_step(&p, &trace, &cfg);
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn more_sets_never_hurt() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x5e22_0000 + case);
        let trace = StepTrace {
            nodes: forest(&mut rng),
            ..StepTrace::default()
        };
        let cfg = SchedulerConfig::default();
        let one = simulate_step(&Platform::supernova(1), &trace, &cfg).numeric;
        let four = simulate_step(&Platform::supernova(4), &trace, &cfg).numeric;
        assert!(
            four <= one * 1.0001,
            "case {case}: 4 sets {four} > 1 set {one}"
        );
    }
}

#[test]
fn parallel_never_beats_critical_path_bound() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x5e33_0000 + case);
        // The scheduled time can never be shorter than the single most
        // expensive node at maximal parallelism — a basic sanity bound.
        let trace = StepTrace {
            nodes: forest(&mut rng),
            ..StepTrace::default()
        };
        let p = Platform::supernova(4);
        let t = simulate_step(&p, &trace, &SchedulerConfig::default()).numeric;
        assert!(t > 0.0 && t.is_finite(), "case {case}");
        // And serial time is an upper bound.
        let serial =
            simulate_step(&Platform::supernova(1), &trace, &SchedulerConfig::serial()).numeric;
        assert!(
            t <= serial * 1.0001,
            "case {case}: parallel {t} > serial {serial}"
        );
    }
}

#[test]
fn node_queue_completes_every_node_once() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x5e44_0000 + case);
        let nodes = forest(&mut rng);
        let mut q = NodeQueue::new(&nodes.iter().map(|w| (w.node, w.parent)).collect::<Vec<_>>());
        let mut completed = 0usize;
        while !q.all_done() {
            let ready = q.ready().to_vec();
            assert!(
                !ready.is_empty(),
                "case {case}: deadlock with {} remaining",
                q.remaining()
            );
            for id in ready {
                q.take(id);
                q.complete(id);
                completed += 1;
            }
        }
        assert_eq!(completed, nodes.len(), "case {case}");
    }
}
