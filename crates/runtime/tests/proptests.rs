//! Property tests for the virtual-time scheduler: determinism, resource
//! monotonicity and dependency correctness on random elimination forests.

use proptest::prelude::*;
use supernova_hw::Platform;
use supernova_linalg::ops::Op;
use supernova_runtime::{simulate_step, NodeQueue, NodeWork, SchedulerConfig, StepTrace};

/// A random forest of node works: each node's parent is a later-indexed
/// node (children-before-parents order holds by construction).
fn forest() -> impl Strategy<Value = Vec<NodeWork>> {
    (2usize..24).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..1000, n),
            proptest::collection::vec(4usize..48, n),
            proptest::collection::vec(0usize..48, n),
        )
            .prop_map(move |(parents, ms, ns)| {
                (0..n)
                    .map(|i| {
                        let parent = if i + 1 < n {
                            let p = i + 1 + parents[i] % (n - i - 1).max(1);
                            if p < n {
                                Some(p)
                            } else {
                                None
                            }
                        } else {
                            None
                        };
                        let (m, nn) = (ms[i], ns[i]);
                        let mut ops: Vec<Op> = vec![
                            Op::Memset { bytes: (m + nn) * (m + nn) * 4 },
                            Op::Chol { n: m },
                        ];
                        if nn > 0 {
                            ops.push(Op::Trsm { m: nn, n: m });
                            ops.push(Op::Syrk { n: nn, k: m });
                        }
                        NodeWork {
                            node: i,
                            parent,
                            ops: ops.into_iter().collect(),
                            pivot_dim: m,
                            rem_dim: nn,
                            factor_bytes: m * m,
                        }
                    })
                    .collect()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduler_is_deterministic(nodes in forest()) {
        let trace = StepTrace { nodes, ..StepTrace::default() };
        let p = Platform::supernova(2);
        let cfg = SchedulerConfig::default();
        let a = simulate_step(&p, &trace, &cfg);
        let b = simulate_step(&p, &trace, &cfg);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn more_sets_never_hurt(nodes in forest()) {
        let trace = StepTrace { nodes, ..StepTrace::default() };
        let cfg = SchedulerConfig::default();
        let one = simulate_step(&Platform::supernova(1), &trace, &cfg).numeric;
        let four = simulate_step(&Platform::supernova(4), &trace, &cfg).numeric;
        prop_assert!(four <= one * 1.0001, "4 sets {} > 1 set {}", four, one);
    }

    #[test]
    fn parallel_never_beats_critical_path_bound(nodes in forest()) {
        // The scheduled time can never be shorter than the single most
        // expensive node at maximal parallelism — a basic sanity bound.
        let trace = StepTrace { nodes: nodes.clone(), ..StepTrace::default() };
        let p = Platform::supernova(4);
        let t = simulate_step(&p, &trace, &SchedulerConfig::default()).numeric;
        prop_assert!(t > 0.0 && t.is_finite());
        // And serial time is an upper bound.
        let serial = simulate_step(&Platform::supernova(1), &trace, &SchedulerConfig::serial()).numeric;
        prop_assert!(t <= serial * 1.0001, "parallel {} > serial {}", t, serial);
    }

    #[test]
    fn node_queue_completes_every_node_once(nodes in forest()) {
        let mut q = NodeQueue::new(
            &nodes.iter().map(|w| (w.node, w.parent)).collect::<Vec<_>>(),
        );
        let mut completed = 0usize;
        while !q.all_done() {
            let ready = q.ready().to_vec();
            prop_assert!(!ready.is_empty(), "deadlock with {} remaining", q.remaining());
            for id in ready {
                q.take(id);
                q.complete(id);
                completed += 1;
            }
        }
        prop_assert_eq!(completed, nodes.len());
    }
}
