//! Fill-reducing block orderings.
//!
//! Online incremental SLAM uses the natural (time) ordering, which keeps new
//! poses near the root of the elimination tree so that ordinary (non-loop-
//! closure) steps only touch a short root-side path — the property RA-ISAM2's
//! cost amortization relies on. The batch reference solver uses a greedy
//! minimum-degree ordering to keep fill manageable on loopy graphs like
//! M3500.

use crate::BlockPattern;

/// A permutation of block indices.
///
/// `new_of_old(j)` maps an index in the original (application) order to its
/// position in the elimination order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<usize>,
    old_of_new: Vec<usize>,
}

impl Permutation {
    /// Identity permutation on `n` indices.
    pub fn identity(n: usize) -> Self {
        Permutation {
            new_of_old: (0..n).collect(),
            old_of_new: (0..n).collect(),
        }
    }

    /// Builds a permutation from the `new_of_old` map.
    ///
    /// # Panics
    ///
    /// Panics if `new_of_old` is not a permutation of `0..n`.
    pub fn from_new_of_old(new_of_old: Vec<usize>) -> Self {
        let n = new_of_old.len();
        let mut old_of_new = vec![usize::MAX; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            assert!(
                new < n && old_of_new[new] == usize::MAX,
                "not a permutation"
            );
            old_of_new[new] = old;
        }
        Permutation {
            new_of_old,
            old_of_new,
        }
    }

    /// Number of indices.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// `true` if the permutation is over zero indices.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New position of original index `old`.
    pub fn new_of_old(&self, old: usize) -> usize {
        self.new_of_old[old]
    }

    /// Original index at new position `new`.
    pub fn old_of_new(&self, new: usize) -> usize {
        self.old_of_new[new]
    }

    /// `true` when this is the identity.
    pub fn is_identity(&self) -> bool {
        self.new_of_old.iter().enumerate().all(|(i, &p)| i == p)
    }
}

/// Greedy minimum-degree ordering on the block adjacency graph.
///
/// A straightforward quotient-free implementation: repeatedly eliminate a
/// minimum-degree vertex and connect its neighbours into a clique. Quadratic
/// in the worst case but fast at SLAM pose-graph scales, and it reduces fill
/// dramatically on loopy graphs.
///
/// Ties are broken toward the *lowest* original index so that, on a chain
/// graph, the natural order is recovered.
pub fn min_degree(pattern: &BlockPattern) -> Permutation {
    let n = pattern.num_blocks();
    // Symmetric adjacency sets (excluding the diagonal).
    let mut adj: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); n];
    for j in 0..n {
        for &i in pattern.col(j) {
            if i != j {
                adj[i].insert(j);
                adj[j].insert(i);
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Pick the live vertex with minimum degree, lowest index on ties.
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if !eliminated[v] && adj[v].len() < best_deg {
                best_deg = adj[v].len();
                best = v;
            }
        }
        let v = best;
        eliminated[v] = true;
        order.push(v);
        let neighbours: Vec<usize> = adj[v].iter().copied().collect();
        // Connect the neighbours into a clique and drop v.
        for &u in &neighbours {
            adj[u].remove(&v);
        }
        for (a_idx, &a) in neighbours.iter().enumerate() {
            for &b in &neighbours[a_idx + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        adj[v].clear();
    }
    let mut new_of_old = vec![0usize; n];
    for (new, &old) in order.iter().enumerate() {
        new_of_old[old] = new;
    }
    Permutation::from_new_of_old(new_of_old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolicFactor;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.len(), 4);
        for i in 0..4 {
            assert_eq!(p.old_of_new(p.new_of_old(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn duplicate_entries_rejected() {
        let _ = Permutation::from_new_of_old(vec![0, 0, 1]);
    }

    #[test]
    fn min_degree_on_chain_is_natural() {
        let mut p = BlockPattern::new(vec![1; 5]);
        for i in 0..4 {
            p.add_block_edge(i, i + 1);
        }
        let perm = min_degree(&p);
        // Chain: degree-1 endpoints eliminated first; resulting order is a
        // valid elimination order with zero fill.
        let q = p.permuted(&perm);
        let sym = SymbolicFactor::analyze(&q, 0);
        assert_eq!(sym.fill_blocks(), 0);
    }

    #[test]
    fn min_degree_reduces_fill_on_loopy_graph() {
        // Star-with-rim graph where natural order creates fill.
        let n = 12;
        let mut p = BlockPattern::new(vec![1; n]);
        for i in 1..n {
            p.add_block_edge(0, i);
        }
        for i in 1..n - 1 {
            p.add_block_edge(i, i + 1);
        }
        let natural = SymbolicFactor::analyze(&p, 0).fill_blocks();
        let q = p.permuted(&min_degree(&p));
        let ordered = SymbolicFactor::analyze(&q, 0).fill_blocks();
        assert!(
            ordered <= natural,
            "min-degree made fill worse: {ordered} > {natural}"
        );
    }
}
