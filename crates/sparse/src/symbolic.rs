//! Symbolic factorization: fill pattern, elimination tree, supernodes.

use crate::BlockPattern;

/// One supernode of the elimination tree (§3.2 of the paper).
///
/// A supernode owns a contiguous range of block columns whose factor columns
/// share the same below-diagonal structure. Its frontal matrix is
/// `(m + n) × (m + n)` where `m` ([`pivot_dim`](Self::pivot_dim)) covers the
/// pivot blocks and `n` ([`rem_dim`](Self::rem_dim)) the remainder rows that
/// receive the update matrix `L_C`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupernodeInfo {
    /// First owned block column.
    pub first_col: usize,
    /// Number of owned block columns.
    pub ncols: usize,
    /// All block rows of the front: the pivot blocks
    /// (`first_col..first_col + ncols`) followed by the sorted remainder
    /// block rows.
    pub rows: Vec<usize>,
    /// Scalar dimension of the pivot blocks (`m`).
    pub pivot_dim: usize,
    /// Scalar dimension of the remainder rows (`n`).
    pub rem_dim: usize,
    /// Parent supernode in the assembly tree, `None` for roots.
    pub parent: Option<usize>,
    /// Child supernodes.
    pub children: Vec<usize>,
}

impl SupernodeInfo {
    /// Scalar dimension of the square frontal matrix (`m + n`).
    pub fn front_dim(&self) -> usize {
        self.pivot_dim + self.rem_dim
    }

    /// Block columns owned by this node.
    pub fn cols(&self) -> std::ops::Range<usize> {
        self.first_col..self.first_col + self.ncols
    }

    /// Remainder block rows (those below the pivot blocks).
    pub fn remainder_rows(&self) -> &[usize] {
        &self.rows[self.ncols..]
    }

    /// Bytes of frontal workspace on the modeled 32-bit datapath.
    pub fn front_bytes(&self) -> usize {
        self.front_dim() * self.front_dim() * 4
    }

    /// A structural signature used by the incremental engine to detect
    /// whether a node kept the same shape across re-analysis.
    pub fn signature(&self) -> (usize, usize, u64) {
        let mut h: u64 = 0xcbf29ce484222325;
        for &r in &self.rows {
            h = (h ^ r as u64).wrapping_mul(0x100000001b3);
        }
        (self.first_col, self.ncols, h)
    }
}

/// The symbolic Cholesky factorization of a [`BlockPattern`]: per-column
/// fill patterns, the (block-)column elimination tree, the supernode
/// partition with its assembly tree, and scalar offsets.
#[derive(Clone, Debug)]
pub struct SymbolicFactor {
    block_dims: Vec<usize>,
    block_offsets: Vec<usize>,
    total_dim: usize,
    /// Fill pattern of L per block column (sorted, includes the diagonal).
    col_patterns: Vec<Vec<usize>>,
    /// Column elimination tree: parent block column, `None` for roots.
    col_parent: Vec<Option<usize>>,
    nodes: Vec<SupernodeInfo>,
    node_of_block: Vec<usize>,
    /// Node indices in children-before-parent order.
    postorder: Vec<usize>,
    input_nnz_blocks: usize,
}

impl SymbolicFactor {
    /// Analyzes a pattern: computes fill, the elimination tree and the
    /// supernode partition.
    ///
    /// `relax` permits *relaxed amalgamation*: a column is merged into the
    /// preceding supernode if doing so introduces at most `relax` extra
    /// structural zero block rows per column. `relax = 0` yields exact
    /// fundamental supernodes.
    pub fn analyze(pattern: &BlockPattern, relax: usize) -> Self {
        let n = pattern.num_blocks();
        let block_dims = pattern.block_dims().to_vec();
        let mut block_offsets = Vec::with_capacity(n);
        let mut acc = 0usize;
        for &d in &block_dims {
            block_offsets.push(acc);
            acc += d;
        }
        let total_dim = acc;

        // Column fill patterns and elimination tree, in one increasing pass:
        //   pat(j) = A_pat(j) ∪ (∪_{c : parent(c) = j} pat(c) \ {c})
        //   parent(j) = min(pat(j) \ {j})
        let mut col_patterns: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut col_parent: Vec<Option<usize>> = vec![None; n];
        let mut col_children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for j in 0..n {
            let mut pat: Vec<usize> = pattern.col(j).to_vec();
            debug_assert!(pat.first() == Some(&j), "pattern must include diagonal");
            for &c in &col_children[j] {
                pat = merge_sorted(&pat, &col_patterns[c][1..]);
            }
            if let Some(&p) = pat.get(1) {
                col_parent[j] = Some(p);
                col_children[p].push(j);
            }
            col_patterns[j] = pat;
        }

        // Supernode partition: start a new node at column j unless j extends
        // the previous node. Extension requires parent(j-1) == j and that the
        // *cumulative* structural zeros introduced by amalgamating into the
        // node's accumulated row union stay within `relax` zeros per owned
        // column — a bound that cannot chain unboundedly on banded patterns.
        const MAX_NODE_COLS: usize = 32;
        let mut head: Vec<usize> = Vec::new(); // first column of each node
        let mut node_of_block = vec![0usize; n];
        let mut cur_union: Vec<usize> = Vec::new(); // rows of the open node
        let mut cur_zeros = 0usize; // structural zeros accumulated so far
        for j in 0..n {
            let mut extend = false;
            if j > 0 && col_parent[j - 1] == Some(j) {
                let ncols = j - head[head.len() - 1];
                if ncols < MAX_NODE_COLS {
                    // Rows of the open node at or below the new pivot.
                    let tail_start = cur_union.partition_point(|&r| r < j);
                    let tail = &cur_union[tail_start..];
                    let union_tail = merge_sorted(tail, &col_patterns[j]);
                    let zeros_new_col = union_tail.len() - col_patterns[j].len();
                    let new_rows = union_tail.len() - tail.len();
                    let total = cur_zeros + zeros_new_col + new_rows * ncols;
                    if total <= relax * (ncols + 1) {
                        extend = true;
                        cur_zeros = total;
                    }
                }
            }
            if extend {
                node_of_block[j] = head.len() - 1;
                cur_union = merge_sorted(&cur_union, &col_patterns[j]);
            } else {
                node_of_block[j] = head.len();
                head.push(j);
                cur_union = col_patterns[j].clone();
                cur_zeros = 0;
            }
        }
        let num_nodes = head.len();

        // Build node row structures: union of the owned columns' patterns.
        let mut nodes: Vec<SupernodeInfo> = Vec::with_capacity(num_nodes);
        for s in 0..num_nodes {
            let first = head[s];
            let last = if s + 1 < num_nodes { head[s + 1] } else { n };
            let ncols = last - first;
            let mut rows: Vec<usize> = Vec::new();
            for j in first..last {
                rows = merge_sorted(&rows, &col_patterns[j]);
            }
            debug_assert!(rows[..ncols].iter().copied().eq(first..last));
            let pivot_dim: usize = (first..last).map(|j| block_dims[j]).sum();
            let rem_dim: usize = rows[ncols..].iter().map(|&r| block_dims[r]).sum();
            nodes.push(SupernodeInfo {
                first_col: first,
                ncols,
                rows,
                pivot_dim,
                rem_dim,
                parent: None,
                children: Vec::new(),
            });
        }

        // Assembly tree: parent node = node of the first remainder row.
        for s in 0..num_nodes {
            if let Some(&r) = nodes[s].rows.get(nodes[s].ncols) {
                let p = node_of_block[r];
                nodes[s].parent = Some(p);
                nodes[p].children.push(s);
            }
        }

        // Postorder (children before parents) via iterative DFS from roots.
        let mut postorder = Vec::with_capacity(num_nodes);
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for root in (0..num_nodes).filter(|&s| nodes[s].parent.is_none()) {
            stack.push((root, 0));
            while let Some(&mut (s, ref mut ci)) = stack.last_mut() {
                if *ci < nodes[s].children.len() {
                    let child = nodes[s].children[*ci];
                    *ci += 1;
                    stack.push((child, 0));
                } else {
                    postorder.push(s);
                    stack.pop();
                }
            }
        }
        debug_assert_eq!(postorder.len(), num_nodes);

        SymbolicFactor {
            block_dims,
            block_offsets,
            total_dim,
            col_patterns,
            col_parent,
            nodes,
            node_of_block,
            postorder,
            input_nnz_blocks: pattern.nnz_blocks(),
        }
    }

    /// Per-block scalar dimensions.
    pub fn block_dims(&self) -> &[usize] {
        &self.block_dims
    }

    /// Scalar offset of block `b` in the global vector.
    pub fn block_offset(&self, b: usize) -> usize {
        self.block_offsets[b]
    }

    /// Total scalar dimension.
    pub fn total_dim(&self) -> usize {
        self.total_dim
    }

    /// Number of block columns.
    pub fn num_blocks(&self) -> usize {
        self.block_dims.len()
    }

    /// The supernodes.
    pub fn nodes(&self) -> &[SupernodeInfo] {
        &self.nodes
    }

    /// Supernode owning block column `b`.
    pub fn node_of_block(&self, b: usize) -> usize {
        self.node_of_block[b]
    }

    /// Node indices in children-before-parents order.
    pub fn postorder(&self) -> &[usize] {
        &self.postorder
    }

    /// Fill pattern of L for block column `j` (sorted, includes diagonal).
    pub fn col_pattern(&self, j: usize) -> &[usize] {
        &self.col_patterns[j]
    }

    /// Parent of block column `j` in the column elimination tree.
    pub fn col_parent(&self, j: usize) -> Option<usize> {
        self.col_parent[j]
    }

    /// Number of block entries of fill (L entries not present in the input
    /// pattern).
    pub fn fill_blocks(&self) -> usize {
        let l_nnz: usize = self.col_patterns.iter().map(Vec::len).sum();
        l_nnz - self.input_nnz_blocks
    }

    /// Scalar nonzeros of L (lower triangle, counting full blocks).
    pub fn l_nnz_scalars(&self) -> usize {
        let mut total = 0usize;
        for (j, pat) in self.col_patterns.iter().enumerate() {
            let w = self.block_dims[j];
            let h: usize = pat.iter().map(|&r| self.block_dims[r]).sum();
            total += w * h;
        }
        total
    }

    /// Expands the ancestor closure of a set of *nodes*: every listed node
    /// plus all of its ancestors, deduplicated and sorted.
    ///
    /// Re-factorizing a node invalidates its update matrix, so the whole
    /// path to the root must be re-factorized too (§3.4): this is the
    /// "affected subtree" both ISAM2 and Algorithm 1 operate on.
    pub fn ancestor_closure(&self, seed_nodes: impl IntoIterator<Item = usize>) -> Vec<usize> {
        let mut marked = vec![false; self.nodes.len()];
        for s in seed_nodes {
            let mut cur = Some(s);
            while let Some(c) = cur {
                if marked[c] {
                    break;
                }
                marked[c] = true;
                cur = self.nodes[c].parent;
            }
        }
        (0..self.nodes.len()).filter(|&s| marked[s]).collect()
    }

    /// The path of nodes from the node owning block `b` to its root,
    /// inclusive.
    pub fn path_to_root(&self, b: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = Some(self.node_of_block(b));
        while let Some(s) = cur {
            out.push(s);
            cur = self.nodes[s].parent;
        }
        out
    }

    /// Total pattern size (block entries) across the given nodes — the work
    /// metric metered as "symbolic" latency for an affected set.
    pub fn pattern_size_of_nodes(&self, nodes: &[usize]) -> usize {
        nodes
            .iter()
            .map(|&s| {
                let node = &self.nodes[s];
                node.rows.len() * node.ncols
            })
            .sum()
    }
}

/// Merges two sorted, deduplicated index slices.
fn merge_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, dim: usize) -> BlockPattern {
        let mut p = BlockPattern::new(vec![dim; n]);
        for i in 0..n.saturating_sub(1) {
            p.add_block_edge(i, i + 1);
        }
        p
    }

    #[test]
    fn chain_has_no_fill_and_path_tree() {
        let p = chain(5, 2);
        let sym = SymbolicFactor::analyze(&p, 0);
        assert_eq!(sym.fill_blocks(), 0);
        for j in 0..4 {
            assert_eq!(sym.col_parent(j), Some(j + 1));
        }
        assert_eq!(sym.col_parent(4), None);
        assert_eq!(sym.total_dim(), 10);
    }

    #[test]
    fn chain_supernodes_cover_all_columns() {
        let p = chain(6, 3);
        let sym = SymbolicFactor::analyze(&p, 0);
        let covered: usize = sym.nodes().iter().map(|s| s.ncols).sum();
        assert_eq!(covered, 6);
        // Postorder has children before parents.
        let order_pos: Vec<usize> = {
            let mut pos = vec![0; sym.nodes().len()];
            for (i, &s) in sym.postorder().iter().enumerate() {
                pos[s] = i;
            }
            pos
        };
        for (s, node) in sym.nodes().iter().enumerate() {
            if let Some(p) = node.parent {
                assert!(order_pos[s] < order_pos[p], "child {s} after parent {p}");
            }
        }
    }

    #[test]
    fn loop_closure_creates_fill_along_range() {
        // Chain 0..6 plus an edge (0, 5): columns 1..5 gain row 5.
        let mut p = chain(6, 1);
        p.add_block_edge(0, 5);
        let sym = SymbolicFactor::analyze(&p, 0);
        for j in 0..5 {
            assert!(
                sym.col_pattern(j).contains(&5),
                "column {j} should contain fill row 5"
            );
        }
        assert!(sym.fill_blocks() > 0);
    }

    #[test]
    fn dense_clique_is_single_supernode() {
        let mut p = BlockPattern::new(vec![2; 4]);
        p.add_clique(&[0, 1, 2, 3]);
        let sym = SymbolicFactor::analyze(&p, 0);
        assert_eq!(sym.nodes().len(), 1);
        let node = &sym.nodes()[0];
        assert_eq!(node.ncols, 4);
        assert_eq!(node.pivot_dim, 8);
        assert_eq!(node.rem_dim, 0);
        assert_eq!(node.front_dim(), 8);
    }

    #[test]
    fn remainder_rows_subset_of_parent_rows() {
        // Random-ish loopy pattern; verify the multifrontal containment
        // property that extend-add relies on.
        let mut p = BlockPattern::new(vec![1; 10]);
        for i in 0..9 {
            p.add_block_edge(i, i + 1);
        }
        p.add_block_edge(0, 7);
        p.add_block_edge(2, 9);
        p.add_block_edge(4, 8);
        let sym = SymbolicFactor::analyze(&p, 0);
        for node in sym.nodes() {
            if let Some(parent) = node.parent {
                let prow = &sym.nodes()[parent].rows;
                for r in node.remainder_rows() {
                    assert!(
                        prow.contains(r),
                        "remainder row {r} missing from parent front"
                    );
                }
            }
        }
    }

    #[test]
    fn ancestor_closure_is_closed_and_sorted() {
        let mut p = chain(8, 1);
        p.add_block_edge(1, 6);
        let sym = SymbolicFactor::analyze(&p, 0);
        let leafish = sym.node_of_block(0);
        let closure = sym.ancestor_closure([leafish]);
        assert!(closure.windows(2).all(|w| w[0] < w[1]));
        for &s in &closure {
            if let Some(parent) = sym.nodes()[s].parent {
                assert!(closure.contains(&parent));
            }
        }
        // Root must be present.
        assert!(closure.iter().any(|&s| sym.nodes()[s].parent.is_none()));
    }

    #[test]
    fn path_to_root_starts_at_block_node() {
        let p = chain(5, 1);
        let sym = SymbolicFactor::analyze(&p, 0);
        let path = sym.path_to_root(0);
        assert_eq!(path[0], sym.node_of_block(0));
        assert!(sym.nodes()[*path.last().unwrap()].parent.is_none());
    }

    #[test]
    fn relaxed_amalgamation_reduces_node_count() {
        // A chain with tiny perturbations: relax=2 should merge more.
        let mut p = chain(12, 1);
        p.add_block_edge(0, 3);
        p.add_block_edge(4, 7);
        let exact = SymbolicFactor::analyze(&p, 0).nodes().len();
        let relaxed = SymbolicFactor::analyze(&p, 2).nodes().len();
        assert!(relaxed <= exact);
    }

    #[test]
    fn signature_differs_for_different_structure() {
        let a = SymbolicFactor::analyze(&chain(4, 1), 0);
        let mut p = chain(4, 1);
        p.add_block_edge(0, 3);
        let b = SymbolicFactor::analyze(&p, 0);
        let sig_a: Vec<_> = a.nodes().iter().map(|n| n.signature()).collect();
        let sig_b: Vec<_> = b.nodes().iter().map(|n| n.signature()).collect();
        assert_ne!(sig_a, sig_b);
    }

    #[test]
    fn l_nnz_counts_scalars() {
        let p = chain(3, 2);
        let sym = SymbolicFactor::analyze(&p, 0);
        // Columns: {0,1},{1,2},{2} in blocks of 2x2 scalars → (2+2+1 blocks... )
        // col0: rows {0,1} → 2 blocks * 4 = 8 scalars per col width 2 → 16
        // Actually per block column j: width * sum(dims of pattern rows).
        // col0: 2*(2+2)=8, col1: 2*(2+2)=8, col2: 2*2=4 → 20.
        assert_eq!(sym.l_nnz_scalars(), 8 + 8 + 4);
    }
}
