//! Supernodal multifrontal sparse Cholesky for the SuperNoVA SLAM backend.
//!
//! The SLAM backend's Hessian `H = JᵀJ` is an unstructured block-sparse
//! matrix whose Cholesky factor `L` is organized as an *elimination tree* of
//! *supernodes* (§3.2 of the paper). This crate implements the whole sparse
//! layer at the block level:
//!
//! - [`BlockPattern`] — the symmetric block-sparsity structure of `H`;
//! - [`SymbolicFactor`] — fill pattern, elimination tree and supernode
//!   partition ([`SymbolicFactor::analyze`]);
//! - [`BlockMat`] — numeric block storage for the lower triangle of `H`;
//! - [`NumericFactor`] — multifrontal numeric factorization with per-node
//!   frontal workspaces, extend-add merge, cached update matrices for
//!   incremental re-factorization, and per-node
//!   [`OpTrace`](supernova_linalg::ops::OpTrace)s for the hardware model;
//! - supernodal forward/backward solves ([`NumericFactor::solve_in_place`]);
//! - fill-reducing [`ordering`]s;
//! - the plan/exec split: [`ExecutionPlan`] (topologically-leveled task IR
//!   with precomputed scatter targets, derived once per symbolic structure)
//!   executed serially or on the [`ParallelExecutor`] worker pool with
//!   bit-identical results, recorded as a [`HostSchedule`].
//!
//! # Example
//!
//! ```
//! use supernova_sparse::{BlockMat, BlockPattern, NumericFactor, SymbolicFactor};
//! use supernova_linalg::Mat;
//!
//! // A 3-variable chain: H is block tridiagonal with 2x2 blocks.
//! let mut pattern = BlockPattern::new(vec![2, 2, 2]);
//! pattern.add_block_edge(0, 1);
//! pattern.add_block_edge(1, 2);
//! let sym = SymbolicFactor::analyze(&pattern, 0);
//!
//! let mut h = BlockMat::new(sym.block_dims().to_vec());
//! for i in 0..3 {
//!     h.add_to_block(i, i, &Mat::from_diag(&[4.0, 4.0]));
//! }
//! h.add_to_block(1, 0, &Mat::from_diag(&[1.0, 1.0]));
//! h.add_to_block(2, 1, &Mat::from_diag(&[1.0, 1.0]));
//!
//! let num = NumericFactor::factorize(&sym, &h)?;
//! let mut x = vec![1.0; 6];
//! num.solve_in_place(&sym, &mut x);
//! # Ok::<(), supernova_sparse::FactorizeError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod blockmat;
mod executor;
pub mod interference;
mod numeric;
pub mod ordering;
mod pattern;
mod plan;
mod symbolic;

pub use blockmat::BlockMat;
pub use executor::{
    DispatchMode, DispatchPolicy, HostSchedule, ParallelExecutor, PoolStats, TaskSpan, Workspace,
};
pub use interference::PlanCertificate;
pub use numeric::{FactorizeError, NodeTrace, NumericFactor, RefactorStats};
pub use ordering::Permutation;
pub use pattern::BlockPattern;
pub use plan::{
    ChildMerge, ExecutionPlan, PlanTask, PlanUnit, ScatterBlock, SplitConfig, SplitShape, UnitKind,
    SPLIT_ENV,
};
pub use symbolic::{SupernodeInfo, SymbolicFactor};
