//! Symmetric block-sparsity patterns.

/// The block-sparsity structure of a symmetric matrix, stored as the lower
/// triangle: for each block column `j`, the sorted block rows `i >= j` with a
/// structural nonzero.
///
/// In the SLAM backend each block corresponds to one variable (a pose or
/// landmark); an off-diagonal block `(i, j)` exists when some factor
/// constrains variables `i` and `j` jointly.
///
/// # Example
///
/// ```
/// use supernova_sparse::BlockPattern;
///
/// let mut p = BlockPattern::new(vec![3, 3, 3]);
/// p.add_block_edge(0, 2);
/// assert_eq!(p.col(0), &[0, 2]);
/// assert_eq!(p.col(2), &[2]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BlockPattern {
    block_dims: Vec<usize>,
    cols: Vec<Vec<usize>>,
}

impl BlockPattern {
    /// Creates a pattern with the given per-block dimensions and only
    /// diagonal blocks present.
    pub fn new(block_dims: Vec<usize>) -> Self {
        let cols = (0..block_dims.len()).map(|j| vec![j]).collect();
        BlockPattern { block_dims, cols }
    }

    /// Number of block columns.
    pub fn num_blocks(&self) -> usize {
        self.block_dims.len()
    }

    /// Per-block scalar dimensions.
    pub fn block_dims(&self) -> &[usize] {
        &self.block_dims
    }

    /// Total scalar dimension (sum of block dimensions).
    pub fn total_dim(&self) -> usize {
        self.block_dims.iter().sum()
    }

    /// Sorted block rows (≥ `j`) of block column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col(&self, j: usize) -> &[usize] {
        &self.cols[j]
    }

    /// Appends a new block column of scalar dimension `dim` (diagonal block
    /// only) and returns its index.
    pub fn push_block(&mut self, dim: usize) -> usize {
        let j = self.block_dims.len();
        self.block_dims.push(dim);
        self.cols.push(vec![j]);
        j
    }

    /// Records a structural nonzero between blocks `a` and `b` (order
    /// irrelevant; the entry is stored in the lower triangle). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn add_block_edge(&mut self, a: usize, b: usize) {
        assert!(
            a < self.num_blocks() && b < self.num_blocks(),
            "block index out of bounds"
        );
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let col = &mut self.cols[lo];
        if let Err(pos) = col.binary_search(&hi) {
            col.insert(pos, hi);
        }
    }

    /// Adds every pairwise edge among `blocks` (a clique, as produced by one
    /// factor touching several variables).
    pub fn add_clique(&mut self, blocks: &[usize]) {
        for (i, &a) in blocks.iter().enumerate() {
            for &b in &blocks[i + 1..] {
                self.add_block_edge(a, b);
            }
        }
    }

    /// Number of structural lower-triangle block entries (including
    /// diagonal).
    pub fn nnz_blocks(&self) -> usize {
        self.cols.iter().map(Vec::len).sum()
    }

    /// Applies a permutation: `perm.new_of_old(j)` gives the new position of
    /// old block `j`. Returns the permuted pattern.
    pub fn permuted(&self, perm: &crate::Permutation) -> BlockPattern {
        assert_eq!(perm.len(), self.num_blocks(), "permutation length mismatch");
        let mut dims = vec![0usize; self.num_blocks()];
        for old in 0..self.num_blocks() {
            dims[perm.new_of_old(old)] = self.block_dims[old];
        }
        let mut out = BlockPattern::new(dims);
        for j in 0..self.num_blocks() {
            for &i in &self.cols[j] {
                if i != j {
                    out.add_block_edge(perm.new_of_old(i), perm.new_of_old(j));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Permutation;

    #[test]
    fn new_has_diagonal_only() {
        let p = BlockPattern::new(vec![2, 3]);
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.total_dim(), 5);
        assert_eq!(p.col(0), &[0]);
        assert_eq!(p.col(1), &[1]);
        assert_eq!(p.nnz_blocks(), 2);
    }

    #[test]
    fn add_edge_is_idempotent_and_sorted() {
        let mut p = BlockPattern::new(vec![1; 4]);
        p.add_block_edge(3, 1);
        p.add_block_edge(1, 3);
        p.add_block_edge(1, 2);
        assert_eq!(p.col(1), &[1, 2, 3]);
        assert_eq!(p.nnz_blocks(), 6);
    }

    #[test]
    fn self_edge_is_noop() {
        let mut p = BlockPattern::new(vec![1; 2]);
        p.add_block_edge(1, 1);
        assert_eq!(p.col(1), &[1]);
    }

    #[test]
    fn clique_adds_all_pairs() {
        let mut p = BlockPattern::new(vec![1; 4]);
        p.add_clique(&[0, 2, 3]);
        assert_eq!(p.col(0), &[0, 2, 3]);
        assert_eq!(p.col(2), &[2, 3]);
    }

    #[test]
    fn push_block_extends() {
        let mut p = BlockPattern::new(vec![2]);
        let j = p.push_block(3);
        assert_eq!(j, 1);
        p.add_block_edge(0, 1);
        assert_eq!(p.col(0), &[0, 1]);
        assert_eq!(p.total_dim(), 5);
    }

    #[test]
    fn permuted_reverses() {
        let mut p = BlockPattern::new(vec![1, 2, 3]);
        p.add_block_edge(0, 2);
        let perm = Permutation::from_new_of_old(vec![2, 1, 0]);
        let q = p.permuted(&perm);
        assert_eq!(q.block_dims(), &[3, 2, 1]);
        // Old edge (0,2) becomes (2,0) -> stored at column 0.
        assert_eq!(q.col(0), &[0, 2]);
    }
}
