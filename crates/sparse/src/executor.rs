//! The execute half of the plan/exec split: reusable per-worker
//! workspaces, a scoped-thread worker pool, and the host schedule record.
//!
//! This module is one of the few places in the workspace allowed to spawn
//! OS threads (`supernova-analyze`'s `thread-spawn` lint keeps a declared
//! allowlist; the serve dispatcher's worker pool is the other notable
//! entry). The pool runs an
//! [`ExecutionPlan`](crate::ExecutionPlan)'s recomputed tasks
//! as soon as their recomputed children finish; because every task is a
//! pure function of the Hessian and its children's cached update matrices
//! — merged in the plan's fixed child order — results are bit-identical to
//! serial execution at any thread count.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::Instant;

use supernova_linalg::{KernelScratch, Mat, NumericMode};

use crate::interference::PlanCertificate;
use crate::ExecutionPlan;

/// A worker's preallocated scratch buffers, reused across every task the
/// worker executes (no per-node allocation on the hot path).
///
/// A workspace bundles the frontal matrix buffer with the blocked-kernel
/// pack arena ([`KernelScratch`]), so one checkout from the executor's
/// persistent pool covers everything a task touches. Both halves grow
/// monotonically and are fully overwritten per task, so reuse can never
/// change results.
#[derive(Debug, Default)]
pub struct Workspace {
    front: Mat,
    scratch: KernelScratch,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A workspace pre-grown for fronts of up to `front_elems` scalars
    /// (use [`ExecutionPlan::max_workspace_elems`]) and kernel pack
    /// buffers of up to `pack_elems` scalars each (use
    /// [`ExecutionPlan::max_pack_elems`]).
    pub fn with_capacity(front_elems: usize, pack_elems: usize) -> Self {
        let mut ws = Workspace::new();
        ws.reserve(front_elems, pack_elems);
        ws
    }

    /// Grows (never shrinks) both buffers to the given capacities. Cheap
    /// when already large enough; called once per plan execution, not per
    /// task.
    pub fn reserve(&mut self, front_elems: usize, pack_elems: usize) {
        self.front.reset(front_elems, 1);
        self.scratch.reserve(pack_elems);
    }

    /// Mode-aware [`reserve`](Self::reserve): under a narrow
    /// [`NumericMode`] the kernel arena additionally pre-grows its f32
    /// pack panels and the f32 front shadow (sized for the largest front,
    /// `front_elems` scalars), so narrow-mode factorization allocates
    /// nothing mid-execution either. For [`NumericMode::F64`] this is
    /// exactly `reserve`.
    pub fn reserve_mode(&mut self, mode: NumericMode, front_elems: usize, pack_elems: usize) {
        self.front.reset(front_elems, 1);
        self.scratch.reserve(pack_elems);
        if mode.is_narrow() {
            self.scratch.reserve_mode(mode, pack_elems, front_elems);
        }
    }

    /// The frontal matrix buffer; callers `reset` it to the task's front
    /// dimensions before assembly.
    pub fn front_mut(&mut self) -> &mut Mat {
        &mut self.front
    }

    /// The blocked-kernel pack arena (read-only; for stats).
    pub fn scratch(&self) -> &KernelScratch {
        &self.scratch
    }

    /// The blocked-kernel pack arena.
    pub fn scratch_mut(&mut self) -> &mut KernelScratch {
        &mut self.scratch
    }

    /// Both halves at once, mutably — a task factors `front` with the
    /// `_scratch` kernel variants fed by this workspace's own arena.
    pub fn parts(&mut self) -> (&mut Mat, &mut KernelScratch) {
        (&mut self.front, &mut self.scratch)
    }
}

/// How a plan execution sequenced its tasks. Recorded on every
/// [`HostSchedule`] (and exported as the `dispatch_mode` counter on exec
/// trace spans) so benchmarks and CI can see which dispatch path ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// Inline postorder on the calling thread (one worker).
    #[default]
    Serial = 0,
    /// Worker pool with per-task dependency counters and a shared ready
    /// queue — correct for *any* plan, but every task completion takes the
    /// queue lock.
    DepCounted = 1,
    /// Worker pool with one atomic claim cursor per topological level and
    /// a barrier between levels — no locks on the task path. Requires a
    /// [`PlanCertificate`] proving intra-level tasks access-disjoint.
    LevelBatched = 2,
}

impl DispatchMode {
    /// Stable numeric encoding for trace counters.
    pub fn as_u64(self) -> u64 {
        self as u64
    }
}

/// Which dispatch strategies an executor may pick from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Use level-batched dispatch whenever a covering [`PlanCertificate`]
    /// is supplied; fall back to dependency counting otherwise.
    #[default]
    Auto,
    /// Always use dependency-counted dispatch, even for certified plans
    /// (for A/B comparison and as a conservative escape hatch).
    DepCounted,
}

/// One executed task span in a host schedule: which worker ran which
/// supernode over which wall-clock interval.
#[derive(Clone, Debug)]
pub struct TaskSpan {
    /// Supernode / task id.
    pub node: usize,
    /// Worker index (0-based).
    pub worker: usize,
    /// Start time in seconds since the execution began.
    pub start: f64,
    /// End time in seconds since the execution began.
    pub end: f64,
    /// f64 multiply-add flops the dense kernels executed for this task, as
    /// metered by the worker's [`KernelScratch`]. Deterministic — a pure
    /// function of the task's front shape — unlike the wall-clock fields.
    pub kernel_flops: u64,
}

/// The wall-clock record of one plan execution on the host pool.
///
/// Spans are totally ordered by a single monotonic clock shared by every
/// worker: a parent's `start` is sampled only after each child's `end` has
/// been sampled, so the record itself witnesses the plan's happens-before
/// relation (checked by `supernova-analyze`'s host-schedule invariant).
#[derive(Clone, Debug, Default)]
pub struct HostSchedule {
    /// Executed spans, sorted by start time.
    pub spans: Vec<TaskSpan>,
    /// Number of workers the pool ran with.
    pub workers: usize,
    /// When this execution began, in seconds on the process-global trace
    /// epoch ([`supernova_trace::epoch_seconds`]) — span `start`/`end`
    /// values are relative to this origin, so `origin + start` places a
    /// task on the same timeline as every other traced subsystem.
    pub origin: f64,
    /// Which dispatch strategy sequenced this execution.
    pub mode: DispatchMode,
    /// Numeric precision the executing workers' kernels ran under.
    pub numeric: NumericMode,
    /// Number of sub-unit spans in this record: 0 when tasks executed
    /// whole, positive when the plan's split overlay was dispatched at
    /// unit granularity (each span is then one sub-unit, and a split task
    /// contributes several spans sharing its `node` id). Exported as the
    /// `split_mode` trace counter.
    pub split_units: usize,
}

impl HostSchedule {
    /// Wall-clock duration from first start to last end, in seconds.
    pub fn makespan(&self) -> f64 {
        let end = self.spans.iter().map(|s| s.end).fold(0.0, f64::max);
        let start = self
            .spans
            .iter()
            .map(|s| s.start)
            .fold(f64::INFINITY, f64::min);
        if self.spans.is_empty() {
            0.0
        } else {
            end - start
        }
    }

    /// Sum of span durations across all workers, in seconds.
    pub fn busy_time(&self) -> f64 {
        self.spans.iter().map(|s| s.end - s.start).sum()
    }

    /// Total dense-kernel flops across all executed tasks (deterministic,
    /// unlike the wall-clock fields).
    pub fn kernel_flops(&self) -> u64 {
        self.spans.iter().map(|s| s.kernel_flops).sum()
    }

    /// Total dispatch overhead in worker-seconds: wall-clock capacity the
    /// pool held (`makespan × workers`) minus the time workers actually
    /// spent inside tasks. Covers queue locking, dependency bookkeeping,
    /// barrier waits and level-tail idling.
    pub fn dispatch_overhead_s(&self) -> f64 {
        (self.makespan() * self.workers as f64 - self.busy_time()).max(0.0)
    }

    /// Dispatch overhead per executed task, in seconds — the metric the
    /// benchmark gate tracks across the dep-counted → level-batched
    /// transition.
    pub fn dispatch_overhead_per_task_s(&self) -> f64 {
        if self.spans.is_empty() {
            0.0
        } else {
            self.dispatch_overhead_s() / self.spans.len() as f64
        }
    }
}

/// Aggregate statistics over an executor's persistent workspace pool —
/// the zero-alloc hot-path witness: on a steady workload `grow_events`
/// and `high_water_elems` go flat after warm-up.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Workspaces currently parked in the pool (checked-out ones are not
    /// counted; between plan executions this equals the peak worker count
    /// seen so far).
    pub workspaces: usize,
    /// Sum of [`KernelScratch::grow_events`] over pooled workspaces.
    pub grow_events: u64,
    /// Max of [`KernelScratch::high_water_elems`] over pooled workspaces.
    pub high_water_elems: usize,
}

/// Host-side executor configuration: how many workers to run plans on.
///
/// `threads == 1` executes inline on the calling thread (no pool, no
/// locking); `threads > 1` spins up a scoped `std::thread` pool per
/// execution. Results are bit-identical either way.
///
/// The executor owns a persistent pool of [`Workspace`]s that survives
/// across `run` calls (and is shared by clones), so the steady-state
/// refactorization loop performs zero heap allocation: workers check a
/// warm workspace out at the start of an execution and return it at the
/// end. Workspace contents are fully overwritten per task, so pooling
/// never affects results.
#[derive(Clone, Debug)]
pub struct ParallelExecutor {
    threads: usize,
    policy: DispatchPolicy,
    numeric: NumericMode,
    pool: Arc<Mutex<Vec<Workspace>>>,
}

impl PartialEq for ParallelExecutor {
    /// Configuration equality only — the workspace pool is a cache and
    /// never affects behavior.
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads
            && self.policy == other.policy
            && self.numeric == other.numeric
    }
}

impl Eq for ParallelExecutor {}

impl ParallelExecutor {
    /// An executor with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        // Pre-populate one (empty, allocation-free) workspace per worker,
        // so the pool's workspace count is fixed at construction instead
        // of depending on how checkouts happened to overlap — a
        // prerequisite for deterministic pool statistics.
        // lint: allow(hot-alloc) — one-time constructor, not the task path
        let pool = (0..threads).map(|_| Workspace::new()).collect();
        ParallelExecutor {
            threads,
            policy: DispatchPolicy::default(),
            numeric: NumericMode::default(),
            pool: Arc::new(Mutex::new(pool)),
        }
    }

    /// Same executor with the given dispatch policy.
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the dispatch policy in place.
    pub fn set_policy(&mut self, policy: DispatchPolicy) {
        self.policy = policy;
    }

    /// The configured dispatch policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Same executor with the given numeric mode for its workers' kernels.
    pub fn with_numeric(mut self, numeric: NumericMode) -> Self {
        self.numeric = numeric;
        self
    }

    /// Overrides the numeric mode in place. Takes effect on the next plan
    /// execution; callers holding cached factors produced under another
    /// mode must invalidate them (the solver engine does).
    pub fn set_numeric_mode(&mut self, numeric: NumericMode) {
        self.numeric = numeric;
    }

    /// The numeric precision this executor's workers factor under.
    pub fn numeric(&self) -> NumericMode {
        self.numeric
    }

    /// A single-threaded (inline) executor.
    pub fn serial() -> Self {
        ParallelExecutor::new(1)
    }

    /// Reads the worker count from the `SUPERNOVA_THREADS` environment
    /// variable, falling back to the host's available parallelism, the
    /// dispatch policy from `SUPERNOVA_DISPATCH` (`depcount` forces
    /// dependency counting; anything else keeps the `Auto` default), and
    /// the numeric mode from [`supernova_linalg::NUMERIC_ENV`]
    /// (`f64`/`f32`/`f32f64`; unset or unrecognized means f64).
    pub fn from_env() -> Self {
        let threads = std::env::var("SUPERNOVA_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let policy = match std::env::var("SUPERNOVA_DISPATCH").as_deref() {
            Ok("depcount") => DispatchPolicy::DepCounted,
            _ => DispatchPolicy::Auto,
        };
        ParallelExecutor::new(threads)
            .with_policy(policy)
            .with_numeric(NumericMode::from_env())
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the persistent workspace pool (call between plan
    /// executions; checked-out workspaces are not visible).
    pub fn pool_stats(&self) -> PoolStats {
        // Poisoning requires a worker panic, which unwinds the whole
        // execution scope anyway.
        let pool = self.pool.lock().unwrap(); // lint: allow(unwrap)
        PoolStats {
            workspaces: pool.len(),
            grow_events: pool.iter().map(|w| w.scratch().grow_events()).sum(),
            high_water_elems: pool
                .iter()
                .map(|w| w.scratch().high_water_elems())
                .max()
                .unwrap_or(0),
        }
    }

    /// Checks a workspace out of the pool (or makes a cold one), grown
    /// for `plan`'s largest front, with the flop meter drained so per-task
    /// deltas start from zero.
    ///
    /// Takes the *largest* pooled workspace, not the most recently
    /// returned one: check-in order depends on worker timing, but the
    /// pool's multiset of workspaces does not, so best-fit selection
    /// makes the checked-out set — and therefore all arena growth — a
    /// deterministic function of the plan sequence. Once warm, the k-th
    /// largest workspace dominates every plan that ran at width ≥ k, and
    /// replays stop allocating entirely.
    fn checkout(&self, plan: &ExecutionPlan) -> Workspace {
        // lint: allow(unwrap) — poisoning as above
        let mut pool = self.pool.lock().unwrap();
        let largest = pool
            .iter()
            .enumerate()
            .max_by_key(|(i, w)| (w.scratch().high_water_elems(), usize::MAX - i))
            .map(|(i, _)| i);
        let mut ws = largest.map(|i| pool.swap_remove(i)).unwrap_or_default();
        drop(pool);
        ws.reserve_mode(
            self.numeric,
            plan.max_workspace_elems(),
            plan.max_pack_elems_mode(self.numeric),
        );
        ws.scratch_mut().take_flops();
        ws
    }

    /// Returns a workspace to the pool for the next execution.
    fn checkin(&self, ws: Workspace) {
        // lint: allow(unwrap) — poisoning as above
        self.pool.lock().unwrap().push(ws);
    }
}

impl Default for ParallelExecutor {
    /// Serial execution — the conservative default.
    fn default() -> Self {
        ParallelExecutor::serial()
    }
}

impl ParallelExecutor {
    /// Runs the plan's tasks flagged in `recompute`, calling `task_fn`
    /// exactly once per flagged task after all its flagged children have
    /// completed. `task_fn` publishes each task's result itself (the
    /// numeric layer uses a `OnceLock` slot per node), so the executor
    /// only sequences work and records the [`HostSchedule`].
    ///
    /// On error, in-flight tasks finish, no new tasks start, and the
    /// error from the lowest-numbered failing task is returned.
    pub fn run<E, F>(
        &self,
        plan: &ExecutionPlan,
        recompute: &[bool],
        task_fn: F,
    ) -> (Result<(), E>, HostSchedule)
    where
        E: Send,
        F: Fn(usize, &mut Workspace) -> Result<(), E> + Sync,
    {
        self.run_certified(plan, recompute, None, task_fn)
    }

    /// [`run`](Self::run), but with an optional level-safety proof. When
    /// `cert` [covers](PlanCertificate::covers) `plan` and the policy is
    /// [`DispatchPolicy::Auto`], multi-threaded executions use the
    /// lock-free level-batched dispatcher; otherwise the dependency-counted
    /// pool runs exactly as before. Results are bit-identical on every
    /// path — the certificate only changes *when* independent tasks run,
    /// never their inputs.
    pub fn run_certified<E, F>(
        &self,
        plan: &ExecutionPlan,
        recompute: &[bool],
        cert: Option<&PlanCertificate>,
        task_fn: F,
    ) -> (Result<(), E>, HostSchedule)
    where
        E: Send,
        F: Fn(usize, &mut Workspace) -> Result<(), E> + Sync,
    {
        assert_eq!(recompute.len(), plan.num_tasks());
        self.prepare(plan);
        let total: usize = recompute.iter().filter(|&&r| r).count();
        if self.threads <= 1 || total <= 1 {
            return run_serial(self, plan, recompute, &task_fn);
        }
        let certified = self.policy == DispatchPolicy::Auto && cert.is_some_and(|c| c.covers(plan));
        if certified {
            return run_batched(self, plan, recompute, &task_fn, self.threads);
        }
        run_pool(self, plan, recompute, &task_fn, self.threads)
    }

    /// [`run_certified`](Self::run_certified) at *sub-unit* granularity:
    /// when the plan carries a split overlay ([`ExecutionPlan::has_units`])
    /// split tasks execute as their panel/tile sub-units via `unit_fn`
    /// (called with a unit id from [`ExecutionPlan::units`]), while unsplit
    /// tasks still run whole through `task_fn`.
    ///
    /// Dispatch selection mirrors `run_certified`:
    ///
    /// - **serial** executions walk the postorder and run each split
    ///   task's units in canonical order — one [`TaskSpan`] per unit, so
    ///   the span structure is identical to a unit-granular parallel run
    ///   (the trace thread-invariance guarantee);
    /// - **certified** multi-threaded executions ([`DispatchPolicy::Auto`]
    ///   with a covering certificate) dispatch the plan's
    ///   [`unit_levels`](ExecutionPlan::unit_levels) through the
    ///   level-batched pool, with a low-latency spin-then-park barrier
    ///   between sub-levels (sub-levels are ~`2×panels` more frequent than
    ///   task levels, so barrier latency is on the critical path);
    /// - **uncertified** multi-threaded executions fall back to the
    ///   dependency-counted pool at whole-task granularity (`task_fn` for
    ///   every task) — the split overlay's intra-task happens-before is
    ///   proven by the same certificate that gates batching, so without it
    ///   the executor does not interleave sub-units across workers.
    ///
    /// Plans without units delegate to `run_certified` unchanged.
    pub fn run_certified_units<E, F, G>(
        &self,
        plan: &ExecutionPlan,
        recompute: &[bool],
        cert: Option<&PlanCertificate>,
        task_fn: F,
        unit_fn: G,
    ) -> (Result<(), E>, HostSchedule)
    where
        E: Send,
        F: Fn(usize, &mut Workspace) -> Result<(), E> + Sync,
        G: Fn(usize, &mut Workspace) -> Result<(), E> + Sync,
    {
        if !plan.has_units() {
            return self.run_certified(plan, recompute, cert, task_fn);
        }
        assert_eq!(recompute.len(), plan.num_tasks());
        self.prepare(plan);
        let total: usize = recompute.iter().filter(|&&r| r).count();
        if self.threads <= 1 || total <= 1 {
            return run_serial_units(self, plan, recompute, &task_fn, &unit_fn);
        }
        let certified = self.policy == DispatchPolicy::Auto && cert.is_some_and(|c| c.covers(plan));
        if certified {
            return run_batched_units(self, plan, recompute, &task_fn, &unit_fn, self.threads);
        }
        run_pool(self, plan, recompute, &task_fn, self.threads)
    }

    /// Grows every pooled workspace to `plan`'s bounds before any worker
    /// spawns. Doing all growth here, on the calling thread, makes the
    /// arena statistics a pure function of the plan sequence: which
    /// worker later picks which workspace (timing-dependent) can no
    /// longer decide whether a buffer grows. A no-op once the pool is
    /// warm enough for `plan` — the zero-alloc steady state.
    fn prepare(&self, plan: &ExecutionPlan) {
        let front = plan.max_workspace_elems();
        let pack = plan.max_pack_elems_mode(self.numeric);
        // lint: allow(unwrap) — poisoning requires a prior worker panic
        let mut pool = self.pool.lock().unwrap();
        for ws in pool.iter_mut() {
            ws.reserve_mode(self.numeric, front, pack);
        }
    }
}

/// Inline execution on the calling thread, in plan postorder.
fn run_serial<E, F>(
    exec: &ParallelExecutor,
    plan: &ExecutionPlan,
    recompute: &[bool],
    task_fn: &F,
) -> (Result<(), E>, HostSchedule)
where
    F: Fn(usize, &mut Workspace) -> Result<(), E>,
{
    let epoch = supernova_trace::epoch_seconds();
    let origin = Instant::now();
    let mut ws = exec.checkout(plan);
    // lint: allow(hot-alloc) — per-execution schedule record, not the task path
    let mut spans = Vec::new();
    let mut err = None;
    for &s in plan.postorder() {
        if !recompute[s] {
            continue;
        }
        let start = origin.elapsed().as_secs_f64();
        let res = task_fn(s, &mut ws);
        let end = origin.elapsed().as_secs_f64();
        spans.push(TaskSpan {
            node: s,
            worker: 0,
            start,
            end,
            kernel_flops: ws.scratch_mut().take_flops(),
        });
        if let Err(e) = res {
            err = Some(e);
            break;
        }
    }
    exec.checkin(ws);
    let sched = HostSchedule {
        spans,
        workers: 1,
        origin: epoch,
        mode: DispatchMode::Serial,
        numeric: exec.numeric,
        split_units: 0,
    };
    match err {
        Some(e) => (Err(e), sched),
        None => (Ok(()), sched),
    }
}

/// Inline unit-granular execution on the calling thread: plan postorder
/// over tasks, canonical unit order within each split task. Span structure
/// (one span per executed unit / whole task) matches the unit-batched
/// parallel path exactly.
fn run_serial_units<E, F, G>(
    exec: &ParallelExecutor,
    plan: &ExecutionPlan,
    recompute: &[bool],
    task_fn: &F,
    unit_fn: &G,
) -> (Result<(), E>, HostSchedule)
where
    F: Fn(usize, &mut Workspace) -> Result<(), E>,
    G: Fn(usize, &mut Workspace) -> Result<(), E>,
{
    let epoch = supernova_trace::epoch_seconds();
    let origin = Instant::now();
    let mut ws = exec.checkout(plan);
    // lint: allow(hot-alloc) — per-execution schedule record, not the task path
    let mut spans = Vec::new();
    let mut split_units = 0usize;
    let mut err = None;
    'tasks: for &s in plan.postorder() {
        if !recompute[s] {
            continue;
        }
        let (lo, hi) = plan.task_units_range(s);
        for uid in lo..hi {
            let whole = plan.units()[uid].kind == crate::plan::UnitKind::Whole;
            let start = origin.elapsed().as_secs_f64();
            let res = if whole {
                task_fn(s, &mut ws)
            } else {
                unit_fn(uid, &mut ws)
            };
            let end = origin.elapsed().as_secs_f64();
            spans.push(TaskSpan {
                node: s,
                worker: 0,
                start,
                end,
                kernel_flops: ws.scratch_mut().take_flops(),
            });
            if !whole {
                split_units += 1;
            }
            if let Err(e) = res {
                err = Some(e);
                break 'tasks;
            }
        }
    }
    exec.checkin(ws);
    let sched = HostSchedule {
        spans,
        workers: 1,
        origin: epoch,
        mode: DispatchMode::Serial,
        numeric: exec.numeric,
        split_units,
    };
    match err {
        Some(e) => (Err(e), sched),
        None => (Ok(()), sched),
    }
}

/// A sense-reversing barrier that spins briefly before parking on a
/// condvar. `std::sync::Barrier` always takes its mutex; with sub-level
/// dispatch there are ~`2×panels` barriers per task level, so the
/// microseconds each crossing costs sit directly on the critical path.
/// Workers spin for a short budget (the common case: the level's last
/// task finishes within it) and only then fall back to blocking — so an
/// idle machine still sleeps instead of burning a core. When the pool
/// oversubscribes the host (more parties than CPUs), spinning would
/// steal cycles from the very worker everyone is waiting on, so the
/// budget drops to zero and waiters park immediately.
struct SpinBarrier {
    parties: usize,
    spin_budget_micros: u128,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

/// How long a worker spins at a barrier before parking. Roughly two
/// orders of magnitude above a barrier crossing itself, two below a
/// typical panel kernel.
const BARRIER_SPIN_BUDGET_MICROS: u128 = 50;

impl SpinBarrier {
    fn new(parties: usize) -> Self {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SpinBarrier {
            parties,
            spin_budget_micros: if parties > host {
                0
            } else {
                BARRIER_SPIN_BUDGET_MICROS
            },
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all `parties` workers have called `wait` for the
    /// current generation.
    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arriver: reset the count *before* publishing the new
            // generation, so a worker racing into the next barrier cannot
            // observe the stale count.
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
            // Taking the lock orders this wake-up after any parker's
            // generation re-check, closing the missed-notify window.
            // lint: allow(unwrap) — poisoning requires a prior worker panic
            drop(self.lock.lock().unwrap());
            self.cv.notify_all();
            return;
        }
        if self.spin_budget_micros > 0 {
            // lint: allow(wall-clock) — spin budget, already in the
            // executor's wall-clock allowlist
            let spin_start = Instant::now();
            loop {
                if self.generation.load(Ordering::Acquire) != generation {
                    return;
                }
                if spin_start.elapsed().as_micros() > self.spin_budget_micros {
                    break;
                }
                std::hint::spin_loop();
            }
        }
        // lint: allow(unwrap) — poisoning as above
        let mut guard = self.lock.lock().unwrap();
        while self.generation.load(Ordering::Acquire) == generation {
            // lint: allow(unwrap) — poisoning as above
            guard = self.cv.wait(guard).unwrap();
        }
    }
}

/// Sub-level-batched worker-pool execution for certified split plans: one
/// atomic claim cursor per *sub-level* and a [`SpinBarrier`] between
/// sub-levels. The unit-extended [`PlanCertificate`] proves same-sub-level
/// units access-disjoint (tile rectangles) and every panel→update edge
/// ordered by the sub-level barrier, so any intra-sub-level interleaving
/// computes identical bits — the unit-granular analogue of
/// [`run_batched`]'s task-level argument.
fn run_batched_units<E, F, G>(
    exec: &ParallelExecutor,
    plan: &ExecutionPlan,
    recompute: &[bool],
    task_fn: &F,
    unit_fn: &G,
    threads: usize,
) -> (Result<(), E>, HostSchedule)
where
    E: Send,
    F: Fn(usize, &mut Workspace) -> Result<(), E> + Sync,
    G: Fn(usize, &mut Workspace) -> Result<(), E> + Sync,
{
    // Per-sub-level worklists of units of recomputed tasks, ascending unit
    // id so claim order is deterministic given claim timing.
    // lint: allow(hot-alloc) — per-execution dispatch tables, not the task path
    let sublevels: Vec<Vec<usize>> = plan
        .unit_levels()
        .iter()
        .map(|members| {
            let mut v: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&u| recompute[plan.units()[u].task])
                .collect();
            v.sort_unstable();
            v
        })
        .collect();
    let total_units: usize = sublevels.iter().map(Vec::len).sum();
    let cursors: Vec<AtomicUsize> = sublevels.iter().map(|_| AtomicUsize::new(0)).collect();
    let abort = AtomicBool::new(false);
    // lint: allow(hot-alloc) — per-execution error collector, not the task path
    let errors: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());
    let epoch = supernova_trace::epoch_seconds();
    let origin = Instant::now();
    let nworkers = threads.min(total_units.max(1));
    let barrier = SpinBarrier::new(nworkers);
    let split_units = AtomicUsize::new(0);

    // lint: allow(hot-alloc) — per-execution schedule record, not the task path
    let mut all_spans: Vec<TaskSpan> = Vec::with_capacity(total_units);
    std::thread::scope(|scope| {
        // lint: allow(hot-alloc) — per-execution worker handles, not the task path
        let mut handles = Vec::with_capacity(nworkers);
        for worker in 0..nworkers {
            let sublevels = &sublevels;
            let cursors = &cursors;
            let abort = &abort;
            let errors = &errors;
            let barrier = &barrier;
            let split_units = &split_units;
            handles.push(scope.spawn(move || {
                let mut ws = exec.checkout(plan);
                // lint: allow(hot-alloc) — per-execution schedule record, not the task path
                let mut spans: Vec<TaskSpan> = Vec::new();
                for (sub, members) in sublevels.iter().enumerate() {
                    loop {
                        if abort.load(Ordering::Acquire) {
                            break;
                        }
                        let idx = cursors[sub].fetch_add(1, Ordering::AcqRel);
                        let Some(&uid) = members.get(idx) else {
                            break;
                        };
                        let unit = &plan.units()[uid];
                        let whole = unit.kind == crate::plan::UnitKind::Whole;
                        let start = origin.elapsed().as_secs_f64();
                        let res = if whole {
                            task_fn(unit.task, &mut ws)
                        } else {
                            unit_fn(uid, &mut ws)
                        };
                        let end = origin.elapsed().as_secs_f64();
                        spans.push(TaskSpan {
                            node: unit.task,
                            worker,
                            start,
                            end,
                            kernel_flops: ws.scratch_mut().take_flops(),
                        });
                        if !whole {
                            split_units.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Err(e) = res {
                            // lint: allow(unwrap) — poisoning needs a prior worker panic
                            errors.lock().unwrap().push((unit.task, e));
                            abort.store(true, Ordering::Release);
                        }
                    }
                    // Every worker reaches every barrier — including after
                    // an abort — so no one is left waiting.
                    barrier.wait();
                }
                exec.checkin(ws);
                spans
            }));
        }
        for h in handles {
            if let Ok(spans) = h.join() {
                all_spans.extend(spans);
            }
        }
    });

    all_spans.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    let sched = HostSchedule {
        spans: all_spans,
        workers: nworkers,
        origin: epoch,
        mode: DispatchMode::LevelBatched,
        numeric: exec.numeric,
        split_units: split_units.into_inner(),
    };
    let mut errs = errors.into_inner().unwrap_or_default();
    if errs.is_empty() {
        (Ok(()), sched)
    } else {
        errs.sort_by_key(|&(t, _)| t);
        let (_, e) = errs.swap_remove(0);
        (Err(e), sched)
    }
}

/// Shared pool state: the ready queue plus progress/abort flags.
struct PoolState {
    ready: Mutex<Vec<usize>>,
    cv: Condvar,
    remaining: AtomicUsize,
    abort: AtomicBool,
}

/// Scoped worker-pool execution.
fn run_pool<E, F>(
    exec: &ParallelExecutor,
    plan: &ExecutionPlan,
    recompute: &[bool],
    task_fn: &F,
    threads: usize,
) -> (Result<(), E>, HostSchedule)
where
    E: Send,
    F: Fn(usize, &mut Workspace) -> Result<(), E> + Sync,
{
    let tasks = plan.tasks();
    // Dependency counters over *recomputed* children only: reused children
    // already have their cached results published.
    let pending: Vec<AtomicUsize> = tasks
        .iter()
        .map(|t| {
            let n = t.merges.iter().filter(|m| recompute[m.child]).count();
            AtomicUsize::new(n)
        })
        .collect();
    let initial: Vec<usize> = (0..tasks.len())
        .filter(|&s| recompute[s] && pending[s].load(Ordering::Relaxed) == 0)
        .collect();
    let total: usize = recompute.iter().filter(|&&r| r).count();
    let state = PoolState {
        ready: Mutex::new(initial),
        cv: Condvar::new(),
        remaining: AtomicUsize::new(total),
        abort: AtomicBool::new(false),
    };
    // lint: allow(hot-alloc) — per-execution error collector, not the task path
    let errors: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());
    let epoch = supernova_trace::epoch_seconds();
    let origin = Instant::now();
    let nworkers = threads.min(total.max(1));

    // lint: allow(hot-alloc) — per-execution schedule record, not the task path
    let mut all_spans: Vec<TaskSpan> = Vec::with_capacity(total);
    std::thread::scope(|scope| {
        // lint: allow(hot-alloc) — per-execution worker handles, not the task path
        let mut handles = Vec::with_capacity(nworkers);
        for worker in 0..nworkers {
            let state = &state;
            let errors = &errors;
            let pending = &pending;
            handles.push(scope.spawn(move || {
                let mut ws = exec.checkout(plan);
                // lint: allow(hot-alloc) — per-execution schedule record, not the task path
                let mut spans: Vec<TaskSpan> = Vec::new();
                loop {
                    let task = {
                        // Poisoning requires a worker panic, which
                        // aborts the whole scope anyway.
                        let mut q = state.ready.lock().unwrap(); // lint: allow(unwrap)
                        let picked = loop {
                            if state.abort.load(Ordering::Acquire)
                                || state.remaining.load(Ordering::Acquire) == 0
                            {
                                break None;
                            }
                            if let Some(pos) = q
                                .iter()
                                .enumerate()
                                .min_by_key(|&(_, &t)| t)
                                .map(|(i, _)| i)
                            {
                                break Some(q.swap_remove(pos));
                            }
                            // lint: allow(unwrap) — same poisoning argument
                            q = state.cv.wait(q).unwrap();
                        };
                        match picked {
                            Some(t) => t,
                            None => {
                                drop(q);
                                exec.checkin(ws);
                                return spans;
                            }
                        }
                    };
                    let start = origin.elapsed().as_secs_f64();
                    let res = task_fn(task, &mut ws);
                    let end = origin.elapsed().as_secs_f64();
                    spans.push(TaskSpan {
                        node: task,
                        worker,
                        start,
                        end,
                        kernel_flops: ws.scratch_mut().take_flops(),
                    });
                    match res {
                        Ok(()) => {
                            if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                                state.cv.notify_all();
                                exec.checkin(ws);
                                return spans;
                            }
                            let parent = plan.tasks()[task].parent;
                            if let Some(p) = parent.filter(|&p| recompute[p]) {
                                if pending[p].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    // lint: allow(unwrap) — poisoning as above
                                    state.ready.lock().unwrap().push(p);
                                    state.cv.notify_one();
                                }
                            }
                        }
                        Err(e) => {
                            // lint: allow(unwrap) — poisoning as above
                            errors.lock().unwrap().push((task, e));
                            state.abort.store(true, Ordering::Release);
                            state.cv.notify_all();
                            exec.checkin(ws);
                            return spans;
                        }
                    }
                }
            }));
        }
        for h in handles {
            if let Ok(spans) = h.join() {
                all_spans.extend(spans);
            }
        }
    });

    all_spans.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    let sched = HostSchedule {
        spans: all_spans,
        workers: nworkers,
        origin: epoch,
        mode: DispatchMode::DepCounted,
        numeric: exec.numeric,
        split_units: 0,
    };
    let mut errs = errors.into_inner().unwrap_or_default();
    if errs.is_empty() {
        (Ok(()), sched)
    } else {
        errs.sort_by_key(|&(t, _)| t);
        let (_, e) = errs.swap_remove(0);
        (Err(e), sched)
    }
}

/// Level-batched worker-pool execution for certified plans: one atomic
/// claim cursor per topological level and a [`Barrier`] between levels.
///
/// Inside a level there is no ordering at all — the [`PlanCertificate`]
/// proves intra-level tasks access-disjoint, so any interleaving computes
/// identical bits. *Between* levels the barrier provides the
/// happens-before edge every cross-level read (a parent consuming a
/// child's published update matrix) needs: a worker passes the level-`k`
/// barrier only after every level-`k` task has completed and published.
///
/// The task path holds no locks: claiming a task is one `fetch_add` on the
/// level cursor. On error the abort flag stops further claims, but every
/// worker still reaches every barrier so nobody deadlocks.
fn run_batched<E, F>(
    exec: &ParallelExecutor,
    plan: &ExecutionPlan,
    recompute: &[bool],
    task_fn: &F,
    threads: usize,
) -> (Result<(), E>, HostSchedule)
where
    E: Send,
    F: Fn(usize, &mut Workspace) -> Result<(), E> + Sync,
{
    let total: usize = recompute.iter().filter(|&&r| r).count();
    // Per-level worklists of recomputed tasks, ascending task id so claim
    // order is deterministic given claim timing.
    // lint: allow(hot-alloc) — per-execution dispatch tables, not the task path
    let levels: Vec<Vec<usize>> = plan
        .levels()
        .iter()
        .map(|members| {
            let mut v: Vec<usize> = members.iter().copied().filter(|&s| recompute[s]).collect();
            v.sort_unstable();
            v
        })
        .collect();
    let cursors: Vec<AtomicUsize> = levels.iter().map(|_| AtomicUsize::new(0)).collect();
    let abort = AtomicBool::new(false);
    // lint: allow(hot-alloc) — per-execution error collector, not the task path
    let errors: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());
    let epoch = supernova_trace::epoch_seconds();
    let origin = Instant::now();
    let nworkers = threads.min(total.max(1));
    let barrier = Barrier::new(nworkers);

    // lint: allow(hot-alloc) — per-execution schedule record, not the task path
    let mut all_spans: Vec<TaskSpan> = Vec::with_capacity(total);
    std::thread::scope(|scope| {
        // lint: allow(hot-alloc) — per-execution worker handles, not the task path
        let mut handles = Vec::with_capacity(nworkers);
        for worker in 0..nworkers {
            let levels = &levels;
            let cursors = &cursors;
            let abort = &abort;
            let errors = &errors;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                let mut ws = exec.checkout(plan);
                // lint: allow(hot-alloc) — per-execution schedule record, not the task path
                let mut spans: Vec<TaskSpan> = Vec::new();
                for (lvl, members) in levels.iter().enumerate() {
                    loop {
                        if abort.load(Ordering::Acquire) {
                            break;
                        }
                        let idx = cursors[lvl].fetch_add(1, Ordering::AcqRel);
                        let Some(&task) = members.get(idx) else {
                            break;
                        };
                        let start = origin.elapsed().as_secs_f64();
                        let res = task_fn(task, &mut ws);
                        let end = origin.elapsed().as_secs_f64();
                        spans.push(TaskSpan {
                            node: task,
                            worker,
                            start,
                            end,
                            kernel_flops: ws.scratch_mut().take_flops(),
                        });
                        if let Err(e) = res {
                            // lint: allow(unwrap) — poisoning needs a prior worker panic
                            errors.lock().unwrap().push((task, e));
                            abort.store(true, Ordering::Release);
                        }
                    }
                    // Every worker reaches every barrier — including after
                    // an abort — so no one is left waiting.
                    barrier.wait();
                }
                exec.checkin(ws);
                spans
            }));
        }
        for h in handles {
            if let Ok(spans) = h.join() {
                all_spans.extend(spans);
            }
        }
    });

    all_spans.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.node.cmp(&b.node))
    });
    let sched = HostSchedule {
        spans: all_spans,
        workers: nworkers,
        origin: epoch,
        mode: DispatchMode::LevelBatched,
        numeric: exec.numeric,
        split_units: 0,
    };
    let mut errs = errors.into_inner().unwrap_or_default();
    if errs.is_empty() {
        (Ok(()), sched)
    } else {
        errs.sort_by_key(|&(t, _)| t);
        let (_, e) = errs.swap_remove(0);
        (Err(e), sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockPattern, SymbolicFactor};
    use std::sync::atomic::AtomicU64;

    fn plan_of(n: usize) -> ExecutionPlan {
        let mut p = BlockPattern::new(vec![2; n]);
        for i in 0..n - 1 {
            p.add_block_edge(i, i + 1);
        }
        ExecutionPlan::from_symbolic(&SymbolicFactor::analyze(&p, 0))
    }

    #[test]
    fn serial_and_pool_run_every_task_once() {
        let plan = plan_of(24);
        let recompute = vec![true; plan.num_tasks()];
        for threads in [1usize, 2, 4] {
            let counts: Vec<AtomicUsize> =
                (0..plan.num_tasks()).map(|_| AtomicUsize::new(0)).collect();
            let (res, sched) =
                ParallelExecutor::new(threads).run::<(), _>(&plan, &recompute, |s, _ws| {
                    counts[s].fetch_add(1, Ordering::SeqCst);
                    Ok(())
                });
            assert!(res.is_ok());
            assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
            assert_eq!(sched.spans.len(), plan.num_tasks());
            assert!(sched.workers >= 1 && sched.workers <= threads);
        }
    }

    #[test]
    fn children_complete_before_parents_start() {
        let plan = plan_of(16);
        let recompute = vec![true; plan.num_tasks()];
        // A shared logical clock: each task records (start_tick, end_tick).
        let clock = AtomicU64::new(0);
        let marks: Vec<(AtomicU64, AtomicU64)> = (0..plan.num_tasks())
            .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
            .collect();
        let (res, _) = ParallelExecutor::new(3).run::<(), _>(&plan, &recompute, |s, _ws| {
            marks[s]
                .0
                .store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            marks[s]
                .1
                .store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            Ok(())
        });
        assert!(res.is_ok());
        for task in plan.tasks() {
            for mg in &task.merges {
                let child_end = marks[mg.child].1.load(Ordering::SeqCst);
                let parent_start = marks[task.node].0.load(Ordering::SeqCst);
                assert!(
                    child_end < parent_start,
                    "child {} overlapped parent {}",
                    mg.child,
                    task.node
                );
            }
        }
    }

    #[test]
    fn skips_non_recomputed_tasks() {
        let plan = plan_of(8);
        let mut recompute = vec![false; plan.num_tasks()];
        // Only the root subtree tail.
        let tail = *plan.postorder().last().expect("nonempty"); // lint: allow(unwrap)
        recompute[tail] = true;
        let ran = AtomicUsize::new(0);
        let (res, sched) = ParallelExecutor::new(4).run::<(), _>(&plan, &recompute, |_s, _ws| {
            ran.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        assert!(res.is_ok());
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(sched.spans.len(), 1);
    }

    #[test]
    fn error_reported_from_lowest_failing_task() {
        let plan = plan_of(12);
        let recompute = vec![true; plan.num_tasks()];
        for threads in [1usize, 4] {
            let (res, _) =
                ParallelExecutor::new(threads).run::<usize, _>(&plan, &recompute, |s, _ws| {
                    if s == 0 {
                        Err(s)
                    } else {
                        Ok(())
                    }
                });
            assert_eq!(res, Err(0));
        }
    }

    #[test]
    fn env_override_parses() {
        assert_eq!(ParallelExecutor::new(0).threads(), 1);
        assert!(ParallelExecutor::from_env().threads() >= 1);
    }

    #[test]
    fn workspace_pool_persists_and_stops_growing() {
        let plan = plan_of(20);
        let recompute = vec![true; plan.num_tasks()];
        for threads in [1usize, 3] {
            let exec = ParallelExecutor::new(threads);
            // One pre-created (empty) workspace per worker, nothing grown.
            assert_eq!(
                exec.pool_stats(),
                PoolStats {
                    workspaces: threads,
                    ..PoolStats::default()
                }
            );
            let task = |_s: usize, ws: &mut Workspace| -> Result<(), ()> {
                let (front, scratch) = ws.parts();
                front.reset(6, 6);
                scratch.reserve(64);
                Ok(())
            };
            let (res, _) = exec.run(&plan, &recompute, task);
            assert!(res.is_ok());
            let warm = exec.pool_stats();
            assert_eq!(warm.workspaces, threads);
            assert!(warm.high_water_elems >= 64);
            // Clones share the same pool; re-running must not grow it.
            let alias = exec.clone();
            for _ in 0..3 {
                let (res, _) = alias.run(&plan, &recompute, task);
                assert!(res.is_ok());
            }
            let steady = exec.pool_stats();
            assert_eq!(steady.workspaces, warm.workspaces, "pool count flat");
            assert_eq!(steady.grow_events, warm.grow_events, "no arena growth");
            assert_eq!(steady.high_water_elems, warm.high_water_elems);
        }
    }

    #[test]
    fn kernel_flops_are_recorded_per_span() {
        let plan = plan_of(6);
        let recompute = vec![true; plan.num_tasks()];
        let exec = ParallelExecutor::new(2);
        let (res, sched) = exec.run::<(), _>(&plan, &recompute, |_s, _ws| Ok(()));
        assert!(res.is_ok());
        // No kernels ran, so every span meters zero — but the field is
        // present and the schedule total agrees.
        assert!(sched.spans.iter().all(|s| s.kernel_flops == 0));
        assert_eq!(sched.kernel_flops(), 0);
    }

    #[test]
    fn certified_run_uses_level_batched_dispatch() {
        let plan = plan_of(24);
        let cert = crate::interference::certify(&plan).expect("chain plan certifies");
        let recompute = vec![true; plan.num_tasks()];
        for threads in [2usize, 4] {
            let counts: Vec<AtomicUsize> =
                (0..plan.num_tasks()).map(|_| AtomicUsize::new(0)).collect();
            let (res, sched) = ParallelExecutor::new(threads).run_certified::<(), _>(
                &plan,
                &recompute,
                Some(&cert),
                |s, _ws| {
                    counts[s].fetch_add(1, Ordering::SeqCst);
                    Ok(())
                },
            );
            assert!(res.is_ok());
            assert_eq!(sched.mode, DispatchMode::LevelBatched);
            assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
            assert_eq!(sched.spans.len(), plan.num_tasks());
        }
    }

    #[test]
    fn batched_dispatch_orders_children_before_parents() {
        let plan = plan_of(16);
        let cert = crate::interference::certify(&plan).expect("certifies");
        let recompute = vec![true; plan.num_tasks()];
        let clock = AtomicU64::new(0);
        let marks: Vec<(AtomicU64, AtomicU64)> = (0..plan.num_tasks())
            .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
            .collect();
        let (res, sched) = ParallelExecutor::new(3).run_certified::<(), _>(
            &plan,
            &recompute,
            Some(&cert),
            |s, _ws| {
                marks[s]
                    .0
                    .store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
                marks[s]
                    .1
                    .store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
                Ok(())
            },
        );
        assert!(res.is_ok());
        assert_eq!(sched.mode, DispatchMode::LevelBatched);
        for task in plan.tasks() {
            for mg in &task.merges {
                let child_end = marks[mg.child].1.load(Ordering::SeqCst);
                let parent_start = marks[task.node].0.load(Ordering::SeqCst);
                assert!(
                    child_end < parent_start,
                    "child {} overlapped parent {} under batched dispatch",
                    mg.child,
                    task.node
                );
            }
        }
    }

    #[test]
    fn dispatch_policy_and_coverage_gate_batching() {
        let plan = plan_of(12);
        let cert = crate::interference::certify(&plan).expect("certifies");
        let recompute = vec![true; plan.num_tasks()];
        // DepCounted policy ignores the certificate.
        let exec = ParallelExecutor::new(2).with_policy(DispatchPolicy::DepCounted);
        let (res, sched) =
            exec.run_certified::<(), _>(&plan, &recompute, Some(&cert), |_s, _ws| Ok(()));
        assert!(res.is_ok());
        assert_eq!(sched.mode, DispatchMode::DepCounted);
        // No certificate → dep-counted fallback.
        let (res, sched) =
            ParallelExecutor::new(2)
                .run_certified::<(), _>(&plan, &recompute, None, |_s, _ws| Ok(()));
        assert!(res.is_ok());
        assert_eq!(sched.mode, DispatchMode::DepCounted);
        // A certificate for a *different* plan must not be trusted.
        let other = plan_of(5);
        let foreign = crate::interference::certify(&other).expect("certifies");
        let (res, sched) = ParallelExecutor::new(2).run_certified::<(), _>(
            &plan,
            &recompute,
            Some(&foreign),
            |_s, _ws| Ok(()),
        );
        assert!(res.is_ok());
        assert_eq!(sched.mode, DispatchMode::DepCounted);
        // Serial executions are stamped Serial regardless of certificate.
        let (res, sched) = ParallelExecutor::serial().run_certified::<(), _>(
            &plan,
            &recompute,
            Some(&cert),
            |_s, _ws| Ok(()),
        );
        assert!(res.is_ok());
        assert_eq!(sched.mode, DispatchMode::Serial);
    }

    #[test]
    fn batched_dispatch_propagates_errors_without_deadlock() {
        let plan = plan_of(12);
        let cert = crate::interference::certify(&plan).expect("certifies");
        let recompute = vec![true; plan.num_tasks()];
        for threads in [2usize, 4] {
            let (res, _) = ParallelExecutor::new(threads).run_certified::<usize, _>(
                &plan,
                &recompute,
                Some(&cert),
                |s, _ws| {
                    if s == 0 {
                        Err(s)
                    } else {
                        Ok(())
                    }
                },
            );
            assert_eq!(res, Err(0));
        }
    }

    #[test]
    fn batched_dispatch_skips_non_recomputed_tasks() {
        let plan = plan_of(10);
        let cert = crate::interference::certify(&plan).expect("certifies");
        // Recompute only an upper slice of the tree so some levels are
        // partially (or entirely) empty.
        let mut recompute = vec![false; plan.num_tasks()];
        let n = plan.num_tasks();
        for s in n / 2..n {
            recompute[s] = true;
        }
        let want: usize = recompute.iter().filter(|&&r| r).count();
        let ran = AtomicUsize::new(0);
        let (res, sched) = ParallelExecutor::new(3).run_certified::<(), _>(
            &plan,
            &recompute,
            Some(&cert),
            |_s, _ws| {
                ran.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        );
        assert!(res.is_ok());
        assert_eq!(ran.load(Ordering::SeqCst), want);
        assert_eq!(sched.spans.len(), want);
    }

    #[test]
    fn dispatch_overhead_metrics_are_finite() {
        let plan = plan_of(10);
        let recompute = vec![true; plan.num_tasks()];
        let (res, sched) =
            ParallelExecutor::new(2).run::<(), _>(&plan, &recompute, |_s, _ws| Ok(()));
        assert!(res.is_ok());
        assert!(sched.dispatch_overhead_s() >= 0.0);
        assert!(sched.dispatch_overhead_per_task_s() >= 0.0);
        assert!(sched.dispatch_overhead_per_task_s().is_finite());
        assert_eq!(HostSchedule::default().dispatch_overhead_per_task_s(), 0.0);
    }

    fn split_plan() -> ExecutionPlan {
        let mut p = BlockPattern::new(vec![64, 64, 64]);
        p.add_block_edge(0, 2);
        p.add_block_edge(1, 2);
        ExecutionPlan::from_symbolic_with_split(
            &SymbolicFactor::analyze(&p, 0),
            crate::plan::SplitConfig::on(),
        )
    }

    #[test]
    fn unit_dispatch_runs_each_unit_once_at_every_thread_count() {
        let plan = split_plan();
        assert!(plan.has_units());
        let cert = crate::interference::certify(&plan).expect("split plan certifies");
        let recompute = vec![true; plan.num_tasks()];
        let whole_tasks: usize = (0..plan.num_tasks())
            .filter(|&s| plan.split_shape(s).is_none())
            .count();
        let split_unit_count: usize = plan
            .units()
            .iter()
            .filter(|u| u.kind != crate::plan::UnitKind::Whole)
            .count();
        for threads in [1usize, 2, 4] {
            let unit_counts: Vec<AtomicUsize> =
                (0..plan.num_units()).map(|_| AtomicUsize::new(0)).collect();
            let task_counts: Vec<AtomicUsize> =
                (0..plan.num_tasks()).map(|_| AtomicUsize::new(0)).collect();
            let (res, sched) = ParallelExecutor::new(threads).run_certified_units::<(), _, _>(
                &plan,
                &recompute,
                Some(&cert),
                |s, _ws| {
                    task_counts[s].fetch_add(1, Ordering::SeqCst);
                    Ok(())
                },
                |u, _ws| {
                    unit_counts[u].fetch_add(1, Ordering::SeqCst);
                    Ok(())
                },
            );
            assert!(res.is_ok());
            // Whole tasks ran once via task_fn, every sub-unit once via
            // unit_fn.
            assert_eq!(
                task_counts
                    .iter()
                    .map(|c| c.load(Ordering::SeqCst))
                    .sum::<usize>(),
                whole_tasks
            );
            for (uid, c) in unit_counts.iter().enumerate() {
                let expect = usize::from(plan.units()[uid].kind != crate::plan::UnitKind::Whole);
                assert_eq!(c.load(Ordering::SeqCst), expect, "unit {uid}");
            }
            // Identical span structure at every thread count.
            assert_eq!(sched.spans.len(), whole_tasks + split_unit_count);
            assert_eq!(sched.split_units, split_unit_count);
            let expect_mode = if threads == 1 {
                DispatchMode::Serial
            } else {
                DispatchMode::LevelBatched
            };
            assert_eq!(sched.mode, expect_mode);
        }
    }

    #[test]
    fn unit_dispatch_orders_panels_before_their_tiles() {
        let plan = split_plan();
        let cert = crate::interference::certify(&plan).expect("certifies");
        let recompute = vec![true; plan.num_tasks()];
        let clock = AtomicU64::new(0);
        let marks: Vec<(AtomicU64, AtomicU64)> = (0..plan.num_units())
            .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
            .collect();
        let (res, sched) = ParallelExecutor::new(3).run_certified_units::<(), _, _>(
            &plan,
            &recompute,
            Some(&cert),
            |_s, _ws| Ok(()),
            |u, _ws| {
                marks[u]
                    .0
                    .store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
                marks[u]
                    .1
                    .store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
                Ok(())
            },
        );
        assert!(res.is_ok());
        assert_eq!(sched.mode, DispatchMode::LevelBatched);
        for s in 0..plan.num_tasks() {
            if plan.split_shape(s).is_none() {
                continue;
            }
            let (lo, hi) = plan.task_units_range(s);
            let sub_of =
                |kind: &crate::plan::UnitKind| (lo..hi).find(|&u| plan.units()[u].kind == *kind);
            for uid in lo..hi {
                if let crate::plan::UnitKind::Tile { panel, .. } = plan.units()[uid].kind {
                    let pid = sub_of(&crate::plan::UnitKind::Panel { panel }).unwrap();
                    let panel_end = marks[pid].1.load(Ordering::SeqCst);
                    let tile_start = marks[uid].0.load(Ordering::SeqCst);
                    assert!(
                        panel_end < tile_start,
                        "tile {uid} started before panel {pid} finished"
                    );
                }
            }
            let fid = sub_of(&crate::plan::UnitKind::Finish).unwrap();
            let finish_start = marks[fid].0.load(Ordering::SeqCst);
            for uid in lo..fid {
                assert!(marks[uid].1.load(Ordering::SeqCst) < finish_start);
            }
        }
    }

    #[test]
    fn unit_dispatch_propagates_errors_without_deadlock() {
        let plan = split_plan();
        let cert = crate::interference::certify(&plan).expect("certifies");
        let recompute = vec![true; plan.num_tasks()];
        // Fail a mid-task unit (the first panel of the first split task).
        let bad = plan
            .units()
            .iter()
            .position(|u| matches!(u.kind, crate::plan::UnitKind::Panel { panel: 0 }))
            .expect("split plan has a panel");
        let victim = plan.units()[bad].task;
        for threads in [1usize, 2, 4] {
            let (res, _) = ParallelExecutor::new(threads).run_certified_units::<usize, _, _>(
                &plan,
                &recompute,
                Some(&cert),
                |_s, _ws| Ok(()),
                |u, _ws| {
                    if u == bad {
                        Err(plan.units()[u].task)
                    } else {
                        Ok(())
                    }
                },
            );
            assert_eq!(res, Err(victim));
        }
    }

    #[test]
    fn unit_dispatch_without_units_delegates_to_task_dispatch() {
        let plan = plan_of(12);
        assert!(!plan.has_units());
        let cert = crate::interference::certify(&plan).expect("certifies");
        let recompute = vec![true; plan.num_tasks()];
        let units_called = AtomicUsize::new(0);
        let (res, sched) = ParallelExecutor::new(2).run_certified_units::<(), _, _>(
            &plan,
            &recompute,
            Some(&cert),
            |_s, _ws| Ok(()),
            |_u, _ws| {
                units_called.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        );
        assert!(res.is_ok());
        assert_eq!(units_called.load(Ordering::SeqCst), 0);
        assert_eq!(sched.mode, DispatchMode::LevelBatched);
        assert_eq!(sched.spans.len(), plan.num_tasks());
        assert_eq!(sched.split_units, 0);
    }

    #[test]
    fn spin_barrier_synchronizes_rounds() {
        let parties = 4usize;
        let rounds = 200usize;
        let barrier = SpinBarrier::new(parties);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..parties {
                scope.spawn(|| {
                    for round in 0..rounds {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        // After the barrier every increment of this round
                        // must be visible.
                        assert!(counter.load(Ordering::SeqCst) >= (round + 1) * parties);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), parties * rounds);
    }

    #[test]
    fn makespan_and_busy_time_are_consistent() {
        let plan = plan_of(10);
        let recompute = vec![true; plan.num_tasks()];
        let (res, sched) = ParallelExecutor::new(2).run::<(), _>(&plan, &recompute, |_s, ws| {
            // Touch the workspace so the buffer path is exercised.
            ws.front_mut().reset(4, 4);
            Ok(())
        });
        assert!(res.is_ok());
        assert!(sched.makespan() >= 0.0);
        assert!(sched.busy_time() >= 0.0);
        for w in sched.spans.windows(2) {
            assert!(w[0].start <= w[1].start, "spans sorted by start");
        }
    }
}
