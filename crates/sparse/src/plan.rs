//! The reusable execution-plan IR: the numeric factorization's *plan* half.
//!
//! [`ExecutionPlan::from_symbolic`] lowers a [`SymbolicFactor`] into a flat
//! task list with everything the numeric *execute* half needs precomputed:
//! topological levels, per-task dependency structure, front-local scatter
//! offsets for Hessian assembly, per-child extend-add scatter blocks, and
//! per-task workspace sizes. The plan is derived once per symbolic change
//! and reused across every re-factorization until the structure (or the
//! elimination order) changes — see `solvers::engine`'s plan cache.
//!
//! Because every scatter target is fixed at plan time and children are
//! merged in the plan's fixed child order, executing the plan serially or
//! on the worker pool ([`crate::ParallelExecutor`]) produces bit-identical
//! factors: each task is a pure function of `H` and its children's cached
//! update matrices, independent of completion order.

use crate::SymbolicFactor;

/// One rectangular block copied (added) from a child's update matrix into
/// the parent's frontal workspace during extend-add.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScatterBlock {
    /// Row offset in the child's update matrix.
    pub src_row: usize,
    /// Column offset in the child's update matrix.
    pub src_col: usize,
    /// Row offset in the parent's front.
    pub dst_row: usize,
    /// Column offset in the parent's front.
    pub dst_col: usize,
    /// Block height (scalar rows).
    pub rows: usize,
    /// Block width (scalar columns).
    pub cols: usize,
}

/// The extend-add of one child into its parent's front: the child task id
/// and every scatter-block target, fixed at plan time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChildMerge {
    /// Task (= supernode) index of the child whose update matrix is merged.
    pub child: usize,
    /// Scatter targets, in a fixed deterministic order.
    pub blocks: Vec<ScatterBlock>,
    /// Total scalar elements scattered (for op tracing).
    pub elems: usize,
}

/// One supernode task of the plan.
#[derive(Clone, Debug)]
pub struct PlanTask {
    /// Supernode id — equals the task's index in [`ExecutionPlan::tasks`].
    pub node: usize,
    /// Parent task, `None` for elimination-forest roots.
    pub parent: Option<usize>,
    /// Number of child tasks (the task's initial dependency count).
    pub num_children: usize,
    /// Topological level: 0 for leaves, `1 + max(children)` otherwise.
    pub level: usize,
    /// First owned block column.
    pub first_col: usize,
    /// Number of owned block columns.
    pub ncols: usize,
    /// Scalar pivot dimension `m`.
    pub pivot_dim: usize,
    /// Scalar remainder dimension `n`.
    pub rem_dim: usize,
    /// `(block_row, front-local scalar offset)` for every front block row,
    /// sorted by block row — the precomputed scatter-target table that
    /// replaces the per-node map the executor used to allocate.
    pub row_offsets: Vec<(usize, usize)>,
    /// Front-local scalar offset of each owned pivot column.
    pub col_offsets: Vec<usize>,
    /// Extend-add scatter programs, one per child, in the symbolic
    /// factor's fixed child order (the determinism anchor).
    pub merges: Vec<ChildMerge>,
    /// Structural signature (for numeric-cache reuse across re-analyses).
    pub sig: (usize, usize, u64),
    /// Scalar elements of frontal workspace this task needs.
    pub workspace_elems: usize,
}

impl PlanTask {
    /// Scalar dimension of the square frontal workspace (`m + n`).
    pub fn front_dim(&self) -> usize {
        self.pivot_dim + self.rem_dim
    }

    /// Block columns owned by this task.
    pub fn cols(&self) -> std::ops::Range<usize> {
        self.first_col..self.first_col + self.ncols
    }

    /// Front-local scalar offset of block row `b`, if `b` is in the front.
    pub fn local_offset(&self, b: usize) -> Option<usize> {
        self.row_offsets
            .binary_search_by_key(&b, |&(row, _)| row)
            .ok()
            .map(|i| self.row_offsets[i].1)
    }

    /// Approximate factorization flops of the task (Cholesky + TRSM +
    /// SYRK), the cost weight used for critical-path analysis.
    pub fn cost(&self) -> u64 {
        let m = self.pivot_dim as u64;
        let n = self.rem_dim as u64;
        m * m * m / 3 + n * m * m + n * n * m
    }
}

/// A topologically-leveled, scatter-resolved execution plan for the
/// supernodal numeric factorization, derived from a [`SymbolicFactor`].
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    tasks: Vec<PlanTask>,
    postorder: Vec<usize>,
    levels: Vec<Vec<usize>>,
    node_of_block: Vec<usize>,
    max_workspace_elems: usize,
    total_dim: usize,
}

impl ExecutionPlan {
    /// Lowers a symbolic factorization into an execution plan.
    pub fn from_symbolic(sym: &SymbolicFactor) -> Self {
        let nodes = sym.nodes();
        let dims = sym.block_dims();
        let mut tasks: Vec<PlanTask> = Vec::with_capacity(nodes.len());
        for (s, info) in nodes.iter().enumerate() {
            // Front-local scalar offsets, in `rows` order (sorted already).
            let mut row_offsets = Vec::with_capacity(info.rows.len());
            let mut off = 0usize;
            for &br in &info.rows {
                row_offsets.push((br, off));
                off += dims[br];
            }
            debug_assert!(row_offsets.windows(2).all(|w| w[0].0 < w[1].0));
            let col_offsets: Vec<usize> =
                row_offsets[..info.ncols].iter().map(|&(_, o)| o).collect();

            // Extend-add scatter programs, fixed child order.
            let mut merges = Vec::with_capacity(info.children.len());
            for &c in &info.children {
                let rem = nodes[c].remainder_rows();
                let mut coff = Vec::with_capacity(rem.len());
                let mut o = 0usize;
                for &br in rem {
                    coff.push(o);
                    o += dims[br];
                }
                let mut blocks = Vec::new();
                let mut elems = 0usize;
                for (bj, &rj) in rem.iter().enumerate() {
                    let w = dims[rj];
                    // Multifrontal containment: a child's remainder rows
                    // are a subset of its parent's front.
                    let dst_col = row_offsets
                        .binary_search_by_key(&rj, |&(row, _)| row)
                        .map(|i| row_offsets[i].1)
                        // lint: allow(unwrap) — containment documented above
                        .expect("child remainder row missing from parent front");
                    for (bi, &ri) in rem.iter().enumerate().skip(bj) {
                        let h = dims[ri];
                        let dst_row = row_offsets
                            .binary_search_by_key(&ri, |&(row, _)| row)
                            .map(|i| row_offsets[i].1)
                            // lint: allow(unwrap) — same containment argument
                            .expect("child remainder row missing from parent front");
                        blocks.push(ScatterBlock {
                            src_row: coff[bi],
                            src_col: coff[bj],
                            dst_row,
                            dst_col,
                            rows: h,
                            cols: w,
                        });
                        elems += h * w;
                    }
                }
                merges.push(ChildMerge {
                    child: c,
                    blocks,
                    elems,
                });
            }

            let front = info.front_dim();
            tasks.push(PlanTask {
                node: s,
                parent: info.parent,
                num_children: info.children.len(),
                level: 0, // filled below
                first_col: info.first_col,
                ncols: info.ncols,
                pivot_dim: info.pivot_dim,
                rem_dim: info.rem_dim,
                row_offsets,
                col_offsets,
                merges,
                sig: info.signature(),
                workspace_elems: front * front,
            });
        }

        // Topological levels in one postorder sweep (children first).
        let postorder = sym.postorder().to_vec();
        for &s in &postorder {
            let lvl = tasks[s]
                .merges
                .iter()
                .map(|m| tasks[m.child].level + 1)
                .max()
                .unwrap_or(0);
            tasks[s].level = lvl;
        }
        let depth = tasks.iter().map(|t| t.level).max().map_or(0, |l| l + 1);
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); depth];
        for t in &tasks {
            levels[t.level].push(t.node);
        }

        let max_workspace_elems = tasks.iter().map(|t| t.workspace_elems).max().unwrap_or(0);
        let node_of_block = (0..sym.num_blocks())
            .map(|b| sym.node_of_block(b))
            .collect();
        ExecutionPlan {
            tasks,
            postorder,
            levels,
            node_of_block,
            max_workspace_elems,
            total_dim: sym.total_dim(),
        }
    }

    /// The tasks, indexed by supernode id.
    pub fn tasks(&self) -> &[PlanTask] {
        &self.tasks
    }

    /// Number of tasks (= supernodes).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Task ids in children-before-parents order.
    pub fn postorder(&self) -> &[usize] {
        &self.postorder
    }

    /// Task ids grouped by topological level, leaves first. Tasks within a
    /// level are mutually independent.
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Mutable task table, exposed for mutation testing of the
    /// interference checker. Any structural edit changes the plan
    /// fingerprint and so invalidates previously issued certificates —
    /// which is exactly what the mutation suite asserts.
    #[doc(hidden)]
    pub fn tasks_mut(&mut self) -> &mut [PlanTask] {
        &mut self.tasks
    }

    /// Mutable level table, exposed for mutation testing of the
    /// interference checker (see [`Self::tasks_mut`]).
    #[doc(hidden)]
    pub fn levels_mut(&mut self) -> &mut Vec<Vec<usize>> {
        &mut self.levels
    }

    /// The task owning block column `b`.
    pub fn node_of_block(&self, b: usize) -> usize {
        self.node_of_block[b]
    }

    /// Number of block columns the plan covers.
    pub fn num_blocks(&self) -> usize {
        self.node_of_block.len()
    }

    /// Total scalar dimension of the system.
    pub fn total_dim(&self) -> usize {
        self.total_dim
    }

    /// Largest frontal workspace (scalar elements) any task needs — the
    /// size each worker's reusable buffer is grown to once.
    pub fn max_workspace_elems(&self) -> usize {
        self.max_workspace_elems
    }

    /// Scalars each kernel pack buffer needs for the plan's largest front
    /// ([`supernova_linalg::pack_elems_bound`] over all tasks) — the size
    /// each worker's [`supernova_linalg::KernelScratch`] is pre-grown to,
    /// so the blocked kernels never allocate mid-execution.
    pub fn max_pack_elems(&self) -> usize {
        self.tasks
            .iter()
            .map(|t| supernova_linalg::pack_elems_bound(t.front_dim()))
            .max()
            .unwrap_or(0)
    }

    /// Mode-aware variant of [`Self::max_pack_elems`]: the narrow modes
    /// pack into f32 arenas whose row-panel rounding differs (the f32
    /// engine uses wider microkernel tiles), so workers executing under a
    /// narrow [`supernova_linalg::NumericMode`] pre-grow their scratch
    /// with this bound instead.
    pub fn max_pack_elems_mode(&self, mode: supernova_linalg::NumericMode) -> usize {
        self.tasks
            .iter()
            .map(|t| supernova_linalg::pack_elems_bound_mode(t.front_dim(), mode))
            .max()
            .unwrap_or(0)
    }

    /// Every listed task plus all its ancestors, deduplicated and sorted —
    /// the affected set of an incremental re-factorization.
    pub fn ancestor_closure(&self, seeds: impl IntoIterator<Item = usize>) -> Vec<usize> {
        let mut marked = vec![false; self.tasks.len()];
        for s in seeds {
            let mut cur = Some(s);
            while let Some(c) = cur {
                if marked[c] {
                    break;
                }
                marked[c] = true;
                cur = self.tasks[c].parent;
            }
        }
        (0..self.tasks.len()).filter(|&s| marked[s]).collect()
    }

    /// Sum of per-task costs — the serial work of a full execution.
    pub fn total_cost(&self) -> u64 {
        self.tasks.iter().map(PlanTask::cost).sum()
    }

    /// Cost of the heaviest root-to-leaf dependency chain — the lower bound
    /// on any parallel execution. `total_cost / critical_path_cost` is the
    /// plan's available speedup.
    pub fn critical_path_cost(&self) -> u64 {
        let mut path = vec![0u64; self.tasks.len()];
        let mut best = 0u64;
        for &s in &self.postorder {
            let sub = self.tasks[s]
                .merges
                .iter()
                .map(|m| path[m.child])
                .max()
                .unwrap_or(0);
            path[s] = sub + self.tasks[s].cost();
            best = best.max(path[s]);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockPattern;

    fn loopy() -> SymbolicFactor {
        let mut p = BlockPattern::new(vec![2, 3, 1, 2, 2, 3, 1, 2]);
        for i in 0..7 {
            p.add_block_edge(i, i + 1);
        }
        p.add_block_edge(0, 5);
        p.add_block_edge(2, 7);
        p.add_block_edge(3, 6);
        SymbolicFactor::analyze(&p, 0)
    }

    #[test]
    fn plan_mirrors_symbolic_structure() {
        let sym = loopy();
        let plan = ExecutionPlan::from_symbolic(&sym);
        assert_eq!(plan.num_tasks(), sym.nodes().len());
        assert_eq!(plan.postorder(), sym.postorder());
        for (task, info) in plan.tasks().iter().zip(sym.nodes()) {
            assert_eq!(task.parent, info.parent);
            assert_eq!(task.num_children, info.children.len());
            assert_eq!(task.pivot_dim, info.pivot_dim);
            assert_eq!(task.rem_dim, info.rem_dim);
            assert_eq!(task.sig, info.signature());
            assert_eq!(task.workspace_elems, info.front_dim() * info.front_dim());
            // Child order is exactly the symbolic child order.
            let merge_children: Vec<usize> = task.merges.iter().map(|m| m.child).collect();
            assert_eq!(merge_children, info.children);
        }
    }

    #[test]
    fn row_offsets_are_partial_sums_of_dims() {
        let sym = loopy();
        let plan = ExecutionPlan::from_symbolic(&sym);
        for (task, info) in plan.tasks().iter().zip(sym.nodes()) {
            let mut off = 0usize;
            for (&br, &(row, o)) in info.rows.iter().zip(&task.row_offsets) {
                assert_eq!(br, row);
                assert_eq!(o, off);
                assert_eq!(task.local_offset(br), Some(off));
                off += sym.block_dims()[br];
            }
            assert_eq!(off, task.front_dim());
            assert_eq!(task.local_offset(usize::MAX), None);
        }
    }

    #[test]
    fn levels_respect_dependencies() {
        let sym = loopy();
        let plan = ExecutionPlan::from_symbolic(&sym);
        let covered: usize = plan.levels().iter().map(Vec::len).sum();
        assert_eq!(covered, plan.num_tasks());
        for task in plan.tasks() {
            if let Some(p) = task.parent {
                assert!(
                    plan.tasks()[p].level > task.level,
                    "parent {p} not above child {}",
                    task.node
                );
            }
        }
    }

    #[test]
    fn scatter_blocks_stay_inside_parent_front() {
        let sym = loopy();
        let plan = ExecutionPlan::from_symbolic(&sym);
        for task in plan.tasks() {
            let dim = task.front_dim();
            for mg in &task.merges {
                let child = &plan.tasks()[mg.child];
                let cdim = child.rem_dim;
                let mut elems = 0usize;
                for b in &mg.blocks {
                    assert!(b.dst_row + b.rows <= dim && b.dst_col + b.cols <= dim);
                    assert!(b.src_row + b.rows <= cdim && b.src_col + b.cols <= cdim);
                    // Lower triangle only.
                    assert!(b.dst_row >= b.dst_col);
                    elems += b.rows * b.cols;
                }
                assert_eq!(elems, mg.elems);
            }
        }
    }

    #[test]
    fn ancestor_closure_matches_symbolic() {
        let sym = loopy();
        let plan = ExecutionPlan::from_symbolic(&sym);
        for seed in 0..plan.num_tasks() {
            assert_eq!(plan.ancestor_closure([seed]), sym.ancestor_closure([seed]));
        }
    }

    #[test]
    fn critical_path_bounded_by_total() {
        let plan = ExecutionPlan::from_symbolic(&loopy());
        assert!(plan.total_cost() > 0);
        assert!(plan.critical_path_cost() <= plan.total_cost());
        assert!(plan.critical_path_cost() > 0);
    }
}
