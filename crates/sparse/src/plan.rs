//! The reusable execution-plan IR: the numeric factorization's *plan* half.
//!
//! [`ExecutionPlan::from_symbolic`] lowers a [`SymbolicFactor`] into a flat
//! task list with everything the numeric *execute* half needs precomputed:
//! topological levels, per-task dependency structure, front-local scatter
//! offsets for Hessian assembly, per-child extend-add scatter blocks, and
//! per-task workspace sizes. The plan is derived once per symbolic change
//! and reused across every re-factorization until the structure (or the
//! elimination order) changes — see `solvers::engine`'s plan cache.
//!
//! Because every scatter target is fixed at plan time and children are
//! merged in the plan's fixed child order, executing the plan serially or
//! on the worker pool ([`crate::ParallelExecutor`]) produces bit-identical
//! factors: each task is a pure function of `H` and its children's cached
//! update matrices, independent of completion order.

use crate::SymbolicFactor;
use supernova_linalg::split::SPLIT_NB;

/// Environment variable overriding the intra-front split configuration:
/// `off` (or `0`) disables splitting, `on` (or `1`) selects the defaults,
/// `<min_dim>` sets the split threshold, `<min_dim>:<tile>` also sets the
/// strip width (rounded up to a multiple of the kernel panel width).
pub const SPLIT_ENV: &str = "SUPERNOVA_SPLIT";

/// Configuration of the intra-front split pass: which fronts are
/// decomposed into panel/tile sub-units and how wide the column strips
/// are. Part of the plan-cache key and the plan fingerprint — two plans
/// built under different split configurations are different plans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SplitConfig {
    /// Whether the split pass runs at all.
    pub enabled: bool,
    /// Fronts with scalar dimension `>= min_dim` are split (subject to the
    /// strip count actually exceeding 1).
    pub min_dim: usize,
    /// Column-strip width in scalars; always a multiple of the kernel
    /// panel width [`SPLIT_NB`] so every panel lies in exactly one strip.
    pub tile: usize,
}

impl SplitConfig {
    /// Default split threshold: a front two panels wide is the smallest
    /// one with any inter-strip update work to parallelize.
    pub const DEFAULT_MIN_DIM: usize = 2 * SPLIT_NB;

    /// Splitting enabled with default threshold and strip width.
    pub fn on() -> Self {
        SplitConfig {
            enabled: true,
            min_dim: Self::DEFAULT_MIN_DIM,
            tile: SPLIT_NB,
        }
    }

    /// Splitting disabled; plans carry only whole-task units.
    pub fn off() -> Self {
        SplitConfig {
            enabled: false,
            ..Self::on()
        }
    }

    /// This configuration with the split threshold replaced.
    pub fn with_min_dim(self, min_dim: usize) -> Self {
        SplitConfig { min_dim, ..self }
    }

    /// This configuration with the strip width replaced (rounded up to a
    /// positive multiple of [`SPLIT_NB`]).
    pub fn with_tile(self, tile: usize) -> Self {
        SplitConfig {
            tile: tile.div_ceil(SPLIT_NB).max(1) * SPLIT_NB,
            ..self
        }
    }

    /// Reads [`SPLIT_ENV`]; unset or unparsable values fall back to the
    /// default (`on`), matching the numeric-mode env convention.
    pub fn from_env() -> Self {
        match std::env::var(SPLIT_ENV) {
            Ok(v) => Self::parse(&v).unwrap_or_else(Self::on),
            Err(_) => Self::on(),
        }
    }

    /// Parses the [`SPLIT_ENV`] syntax; `None` on malformed input.
    pub fn parse(v: &str) -> Option<Self> {
        let v = v.trim();
        match v {
            "off" | "0" => return Some(Self::off()),
            "on" | "1" | "" => return Some(Self::on()),
            _ => {}
        }
        let (min_s, tile_s) = match v.split_once(':') {
            Some((m, t)) => (m, Some(t)),
            None => (v, None),
        };
        let min_dim: usize = min_s.trim().parse().ok()?;
        let cfg = Self::on().with_min_dim(min_dim);
        match tile_s {
            Some(t) => {
                let tile: usize = t.trim().parse().ok()?;
                if tile == 0 {
                    return None;
                }
                Some(cfg.with_tile(tile))
            }
            None => Some(cfg),
        }
    }
}

impl Default for SplitConfig {
    fn default() -> Self {
        Self::on()
    }
}

/// Strip/panel geometry of one split task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitShape {
    /// Column-strip width in scalars (= the plan's `SplitConfig::tile`).
    pub tile: usize,
    /// Number of column strips over the front (`ceil(front_dim / tile)`).
    pub strips: usize,
    /// Number of `SPLIT_NB`-wide factorization panels over the pivot
    /// columns (`ceil(pivot_dim / SPLIT_NB)`).
    pub panels: usize,
}

impl SplitShape {
    /// Width of strip `s` of a `front_dim`-wide front.
    pub fn strip_width(&self, s: usize, front_dim: usize) -> usize {
        self.tile.min(front_dim - s * self.tile)
    }

    /// The strip containing factorization panel `p`.
    pub fn strip_of_panel(&self, p: usize) -> usize {
        p * SPLIT_NB / self.tile
    }

    /// `(k, b)` of factorization panel `p`: first pivot column and width.
    pub fn panel_cols(&self, p: usize, pivot_dim: usize) -> (usize, usize) {
        let k = p * SPLIT_NB;
        (k, SPLIT_NB.min(pivot_dim - k))
    }
}

/// The work a single dispatchable sub-unit of a task performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitKind {
    /// The entire task, undecomposed (every unit of an unsplit task).
    Whole,
    /// Zero + assemble (Hessian scatter, child extend-adds) one column
    /// strip of the front, demoting it under a narrow numeric mode.
    Assemble {
        /// Strip index.
        strip: usize,
    },
    /// One serial panel step: diagonal Cholesky, below-panel TRSM and the
    /// trailing update restricted to the panel's own strip.
    Panel {
        /// Panel index.
        panel: usize,
    },
    /// The trailing update of one panel restricted to one later strip's
    /// columns (reads the panel strip, writes the destination strip).
    Tile {
        /// Panel index whose update this tile belongs to.
        panel: usize,
        /// Destination strip index.
        strip: usize,
    },
    /// Gather the factor and update matrix out of the strips (promoting
    /// under a narrow mode) and publish the task's result + trace.
    Finish,
}

/// One dispatchable sub-unit of the plan, addressed by index into
/// [`ExecutionPlan::units`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanUnit {
    /// The task this unit belongs to.
    pub task: usize,
    /// What the unit does.
    pub kind: UnitKind,
    /// Global sub-level index (the unit-granular analogue of a task's
    /// topological level): all units of sub-level `i` are mutually
    /// independent, and depend only on sub-levels `< i`.
    pub sublevel: usize,
}

/// One rectangular block copied (added) from a child's update matrix into
/// the parent's frontal workspace during extend-add.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScatterBlock {
    /// Row offset in the child's update matrix.
    pub src_row: usize,
    /// Column offset in the child's update matrix.
    pub src_col: usize,
    /// Row offset in the parent's front.
    pub dst_row: usize,
    /// Column offset in the parent's front.
    pub dst_col: usize,
    /// Block height (scalar rows).
    pub rows: usize,
    /// Block width (scalar columns).
    pub cols: usize,
}

/// The extend-add of one child into its parent's front: the child task id
/// and every scatter-block target, fixed at plan time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChildMerge {
    /// Task (= supernode) index of the child whose update matrix is merged.
    pub child: usize,
    /// Scatter targets, in a fixed deterministic order.
    pub blocks: Vec<ScatterBlock>,
    /// Total scalar elements scattered (for op tracing).
    pub elems: usize,
}

/// One supernode task of the plan.
#[derive(Clone, Debug)]
pub struct PlanTask {
    /// Supernode id — equals the task's index in [`ExecutionPlan::tasks`].
    pub node: usize,
    /// Parent task, `None` for elimination-forest roots.
    pub parent: Option<usize>,
    /// Number of child tasks (the task's initial dependency count).
    pub num_children: usize,
    /// Topological level: 0 for leaves, `1 + max(children)` otherwise.
    pub level: usize,
    /// First owned block column.
    pub first_col: usize,
    /// Number of owned block columns.
    pub ncols: usize,
    /// Scalar pivot dimension `m`.
    pub pivot_dim: usize,
    /// Scalar remainder dimension `n`.
    pub rem_dim: usize,
    /// `(block_row, front-local scalar offset)` for every front block row,
    /// sorted by block row — the precomputed scatter-target table that
    /// replaces the per-node map the executor used to allocate.
    pub row_offsets: Vec<(usize, usize)>,
    /// Front-local scalar offset of each owned pivot column.
    pub col_offsets: Vec<usize>,
    /// Extend-add scatter programs, one per child, in the symbolic
    /// factor's fixed child order (the determinism anchor).
    pub merges: Vec<ChildMerge>,
    /// Structural signature (for numeric-cache reuse across re-analyses).
    pub sig: (usize, usize, u64),
    /// Scalar elements of frontal workspace this task needs.
    pub workspace_elems: usize,
}

impl PlanTask {
    /// Scalar dimension of the square frontal workspace (`m + n`).
    pub fn front_dim(&self) -> usize {
        self.pivot_dim + self.rem_dim
    }

    /// Block columns owned by this task.
    pub fn cols(&self) -> std::ops::Range<usize> {
        self.first_col..self.first_col + self.ncols
    }

    /// Front-local scalar offset of block row `b`, if `b` is in the front.
    pub fn local_offset(&self, b: usize) -> Option<usize> {
        self.row_offsets
            .binary_search_by_key(&b, |&(row, _)| row)
            .ok()
            .map(|i| self.row_offsets[i].1)
    }

    /// Approximate factorization flops of the task (Cholesky + TRSM +
    /// SYRK), the cost weight used for critical-path analysis.
    pub fn cost(&self) -> u64 {
        let m = self.pivot_dim as u64;
        let n = self.rem_dim as u64;
        m * m * m / 3 + n * m * m + n * n * m
    }
}

/// A topologically-leveled, scatter-resolved execution plan for the
/// supernodal numeric factorization, derived from a [`SymbolicFactor`].
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    tasks: Vec<PlanTask>,
    postorder: Vec<usize>,
    levels: Vec<Vec<usize>>,
    node_of_block: Vec<usize>,
    max_workspace_elems: usize,
    total_dim: usize,
    /// The split configuration the plan was built under (part of the
    /// plan-cache key and the fingerprint even when nothing split).
    split: SplitConfig,
    /// Per-task strip/panel geometry; `None` for unsplit tasks.
    split_shapes: Vec<Option<SplitShape>>,
    /// Sub-unit overlay over `tasks` — empty when no task split, in which
    /// case execution dispatches whole tasks exactly as before.
    units: Vec<PlanUnit>,
    /// Per-task contiguous range into `units`.
    task_units: Vec<(usize, usize)>,
    /// Unit ids grouped by sub-level (the unit-granular `levels`).
    unit_levels: Vec<Vec<usize>>,
}

impl ExecutionPlan {
    /// Lowers a symbolic factorization into an execution plan under the
    /// default [`SplitConfig`].
    pub fn from_symbolic(sym: &SymbolicFactor) -> Self {
        Self::from_symbolic_with_split(sym, SplitConfig::default())
    }

    /// Lowers a symbolic factorization into an execution plan, splitting
    /// large fronts into panel/tile sub-units per `split`.
    pub fn from_symbolic_with_split(sym: &SymbolicFactor, split: SplitConfig) -> Self {
        let nodes = sym.nodes();
        let dims = sym.block_dims();
        let mut tasks: Vec<PlanTask> = Vec::with_capacity(nodes.len());
        for (s, info) in nodes.iter().enumerate() {
            // Front-local scalar offsets, in `rows` order (sorted already).
            let mut row_offsets = Vec::with_capacity(info.rows.len());
            let mut off = 0usize;
            for &br in &info.rows {
                row_offsets.push((br, off));
                off += dims[br];
            }
            debug_assert!(row_offsets.windows(2).all(|w| w[0].0 < w[1].0));
            let col_offsets: Vec<usize> =
                row_offsets[..info.ncols].iter().map(|&(_, o)| o).collect();

            // Extend-add scatter programs, fixed child order.
            let mut merges = Vec::with_capacity(info.children.len());
            for &c in &info.children {
                let rem = nodes[c].remainder_rows();
                let mut coff = Vec::with_capacity(rem.len());
                let mut o = 0usize;
                for &br in rem {
                    coff.push(o);
                    o += dims[br];
                }
                let mut blocks = Vec::new();
                let mut elems = 0usize;
                for (bj, &rj) in rem.iter().enumerate() {
                    let w = dims[rj];
                    // Multifrontal containment: a child's remainder rows
                    // are a subset of its parent's front.
                    let dst_col = row_offsets
                        .binary_search_by_key(&rj, |&(row, _)| row)
                        .map(|i| row_offsets[i].1)
                        // lint: allow(unwrap) — containment documented above
                        .expect("child remainder row missing from parent front");
                    for (bi, &ri) in rem.iter().enumerate().skip(bj) {
                        let h = dims[ri];
                        let dst_row = row_offsets
                            .binary_search_by_key(&ri, |&(row, _)| row)
                            .map(|i| row_offsets[i].1)
                            // lint: allow(unwrap) — same containment argument
                            .expect("child remainder row missing from parent front");
                        blocks.push(ScatterBlock {
                            src_row: coff[bi],
                            src_col: coff[bj],
                            dst_row,
                            dst_col,
                            rows: h,
                            cols: w,
                        });
                        elems += h * w;
                    }
                }
                merges.push(ChildMerge {
                    child: c,
                    blocks,
                    elems,
                });
            }

            let front = info.front_dim();
            tasks.push(PlanTask {
                node: s,
                parent: info.parent,
                num_children: info.children.len(),
                level: 0, // filled below
                first_col: info.first_col,
                ncols: info.ncols,
                pivot_dim: info.pivot_dim,
                rem_dim: info.rem_dim,
                row_offsets,
                col_offsets,
                merges,
                sig: info.signature(),
                workspace_elems: front * front,
            });
        }

        // Topological levels in one postorder sweep (children first).
        let postorder = sym.postorder().to_vec();
        for &s in &postorder {
            let lvl = tasks[s]
                .merges
                .iter()
                .map(|m| tasks[m.child].level + 1)
                .max()
                .unwrap_or(0);
            tasks[s].level = lvl;
        }
        let depth = tasks.iter().map(|t| t.level).max().map_or(0, |l| l + 1);
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); depth];
        for t in &tasks {
            levels[t.level].push(t.node);
        }

        let max_workspace_elems = tasks.iter().map(|t| t.workspace_elems).max().unwrap_or(0);
        let node_of_block = (0..sym.num_blocks())
            .map(|b| sym.node_of_block(b))
            .collect();

        // ---- Split pass: sub-unit overlay -------------------------------
        // A task splits when its front meets the threshold AND actually
        // spans more than one strip (a single-strip "split" would serialize
        // into pure overhead).
        let split_shapes: Vec<Option<SplitShape>> = tasks
            .iter()
            .map(|t| {
                let dim = t.front_dim();
                let strips = dim.div_ceil(split.tile);
                (split.enabled && dim >= split.min_dim && t.pivot_dim > 0 && strips >= 2).then(
                    || SplitShape {
                        tile: split.tile,
                        strips,
                        panels: t.pivot_dim.div_ceil(SPLIT_NB),
                    },
                )
            })
            .collect();

        let (units, task_units, unit_levels) = if split_shapes.iter().any(Option::is_some) {
            Self::build_units(&tasks, &levels, &split_shapes)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };

        ExecutionPlan {
            tasks,
            postorder,
            levels,
            node_of_block,
            max_workspace_elems,
            total_dim: sym.total_dim(),
            split,
            split_shapes,
            units,
            task_units,
            unit_levels,
        }
    }

    /// Builds the sub-unit overlay: every unsplit task becomes one `Whole`
    /// unit, every split task a canonical
    /// `Assemble* → (Panel → Tile*)* → Finish` chain. Each original level
    /// expands into consecutive sub-levels; within a level, a unit's local
    /// sub-level is a pure function of its kind (`Assemble`/`Whole` at 0,
    /// `Panel p` at `1 + 2p`, its tiles at `2 + 2p`, `Finish` after the
    /// last panel), so units of different tasks share sub-levels and stay
    /// mutually independent. Empty local sub-levels are compacted away.
    #[allow(clippy::type_complexity)]
    fn build_units(
        tasks: &[PlanTask],
        levels: &[Vec<usize>],
        split_shapes: &[Option<SplitShape>],
    ) -> (Vec<PlanUnit>, Vec<(usize, usize)>, Vec<Vec<usize>>) {
        // Local (within-level) sub-level of a unit kind.
        let local_of = |kind: &UnitKind, shape: Option<&SplitShape>| -> usize {
            match kind {
                UnitKind::Whole | UnitKind::Assemble { .. } => 0,
                UnitKind::Panel { panel } => 1 + 2 * panel,
                UnitKind::Tile { panel, .. } => 2 + 2 * panel,
                // lint: allow(unwrap) — Finish only exists on split tasks
                UnitKind::Finish => 1 + 2 * shape.expect("finish on unsplit task").panels,
            }
        };

        // Emit units grouped by task (contiguous ranges), intra-task
        // canonical order.
        let mut units: Vec<PlanUnit> = Vec::new();
        let mut task_units: Vec<(usize, usize)> = Vec::with_capacity(tasks.len());
        for t in tasks {
            let start = units.len();
            match &split_shapes[t.node] {
                None => units.push(PlanUnit {
                    task: t.node,
                    kind: UnitKind::Whole,
                    sublevel: 0,
                }),
                Some(shape) => {
                    for strip in 0..shape.strips {
                        units.push(PlanUnit {
                            task: t.node,
                            kind: UnitKind::Assemble { strip },
                            sublevel: 0,
                        });
                    }
                    for panel in 0..shape.panels {
                        units.push(PlanUnit {
                            task: t.node,
                            kind: UnitKind::Panel { panel },
                            sublevel: 0,
                        });
                        for strip in shape.strip_of_panel(panel) + 1..shape.strips {
                            units.push(PlanUnit {
                                task: t.node,
                                kind: UnitKind::Tile { panel, strip },
                                sublevel: 0,
                            });
                        }
                    }
                    units.push(PlanUnit {
                        task: t.node,
                        kind: UnitKind::Finish,
                        sublevel: 0,
                    });
                }
            }
            task_units.push((start, units.len()));
        }

        // Assign global sub-levels level by level, compacting local
        // sub-levels nobody occupies.
        let mut unit_levels: Vec<Vec<usize>> = Vec::new();
        for level in levels {
            let height = level
                .iter()
                .map(|&s| match &split_shapes[s] {
                    None => 1,
                    Some(shape) => 2 + 2 * shape.panels,
                })
                .max()
                .unwrap_or(1);
            let mut occupied = vec![false; height];
            for &s in level {
                let (lo, hi) = task_units[s];
                for u in &units[lo..hi] {
                    occupied[local_of(&u.kind, split_shapes[s].as_ref())] = true;
                }
            }
            let base = unit_levels.len();
            let mut compact = vec![usize::MAX; height];
            for (local, &occ) in occupied.iter().enumerate() {
                if occ {
                    compact[local] = unit_levels.len();
                    unit_levels.push(Vec::new());
                }
            }
            debug_assert!(unit_levels.len() > base, "level with no units");
            for &s in level {
                let (lo, hi) = task_units[s];
                for uid in lo..hi {
                    let local = local_of(&units[uid].kind, split_shapes[s].as_ref());
                    let sub = compact[local];
                    units[uid].sublevel = sub;
                    unit_levels[sub].push(uid);
                }
            }
        }
        (units, task_units, unit_levels)
    }

    /// The tasks, indexed by supernode id.
    pub fn tasks(&self) -> &[PlanTask] {
        &self.tasks
    }

    /// Number of tasks (= supernodes).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Task ids in children-before-parents order.
    pub fn postorder(&self) -> &[usize] {
        &self.postorder
    }

    /// Task ids grouped by topological level, leaves first. Tasks within a
    /// level are mutually independent.
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Mutable task table, exposed for mutation testing of the
    /// interference checker. Any structural edit changes the plan
    /// fingerprint and so invalidates previously issued certificates —
    /// which is exactly what the mutation suite asserts.
    #[doc(hidden)]
    pub fn tasks_mut(&mut self) -> &mut [PlanTask] {
        &mut self.tasks
    }

    /// Mutable level table, exposed for mutation testing of the
    /// interference checker (see [`Self::tasks_mut`]).
    #[doc(hidden)]
    pub fn levels_mut(&mut self) -> &mut Vec<Vec<usize>> {
        &mut self.levels
    }

    /// The task owning block column `b`.
    pub fn node_of_block(&self, b: usize) -> usize {
        self.node_of_block[b]
    }

    /// Number of block columns the plan covers.
    pub fn num_blocks(&self) -> usize {
        self.node_of_block.len()
    }

    /// Total scalar dimension of the system.
    pub fn total_dim(&self) -> usize {
        self.total_dim
    }

    /// Largest frontal workspace (scalar elements) any task needs — the
    /// size each worker's reusable buffer is grown to once.
    pub fn max_workspace_elems(&self) -> usize {
        self.max_workspace_elems
    }

    /// Scalars each kernel pack buffer needs for the plan's largest front
    /// ([`supernova_linalg::pack_elems_bound`] over all tasks) — the size
    /// each worker's [`supernova_linalg::KernelScratch`] is pre-grown to,
    /// so the blocked kernels never allocate mid-execution.
    pub fn max_pack_elems(&self) -> usize {
        self.tasks
            .iter()
            .map(|t| supernova_linalg::pack_elems_bound(t.front_dim()))
            .max()
            .unwrap_or(0)
    }

    /// Mode-aware variant of [`Self::max_pack_elems`]: the narrow modes
    /// pack into f32 arenas whose row-panel rounding differs (the f32
    /// engine uses wider microkernel tiles), so workers executing under a
    /// narrow [`supernova_linalg::NumericMode`] pre-grow their scratch
    /// with this bound instead.
    pub fn max_pack_elems_mode(&self, mode: supernova_linalg::NumericMode) -> usize {
        self.tasks
            .iter()
            .map(|t| supernova_linalg::pack_elems_bound_mode(t.front_dim(), mode))
            .max()
            .unwrap_or(0)
    }

    /// Every listed task plus all its ancestors, deduplicated and sorted —
    /// the affected set of an incremental re-factorization.
    pub fn ancestor_closure(&self, seeds: impl IntoIterator<Item = usize>) -> Vec<usize> {
        let mut marked = vec![false; self.tasks.len()];
        for s in seeds {
            let mut cur = Some(s);
            while let Some(c) = cur {
                if marked[c] {
                    break;
                }
                marked[c] = true;
                cur = self.tasks[c].parent;
            }
        }
        (0..self.tasks.len()).filter(|&s| marked[s]).collect()
    }

    /// Sum of per-task costs — the serial work of a full execution.
    pub fn total_cost(&self) -> u64 {
        self.tasks.iter().map(PlanTask::cost).sum()
    }

    /// Cost of the heaviest root-to-leaf dependency chain — the lower
    /// bound on any parallel execution of this plan as built. When the
    /// split pass produced sub-units, a split task contributes its *chain*
    /// cost (serial panels plus, per panel, only the heaviest tile — its
    /// siblings run in parallel) instead of its whole-task cost, which is
    /// exactly the modeled win intra-front parallelism buys.
    /// `total_cost / critical_path_cost` is the plan's available speedup.
    pub fn critical_path_cost(&self) -> u64 {
        if !self.has_units() {
            return self.critical_path_cost_unsplit();
        }
        let mut path = vec![0u64; self.tasks.len()];
        let mut best = 0u64;
        for &s in &self.postorder {
            let sub = self.tasks[s]
                .merges
                .iter()
                .map(|m| path[m.child])
                .max()
                .unwrap_or(0);
            path[s] = sub + self.task_chain_cost(s);
            best = best.max(path[s]);
        }
        best
    }

    /// [`Self::critical_path_cost`] of the same plan with the split pass
    /// ignored (whole-task chain costs) — the baseline the split's modeled
    /// improvement is gated against.
    pub fn critical_path_cost_unsplit(&self) -> u64 {
        let mut path = vec![0u64; self.tasks.len()];
        let mut best = 0u64;
        for &s in &self.postorder {
            let sub = self.tasks[s]
                .merges
                .iter()
                .map(|m| path[m.child])
                .max()
                .unwrap_or(0);
            path[s] = sub + self.tasks[s].cost();
            best = best.max(path[s]);
        }
        best
    }

    /// The split configuration the plan was built under.
    pub fn split_config(&self) -> SplitConfig {
        self.split
    }

    /// Strip/panel geometry of task `s`, `None` when it did not split.
    pub fn split_shape(&self, s: usize) -> Option<SplitShape> {
        self.split_shapes[s]
    }

    /// Whether the split pass produced a sub-unit overlay. When `false`,
    /// execution dispatches whole tasks exactly as before the split pass
    /// existed.
    pub fn has_units(&self) -> bool {
        !self.units.is_empty()
    }

    /// The sub-unit overlay (empty when no task split).
    pub fn units(&self) -> &[PlanUnit] {
        &self.units
    }

    /// Number of sub-units (0 when no task split).
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Unit ids grouped by sub-level — the unit-granular dispatch
    /// structure: units within a sub-level are mutually independent and
    /// depend only on earlier sub-levels.
    pub fn unit_levels(&self) -> &[Vec<usize>] {
        &self.unit_levels
    }

    /// The units of task `s`, in canonical intra-task order
    /// (`Assemble* → (Panel → Tile*)* → Finish`, or a single `Whole`).
    pub fn task_units(&self, s: usize) -> &[PlanUnit] {
        let (lo, hi) = self.task_units[s];
        &self.units[lo..hi]
    }

    /// The half-open unit-id range of task `s` (empty when the plan has no
    /// units) — [`task_units`](Self::task_units) as indices into
    /// [`units`](Self::units).
    pub fn task_units_range(&self, s: usize) -> (usize, usize) {
        if self.task_units.is_empty() {
            (0, 0)
        } else {
            self.task_units[s]
        }
    }

    /// Modeled cost of one sub-unit, in the same flop-shaped weight as
    /// [`PlanTask::cost`]: factorization units count their stored-element
    /// MAC work, assemble/finish units their scalar traffic.
    pub fn unit_cost(&self, unit_id: usize) -> u64 {
        let u = &self.units[unit_id];
        let t = &self.tasks[u.task];
        let dim = t.front_dim();
        let (m, n) = (t.pivot_dim, t.rem_dim);
        let shape = match u.kind {
            UnitKind::Whole => return t.cost(),
            // lint: allow(unwrap) — non-Whole units only exist on split tasks
            _ => self.split_shapes[u.task].expect("split unit on unsplit task"),
        };
        match u.kind {
            UnitKind::Whole => t.cost(),
            UnitKind::Assemble { strip } => (dim * shape.strip_width(strip, dim)) as u64,
            UnitKind::Panel { panel } => {
                let (k, b) = shape.panel_cols(panel, m);
                let below = dim - k - b;
                let strip_end = ((shape.strip_of_panel(panel) + 1) * shape.tile).min(dim);
                let tw = strip_end.saturating_sub(k + b);
                let tail = tw * below - tw * tw.saturating_sub(1) / 2;
                (b * b * b / 3 + below * b * b + tail * b) as u64
            }
            UnitKind::Tile { panel, strip } => {
                let (_, b) = shape.panel_cols(panel, m);
                let qcol0 = strip * shape.tile;
                let w = shape.strip_width(strip, dim);
                let stored = w * (dim - qcol0) - w * w.saturating_sub(1) / 2;
                (stored * b) as u64
            }
            UnitKind::Finish => (dim * m + n * n) as u64,
        }
    }

    /// Modeled serial chain cost of task `s` under the split: the heaviest
    /// assemble, then per panel the serial panel step plus only its
    /// heaviest tile (siblings are parallel), then the finish. Capped at
    /// the whole-task cost — a split execution never models worse than
    /// running the task whole, since that schedule remains available.
    fn task_chain_cost(&self, s: usize) -> u64 {
        if self.split_shapes[s].is_none() {
            return self.tasks[s].cost();
        }
        let (lo, hi) = self.task_units[s];
        let mut chain = 0u64;
        let mut assemble_max = 0u64;
        let mut tile_max = 0u64;
        for uid in lo..hi {
            let cost = self.unit_cost(uid);
            match self.units[uid].kind {
                UnitKind::Whole => return self.tasks[s].cost(),
                UnitKind::Assemble { .. } => assemble_max = assemble_max.max(cost),
                UnitKind::Panel { .. } => {
                    chain += std::mem::take(&mut tile_max) + cost;
                }
                UnitKind::Tile { .. } => tile_max = tile_max.max(cost),
                UnitKind::Finish => {
                    chain += std::mem::take(&mut tile_max) + cost;
                }
            }
        }
        (chain + assemble_max).min(self.tasks[s].cost())
    }

    /// Fraction of the plan's total modeled work concentrated in its single
    /// heaviest dispatchable item (unit when split, task otherwise) — the
    /// "one giant task" metric the split pass exists to lower.
    pub fn largest_task_fraction(&self) -> f64 {
        let (max, sum) = if self.has_units() {
            (0..self.units.len()).fold((0u64, 0u64), |(mx, sm), uid| {
                let c = self.unit_cost(uid);
                (mx.max(c), sm + c)
            })
        } else {
            self.tasks.iter().fold((0u64, 0u64), |(mx, sm), t| {
                (mx.max(t.cost()), sm + t.cost())
            })
        };
        if sum == 0 {
            0.0
        } else {
            max as f64 / sum as f64
        }
    }

    /// Modeled occupancy of a `workers`-wide level-batched execution: per
    /// dispatch level (sub-level when split), the level's total work
    /// divided by `workers ×` its heaviest item (capped at 1 — the level
    /// can't finish before its heaviest item), averaged over levels
    /// weighted by level work. 1.0 means every barrier-to-barrier interval
    /// keeps all workers busy; a single-item level scores `1 / workers`.
    pub fn level_occupancy(&self, workers: usize) -> f64 {
        let workers = workers.max(1) as f64;
        let level_costs: Vec<Vec<u64>> = if self.has_units() {
            self.unit_levels
                .iter()
                .map(|l| l.iter().map(|&u| self.unit_cost(u)).collect())
                .collect()
        } else {
            self.levels
                .iter()
                .map(|l| l.iter().map(|&s| self.tasks[s].cost()).collect())
                .collect()
        };
        let mut weighted = 0.0f64;
        let mut weight = 0.0f64;
        for costs in &level_costs {
            let sum: u64 = costs.iter().sum();
            let max = costs.iter().copied().max().unwrap_or(0);
            if max == 0 {
                continue;
            }
            let occ = (sum as f64 / (workers * max as f64)).min(1.0);
            weighted += occ * sum as f64;
            weight += sum as f64;
        }
        // lint: allow(float-eq) — structural-zero test: no level contributed work
        if weight == 0.0 {
            0.0
        } else {
            weighted / weight
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockPattern;

    fn loopy() -> SymbolicFactor {
        let mut p = BlockPattern::new(vec![2, 3, 1, 2, 2, 3, 1, 2]);
        for i in 0..7 {
            p.add_block_edge(i, i + 1);
        }
        p.add_block_edge(0, 5);
        p.add_block_edge(2, 7);
        p.add_block_edge(3, 6);
        SymbolicFactor::analyze(&p, 0)
    }

    #[test]
    fn plan_mirrors_symbolic_structure() {
        let sym = loopy();
        let plan = ExecutionPlan::from_symbolic(&sym);
        assert_eq!(plan.num_tasks(), sym.nodes().len());
        assert_eq!(plan.postorder(), sym.postorder());
        for (task, info) in plan.tasks().iter().zip(sym.nodes()) {
            assert_eq!(task.parent, info.parent);
            assert_eq!(task.num_children, info.children.len());
            assert_eq!(task.pivot_dim, info.pivot_dim);
            assert_eq!(task.rem_dim, info.rem_dim);
            assert_eq!(task.sig, info.signature());
            assert_eq!(task.workspace_elems, info.front_dim() * info.front_dim());
            // Child order is exactly the symbolic child order.
            let merge_children: Vec<usize> = task.merges.iter().map(|m| m.child).collect();
            assert_eq!(merge_children, info.children);
        }
    }

    #[test]
    fn row_offsets_are_partial_sums_of_dims() {
        let sym = loopy();
        let plan = ExecutionPlan::from_symbolic(&sym);
        for (task, info) in plan.tasks().iter().zip(sym.nodes()) {
            let mut off = 0usize;
            for (&br, &(row, o)) in info.rows.iter().zip(&task.row_offsets) {
                assert_eq!(br, row);
                assert_eq!(o, off);
                assert_eq!(task.local_offset(br), Some(off));
                off += sym.block_dims()[br];
            }
            assert_eq!(off, task.front_dim());
            assert_eq!(task.local_offset(usize::MAX), None);
        }
    }

    #[test]
    fn levels_respect_dependencies() {
        let sym = loopy();
        let plan = ExecutionPlan::from_symbolic(&sym);
        let covered: usize = plan.levels().iter().map(Vec::len).sum();
        assert_eq!(covered, plan.num_tasks());
        for task in plan.tasks() {
            if let Some(p) = task.parent {
                assert!(
                    plan.tasks()[p].level > task.level,
                    "parent {p} not above child {}",
                    task.node
                );
            }
        }
    }

    #[test]
    fn scatter_blocks_stay_inside_parent_front() {
        let sym = loopy();
        let plan = ExecutionPlan::from_symbolic(&sym);
        for task in plan.tasks() {
            let dim = task.front_dim();
            for mg in &task.merges {
                let child = &plan.tasks()[mg.child];
                let cdim = child.rem_dim;
                let mut elems = 0usize;
                for b in &mg.blocks {
                    assert!(b.dst_row + b.rows <= dim && b.dst_col + b.cols <= dim);
                    assert!(b.src_row + b.rows <= cdim && b.src_col + b.cols <= cdim);
                    // Lower triangle only.
                    assert!(b.dst_row >= b.dst_col);
                    elems += b.rows * b.cols;
                }
                assert_eq!(elems, mg.elems);
            }
        }
    }

    #[test]
    fn ancestor_closure_matches_symbolic() {
        let sym = loopy();
        let plan = ExecutionPlan::from_symbolic(&sym);
        for seed in 0..plan.num_tasks() {
            assert_eq!(plan.ancestor_closure([seed]), sym.ancestor_closure([seed]));
        }
    }

    #[test]
    fn critical_path_bounded_by_total() {
        let plan = ExecutionPlan::from_symbolic(&loopy());
        assert!(plan.total_cost() > 0);
        assert!(plan.critical_path_cost() <= plan.total_cost());
        assert!(plan.critical_path_cost() > 0);
    }

    /// Pattern with scalar block dims large enough that fronts cross the
    /// default split threshold.
    fn big(dims: Vec<usize>, edges: &[(usize, usize)]) -> SymbolicFactor {
        let mut p = BlockPattern::new(dims);
        for &(i, j) in edges {
            p.add_block_edge(i, j);
        }
        SymbolicFactor::analyze(&p, 0)
    }

    #[test]
    fn tiny_fronts_produce_no_units() {
        let plan = ExecutionPlan::from_symbolic(&loopy());
        assert!(!plan.has_units());
        assert_eq!(plan.num_units(), 0);
        assert!(plan.unit_levels().is_empty());
        for s in 0..plan.num_tasks() {
            assert_eq!(plan.split_shape(s), None);
        }
    }

    #[test]
    fn split_pass_emits_canonical_units() {
        let sym = big(vec![64, 64, 64], &[(0, 2), (1, 2)]);
        let plan = ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::on());
        assert!(plan.has_units());
        assert!(plan
            .tasks()
            .iter()
            .any(|t| plan.split_shape(t.node).is_some()));

        // Every unit appears in exactly one sub-level.
        let mut seen = vec![0usize; plan.num_units()];
        for (sub, level) in plan.unit_levels().iter().enumerate() {
            assert!(!level.is_empty());
            for &uid in level {
                seen[uid] += 1;
                assert_eq!(plan.units()[uid].sublevel, sub);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));

        for s in 0..plan.num_tasks() {
            let units = plan.task_units(s);
            assert!(units.iter().all(|u| u.task == s));
            match plan.split_shape(s) {
                None => {
                    assert_eq!(units.len(), 1);
                    assert_eq!(units[0].kind, UnitKind::Whole);
                }
                Some(shape) => {
                    assert!(shape.strips >= 2 && shape.panels >= 1);
                    // Canonical intra-task order and kinds.
                    let mut expect = Vec::new();
                    for strip in 0..shape.strips {
                        expect.push(UnitKind::Assemble { strip });
                    }
                    for panel in 0..shape.panels {
                        expect.push(UnitKind::Panel { panel });
                        for strip in shape.strip_of_panel(panel) + 1..shape.strips {
                            expect.push(UnitKind::Tile { panel, strip });
                        }
                    }
                    expect.push(UnitKind::Finish);
                    let kinds: Vec<UnitKind> = units.iter().map(|u| u.kind).collect();
                    assert_eq!(kinds, expect);

                    // Intra-task happens-before via sub-levels.
                    let sub_of =
                        |k: &UnitKind| units.iter().find(|u| u.kind == *k).map(|u| u.sublevel);
                    let finish = sub_of(&UnitKind::Finish).unwrap();
                    for panel in 0..shape.panels {
                        let psub = sub_of(&UnitKind::Panel { panel }).unwrap();
                        for u in units {
                            match u.kind {
                                UnitKind::Assemble { .. } => assert!(u.sublevel < psub),
                                UnitKind::Tile { panel: tp, .. } if tp == panel => {
                                    assert!(psub < u.sublevel && u.sublevel < finish);
                                    if panel + 1 < shape.panels {
                                        let next =
                                            sub_of(&UnitKind::Panel { panel: panel + 1 }).unwrap();
                                        assert!(u.sublevel < next);
                                    }
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }

        // Cross-task happens-before: every unit of a child finishes before
        // any unit of its parent starts.
        for t in plan.tasks() {
            let first = plan.task_units(t.node).iter().map(|u| u.sublevel).min();
            for mg in &t.merges {
                let last = plan.task_units(mg.child).iter().map(|u| u.sublevel).max();
                assert!(
                    last < first,
                    "child {} overlaps parent {}",
                    mg.child,
                    t.node
                );
            }
        }
    }

    #[test]
    fn split_respects_threshold_and_toggle() {
        let sym = big(vec![64, 64], &[(0, 1)]);
        let max_front = ExecutionPlan::from_symbolic(&sym)
            .tasks()
            .iter()
            .map(PlanTask::front_dim)
            .max()
            .unwrap();
        assert!(max_front >= SplitConfig::DEFAULT_MIN_DIM);

        let off = ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::off());
        assert!(!off.has_units());
        assert_eq!(off.critical_path_cost(), off.critical_path_cost_unsplit());

        let above = SplitConfig::on().with_min_dim(max_front + 1);
        assert!(!ExecutionPlan::from_symbolic_with_split(&sym, above).has_units());

        let exact = SplitConfig::on().with_min_dim(max_front);
        assert!(ExecutionPlan::from_symbolic_with_split(&sym, exact).has_units());
    }

    #[test]
    fn split_reduces_modeled_critical_path() {
        let sym = big(vec![64, 64], &[(0, 1)]);
        let split = ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::on());
        let whole = ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::off());
        assert!(split.has_units());
        assert_eq!(
            split.critical_path_cost_unsplit(),
            whole.critical_path_cost()
        );
        assert!(
            split.critical_path_cost() < whole.critical_path_cost(),
            "split chain {} not below whole {}",
            split.critical_path_cost(),
            whole.critical_path_cost()
        );
        assert!(split.largest_task_fraction() < whole.largest_task_fraction());
        let occ = split.level_occupancy(4);
        assert!(occ > 0.0 && occ <= 1.0);
        assert_eq!(split.level_occupancy(1), 1.0);
    }

    #[test]
    fn split_config_parses_env_syntax() {
        assert_eq!(SplitConfig::parse("off"), Some(SplitConfig::off()));
        assert_eq!(SplitConfig::parse("0"), Some(SplitConfig::off()));
        assert_eq!(SplitConfig::parse("on"), Some(SplitConfig::on()));
        assert_eq!(SplitConfig::parse("1"), Some(SplitConfig::on()));
        assert_eq!(SplitConfig::parse(""), Some(SplitConfig::on()));
        assert_eq!(
            SplitConfig::parse("144"),
            Some(SplitConfig::on().with_min_dim(144))
        );
        assert_eq!(
            SplitConfig::parse("144:96"),
            Some(SplitConfig::on().with_min_dim(144).with_tile(96))
        );
        // Tile rounds up to a multiple of the kernel panel width.
        assert_eq!(SplitConfig::parse("144:50").unwrap().tile, 2 * SPLIT_NB);
        assert_eq!(SplitConfig::parse("bogus"), None);
        assert_eq!(SplitConfig::parse("144:0"), None);
        assert_eq!(SplitConfig::parse("144:x"), None);
    }
}
