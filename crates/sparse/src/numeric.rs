//! Numeric multifrontal factorization with incremental re-factorization.
//!
//! Since the plan/exec split, every (re)factorization is the execution of
//! an [`ExecutionPlan`] against reusable per-worker [`Workspace`] buffers:
//! the sym-based [`NumericFactor::factorize`]/[`NumericFactor::refactor`]
//! entry points derive a throwaway plan and run it serially, while the
//! incremental engine caches one plan per symbolic structure and drives
//! [`NumericFactor::execute_plan`] directly (optionally on the
//! [`ParallelExecutor`] worker pool — results are bit-identical).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::{OnceLock, RwLock};

use supernova_linalg::ops::{Op, OpTrace};
use supernova_linalg::split::{split_panel_f32, split_panel_f64, split_tile_f32, split_tile_f64};
use supernova_linalg::{
    gemv, partial_cholesky_scratch_mode, solve_lower, solve_lower_transpose, Mat, NumericMode,
    Transpose,
};

use crate::executor::{HostSchedule, ParallelExecutor, Workspace};
use crate::plan::{SplitShape, UnitKind};
use crate::{BlockMat, ExecutionPlan, SymbolicFactor};

/// A supernode's Cholesky pivot was not positive definite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FactorizeError {
    node: usize,
    front_col: usize,
}

impl FactorizeError {
    /// Index of the failing supernode.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Scalar column within the node's front at which the pivot failed.
    pub fn front_col(&self) -> usize {
        self.front_col
    }
}

impl fmt::Display for FactorizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "front of supernode {} is not positive definite at column {}",
            self.node, self.front_col
        )
    }
}

impl Error for FactorizeError {}

/// The operations performed to (re)compute one supernode.
#[derive(Clone, Debug, Default)]
pub struct NodeTrace {
    /// Supernode index (into [`SymbolicFactor::nodes`]).
    pub node: usize,
    /// Primitive operations in execution order.
    pub ops: OpTrace,
}

/// Outcome of an incremental re-factorization.
#[derive(Clone, Debug, Default)]
pub struct RefactorStats {
    /// Supernodes that were recomputed this pass, with their op traces,
    /// in children-before-parents execution order.
    pub recomputed: Vec<NodeTrace>,
    /// Number of supernodes reused from the previous factorization.
    pub reused: usize,
}

impl RefactorStats {
    /// Indices of the recomputed supernodes.
    pub fn recomputed_nodes(&self) -> Vec<usize> {
        self.recomputed.iter().map(|t| t.node).collect()
    }

    /// Total flops across recomputed nodes.
    pub fn flops(&self) -> u64 {
        self.recomputed.iter().map(|t| t.ops.flops()).sum()
    }
}

/// The numeric factor of one supernode: the stored columns `[L_A; L_B]` and
/// the cached update matrix `L_C` used by the parent's extend-add.
///
/// The paper discards `L_C` after the merge (Figure 4); the incremental
/// engine instead *caches* it so that re-factorizing an affected node needs
/// only its children's cached updates, never a revisit of the whole subtree
/// (DESIGN.md decision 2).
#[derive(Clone, Debug)]
struct NodeFactor {
    /// `(m + n) × m` — `L_A` stacked over `L_B`.
    l: Mat,
    /// `n × n` lower triangle — the update matrix `L_C`.
    update: Mat,
    /// Structural signature for cache matching across re-analyses.
    sig: (usize, usize, u64),
}

/// A supernodal multifrontal Cholesky factorization `H = L Lᵀ`.
///
/// Produced by [`factorize`](Self::factorize) and updated in place by
/// [`refactor`](Self::refactor); solves run via
/// [`solve_in_place`](Self::solve_in_place).
#[derive(Clone, Debug)]
pub struct NumericFactor {
    nodes: Vec<Option<NodeFactor>>,
}

impl NumericFactor {
    /// Factorizes `h` (structure given by `sym`) from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError`] if a pivot block is not positive definite.
    pub fn factorize(sym: &SymbolicFactor, h: &BlockMat) -> Result<Self, FactorizeError> {
        Self::factorize_traced(sym, h).map(|(f, _)| f)
    }

    /// Factorizes from scratch, also returning per-node op traces.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError`] if a pivot block is not positive definite.
    pub fn factorize_traced(
        sym: &SymbolicFactor,
        h: &BlockMat,
    ) -> Result<(Self, RefactorStats), FactorizeError> {
        let mut factor = NumericFactor {
            nodes: vec![None; sym.nodes().len()],
        };
        let all: Vec<usize> = (0..sym.num_blocks()).collect();
        let stats = factor.refactor(sym, h, &all)?;
        Ok((factor, stats))
    }

    /// Incrementally re-factorizes after the Hessian columns of
    /// `dirty_blocks` changed (and/or after `sym` was re-analyzed).
    ///
    /// Nodes whose structure is unchanged, whose Hessian contributions are
    /// clean and whose descendants are all reused keep their stored columns
    /// and cached update matrices; everything else — the dirty nodes, the
    /// structurally changed nodes and the ancestor closure of both — is
    /// recomputed, which is exactly the affected-path cost structure that
    /// ISAM2 exhibits and RA-ISAM2's Algorithm 1 predicts.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError`] if a pivot block is not positive definite.
    pub fn refactor(
        &mut self,
        sym: &SymbolicFactor,
        h: &BlockMat,
        dirty_blocks: &[usize],
    ) -> Result<RefactorStats, FactorizeError> {
        let plan = ExecutionPlan::from_symbolic(sym);
        self.execute_plan(&plan, h, dirty_blocks, &ParallelExecutor::serial())
            .map(|(stats, _)| stats)
    }

    /// An empty factor sized for `plan` — the starting point for a from-
    /// scratch [`execute_plan`](Self::execute_plan) (every node is seeded).
    pub fn empty(plan: &ExecutionPlan) -> Self {
        NumericFactor {
            nodes: vec![None; plan.num_tasks()],
        }
    }

    /// Incrementally (re)factorizes by executing `plan` on `exec`.
    ///
    /// This is the primitive behind [`refactor`](Self::refactor): the
    /// recompute set is the ancestor closure of the dirty nodes plus every
    /// node whose structural signature no longer matches the cached factor,
    /// and each recomputed task runs against a preallocated per-worker
    /// workspace. Running on the worker pool is **bit-identical** to serial
    /// execution: every task merges its children's cached update matrices
    /// in the plan's fixed child order, so f64 sums never depend on
    /// completion order.
    ///
    /// Returns the refactor stats (traces in children-before-parents plan
    /// postorder, exactly as the serial path reports them) and the wall-
    /// clock [`HostSchedule`] of the execution.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError`] if a pivot block is not positive
    /// definite; the factor's numeric cache is invalid afterwards (callers
    /// re-seed via [`empty`](Self::empty) or damping, as the engine does).
    pub fn execute_plan(
        &mut self,
        plan: &ExecutionPlan,
        h: &BlockMat,
        dirty_blocks: &[usize],
        exec: &ParallelExecutor,
    ) -> Result<(RefactorStats, HostSchedule), FactorizeError> {
        self.execute_plan_certified(plan, h, dirty_blocks, exec, None)
    }

    /// [`execute_plan`](Self::execute_plan) with an optional level-safety
    /// proof from [`interference::certify`](crate::interference::certify).
    /// A covering certificate lets the executor dispatch proven-safe
    /// topological levels in lock-free batches
    /// ([`DispatchMode::LevelBatched`](crate::DispatchMode)); without one
    /// the dependency-counted pool runs as before. Bit-identical either
    /// way.
    ///
    /// # Errors
    ///
    /// As [`execute_plan`](Self::execute_plan).
    pub fn execute_plan_certified(
        &mut self,
        plan: &ExecutionPlan,
        h: &BlockMat,
        dirty_blocks: &[usize],
        exec: &ParallelExecutor,
        cert: Option<&crate::PlanCertificate>,
    ) -> Result<(RefactorStats, HostSchedule), FactorizeError> {
        let num_nodes = plan.num_tasks();
        // Index the previous factorization by first pivot column.
        let mut old: BTreeMap<usize, NodeFactor> = BTreeMap::new();
        for nf in std::mem::take(&mut self.nodes).into_iter().flatten() {
            old.insert(nf.sig.0, nf);
        }

        // Seed the recompute set with dirty nodes and structural mismatches.
        let mut seeds: Vec<usize> = Vec::new();
        for (s, task) in plan.tasks().iter().enumerate() {
            match old.get(&task.sig.0) {
                Some(nf) if nf.sig == task.sig => {}
                _ => seeds.push(s),
            }
        }
        for &b in dirty_blocks {
            seeds.push(plan.node_of_block(b));
        }
        let recompute = plan.ancestor_closure(seeds);
        let mut is_recompute = vec![false; num_nodes];
        for &s in &recompute {
            is_recompute[s] = true;
        }

        // One write-once slot per node: reused factors are published up
        // front, recomputed ones by whichever worker runs the task.
        let slots: Vec<OnceLock<(NodeFactor, OpTrace)>> =
            (0..num_nodes).map(|_| OnceLock::new()).collect();
        let mut reused = 0usize;
        for (s, task) in plan.tasks().iter().enumerate() {
            if !is_recompute[s] {
                // lint: allow(unwrap) — signature match proved the node is cached
                let nf = old
                    .remove(&task.sig.0)
                    .expect("reused node missing from cache"); // lint: allow(unwrap)
                debug_assert_eq!(nf.sig, task.sig);
                let _ = slots[s].set((nf, OpTrace::new()));
                reused += 1;
            }
        }

        let numeric = exec.numeric();
        // Shared strip state for every recomputed split task, allocated up
        // front on the calling thread so sub-unit execution itself stays
        // allocation-free. Empty when the plan has no sub-unit overlay (or
        // the executor falls back to whole-task dispatch, which simply
        // never touches it).
        let split_state: Vec<Option<TaskSplit>> = plan
            .tasks()
            .iter()
            .enumerate()
            .map(|(s, task)| {
                if !plan.has_units() || !is_recompute[s] {
                    return None;
                }
                plan.split_shape(s)
                    .map(|shape| TaskSplit::new(&shape, task.front_dim(), numeric))
            })
            .collect();
        let (res, sched) = exec.run_certified_units(
            plan,
            &is_recompute,
            cert,
            |s, ws| {
                let out = compute_task(plan, h, s, &slots, ws, numeric)?;
                let published = slots[s].set(out).is_ok();
                debug_assert!(published, "task {s} executed twice");
                Ok(())
            },
            |uid, ws| {
                let unit = &plan.units()[uid];
                let s = unit.task;
                // lint: allow(unwrap) — non-Whole units only exist for split tasks
                let split = split_state[s].as_ref().expect("unit on unsplit task");
                match unit.kind {
                    UnitKind::Whole => unreachable!("executor dispatches Whole units as tasks"),
                    UnitKind::Assemble { strip } => {
                        assemble_strip(plan, h, s, strip, &slots, split, numeric);
                        Ok(())
                    }
                    UnitKind::Panel { panel } => panel_step(plan, s, panel, split, ws, numeric),
                    UnitKind::Tile { panel, strip } => {
                        tile_step(plan, s, panel, strip, split, ws, numeric);
                        Ok(())
                    }
                    UnitKind::Finish => {
                        let out = finish_task(plan, h, s, split, numeric);
                        let published = slots[s].set(out).is_ok();
                        debug_assert!(published, "task {s} finished twice");
                        Ok(())
                    }
                }
            },
        );
        res?;

        let mut nodes: Vec<Option<NodeFactor>> = Vec::with_capacity(num_nodes);
        let mut traces: Vec<Option<OpTrace>> = vec![None; num_nodes];
        for (s, slot) in slots.into_iter().enumerate() {
            match slot.into_inner() {
                Some((nf, trace)) => {
                    if is_recompute[s] {
                        traces[s] = Some(trace);
                    }
                    nodes.push(Some(nf));
                }
                None => nodes.push(None),
            }
        }
        self.nodes = nodes;

        // Report traces in plan postorder so stats are executor-independent.
        let mut stats = RefactorStats {
            recomputed: Vec::new(),
            reused,
        };
        for &s in plan.postorder() {
            if let Some(ops) = traces[s].take() {
                stats.recomputed.push(NodeTrace { node: s, ops });
            }
        }
        Ok((stats, sched))
    }

    /// Serializes the factor into a canonical little-endian byte string
    /// (per-node signature, dimensions, and f64 payloads). The CI
    /// determinism gate diffs these bytes across thread counts.
    pub fn serialize_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for nf in &self.nodes {
            let Some(nf) = nf else {
                out.push(0u8);
                continue;
            };
            out.push(1u8);
            out.extend_from_slice(&(nf.sig.0 as u64).to_le_bytes());
            out.extend_from_slice(&(nf.sig.1 as u64).to_le_bytes());
            out.extend_from_slice(&nf.sig.2.to_le_bytes());
            for m in [&nf.l, &nf.update] {
                out.extend_from_slice(&(m.rows() as u64).to_le_bytes());
                out.extend_from_slice(&(m.cols() as u64).to_le_bytes());
                for c in 0..m.cols() {
                    for v in m.col(c) {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Solves `H x = b` in place (`x` enters as `b`), using the supernodal
    /// forward and backward triangular solves.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != sym.total_dim()` or if the factor and `sym`
    /// disagree (e.g. `refactor` was never run for this structure).
    pub fn solve_in_place(&self, sym: &SymbolicFactor, x: &mut [f64]) -> OpTrace {
        assert_eq!(x.len(), sym.total_dim(), "solve rhs length mismatch");
        let mut trace = OpTrace::new();
        // Forward: L y = b, children before parents.
        for &s in sym.postorder() {
            let info = &sym.nodes()[s];
            // lint: allow(unwrap) — postorder guarantees children factored first
            let nf = self.nodes[s].as_ref().expect("missing node factor");
            let m = info.pivot_dim;
            let n = info.rem_dim;
            let pivot_off = sym.block_offset(info.first_col);
            let la = nf.l.block(0, 0, m, m);
            let mut y = x[pivot_off..pivot_off + m].to_vec();
            solve_lower(&la, &mut y);
            trace.push(Op::Trsm { m: 1, n: m });
            if n > 0 {
                let lb = nf.l.block(m, 0, n, m);
                let upd = lb.matvec(&y);
                trace.push(Op::Gemv { m: n, n: m });
                scatter_sub(sym, info.remainder_rows(), &upd, x);
            }
            x[pivot_off..pivot_off + m].copy_from_slice(&y);
        }
        // Backward: Lᵀ x = y, parents before children.
        for &s in sym.postorder().iter().rev() {
            let info = &sym.nodes()[s];
            // lint: allow(unwrap) — postorder guarantees children factored first
            let nf = self.nodes[s].as_ref().expect("missing node factor");
            let m = info.pivot_dim;
            let n = info.rem_dim;
            let pivot_off = sym.block_offset(info.first_col);
            let la = nf.l.block(0, 0, m, m);
            let mut rhs = x[pivot_off..pivot_off + m].to_vec();
            if n > 0 {
                let lb = nf.l.block(m, 0, n, m);
                let xr = gather(sym, info.remainder_rows(), x);
                let mut corr = vec![0.0; m];
                gemv(1.0, &lb, Transpose::Yes, &xr, 0.0, &mut corr);
                trace.push(Op::Gemv { m: n, n: m });
                for (r, c) in rhs.iter_mut().zip(&corr) {
                    *r -= c;
                }
            }
            solve_lower_transpose(&la, &mut rhs);
            trace.push(Op::Trsm { m: 1, n: m });
            x[pivot_off..pivot_off + m].copy_from_slice(&rhs);
        }
        trace
    }

    /// The stored factor columns `[L_A; L_B]` of supernode `s` (rows are the
    /// node's block rows, in `rows` order).
    pub fn node_columns(&self, s: usize) -> &Mat {
        // lint: allow(unwrap) — node factored before its L block is read
        &self.nodes[s].as_ref().expect("missing node factor").l
    }

    /// The marginal covariance of one variable block: the `(b, b)` diagonal
    /// block of `H⁻¹`, recovered by back-substituting unit vectors through
    /// the factor (the standard SLAM covariance-recovery query).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range or the factor does not match `sym`.
    pub fn marginal_covariance(&self, sym: &SymbolicFactor, b: usize) -> Mat {
        let dim = sym.block_dims()[b];
        let off = sym.block_offset(b);
        let n = sym.total_dim();
        let mut cov = Mat::zeros(dim, dim);
        for c in 0..dim {
            let mut rhs = vec![0.0; n];
            rhs[off + c] = 1.0;
            self.solve_in_place(sym, &mut rhs);
            for r in 0..dim {
                cov[(r, c)] = rhs[off + r];
            }
        }
        cov
    }

    /// Densifies `L` into a full lower-triangular matrix (test helper).
    pub fn to_dense_l(&self, sym: &SymbolicFactor) -> Mat {
        let n = sym.total_dim();
        let mut l = Mat::zeros(n, n);
        for (s, info) in sym.nodes().iter().enumerate() {
            // lint: allow(unwrap) — postorder guarantees children factored first
            let nf = self.nodes[s].as_ref().expect("missing node factor");
            let pivot_off = sym.block_offset(info.first_col);
            // Scalar row offsets of the front rows.
            let mut row_offs = Vec::new();
            for &br in &info.rows {
                let off = sym.block_offset(br);
                for k in 0..sym.block_dims()[br] {
                    row_offs.push(off + k);
                }
            }
            for c in 0..info.pivot_dim {
                for (r_local, &r_global) in row_offs.iter().enumerate() {
                    if r_global >= pivot_off + c {
                        l[(r_global, pivot_off + c)] = nf.l[(r_local, c)];
                    }
                }
            }
        }
        l
    }
}

/// Executes one plan task: workspace reset, Hessian assembly via the
/// precomputed scatter offsets, extend-add of the children's cached
/// updates via the precomputed scatter blocks, then the three-step
/// partial factorization. Allocation-free apart from the result copies.
fn compute_task(
    plan: &ExecutionPlan,
    h: &BlockMat,
    s: usize,
    slots: &[OnceLock<(NodeFactor, OpTrace)>],
    ws: &mut Workspace,
    numeric: NumericMode,
) -> Result<(NodeFactor, OpTrace), FactorizeError> {
    let task = &plan.tasks()[s];
    let m = task.pivot_dim;
    let n = task.rem_dim;
    let t = m + n;
    let mut trace = OpTrace::new();
    let (front, scratch) = ws.parts();
    front.reset(t, t);
    trace.push(Op::Memset { bytes: t * t * 4 });

    // Assemble the original Hessian columns owned by this node.
    let mut asm_blocks = 0usize;
    let mut asm_elems = 0usize;
    for (jj, j) in task.cols().enumerate() {
        let cj = task.col_offsets[jj];
        for (i, blk) in h.col_blocks(j) {
            let ri = task
                .local_offset(i)
                .unwrap_or_else(|| panic!("H block ({i},{j}) outside front of node {s}"));
            front.add_block(ri, cj, blk);
            asm_blocks += 1;
            asm_elems += blk.rows() * blk.cols();
        }
    }
    if asm_blocks > 0 {
        trace.push(Op::Memcpy {
            bytes: asm_elems * 4,
        });
        trace.push(Op::ScatterAdd {
            blocks: asm_blocks,
            elems: asm_elems,
        });
    }

    // Extend-add each child's cached update matrix (the merge step), in
    // the plan's fixed child order — the determinism anchor that makes
    // parallel execution bit-identical to serial.
    for mg in &task.merges {
        // lint: allow(unwrap) — the executor completes children before parents
        let (child, _) = slots[mg.child].get().expect("child factored after parent");
        for b in &mg.blocks {
            front.add_block_from(
                b.dst_row,
                b.dst_col,
                &child.update,
                b.src_row,
                b.src_col,
                b.rows,
                b.cols,
            );
        }
        if !mg.blocks.is_empty() {
            trace.push(Op::Memcpy {
                bytes: mg.elems * 4,
            });
            trace.push(Op::ScatterAdd {
                blocks: mg.blocks.len(),
                elems: mg.elems,
            });
        }
    }

    // Three-step partial factorization (Figure 5, bottom), run through
    // the worker's pooled pack arena: zero allocation once warm, and the
    // arena's flop meter feeds the span's `kernel_flops`. The executor's
    // numeric mode picks the kernel engine (f64 / f32 / mixed).
    partial_cholesky_scratch_mode(front, m, scratch, numeric).map_err(|e| FactorizeError {
        node: s,
        front_col: e.col(),
    })?;
    trace.push(Op::Chol { n: m });
    if n > 0 {
        trace.push(Op::Trsm { m: n, n: m });
        trace.push(Op::Syrk { n, k: m });
    }

    // Copy the supernode columns out of the frontal workspace. These are
    // the published results, so they genuinely own their storage — the
    // one permitted allocation per task.
    let l = front.block(0, 0, t, m); // lint: allow(hot-alloc)
    let update = if n > 0 {
        front.block(m, m, n, n) // lint: allow(hot-alloc)
    } else {
        Mat::zeros(0, 0) // lint: allow(hot-alloc)
    };
    trace.push(Op::Memcpy { bytes: t * m * 4 });
    Ok((
        NodeFactor {
            l,
            update,
            sig: task.sig,
        },
        trace,
    ))
}

/// Shared frontal state of one *split* task while its sub-units execute:
/// one lock-guarded column strip per [`SplitShape`] strip. Strip `q`
/// stores front columns `[q·tile, …)` at leading dimension `front_dim`,
/// so its memory is byte-identical to those columns of the whole-front
/// workspace; under a narrow mode each strip also carries the f32 shadow
/// the mode's engine factors (demoted by the strip's Assemble unit,
/// promoted back by Finish — exactly as `partial_cholesky_scratch_mode`
/// round-trips the whole front).
///
/// The write locks never block: the plan's sub-levels already order every
/// writer-after-writer and writer-after-reader pair (the interference
/// certificate proves the rectangles disjoint within a sub-level), so
/// each acquisition succeeds immediately — the locks make the sharing
/// safe under `forbid(unsafe_code)`, they do not schedule it. Tiles of
/// one panel share the panel strip through concurrent read locks.
struct TaskSplit {
    /// Strip width in scalar columns (= the plan's `SplitConfig::tile`).
    tile: usize,
    strips: Vec<RwLock<StripBuf>>,
}

/// One column strip of a split task's frontal workspace.
struct StripBuf {
    /// f64 columns, leading dimension = the front dimension.
    data: Vec<f64>,
    /// f32 shadow factored by the narrow engines (empty in `F64` mode).
    data32: Vec<f32>,
}

impl TaskSplit {
    fn new(shape: &SplitShape, front_dim: usize, numeric: NumericMode) -> Self {
        let strips = (0..shape.strips)
            .map(|q| {
                let elems = front_dim * shape.strip_width(q, front_dim);
                RwLock::new(StripBuf {
                    data: vec![0.0f64; elems],
                    data32: if numeric == NumericMode::F64 {
                        Vec::new()
                    } else {
                        vec![0.0f32; elems]
                    },
                })
            })
            .collect();
        TaskSplit {
            tile: shape.tile,
            strips,
        }
    }
}

/// Executes one `Assemble` unit: scatters the Hessian columns and the
/// children's cached update matrices into one column strip of the front,
/// clipped to the strip's columns, in exactly the order `compute_task`
/// assembles the whole front — each front element receives the same
/// additions in the same order, so the strip contents are bit-identical
/// to the corresponding whole-front columns. Under a narrow mode the
/// strip is then demoted into its f32 shadow, element for element as the
/// whole-front demote does.
fn assemble_strip(
    plan: &ExecutionPlan,
    h: &BlockMat,
    s: usize,
    strip: usize,
    slots: &[OnceLock<(NodeFactor, OpTrace)>],
    split: &TaskSplit,
    numeric: NumericMode,
) {
    let task = &plan.tasks()[s];
    let dim = task.front_dim();
    let col0 = strip * split.tile;
    let w = split.tile.min(dim - col0);
    // lint: allow(unwrap) — the certificate orders all strip writers
    let mut guard = split.strips[strip].write().expect("strip lock poisoned");
    let StripBuf { data, data32 } = &mut *guard;

    // Hessian columns owned by this node, clipped to [col0, col0 + w).
    for (jj, j) in task.cols().enumerate() {
        let cj = task.col_offsets[jj];
        for (i, blk) in h.col_blocks(j) {
            let ri = task
                .local_offset(i)
                .unwrap_or_else(|| panic!("H block ({i},{j}) outside front of node {s}"));
            let lo = col0.max(cj);
            let hi = (col0 + w).min(cj + blk.cols());
            for c in lo..hi {
                let dst = (c - col0) * dim + ri;
                for r in 0..blk.rows() {
                    data[dst + r] += blk[(r, c - cj)];
                }
            }
        }
    }

    // Extend-add of the children's cached updates, in the plan's fixed
    // child order (the determinism anchor), clipped to the strip.
    for mg in &task.merges {
        // lint: allow(unwrap) — the sub-levels order child Finish before parent Assemble
        let (child, _) = slots[mg.child].get().expect("child factored after parent");
        for b in &mg.blocks {
            let lo = col0.max(b.dst_col);
            let hi = (col0 + w).min(b.dst_col + b.cols);
            for c in lo..hi {
                let sc = b.src_col + (c - b.dst_col);
                let dst = (c - col0) * dim + b.dst_row;
                for r in 0..b.rows {
                    data[dst + r] += child.update[(b.src_row + r, sc)];
                }
            }
        }
    }

    if numeric != NumericMode::F64 {
        for (d, &v) in data32.iter_mut().zip(data.iter()) {
            *d = v as f32;
        }
    }
}

/// Executes one `Panel` unit: the serial panel step (diagonal Cholesky,
/// below-panel TRSM, intra-strip trailing slice) on the strip that stores
/// the panel, in the mode's kernel engine.
fn panel_step(
    plan: &ExecutionPlan,
    s: usize,
    panel: usize,
    split: &TaskSplit,
    ws: &mut Workspace,
    numeric: NumericMode,
) -> Result<(), FactorizeError> {
    let task = &plan.tasks()[s];
    // lint: allow(unwrap) — Panel units only exist on split tasks
    let shape = plan.split_shape(s).expect("panel on unsplit task");
    let dim = task.front_dim();
    let (k, b) = shape.panel_cols(panel, task.pivot_dim);
    let sp = shape.strip_of_panel(panel);
    let col0 = sp * shape.tile;
    let tail_end = col0 + shape.strip_width(sp, dim);
    let (_, scratch) = ws.parts();
    // lint: allow(unwrap) — the certificate orders all strip writers
    let mut guard = split.strips[sp].write().expect("strip lock poisoned");
    let r = if numeric == NumericMode::F64 {
        split_panel_f64(&mut guard.data, dim, dim, col0, k, b, tail_end, scratch)
    } else {
        split_panel_f32(
            numeric,
            &mut guard.data32,
            dim,
            dim,
            col0,
            k,
            b,
            tail_end,
            scratch,
        )
    };
    r.map_err(|e| FactorizeError {
        node: s,
        front_col: e.col(),
    })
}

/// Executes one `Tile` unit: the trailing-update slice owned by strip
/// `strip` after `panel`, reading the panel's strip and writing its own.
fn tile_step(
    plan: &ExecutionPlan,
    s: usize,
    panel: usize,
    strip: usize,
    split: &TaskSplit,
    ws: &mut Workspace,
    numeric: NumericMode,
) {
    let task = &plan.tasks()[s];
    // lint: allow(unwrap) — Tile units only exist on split tasks
    let shape = plan.split_shape(s).expect("tile on unsplit task");
    let dim = task.front_dim();
    let (k, b) = shape.panel_cols(panel, task.pivot_dim);
    let sp = shape.strip_of_panel(panel);
    let pcol0 = sp * shape.tile;
    let qcol0 = strip * shape.tile;
    let qcols = shape.strip_width(strip, dim);
    let (_, scratch) = ws.parts();
    // lint: allow(unwrap) — tiles of one panel share the panel strip read-only
    let pguard = split.strips[sp].read().expect("strip lock poisoned");
    // lint: allow(unwrap) — the certificate proves tile write rectangles disjoint
    let mut dguard = split.strips[strip].write().expect("strip lock poisoned");
    if numeric == NumericMode::F64 {
        split_tile_f64(
            &pguard.data,
            &mut dguard.data,
            dim,
            dim,
            pcol0,
            k,
            b,
            qcol0,
            qcols,
            scratch,
        );
    } else {
        split_tile_f32(
            numeric,
            &pguard.data32,
            &mut dguard.data32,
            dim,
            dim,
            pcol0,
            k,
            b,
            qcol0,
            qcols,
            scratch,
        );
    }
}

/// Executes the `Finish` unit: gathers the published `NodeFactor` out of
/// the strips (promoting the f32 shadow exactly under a narrow mode, and
/// zeroing the strict upper triangle of the pivot columns exactly as
/// `zero_strict_upper` does for the whole-front path) and emits the
/// task's canonical op trace — the *same* trace `compute_task` records,
/// so estimates and simulated cycles are split-invariant.
fn finish_task(
    plan: &ExecutionPlan,
    h: &BlockMat,
    s: usize,
    split: &TaskSplit,
    numeric: NumericMode,
) -> (NodeFactor, OpTrace) {
    let task = &plan.tasks()[s];
    let m = task.pivot_dim;
    let n = task.rem_dim;
    let t = m + n;

    // Canonical per-task trace, mirroring compute_task op for op.
    let mut trace = OpTrace::new();
    trace.push(Op::Memset { bytes: t * t * 4 });
    let mut asm_blocks = 0usize;
    let mut asm_elems = 0usize;
    for j in task.cols() {
        for (_, blk) in h.col_blocks(j) {
            asm_blocks += 1;
            asm_elems += blk.rows() * blk.cols();
        }
    }
    if asm_blocks > 0 {
        trace.push(Op::Memcpy {
            bytes: asm_elems * 4,
        });
        trace.push(Op::ScatterAdd {
            blocks: asm_blocks,
            elems: asm_elems,
        });
    }
    for mg in &task.merges {
        if !mg.blocks.is_empty() {
            trace.push(Op::Memcpy {
                bytes: mg.elems * 4,
            });
            trace.push(Op::ScatterAdd {
                blocks: mg.blocks.len(),
                elems: mg.elems,
            });
        }
    }
    trace.push(Op::Chol { n: m });
    if n > 0 {
        trace.push(Op::Trsm { m: n, n: m });
        trace.push(Op::Syrk { n, k: m });
    }

    // lint: allow(unwrap) — the sub-levels order every writer before Finish
    let guards: Vec<_> = split
        .strips
        .iter()
        .map(|l| l.read().expect("strip lock poisoned"))
        .collect();
    let tile = split.tile;
    let at = |r: usize, c: usize| {
        let q = c / tile;
        let idx = (c - q * tile) * t + r;
        if numeric == NumericMode::F64 {
            guards[q].data[idx]
        } else {
            guards[q].data32[idx] as f64
        }
    };
    // The published results genuinely own their storage — the one
    // permitted allocation per task, as in compute_task.
    let l = Mat::from_fn(t, m, |r, c| if r < c { 0.0 } else { at(r, c) }); // lint: allow(hot-alloc)
    let update = if n > 0 {
        Mat::from_fn(n, n, |r, c| at(m + r, m + c)) // lint: allow(hot-alloc)
    } else {
        Mat::zeros(0, 0) // lint: allow(hot-alloc)
    };
    trace.push(Op::Memcpy { bytes: t * m * 4 });
    (
        NodeFactor {
            l,
            update,
            sig: task.sig,
        },
        trace,
    )
}

/// `x[rows] -= v`, scattering block-contiguous `v` into the global vector.
fn scatter_sub(sym: &SymbolicFactor, rows: &[usize], v: &[f64], x: &mut [f64]) {
    let mut k = 0usize;
    for &br in rows {
        let off = sym.block_offset(br);
        let d = sym.block_dims()[br];
        for i in 0..d {
            x[off + i] -= v[k + i];
        }
        k += d;
    }
}

/// Gathers `x[rows]` into a contiguous vector.
fn gather(sym: &SymbolicFactor, rows: &[usize], x: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    for &br in rows {
        let off = sym.block_offset(br);
        out.extend_from_slice(&x[off..off + sym.block_dims()[br]]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockPattern;
    use supernova_linalg::cholesky_in_place;

    /// Builds a block SPD system from a pattern with deterministic values.
    fn build_h(pattern: &BlockPattern, seed: u64) -> BlockMat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let dims = pattern.block_dims().to_vec();
        let mut h = BlockMat::new(dims.clone());
        for j in 0..pattern.num_blocks() {
            for &i in pattern.col(j) {
                let m = Mat::from_fn(dims[i], dims[j], |_, _| next() * 0.3);
                h.add_to_block(i, j, &m);
            }
            // Strong diagonal for positive definiteness.
            let d = dims[j];
            let row_degree = pattern.col(j).len() as f64;
            h.add_to_block(j, j, &Mat::from_diag(&vec![4.0 + 2.0 * row_degree; d]));
        }
        h
    }

    fn assert_matches_dense(
        pattern: &BlockPattern,
        h: &BlockMat,
        num: &NumericFactor,
        sym: &SymbolicFactor,
    ) {
        let dense = h.to_dense();
        let mut l_ref = dense.clone();
        cholesky_in_place(&mut l_ref).unwrap();
        let l = num.to_dense_l(sym);
        let n = sym.total_dim();
        for i in 0..n {
            for j in 0..=i {
                assert!(
                    (l[(i, j)] - l_ref[(i, j)]).abs() < 1e-8,
                    "L({i},{j}) = {} vs dense {} (pattern nnz {})",
                    l[(i, j)],
                    l_ref[(i, j)],
                    pattern.nnz_blocks(),
                );
            }
        }
    }

    fn loopy_pattern() -> BlockPattern {
        let mut p = BlockPattern::new(vec![2, 3, 1, 2, 2, 3, 1, 2]);
        for i in 0..7 {
            p.add_block_edge(i, i + 1);
        }
        p.add_block_edge(0, 5);
        p.add_block_edge(2, 7);
        p.add_block_edge(3, 6);
        p
    }

    #[test]
    fn factorize_matches_dense_cholesky() {
        let p = loopy_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let h = build_h(&p, 3);
        let num = NumericFactor::factorize(&sym, &h).unwrap();
        assert_matches_dense(&p, &h, &num, &sym);
    }

    #[test]
    fn factorize_with_relaxed_supernodes_matches_dense() {
        let p = loopy_pattern();
        let sym = SymbolicFactor::analyze(&p, 2);
        let h = build_h(&p, 3);
        let num = NumericFactor::factorize(&sym, &h).unwrap();
        assert_matches_dense(&p, &h, &num, &sym);
    }

    #[test]
    fn solve_inverts_system() {
        let p = loopy_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let h = build_h(&p, 9);
        let num = NumericFactor::factorize(&sym, &h).unwrap();
        let dense = h.to_dense();
        let x_true: Vec<f64> = (0..sym.total_dim()).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut x = dense.matvec(&x_true);
        let trace = num.solve_in_place(&sym, &mut x);
        assert!(!trace.is_empty());
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn refactor_after_value_change_matches_fresh() {
        let p = loopy_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let h0 = build_h(&p, 1);
        let (mut num, full) = NumericFactor::factorize_traced(&sym, &h0).unwrap();
        assert_eq!(full.reused, 0);

        // Change the values in block column 2 (and its row partners).
        let mut h1 = h0.clone();
        h1.add_to_block(2, 2, &Mat::from_diag(&vec![1.5; p.block_dims()[2]]));
        let stats = num.refactor(&sym, &h1, &[2]).unwrap();
        assert!(stats.reused > 0, "expected some reuse on a local change");

        let fresh = NumericFactor::factorize(&sym, &h1).unwrap();
        let a = num.to_dense_l(&sym);
        let b = fresh.to_dense_l(&sym);
        for i in 0..sym.total_dim() {
            for j in 0..=i {
                assert!((a[(i, j)] - b[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn refactor_after_structure_change_matches_fresh() {
        // Start with a chain, then add a loop-closure edge.
        let mut p = BlockPattern::new(vec![2; 6]);
        for i in 0..5 {
            p.add_block_edge(i, i + 1);
        }
        let sym0 = SymbolicFactor::analyze(&p, 0);
        let h0 = build_h(&p, 5);
        let mut num = NumericFactor::factorize(&sym0, &h0).unwrap();

        p.add_block_edge(1, 4);
        let sym1 = SymbolicFactor::analyze(&p, 0);
        // Values consistent with h0 plus the new loop-closure block.
        let h1 = {
            let mut h = h0.clone();
            h.add_to_block(4, 1, &Mat::from_fn(2, 2, |r, c| 0.1 * (r + c) as f64));
            h
        };
        let stats = num.refactor(&sym1, &h1, &[1, 4]).unwrap();
        assert!(!stats.recomputed.is_empty());
        let fresh = NumericFactor::factorize(&sym1, &h1).unwrap();
        let a = num.to_dense_l(&sym1);
        let b = fresh.to_dense_l(&sym1);
        for i in 0..sym1.total_dim() {
            for j in 0..=i {
                assert!((a[(i, j)] - b[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn refactor_with_no_dirt_reuses_everything() {
        let p = loopy_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let h = build_h(&p, 8);
        let mut num = NumericFactor::factorize(&sym, &h).unwrap();
        let stats = num.refactor(&sym, &h, &[]).unwrap();
        assert_eq!(stats.recomputed.len(), 0);
        assert_eq!(stats.reused, sym.nodes().len());
    }

    #[test]
    fn traces_cover_recomputed_nodes_in_postorder() {
        let p = loopy_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let h = build_h(&p, 2);
        let (_, stats) = NumericFactor::factorize_traced(&sym, &h).unwrap();
        let got: Vec<usize> = stats.recomputed_nodes();
        assert_eq!(got, sym.postorder().to_vec());
        assert!(stats.flops() > 0);
        for t in &stats.recomputed {
            assert!(t.ops.ops().iter().any(|o| matches!(o, Op::Chol { .. })));
        }
    }

    #[test]
    fn marginal_covariance_matches_dense_inverse() {
        let p = loopy_pattern();
        let sym = SymbolicFactor::analyze(&p, 1);
        let h = build_h(&p, 11);
        let num = NumericFactor::factorize(&sym, &h).unwrap();
        // Dense inverse via solves against the identity.
        let dense = h.to_dense();
        let mut l = dense.clone();
        cholesky_in_place(&mut l).unwrap();
        for b in [0usize, 3, 7] {
            let cov = num.marginal_covariance(&sym, b);
            let dim = sym.block_dims()[b];
            let off = sym.block_offset(b);
            for c in 0..dim {
                let mut e = vec![0.0; sym.total_dim()];
                e[off + c] = 1.0;
                supernova_linalg::solve_lower(&l, &mut e);
                supernova_linalg::solve_lower_transpose(&l, &mut e);
                for r in 0..dim {
                    assert!(
                        (cov[(r, c)] - e[off + r]).abs() < 1e-9,
                        "cov({r},{c}) of block {b} differs"
                    );
                }
            }
            // A covariance diagonal must be positive.
            for d in 0..dim {
                assert!(cov[(d, d)] > 0.0);
            }
        }
    }

    #[test]
    fn indefinite_matrix_reports_node() {
        let mut p = BlockPattern::new(vec![1, 1]);
        p.add_block_edge(0, 1);
        let sym = SymbolicFactor::analyze(&p, 0);
        let mut h = BlockMat::new(vec![1, 1]);
        h.add_to_block(0, 0, &Mat::from_rows(1, 1, &[1.0]));
        h.add_to_block(1, 0, &Mat::from_rows(1, 1, &[2.0]));
        h.add_to_block(1, 1, &Mat::from_rows(1, 1, &[1.0]));
        let err = NumericFactor::factorize(&sym, &h).unwrap_err();
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_serial() {
        let p = loopy_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let plan = ExecutionPlan::from_symbolic(&sym);
        let h = build_h(&p, 17);
        let all: Vec<usize> = (0..p.num_blocks()).collect();

        let mut serial = NumericFactor::empty(&plan);
        let (stats_s, sched_s) = serial
            .execute_plan(&plan, &h, &all, &ParallelExecutor::serial())
            .unwrap();
        let bytes_s = serial.serialize_bytes();
        assert_eq!(sched_s.workers, 1);

        for threads in [2usize, 4, 8] {
            let mut par = NumericFactor::empty(&plan);
            let (stats_p, sched_p) = par
                .execute_plan(&plan, &h, &all, &ParallelExecutor::new(threads))
                .unwrap();
            assert_eq!(bytes_s, par.serialize_bytes(), "{threads} threads diverged");
            assert_eq!(stats_s.recomputed_nodes(), stats_p.recomputed_nodes());
            assert_eq!(stats_s.flops(), stats_p.flops());
            assert_eq!(sched_p.spans.len(), plan.num_tasks());
        }
    }

    #[test]
    fn narrow_modes_are_bit_identical_across_thread_counts() {
        let p = loopy_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let plan = ExecutionPlan::from_symbolic(&sym);
        let h = build_h(&p, 17);
        let all: Vec<usize> = (0..p.num_blocks()).collect();
        for mode in [NumericMode::F32, NumericMode::F32F64] {
            let mut serial = NumericFactor::empty(&plan);
            let exec = ParallelExecutor::serial().with_numeric(mode);
            let (_, sched_s) = serial.execute_plan(&plan, &h, &all, &exec).unwrap();
            assert_eq!(sched_s.numeric, mode);
            let bytes_s = serial.serialize_bytes();
            for threads in [2usize, 4, 8] {
                let mut par = NumericFactor::empty(&plan);
                let exec = ParallelExecutor::new(threads).with_numeric(mode);
                let (_, sched_p) = par.execute_plan(&plan, &h, &all, &exec).unwrap();
                assert_eq!(sched_p.numeric, mode);
                assert_eq!(
                    bytes_s,
                    par.serialize_bytes(),
                    "{mode} at {threads} threads diverged from {mode} serial"
                );
            }
            // The narrow engines genuinely round: a same-input f64 factor
            // must differ, or the mode never reached the kernels.
            let mut wide = NumericFactor::empty(&plan);
            wide.execute_plan(&plan, &h, &all, &ParallelExecutor::serial())
                .unwrap();
            assert_ne!(
                bytes_s,
                wide.serialize_bytes(),
                "{mode} produced bitwise-f64 results; mode plumbing is dead"
            );
        }
    }

    #[test]
    fn certified_batched_execution_is_bit_identical_to_serial() {
        let p = loopy_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let plan = ExecutionPlan::from_symbolic(&sym);
        let cert = crate::interference::certify(&plan).expect("loopy plan certifies");
        let h = build_h(&p, 17);
        let all: Vec<usize> = (0..p.num_blocks()).collect();

        let mut serial = NumericFactor::empty(&plan);
        let (stats_s, _) = serial
            .execute_plan(&plan, &h, &all, &ParallelExecutor::serial())
            .unwrap();
        let bytes_s = serial.serialize_bytes();

        for threads in [2usize, 4, 8] {
            let mut par = NumericFactor::empty(&plan);
            let (stats_p, sched_p) = par
                .execute_plan_certified(
                    &plan,
                    &h,
                    &all,
                    &ParallelExecutor::new(threads),
                    Some(&cert),
                )
                .unwrap();
            assert_eq!(
                sched_p.mode,
                crate::DispatchMode::LevelBatched,
                "{threads} threads should batch"
            );
            assert_eq!(
                bytes_s,
                par.serialize_bytes(),
                "{threads}-thread batched dispatch diverged"
            );
            assert_eq!(stats_s.recomputed_nodes(), stats_p.recomputed_nodes());
            assert_eq!(stats_s.flops(), stats_p.flops());
        }

        // Incremental (partial-recompute) batched execution also matches.
        let mut h1 = h.clone();
        h1.add_to_block(3, 3, &Mat::from_diag(&vec![0.75; p.block_dims()[3]]));
        let mut inc_serial = serial;
        inc_serial
            .execute_plan(&plan, &h1, &[3], &ParallelExecutor::serial())
            .unwrap();
        let inc_bytes = inc_serial.serialize_bytes();
        let mut inc_par = NumericFactor::empty(&plan);
        inc_par
            .execute_plan_certified(&plan, &h, &all, &ParallelExecutor::new(4), Some(&cert))
            .unwrap();
        let (_, sched_inc) = inc_par
            .execute_plan_certified(&plan, &h1, &[3], &ParallelExecutor::new(4), Some(&cert))
            .unwrap();
        assert_eq!(inc_bytes, inc_par.serialize_bytes());
        // Partial recompute may collapse to ≤1 task (serial inline) or
        // batch — either way the bytes above already matched.
        assert!(sched_inc.spans.len() >= 1);
    }

    #[test]
    fn execute_plan_reuses_like_refactor() {
        let p = loopy_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let plan = ExecutionPlan::from_symbolic(&sym);
        let h0 = build_h(&p, 1);
        let all: Vec<usize> = (0..p.num_blocks()).collect();

        let mut via_plan = NumericFactor::empty(&plan);
        via_plan
            .execute_plan(&plan, &h0, &all, &ParallelExecutor::new(4))
            .unwrap();

        let mut h1 = h0.clone();
        h1.add_to_block(2, 2, &Mat::from_diag(&vec![1.5; p.block_dims()[2]]));
        let (stats, _) = via_plan
            .execute_plan(&plan, &h1, &[2], &ParallelExecutor::new(4))
            .unwrap();

        // Mirror the serial refactor path on a fresh factor.
        let mut via_refactor = NumericFactor::factorize(&sym, &h0).unwrap();
        let ref_stats = via_refactor.refactor(&sym, &h1, &[2]).unwrap();

        assert_eq!(stats.reused, ref_stats.reused);
        assert_eq!(stats.recomputed_nodes(), ref_stats.recomputed_nodes());
        assert_eq!(via_plan.serialize_bytes(), via_refactor.serialize_bytes());
    }

    #[test]
    fn serialize_bytes_distinguishes_values() {
        let p = loopy_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let h0 = build_h(&p, 1);
        let num0 = NumericFactor::factorize(&sym, &h0).unwrap();
        let mut h1 = h0.clone();
        h1.add_to_block(0, 0, &Mat::from_diag(&vec![0.25; p.block_dims()[0]]));
        let num1 = NumericFactor::factorize(&sym, &h1).unwrap();
        assert_ne!(num0.serialize_bytes(), num1.serialize_bytes());
        assert_eq!(num0.serialize_bytes(), num0.serialize_bytes());
    }

    /// Three 64-wide variable blocks: two 128-wide fronts (64 pivot + 64
    /// remainder) feeding a 64-wide root — the smallest pattern on which
    /// the default split pass produces panel/tile sub-units.
    fn big_pattern() -> BlockPattern {
        let mut p = BlockPattern::new(vec![64, 64, 64]);
        p.add_block_edge(0, 2);
        p.add_block_edge(1, 2);
        p
    }

    /// [`build_h`] with a diagonal strong enough for 64-wide blocks (the
    /// default boost is tuned for the tiny loopy patterns).
    fn build_big_h(p: &BlockPattern, seed: u64) -> BlockMat {
        let mut h = build_h(p, seed);
        for j in 0..p.num_blocks() {
            let d = p.block_dims()[j];
            h.add_to_block(j, j, &Mat::from_diag(&vec![d as f64; d]));
        }
        h
    }

    #[test]
    fn split_execution_is_bit_identical_to_unsplit_serial() {
        use crate::SplitConfig;
        let p = big_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let h = build_big_h(&p, 23);
        let all: Vec<usize> = (0..p.num_blocks()).collect();
        let unsplit = ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::off());
        let split = ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::on());
        assert!(split.has_units(), "128-wide fronts must split");
        let cert = crate::interference::certify(&split).expect("split plan certifies");
        for mode in [NumericMode::F64, NumericMode::F32, NumericMode::F32F64] {
            let mut oracle = NumericFactor::empty(&unsplit);
            let exec = ParallelExecutor::serial().with_numeric(mode);
            let (ostats, _) = oracle.execute_plan(&unsplit, &h, &all, &exec).unwrap();
            let bytes = oracle.serialize_bytes();
            for threads in [1usize, 2, 4, 8] {
                let mut fac = NumericFactor::empty(&split);
                let exec = ParallelExecutor::new(threads).with_numeric(mode);
                let (stats, sched) = fac
                    .execute_plan_certified(&split, &h, &all, &exec, Some(&cert))
                    .unwrap();
                assert_eq!(
                    bytes,
                    fac.serialize_bytes(),
                    "{mode:?} at {threads} threads diverged from unsplit serial"
                );
                assert_eq!(stats.recomputed_nodes(), ostats.recomputed_nodes());
                assert_eq!(
                    stats.flops(),
                    ostats.flops(),
                    "{mode:?} at {threads} threads: split op traces must match unsplit"
                );
                assert_eq!(
                    sched.spans.len(),
                    split.num_units(),
                    "{mode:?} at {threads} threads: one span per unit"
                );
                assert!(
                    sched.split_units > 0,
                    "{mode:?} at {threads} threads: split units must dispatch"
                );
            }
        }
    }

    #[test]
    fn split_incremental_refactor_matches_unsplit() {
        use crate::SplitConfig;
        let p = big_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let h0 = build_big_h(&p, 5);
        let all: Vec<usize> = (0..p.num_blocks()).collect();
        let unsplit = ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::off());
        let split = ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::on());
        let cert = crate::interference::certify(&split).expect("split plan certifies");
        let mut h1 = h0.clone();
        h1.add_to_block(1, 1, &Mat::from_diag(&vec![1.25; 64]));

        let mut oracle = NumericFactor::empty(&unsplit);
        oracle
            .execute_plan(&unsplit, &h0, &all, &ParallelExecutor::serial())
            .unwrap();
        let (ostats, _) = oracle
            .execute_plan(&unsplit, &h1, &[1], &ParallelExecutor::serial())
            .unwrap();
        assert!(ostats.reused > 0, "a local change must reuse node 0");

        for threads in [1usize, 4] {
            let exec = ParallelExecutor::new(threads);
            let mut fac = NumericFactor::empty(&split);
            fac.execute_plan_certified(&split, &h0, &all, &exec, Some(&cert))
                .unwrap();
            let (stats, _) = fac
                .execute_plan_certified(&split, &h1, &[1], &exec, Some(&cert))
                .unwrap();
            assert_eq!(stats.reused, ostats.reused);
            assert_eq!(stats.recomputed_nodes(), ostats.recomputed_nodes());
            assert_eq!(
                oracle.serialize_bytes(),
                fac.serialize_bytes(),
                "incremental split refactor diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn split_threshold_boundary_fronts_stay_identical() {
        use crate::SplitConfig;
        let p = big_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let h = build_big_h(&p, 7);
        let all: Vec<usize> = (0..p.num_blocks()).collect();
        let off = ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::off());
        let mut oracle = NumericFactor::empty(&off);
        oracle
            .execute_plan(&off, &h, &all, &ParallelExecutor::serial())
            .unwrap();
        let bytes = oracle.serialize_bytes();
        // Exactly at the largest front dimension the fronts still split;
        // one above, the plan must carry no units at all.
        let at = ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::on().with_min_dim(128));
        assert!(at.has_units(), "threshold == front dim must split");
        let above =
            ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::on().with_min_dim(129));
        assert!(!above.has_units(), "threshold above front dim must not");
        for plan in [&at, &above] {
            let cert = crate::interference::certify(plan).expect("plan certifies");
            let mut fac = NumericFactor::empty(plan);
            fac.execute_plan_certified(plan, &h, &all, &ParallelExecutor::new(4), Some(&cert))
                .unwrap();
            assert_eq!(bytes, fac.serialize_bytes());
        }
    }

    #[test]
    fn split_error_matches_unsplit_node_and_column() {
        use crate::SplitConfig;
        let p = big_pattern();
        let sym = SymbolicFactor::analyze(&p, 0);
        let mut h = build_big_h(&p, 9);
        // Poison a pivot in node 0's second factorization panel so the
        // failure surfaces mid-split (front column 50 ≥ SPLIT_NB).
        let mut bad = Mat::zeros(64, 64);
        bad[(50, 50)] = -1e9;
        h.add_to_block(0, 0, &bad);
        let all: Vec<usize> = (0..p.num_blocks()).collect();
        let unsplit = ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::off());
        let split = ExecutionPlan::from_symbolic_with_split(&sym, SplitConfig::on());
        let cert = crate::interference::certify(&split).expect("split plan certifies");
        let mut wfac = NumericFactor::empty(&unsplit);
        let werr = wfac
            .execute_plan(&unsplit, &h, &all, &ParallelExecutor::serial())
            .unwrap_err();
        assert!(werr.front_col() >= 48, "poison must land past panel 0");
        for threads in [1usize, 4] {
            let mut sfac = NumericFactor::empty(&split);
            let serr = sfac
                .execute_plan_certified(
                    &split,
                    &h,
                    &all,
                    &ParallelExecutor::new(threads),
                    Some(&cert),
                )
                .unwrap_err();
            assert_eq!(serr, werr, "split error at {threads} threads");
        }
    }

    #[test]
    fn factorize_error_leaves_factor_reseedable() {
        let mut p = BlockPattern::new(vec![1, 1]);
        p.add_block_edge(0, 1);
        let sym = SymbolicFactor::analyze(&p, 0);
        let plan = ExecutionPlan::from_symbolic(&sym);
        let mut bad = BlockMat::new(vec![1, 1]);
        bad.add_to_block(0, 0, &Mat::from_rows(1, 1, &[1.0]));
        bad.add_to_block(1, 0, &Mat::from_rows(1, 1, &[2.0]));
        bad.add_to_block(1, 1, &Mat::from_rows(1, 1, &[1.0]));
        let all = [0usize, 1];
        let mut num = NumericFactor::empty(&plan);
        assert!(num
            .execute_plan(&plan, &bad, &all, &ParallelExecutor::new(2))
            .is_err());
        // A good system factorizes fine afterwards.
        let good = build_h(&p, 3);
        let (stats, _) = num
            .execute_plan(&plan, &good, &all, &ParallelExecutor::serial())
            .unwrap();
        assert_eq!(stats.recomputed.len(), plan.num_tasks());
    }
}
