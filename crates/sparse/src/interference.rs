//! Static interference analysis over the [`ExecutionPlan`] IR.
//!
//! The plan's `levels()` doc promises that tasks within a topological
//! level are mutually independent. The executor's batched dispatch mode
//! ([`crate::ParallelExecutor`]) *relies* on that promise: it replaces the
//! per-task dependency counters with one atomic cursor per level and a
//! barrier between levels, so two tasks in the same level run with no
//! ordering at all. This module turns the promise into a proof:
//!
//! 1. [`extract_accesses`] derives every task's read/write set straight
//!    from the plan — the Hessian block columns it assembles (reads), the
//!    child update-matrix rectangles its [`ChildMerge`](crate::ChildMerge)
//!    scatter programs
//!    copy (reads), and the factor columns plus own update matrix it
//!    publishes (writes). This mirrors `numeric::compute_task` exactly;
//!    the frontal workspace is worker-private and therefore not a shared
//!    resource.
//! 2. The happens-before relation available to batched dispatch is just
//!    `level(a) < level(b)` — the level barrier. [`check_accesses`] proves
//!    that every conflicting pair (write–write, or read–write on
//!    overlapping rectangles of the same resource) is ordered by it, i.e.
//!    the writer sits at a strictly lower level than every reader and no
//!    two writers overlap at all.
//! 3. [`certify`] additionally checks structural sanity (the level table
//!    partitions the tasks, parents sit above children, scatter blocks
//!    stay inside their source and destination bounds) and, when every
//!    check passes, emits a [`PlanCertificate`] carrying a structural
//!    fingerprint of the plan. The executor re-derives the fingerprint
//!    before trusting a certificate, so a certificate can never be applied
//!    to a plan it was not computed from.
//!
//! `supernova-analyze` re-exports this pass and runs it over the committed
//! dataset plans in CI; `solvers::engine` certifies each plan once at
//! plan-cache build time.

use std::fmt;

use crate::plan::{ExecutionPlan, PlanTask, PlanUnit, UnitKind};

/// A scalar rectangle within one resource (update matrix or factor
/// columns). `rows`/`cols` use saturating arithmetic so a whole-resource
/// region can be expressed as `Region::all()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First scalar row.
    pub row: usize,
    /// First scalar column.
    pub col: usize,
    /// Height in scalar rows.
    pub rows: usize,
    /// Width in scalar columns.
    pub cols: usize,
}

impl Region {
    /// A region covering the entire resource.
    pub fn all() -> Self {
        Region {
            row: 0,
            col: 0,
            rows: usize::MAX,
            cols: usize::MAX,
        }
    }

    /// Whether two rectangles share at least one scalar entry.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.rows > 0
            && self.cols > 0
            && other.rows > 0
            && other.cols > 0
            && self.row < other.row.saturating_add(other.rows)
            && other.row < self.row.saturating_add(self.rows)
            && self.col < other.col.saturating_add(other.cols)
            && other.col < self.col.saturating_add(self.cols)
    }
}

/// A shared resource a plan task can touch. The per-worker frontal
/// workspace is private and deliberately absent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resource {
    /// Block column `b` of the assembled Hessian (read-only input).
    HessianCol(usize),
    /// The cached update matrix `L_C` of task `s` (written by `s`, read by
    /// the parent's extend-add).
    Update(usize),
    /// The published factor columns `[L_A; L_B]` of task `s`.
    FactorNode(usize),
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::HessianCol(b) => write!(f, "H[:, block {b}]"),
            Resource::Update(s) => write!(f, "update({s})"),
            Resource::FactorNode(s) => write!(f, "factor({s})"),
        }
    }
}

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// The task reads the region.
    Read,
    /// The task writes (publishes) the region.
    Write,
}

/// One element of a task's read/write set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// The accessing task.
    pub task: usize,
    /// What is accessed.
    pub resource: Resource,
    /// Read or write.
    pub kind: AccessKind,
    /// The scalar rectangle touched within the resource.
    pub region: Region,
}

/// Why a plan failed certification. `id()` strings are stable and appear
/// in machine-readable diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterferenceKind {
    /// Two distinct tasks write overlapping regions of one resource.
    WriteWrite,
    /// A read and a write of overlapping regions sit in the same level —
    /// the level barrier cannot order them.
    SameLevelConflict,
    /// A reader sits at a *lower* level than the writer it depends on
    /// (it would observe unpublished data).
    ReadBeforeWrite,
    /// A scatter block escapes its source or destination bounds.
    Bounds,
    /// The level table does not partition the tasks, or a parent does not
    /// sit strictly above a child.
    LevelPartition,
    /// Two tile sub-units scheduled in the same sub-level write overlapping
    /// rectangles of one split front — the sub-level barrier cannot order
    /// them.
    OverlappingTiles,
    /// A trailing-update sub-unit is scheduled at or before the panel step
    /// it depends on (either the panel that produces its operand, or — for
    /// a later panel — the update tile that feeds its strip).
    UpdateBeforePanel,
}

impl InterferenceKind {
    /// Stable diagnostic id.
    pub fn id(&self) -> &'static str {
        match self {
            InterferenceKind::WriteWrite => "write-write",
            InterferenceKind::SameLevelConflict => "same-level-conflict",
            InterferenceKind::ReadBeforeWrite => "read-before-write",
            InterferenceKind::Bounds => "bounds",
            InterferenceKind::LevelPartition => "level-partition",
            InterferenceKind::OverlappingTiles => "overlapping-tiles",
            InterferenceKind::UpdateBeforePanel => "update-before-panel",
        }
    }
}

impl fmt::Display for InterferenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One disproof of level-safety.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterferenceViolation {
    /// Which check failed.
    pub kind: InterferenceKind,
    /// The first involved task.
    pub task_a: usize,
    /// The second involved task (equal to `task_a` for unary checks).
    pub task_b: usize,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for InterferenceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] tasks {}/{}: {}",
            self.kind, self.task_a, self.task_b, self.message
        )
    }
}

/// The proof token that a plan is level-safe: every intra-level task pair
/// is access-disjoint, so batched (level-barrier) dispatch is observably
/// identical to dependency-counted dispatch.
///
/// The certificate is bound to the plan it was computed from by a
/// structural fingerprint; [`covers`](Self::covers) re-derives the
/// fingerprint, so certificates cannot be replayed against other plans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanCertificate {
    fingerprint: u64,
    num_tasks: usize,
    num_levels: usize,
    accesses: usize,
}

impl PlanCertificate {
    /// The structural fingerprint of the certified plan.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Tasks in the certified plan.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Topological levels in the certified plan.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Size of the read/write set the proof covered.
    pub fn accesses(&self) -> usize {
        self.accesses
    }

    /// Whether this certificate was computed from `plan` — the executor's
    /// gate before switching to batched dispatch.
    pub fn covers(&self, plan: &ExecutionPlan) -> bool {
        self.num_tasks == plan.num_tasks()
            && self.num_levels == plan.levels().len()
            && self.fingerprint == plan_fingerprint(plan)
    }
}

/// FNV-1a over the plan's complete task/level/scatter structure. Any
/// change to dependencies, level assignment, front layout or a scatter
/// target changes the fingerprint.
pub fn plan_fingerprint(plan: &ExecutionPlan) -> u64 {
    let mut h = Fnv::new();
    h.push(plan.num_tasks());
    h.push(plan.levels().len());
    for t in plan.tasks() {
        h.push(t.node);
        h.push(t.parent.map_or(usize::MAX, |p| p));
        h.push(t.level);
        h.push(t.first_col);
        h.push(t.ncols);
        h.push(t.pivot_dim);
        h.push(t.rem_dim);
        h.push(t.merges.len());
        for mg in &t.merges {
            h.push(mg.child);
            h.push(mg.blocks.len());
            for b in &mg.blocks {
                h.push(b.src_row);
                h.push(b.src_col);
                h.push(b.dst_row);
                h.push(b.dst_col);
                h.push(b.rows);
                h.push(b.cols);
            }
        }
    }
    // Split overlay: hashed only when present, so plans without sub-units
    // keep their historical fingerprint. The split configuration itself is
    // part of the hash — the same structure built under a different split
    // config is a different plan.
    if plan.has_units() {
        h.push(usize::MAX); // domain separator
        let sc = plan.split_config();
        h.push(usize::from(sc.enabled));
        h.push(sc.min_dim);
        h.push(sc.tile);
        h.push(plan.num_units());
        h.push(plan.unit_levels().len());
        for u in plan.units() {
            h.push(u.task);
            h.push(u.sublevel);
            match u.kind {
                UnitKind::Whole => h.push(0),
                UnitKind::Assemble { strip } => {
                    h.push(1);
                    h.push(strip);
                }
                UnitKind::Panel { panel } => {
                    h.push(2);
                    h.push(panel);
                }
                UnitKind::Tile { panel, strip } => {
                    h.push(3);
                    h.push(panel);
                    h.push(strip);
                }
                UnitKind::Finish => h.push(4),
            }
        }
    }
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, v: usize) {
        for b in (v as u64).to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Derives the per-task read/write sets from the plan, mirroring what
/// `numeric::compute_task` actually touches:
///
/// - **reads**: every owned Hessian block column (assembly), and one
///   rectangle of each merge child's update matrix per scatter block
///   (extend-add);
/// - **writes**: the task's published factor columns and its own cached
///   update matrix.
pub fn extract_accesses(plan: &ExecutionPlan) -> Vec<Access> {
    let mut out = Vec::new();
    for task in plan.tasks() {
        let s = task.node;
        for j in task.cols() {
            out.push(Access {
                task: s,
                resource: Resource::HessianCol(j),
                kind: AccessKind::Read,
                region: Region::all(),
            });
        }
        for mg in &task.merges {
            for b in &mg.blocks {
                out.push(Access {
                    task: s,
                    resource: Resource::Update(mg.child),
                    kind: AccessKind::Read,
                    region: Region {
                        row: b.src_row,
                        col: b.src_col,
                        rows: b.rows,
                        cols: b.cols,
                    },
                });
            }
        }
        out.push(Access {
            task: s,
            resource: Resource::FactorNode(s),
            kind: AccessKind::Write,
            region: Region::all(),
        });
        if task.rem_dim > 0 {
            out.push(Access {
                task: s,
                resource: Resource::Update(s),
                kind: AccessKind::Write,
                region: Region {
                    row: 0,
                    col: 0,
                    rows: task.rem_dim,
                    cols: task.rem_dim,
                },
            });
        }
    }
    out
}

/// Proves pairwise disjointness of the access set under level-barrier
/// ordering: `level_of[t]` is the topological level of task `t`, and the
/// only happens-before edge batched dispatch provides is
/// `level(a) < level(b)`.
///
/// Returns every disproof found (empty = proven safe). Exposed separately
/// from [`certify`] so mutation tests can corrupt an extracted access set
/// and watch the right check fire.
pub fn check_accesses(accesses: &[Access], level_of: &[usize]) -> Vec<InterferenceViolation> {
    let mut out = Vec::new();
    // Group by resource: accesses sorted by resource, then split.
    let mut order: Vec<usize> = (0..accesses.len()).collect();
    order.sort_by(|&a, &b| {
        accesses[a]
            .resource
            .cmp(&accesses[b].resource)
            .then(accesses[a].task.cmp(&accesses[b].task))
    });
    let mut i = 0usize;
    while i < order.len() {
        let res = accesses[order[i]].resource;
        let mut j = i;
        while j < order.len() && accesses[order[j]].resource == res {
            j += 1;
        }
        let group = &order[i..j];
        let writers: Vec<&Access> = group
            .iter()
            .map(|&k| &accesses[k])
            .filter(|a| a.kind == AccessKind::Write)
            .collect();
        let readers: Vec<&Access> = group
            .iter()
            .map(|&k| &accesses[k])
            .filter(|a| a.kind == AccessKind::Read)
            .collect();
        for (wi, w) in writers.iter().enumerate() {
            for w2 in &writers[wi + 1..] {
                if w.task != w2.task && w.region.overlaps(&w2.region) {
                    out.push(InterferenceViolation {
                        kind: InterferenceKind::WriteWrite,
                        task_a: w.task.min(w2.task),
                        task_b: w.task.max(w2.task),
                        message: format!("both write overlapping regions of {res}"),
                    });
                }
            }
            for r in &readers {
                if r.task == w.task || !r.region.overlaps(&w.region) {
                    continue;
                }
                let (lw, lr) = (level_of[w.task], level_of[r.task]);
                if lw == lr {
                    out.push(InterferenceViolation {
                        kind: InterferenceKind::SameLevelConflict,
                        task_a: w.task,
                        task_b: r.task,
                        message: format!(
                            "task {} writes and task {} reads {res} in the same level {lw} — \
                             the level barrier cannot order them",
                            w.task, r.task
                        ),
                    });
                } else if lr < lw {
                    out.push(InterferenceViolation {
                        kind: InterferenceKind::ReadBeforeWrite,
                        task_a: w.task,
                        task_b: r.task,
                        message: format!(
                            "task {} (level {lr}) reads {res} before task {} (level {lw}) \
                             writes it",
                            r.task, w.task
                        ),
                    });
                }
            }
        }
        i = j;
    }
    dedup_violations(&mut out);
    out
}

/// Sorts and deduplicates (many scatter blocks of one merge produce the
/// same logical pair conflict).
fn dedup_violations(out: &mut Vec<InterferenceViolation>) {
    out.sort_by(|a, b| {
        (a.task_a, a.task_b, a.kind.id())
            .cmp(&(b.task_a, b.task_b, b.kind.id()))
            .then_with(|| a.message.cmp(&b.message))
    });
    out.dedup_by(|a, b| a.kind == b.kind && a.task_a == b.task_a && a.task_b == b.task_b);
}

/// Structural checks that don't need the access sets: the level table
/// partitions the tasks, every merge child sits strictly below its parent,
/// and every scatter block stays inside its source and destination.
fn check_structure(plan: &ExecutionPlan) -> Vec<InterferenceViolation> {
    let mut out = Vec::new();
    let tasks = plan.tasks();
    let mut seen = vec![0usize; tasks.len()];
    for (lvl, members) in plan.levels().iter().enumerate() {
        for &s in members {
            if s >= tasks.len() || tasks[s].level != lvl {
                out.push(InterferenceViolation {
                    kind: InterferenceKind::LevelPartition,
                    task_a: s,
                    task_b: s,
                    message: format!("level table lists task {s} at level {lvl}"),
                });
            } else {
                seen[s] += 1;
            }
        }
    }
    for (s, &n) in seen.iter().enumerate() {
        if n != 1 {
            out.push(InterferenceViolation {
                kind: InterferenceKind::LevelPartition,
                task_a: s,
                task_b: s,
                message: format!("task {s} appears {n} times in the level table"),
            });
        }
    }
    for task in tasks {
        let front = task.front_dim();
        for mg in &task.merges {
            if mg.child >= tasks.len() {
                out.push(InterferenceViolation {
                    kind: InterferenceKind::LevelPartition,
                    task_a: task.node,
                    task_b: mg.child,
                    message: format!("merge child {} out of range", mg.child),
                });
                continue;
            }
            let child: &PlanTask = &tasks[mg.child];
            if child.level >= task.level {
                out.push(InterferenceViolation {
                    kind: InterferenceKind::LevelPartition,
                    task_a: mg.child,
                    task_b: task.node,
                    message: format!(
                        "merge child {} (level {}) not strictly below parent {} (level {})",
                        mg.child, child.level, task.node, task.level
                    ),
                });
            }
            for b in &mg.blocks {
                let src_ok =
                    b.src_row + b.rows <= child.rem_dim && b.src_col + b.cols <= child.rem_dim;
                let dst_ok = b.dst_row + b.rows <= front
                    && b.dst_col + b.cols <= front
                    && b.dst_row >= b.dst_col;
                if !src_ok || !dst_ok {
                    out.push(InterferenceViolation {
                        kind: InterferenceKind::Bounds,
                        task_a: mg.child,
                        task_b: task.node,
                        message: format!(
                            "scatter block {b:?} escapes child update ({}×{}) or parent \
                             front ({front}×{front})",
                            child.rem_dim, child.rem_dim
                        ),
                    });
                }
            }
        }
    }
    dedup_violations(&mut out);
    out
}

/// The front rectangle a sub-unit touches, in scalar front coordinates.
/// `write` is what the unit mutates, `read` what it additionally consumes
/// from earlier sub-levels (`None` when the read set is inside the write
/// set).
fn unit_regions(
    kind: &UnitKind,
    shape: &crate::plan::SplitShape,
    front_dim: usize,
    pivot_dim: usize,
) -> (Region, Option<Region>) {
    let rect = |row: usize, col: usize, rows: usize, cols: usize| Region {
        row,
        col,
        rows,
        cols,
    };
    match *kind {
        UnitKind::Whole | UnitKind::Finish => (rect(0, 0, 0, 0), Some(Region::all())),
        UnitKind::Assemble { strip } => {
            let col0 = strip * shape.tile;
            (
                rect(0, col0, front_dim, shape.strip_width(strip, front_dim)),
                None,
            )
        }
        UnitKind::Panel { panel } => {
            let (k, _) = shape.panel_cols(panel, pivot_dim);
            let strip_end = ((shape.strip_of_panel(panel) + 1) * shape.tile).min(front_dim);
            (rect(k, k, front_dim - k, strip_end - k), None)
        }
        UnitKind::Tile { panel, strip } => {
            let (k, b) = shape.panel_cols(panel, pivot_dim);
            let col0 = strip * shape.tile;
            (
                rect(
                    col0,
                    col0,
                    front_dim - col0,
                    shape.strip_width(strip, front_dim),
                ),
                Some(rect(col0, k, front_dim - col0, b)),
            )
        }
    }
}

/// Proves the *sub-unit* schedule of a split plan safe, against the only
/// happens-before edge unit-granular batched dispatch provides: the
/// sub-level barrier (`sublevel(a) < sublevel(b)`). Checks, per split
/// task:
///
/// - unit indices stay inside the task's strip/panel grid (`Bounds`);
/// - assembles run strictly before, and the finish strictly after, every
///   other unit of the task (`LevelPartition`);
/// - every tile runs strictly after its producing panel, and every later
///   panel strictly after the update tiles feeding its strip
///   (`UpdateBeforePanel`);
/// - units sharing a sub-level touch pairwise-disjoint front rectangles
///   (`OverlappingTiles` for tile/tile writes, `SameLevelConflict`
///   otherwise);
///
/// and, across tasks, that every unit of a merge child sits strictly below
/// every unit of its parent (`ReadBeforeWrite`).
///
/// Exposed with an explicit `units` slice (normally
/// [`ExecutionPlan::units`]) so mutation tests can corrupt a copied unit
/// table and watch the matching check fire.
pub fn check_unit_schedule(plan: &ExecutionPlan, units: &[PlanUnit]) -> Vec<InterferenceViolation> {
    let mut out = Vec::new();
    let tasks = plan.tasks();
    let mut by_task: Vec<Vec<&PlanUnit>> = vec![Vec::new(); tasks.len()];
    for u in units {
        if u.task >= tasks.len() {
            out.push(InterferenceViolation {
                kind: InterferenceKind::LevelPartition,
                task_a: u.task,
                task_b: u.task,
                message: format!("unit references task {} out of range", u.task),
            });
        } else {
            by_task[u.task].push(u);
        }
    }
    for (s, tus) in by_task.iter().enumerate() {
        let task = &tasks[s];
        let Some(shape) = plan.split_shape(s) else {
            for u in tus {
                if u.kind != UnitKind::Whole {
                    out.push(InterferenceViolation {
                        kind: InterferenceKind::LevelPartition,
                        task_a: s,
                        task_b: s,
                        message: format!("unsplit task {s} carries sub-unit {:?}", u.kind),
                    });
                }
            }
            continue;
        };
        if tus.is_empty() {
            out.push(InterferenceViolation {
                kind: InterferenceKind::LevelPartition,
                task_a: s,
                task_b: s,
                message: format!("split task {s} has no units"),
            });
            continue;
        }
        let (dim, m) = (task.front_dim(), task.pivot_dim);

        // Grid bounds; out-of-grid units are excluded from region checks.
        let in_grid = |u: &PlanUnit| match u.kind {
            UnitKind::Whole => false,
            UnitKind::Assemble { strip } => strip < shape.strips,
            UnitKind::Panel { panel } => panel < shape.panels,
            UnitKind::Tile { panel, strip } => panel < shape.panels && strip < shape.strips,
            UnitKind::Finish => true,
        };
        for u in tus {
            if !in_grid(u) {
                out.push(InterferenceViolation {
                    kind: InterferenceKind::Bounds,
                    task_a: s,
                    task_b: s,
                    message: format!(
                        "unit {:?} escapes task {s}'s {}×{} strip/panel grid",
                        u.kind, shape.strips, shape.panels
                    ),
                });
            }
        }
        let tus: Vec<&&PlanUnit> = tus.iter().filter(|u| in_grid(u)).collect();

        // Locate the serial spine.
        let mut panel_sub = vec![None; shape.panels];
        let mut finish_sub = None;
        let mut assemble_max = None;
        for u in &tus {
            match u.kind {
                UnitKind::Panel { panel } => panel_sub[panel] = Some(u.sublevel),
                UnitKind::Finish => finish_sub = Some(u.sublevel),
                UnitKind::Assemble { .. } => {
                    assemble_max =
                        Some(assemble_max.map_or(u.sublevel, |a: usize| a.max(u.sublevel)));
                }
                _ => {}
            }
        }

        // Panel → its tiles.
        for u in &tus {
            if let UnitKind::Tile { panel, strip } = u.kind {
                match panel_sub[panel] {
                    Some(ps) if ps < u.sublevel => {}
                    Some(ps) => out.push(InterferenceViolation {
                        kind: InterferenceKind::UpdateBeforePanel,
                        task_a: s,
                        task_b: s,
                        message: format!(
                            "tile ({panel}, {strip}) at sub-level {} not strictly after \
                             panel {panel} at sub-level {ps}",
                            u.sublevel
                        ),
                    }),
                    None => out.push(InterferenceViolation {
                        kind: InterferenceKind::LevelPartition,
                        task_a: s,
                        task_b: s,
                        message: format!("tile ({panel}, {strip}) references missing panel"),
                    }),
                }
            }
        }
        // Feed edges: panel p needs every earlier panel's tile into its own
        // strip completed first.
        for p in 0..shape.panels {
            let Some(ps) = panel_sub[p] else {
                out.push(InterferenceViolation {
                    kind: InterferenceKind::LevelPartition,
                    task_a: s,
                    task_b: s,
                    message: format!("split task {s} missing panel {p}"),
                });
                continue;
            };
            let sp = shape.strip_of_panel(p);
            for u in &tus {
                if let UnitKind::Tile { panel: tp, strip } = u.kind {
                    if tp < p && strip == sp && u.sublevel >= ps {
                        out.push(InterferenceViolation {
                            kind: InterferenceKind::UpdateBeforePanel,
                            task_a: s,
                            task_b: s,
                            message: format!(
                                "panel {p} at sub-level {ps} runs at or before tile \
                                 ({tp}, {strip}) feeding its strip (sub-level {})",
                                u.sublevel
                            ),
                        });
                    }
                }
            }
        }
        // Assembles first, finish last.
        if let Some(amax) = assemble_max {
            for u in &tus {
                if !matches!(u.kind, UnitKind::Assemble { .. }) && u.sublevel <= amax {
                    out.push(InterferenceViolation {
                        kind: InterferenceKind::LevelPartition,
                        task_a: s,
                        task_b: s,
                        message: format!(
                            "unit {:?} at sub-level {} not strictly after assembly \
                             (sub-level {amax})",
                            u.kind, u.sublevel
                        ),
                    });
                }
            }
        }
        match finish_sub {
            Some(fs) => {
                for u in &tus {
                    if !matches!(u.kind, UnitKind::Finish) && u.sublevel >= fs {
                        out.push(InterferenceViolation {
                            kind: InterferenceKind::LevelPartition,
                            task_a: s,
                            task_b: s,
                            message: format!(
                                "unit {:?} at sub-level {} not strictly before the finish \
                                 (sub-level {fs})",
                                u.kind, u.sublevel
                            ),
                        });
                    }
                }
            }
            None => out.push(InterferenceViolation {
                kind: InterferenceKind::LevelPartition,
                task_a: s,
                task_b: s,
                message: format!("split task {s} has no finish unit"),
            }),
        }
        // Same-sub-level rectangle disjointness on the shared front.
        for (i, a) in tus.iter().enumerate() {
            let (aw, ar) = unit_regions(&a.kind, &shape, dim, m);
            for b in &tus[i + 1..] {
                if a.sublevel != b.sublevel {
                    continue;
                }
                let (bw, br) = unit_regions(&b.kind, &shape, dim, m);
                let conflict = aw.overlaps(&bw)
                    || ar.as_ref().is_some_and(|r| r.overlaps(&bw))
                    || br.as_ref().is_some_and(|r| r.overlaps(&aw));
                if !conflict {
                    continue;
                }
                let tiles = matches!(a.kind, UnitKind::Tile { .. })
                    && matches!(b.kind, UnitKind::Tile { .. });
                out.push(InterferenceViolation {
                    kind: if tiles {
                        InterferenceKind::OverlappingTiles
                    } else {
                        InterferenceKind::SameLevelConflict
                    },
                    task_a: s,
                    task_b: s,
                    message: format!(
                        "units {:?} and {:?} of task {s} share sub-level {} but touch \
                         overlapping front rectangles",
                        a.kind, b.kind, a.sublevel
                    ),
                });
            }
        }
    }
    // Cross-task: a child's units all complete before any parent unit runs.
    for task in tasks {
        let first = by_task[task.node].iter().map(|u| u.sublevel).min();
        for mg in &task.merges {
            if mg.child >= tasks.len() {
                continue;
            }
            let last = by_task[mg.child].iter().map(|u| u.sublevel).max();
            if let (Some(first), Some(last)) = (first, last) {
                if last >= first {
                    out.push(InterferenceViolation {
                        kind: InterferenceKind::ReadBeforeWrite,
                        task_a: mg.child,
                        task_b: task.node,
                        message: format!(
                            "parent {} starts at sub-level {first} while child {} still \
                             runs at sub-level {last}",
                            task.node, mg.child
                        ),
                    });
                }
            }
        }
    }
    dedup_violations(&mut out);
    out
}

/// Runs the full interference proof over `plan` and, if it holds, emits
/// the [`PlanCertificate`] the executor's batched dispatch mode requires.
///
/// # Errors
///
/// Returns every [`InterferenceViolation`] found when the plan cannot be
/// proven level-safe.
pub fn certify(plan: &ExecutionPlan) -> Result<PlanCertificate, Vec<InterferenceViolation>> {
    let mut violations = check_structure(plan);
    let accesses = extract_accesses(plan);
    let level_of: Vec<usize> = plan.tasks().iter().map(|t| t.level).collect();
    violations.extend(check_accesses(&accesses, &level_of));
    if plan.has_units() {
        violations.extend(check_unit_schedule(plan, plan.units()));
    }
    if !violations.is_empty() {
        dedup_violations(&mut violations);
        return Err(violations);
    }
    Ok(PlanCertificate {
        fingerprint: plan_fingerprint(plan),
        num_tasks: plan.num_tasks(),
        num_levels: plan.levels().len(),
        accesses: accesses.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockPattern, SymbolicFactor};

    fn plan() -> ExecutionPlan {
        let mut p = BlockPattern::new(vec![2, 3, 1, 2, 2, 3, 1, 2]);
        for i in 0..7 {
            p.add_block_edge(i, i + 1);
        }
        p.add_block_edge(0, 5);
        p.add_block_edge(2, 7);
        p.add_block_edge(3, 6);
        ExecutionPlan::from_symbolic(&SymbolicFactor::analyze(&p, 0))
    }

    #[test]
    fn real_plans_certify() {
        let plan = plan();
        let cert = certify(&plan).expect("loopy plan must certify");
        assert!(cert.covers(&plan));
        assert_eq!(cert.num_tasks(), plan.num_tasks());
        assert!(cert.accesses() > 0);
        // A different plan is not covered.
        let mut p2 = BlockPattern::new(vec![2; 5]);
        for i in 0..4 {
            p2.add_block_edge(i, i + 1);
        }
        let other = ExecutionPlan::from_symbolic(&SymbolicFactor::analyze(&p2, 0));
        assert!(!cert.covers(&other));
    }

    #[test]
    fn fingerprint_is_structure_sensitive() {
        let a = plan_fingerprint(&plan());
        let mut p = BlockPattern::new(vec![2, 3, 1, 2, 2, 3, 1, 2]);
        for i in 0..7 {
            p.add_block_edge(i, i + 1);
        }
        p.add_block_edge(0, 5);
        p.add_block_edge(2, 7);
        // One edge fewer than `plan()`.
        let b = plan_fingerprint(&ExecutionPlan::from_symbolic(&SymbolicFactor::analyze(
            &p, 0,
        )));
        assert_ne!(a, b);
        assert_eq!(a, plan_fingerprint(&plan()));
    }

    #[test]
    fn regions_overlap_correctly() {
        let a = Region {
            row: 0,
            col: 0,
            rows: 4,
            cols: 4,
        };
        let b = Region {
            row: 3,
            col: 3,
            rows: 2,
            cols: 2,
        };
        let c = Region {
            row: 4,
            col: 0,
            rows: 2,
            cols: 4,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(Region::all().overlaps(&a));
        let empty = Region {
            row: 0,
            col: 0,
            rows: 0,
            cols: 0,
        };
        assert!(!empty.overlaps(&a));
    }

    #[test]
    fn same_level_write_read_is_rejected() {
        // Two level-0 tasks; task 1 reads task 0's update.
        let accesses = [
            Access {
                task: 0,
                resource: Resource::Update(0),
                kind: AccessKind::Write,
                region: Region {
                    row: 0,
                    col: 0,
                    rows: 4,
                    cols: 4,
                },
            },
            Access {
                task: 1,
                resource: Resource::Update(0),
                kind: AccessKind::Read,
                region: Region {
                    row: 1,
                    col: 1,
                    rows: 2,
                    cols: 2,
                },
            },
        ];
        let v = check_accesses(&accesses, &[0, 0]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, InterferenceKind::SameLevelConflict);
    }

    #[test]
    fn overlapping_writes_are_rejected_regardless_of_level() {
        let w = |task: usize| Access {
            task,
            resource: Resource::FactorNode(7),
            kind: AccessKind::Write,
            region: Region::all(),
        };
        let v = check_accesses(&[w(0), w(1)], &[0, 1]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, InterferenceKind::WriteWrite);
        assert_eq!(v[0].kind.id(), "write-write");
    }

    #[test]
    fn disjoint_writes_to_one_resource_are_fine() {
        let mk = |task: usize, row: usize| Access {
            task,
            resource: Resource::Update(9),
            kind: AccessKind::Write,
            region: Region {
                row,
                col: 0,
                rows: 2,
                cols: 2,
            },
        };
        assert!(check_accesses(&[mk(0, 0), mk(1, 4)], &[0, 0]).is_empty());
    }

    #[test]
    fn read_below_writer_level_is_rejected() {
        let accesses = [
            Access {
                task: 3,
                resource: Resource::Update(3),
                kind: AccessKind::Write,
                region: Region::all(),
            },
            Access {
                task: 1,
                resource: Resource::Update(3),
                kind: AccessKind::Read,
                region: Region::all(),
            },
        ];
        let v = check_accesses(&accesses, &[0, 0, 0, 2]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, InterferenceKind::ReadBeforeWrite);
    }

    fn split_plan() -> ExecutionPlan {
        let mut p = BlockPattern::new(vec![64, 64, 64]);
        p.add_block_edge(0, 2);
        p.add_block_edge(1, 2);
        ExecutionPlan::from_symbolic_with_split(
            &SymbolicFactor::analyze(&p, 0),
            crate::plan::SplitConfig::on(),
        )
    }

    #[test]
    fn split_plans_certify_and_fingerprint_covers_split_config() {
        let plan = split_plan();
        assert!(plan.has_units());
        let cert = certify(&plan).expect("split plan must certify");
        assert!(cert.covers(&plan));

        // The same structure built unsplit, or under a different strip
        // width, is a different plan.
        let mut p = BlockPattern::new(vec![64, 64, 64]);
        p.add_block_edge(0, 2);
        p.add_block_edge(1, 2);
        let sym = SymbolicFactor::analyze(&p, 0);
        let unsplit =
            ExecutionPlan::from_symbolic_with_split(&sym, crate::plan::SplitConfig::off());
        let wide = ExecutionPlan::from_symbolic_with_split(
            &sym,
            crate::plan::SplitConfig::on().with_tile(96),
        );
        assert!(!cert.covers(&unsplit));
        assert!(!cert.covers(&wide));
        certify(&unsplit).expect("unsplit plan must certify");
        certify(&wide).expect("wide-tile plan must certify");
    }

    #[test]
    fn clean_unit_schedule_passes() {
        let plan = split_plan();
        assert!(check_unit_schedule(&plan, plan.units()).is_empty());
    }

    #[test]
    fn duplicated_tile_strip_is_overlapping_tiles() {
        let plan = split_plan();
        let mut units: Vec<PlanUnit> = plan.units().to_vec();
        // Retarget some tile onto its sibling's strip: two same-sub-level
        // writers of one strip.
        let (donor, victim) = {
            let mut pair = None;
            for (i, u) in units.iter().enumerate() {
                if let UnitKind::Tile { panel, strip } = u.kind {
                    for (j, v) in units.iter().enumerate() {
                        if i != j
                            && v.task == u.task
                            && v.sublevel == u.sublevel
                            && matches!(v.kind, UnitKind::Tile { panel: p2, strip: s2 }
                                if p2 == panel && s2 != strip)
                        {
                            pair = Some((i, j));
                        }
                    }
                }
            }
            pair.expect("split plan must have a panel with two tiles")
        };
        let UnitKind::Tile { strip, .. } = units[donor].kind else {
            unreachable!()
        };
        let UnitKind::Tile { panel, .. } = units[victim].kind else {
            unreachable!()
        };
        units[victim].kind = UnitKind::Tile { panel, strip };
        let v = check_unit_schedule(&plan, &units);
        assert!(
            v.iter()
                .any(|x| x.kind == InterferenceKind::OverlappingTiles),
            "expected overlapping-tiles, got {v:?}"
        );
        assert_eq!(InterferenceKind::OverlappingTiles.id(), "overlapping-tiles");
    }

    #[test]
    fn tile_scheduled_before_its_panel_is_rejected() {
        let plan = split_plan();
        let mut units: Vec<PlanUnit> = plan.units().to_vec();
        let idx = units
            .iter()
            .position(|u| matches!(u.kind, UnitKind::Tile { .. }))
            .expect("split plan must have a tile");
        // Drag the tile down to the assembly sub-level, before its panel.
        let base = plan.task_units(units[idx].task)[0].sublevel;
        units[idx].sublevel = base;
        let v = check_unit_schedule(&plan, &units);
        assert!(
            v.iter()
                .any(|x| x.kind == InterferenceKind::UpdateBeforePanel),
            "expected update-before-panel, got {v:?}"
        );
        assert_eq!(
            InterferenceKind::UpdateBeforePanel.id(),
            "update-before-panel"
        );
    }

    #[test]
    fn child_unit_overlapping_parent_is_rejected() {
        let plan = split_plan();
        let parent = plan
            .tasks()
            .iter()
            .find(|t| !t.merges.is_empty())
            .expect("plan must have a parent task");
        let child = parent.merges[0].child;
        let parent_first = plan
            .task_units(parent.node)
            .iter()
            .map(|u| u.sublevel)
            .min()
            .unwrap();
        let mut units: Vec<PlanUnit> = plan.units().to_vec();
        // Push the child's last unit up into the parent's first sub-level.
        let idx = units
            .iter()
            .enumerate()
            .filter(|(_, u)| u.task == child)
            .map(|(i, _)| i)
            .next_back()
            .unwrap();
        units[idx].sublevel = parent_first;
        let v = check_unit_schedule(&plan, &units);
        assert!(
            v.iter()
                .any(|x| x.kind == InterferenceKind::ReadBeforeWrite),
            "expected read-before-write, got {v:?}"
        );
    }

    #[test]
    fn extracted_sets_mirror_compute_task() {
        let plan = plan();
        let accesses = extract_accesses(&plan);
        for task in plan.tasks() {
            let mine: Vec<&Access> = accesses.iter().filter(|a| a.task == task.node).collect();
            // One factor write, one update write iff rem_dim > 0.
            assert_eq!(
                mine.iter()
                    .filter(|a| a.kind == AccessKind::Write
                        && a.resource == Resource::FactorNode(task.node))
                    .count(),
                1
            );
            assert_eq!(
                mine.iter()
                    .filter(|a| a.kind == AccessKind::Write
                        && a.resource == Resource::Update(task.node))
                    .count(),
                usize::from(task.rem_dim > 0)
            );
            // One Hessian read per owned block column.
            assert_eq!(
                mine.iter()
                    .filter(|a| matches!(a.resource, Resource::HessianCol(_)))
                    .count(),
                task.ncols
            );
            // One read per scatter block of each merge.
            let scatter: usize = task.merges.iter().map(|m| m.blocks.len()).sum();
            assert_eq!(
                mine.iter()
                    .filter(
                        |a| a.kind == AccessKind::Read && matches!(a.resource, Resource::Update(_))
                    )
                    .count(),
                scatter
            );
        }
    }
}
