//! Numeric block-sparse symmetric storage for the Hessian.

use std::collections::BTreeMap;

use supernova_linalg::Mat;

/// The lower triangle of a symmetric block-sparse matrix (the Hessian
/// `H = JᵀJ` of the SLAM backend), stored per block column.
///
/// Off-diagonal blocks are stored at `(max, min)` so the structure mirrors
/// [`BlockPattern`](crate::BlockPattern). Diagonal blocks hold their full
/// square block; only the lower triangle of a diagonal block is read by the
/// factorization.
///
/// # Example
///
/// ```
/// use supernova_sparse::BlockMat;
/// use supernova_linalg::Mat;
///
/// let mut h = BlockMat::new(vec![2, 3]);
/// h.add_to_block(0, 0, &Mat::identity(2));
/// h.add_to_block(1, 0, &Mat::zeros(3, 2));
/// assert_eq!(h.block(1, 0).unwrap().rows(), 3);
/// assert!(h.block(0, 1).is_none()); // upper triangle is not stored
/// ```
#[derive(Clone, Debug, Default)]
pub struct BlockMat {
    block_dims: Vec<usize>,
    cols: Vec<BTreeMap<usize, Mat>>,
}

impl BlockMat {
    /// Creates an all-zero matrix with the given block dimensions.
    pub fn new(block_dims: Vec<usize>) -> Self {
        let cols = vec![BTreeMap::new(); block_dims.len()];
        BlockMat { block_dims, cols }
    }

    /// Per-block scalar dimensions.
    pub fn block_dims(&self) -> &[usize] {
        &self.block_dims
    }

    /// Number of block columns.
    pub fn num_blocks(&self) -> usize {
        self.block_dims.len()
    }

    /// Appends a new block of dimension `dim`, returning its index.
    pub fn push_block(&mut self, dim: usize) -> usize {
        self.block_dims.push(dim);
        self.cols.push(BTreeMap::new());
        self.block_dims.len() - 1
    }

    /// The stored block at `(brow, bcol)`; `None` when structurally zero or
    /// in the strict upper triangle.
    pub fn block(&self, brow: usize, bcol: usize) -> Option<&Mat> {
        if brow < bcol {
            return None;
        }
        self.cols[bcol].get(&brow)
    }

    /// Adds `m` into block `(brow, bcol)`, materializing it when absent.
    ///
    /// # Panics
    ///
    /// Panics if `brow < bcol` (upper triangle) or if `m`'s shape does not
    /// match the block dimensions.
    pub fn add_to_block(&mut self, brow: usize, bcol: usize, m: &Mat) {
        assert!(brow >= bcol, "upper-triangle write ({brow},{bcol})");
        assert_eq!(m.rows(), self.block_dims[brow], "block row dim mismatch");
        assert_eq!(m.cols(), self.block_dims[bcol], "block col dim mismatch");
        let rows = self.block_dims[brow];
        let cols = self.block_dims[bcol];
        self.cols[bcol]
            .entry(brow)
            .or_insert_with(|| Mat::zeros(rows, cols))
            .add_block(0, 0, m);
    }

    /// Zeroes every block in block column `bcol` and block row `bcol`
    /// (used when a variable's Hessian contributions are re-assembled after
    /// relinearization).
    pub fn clear_involving(&mut self, b: usize) {
        self.cols[b].clear();
        for col in self.cols[..b].iter_mut() {
            col.remove(&b);
        }
    }

    /// Iterates over the stored blocks of column `bcol` as `(brow, block)`.
    pub fn col_blocks(&self, bcol: usize) -> impl Iterator<Item = (usize, &Mat)> {
        self.cols[bcol].iter().map(|(&r, m)| (r, m))
    }

    /// Densifies into a full symmetric matrix (test/debug helper).
    pub fn to_dense(&self) -> Mat {
        let offsets: Vec<usize> = self
            .block_dims
            .iter()
            .scan(0usize, |acc, &d| {
                let o = *acc;
                *acc += d;
                Some(o)
            })
            .collect();
        let n: usize = self.block_dims.iter().sum();
        let mut out = Mat::zeros(n, n);
        for bcol in 0..self.num_blocks() {
            for (brow, m) in self.col_blocks(bcol) {
                for c in 0..m.cols() {
                    for r in 0..m.rows() {
                        let (gr, gc) = (offsets[brow] + r, offsets[bcol] + c);
                        if brow == bcol && r < c {
                            continue; // only the lower triangle of diagonal blocks is meaningful
                        }
                        out[(gr, gc)] = m[(r, c)];
                        out[(gc, gr)] = m[(r, c)];
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let mut h = BlockMat::new(vec![2, 2]);
        h.add_to_block(1, 0, &Mat::identity(2));
        h.add_to_block(1, 0, &Mat::identity(2));
        assert_eq!(h.block(1, 0).unwrap()[(0, 0)], 2.0);
    }

    #[test]
    #[should_panic(expected = "upper-triangle")]
    fn upper_triangle_write_panics() {
        let mut h = BlockMat::new(vec![1, 1]);
        h.add_to_block(0, 1, &Mat::zeros(1, 1));
    }

    #[test]
    fn clear_involving_removes_row_and_col() {
        let mut h = BlockMat::new(vec![1, 1, 1]);
        h.add_to_block(1, 0, &Mat::identity(1));
        h.add_to_block(2, 1, &Mat::identity(1));
        h.add_to_block(1, 1, &Mat::identity(1));
        h.clear_involving(1);
        assert!(h.block(1, 0).is_none());
        assert!(h.block(2, 1).is_none());
        assert!(h.block(1, 1).is_none());
    }

    #[test]
    fn to_dense_is_symmetric() {
        let mut h = BlockMat::new(vec![2, 1]);
        h.add_to_block(0, 0, &Mat::from_rows(2, 2, &[2.0, 0.0, 0.5, 2.0]));
        h.add_to_block(1, 0, &Mat::from_rows(1, 2, &[3.0, 4.0]));
        h.add_to_block(1, 1, &Mat::from_rows(1, 1, &[5.0]));
        let d = h.to_dense();
        assert_eq!(d[(2, 0)], 3.0);
        assert_eq!(d[(0, 2)], 3.0);
        assert_eq!(d[(1, 0)], d[(0, 1)]);
    }

    #[test]
    fn push_block_grows() {
        let mut h = BlockMat::new(vec![1]);
        assert_eq!(h.push_block(2), 1);
        assert_eq!(h.num_blocks(), 2);
        h.add_to_block(1, 0, &Mat::zeros(2, 1));
        assert!(h.block(1, 0).is_some());
    }
}
