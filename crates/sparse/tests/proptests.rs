//! Randomized tests: random pose-graph-like patterns must factorize to
//! the same `L` as dense Cholesky, and the incremental path must agree with
//! from-scratch factorization for any dirty set. Seeded loops over the
//! in-tree PRNG keep every case reproducible offline.

use supernova_linalg::rng::XorShift64;
use supernova_linalg::{cholesky_in_place, Mat};
use supernova_sparse::{BlockMat, BlockPattern, NumericFactor, SymbolicFactor};

const CASES: u64 = 64;

#[derive(Clone, Debug)]
struct Problem {
    pattern: BlockPattern,
    h: BlockMat,
}

/// A random chain of 3..=10 blocks (dims 1..=3) plus random extra edges —
/// the shape of an online SLAM Hessian.
fn problem(rng: &mut XorShift64) -> Problem {
    let n = 3 + rng.gen_index(8);
    let dims: Vec<usize> = (0..n).map(|_| 1 + rng.gen_index(3)).collect();
    let mut pattern = BlockPattern::new(dims.clone());
    for i in 0..n - 1 {
        pattern.add_block_edge(i, i + 1);
    }
    let extra = rng.gen_index(7);
    for _ in 0..extra {
        let a = rng.gen_index(n);
        let b = rng.gen_index(n);
        if a != b {
            pattern.add_block_edge(a, b);
        }
    }
    let mut h = BlockMat::new(dims.clone());
    for j in 0..n {
        for &i in pattern.col(j) {
            h.add_to_block(
                i,
                j,
                &Mat::from_fn(dims[i], dims[j], |_, _| rng.gen_range(-0.2, 0.2)),
            );
        }
        let deg = pattern.col(j).len() as f64;
        h.add_to_block(j, j, &Mat::from_diag(&vec![5.0 + 3.0 * deg; dims[j]]));
    }
    Problem { pattern, h }
}

fn dense_l(h: &BlockMat) -> Mat {
    let mut l = h.to_dense();
    cholesky_in_place(&mut l).unwrap();
    l
}

#[test]
fn multifrontal_matches_dense() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x5a10_0000 + case);
        let p = problem(&mut rng);
        let relax = rng.gen_index(3);
        let sym = SymbolicFactor::analyze(&p.pattern, relax);
        let num = NumericFactor::factorize(&sym, &p.h).unwrap();
        let got = num.to_dense_l(&sym);
        let want = dense_l(&p.h);
        let n = sym.total_dim();
        for i in 0..n {
            for j in 0..=i {
                assert!(
                    (got[(i, j)] - want[(i, j)]).abs() < 1e-7,
                    "case {case}: L({i},{j}) {} vs {}",
                    got[(i, j)],
                    want[(i, j)]
                );
            }
        }
    }
}

#[test]
fn solve_matches_dense_solution() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x5a20_0000 + case);
        let p = problem(&mut rng);
        let sym = SymbolicFactor::analyze(&p.pattern, 1);
        let num = NumericFactor::factorize(&sym, &p.h).unwrap();
        let n = sym.total_dim();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut x = p.h.to_dense().matvec(&x_true);
        num.solve_in_place(&sym, &mut x);
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-6, "case {case} component {i}");
        }
    }
}

#[test]
fn incremental_refactor_equals_fresh() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x5a30_0000 + case);
        let p = problem(&mut rng);
        let sym = SymbolicFactor::analyze(&p.pattern, 0);
        let mut num = NumericFactor::factorize(&sym, &p.h).unwrap();

        // Perturb the diagonal of each dirty block and refactor.
        let mut h2 = p.h.clone();
        let nb = p.pattern.num_blocks();
        let dirty: Vec<usize> = (0..1 + rng.gen_index(3))
            .map(|_| rng.gen_index(nb))
            .collect();
        for &d in &dirty {
            let dim = p.pattern.block_dims()[d];
            h2.add_to_block(d, d, &Mat::from_diag(&vec![1.0; dim]));
        }
        num.refactor(&sym, &h2, &dirty).unwrap();

        let fresh = NumericFactor::factorize(&sym, &h2).unwrap();
        let a = num.to_dense_l(&sym);
        let b = fresh.to_dense_l(&sym);
        for i in 0..sym.total_dim() {
            for j in 0..=i {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() < 1e-8,
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn refactor_after_growth_equals_fresh() {
    for case in 0..CASES {
        let mut rng = XorShift64::seed_from_u64(0x5a40_0000 + case);
        let p = problem(&mut rng);
        let new_dim = 1 + rng.gen_index(3);
        // Grow the problem by one block attached to the last block — the
        // online SLAM step — and check incremental equals fresh.
        let sym0 = SymbolicFactor::analyze(&p.pattern, 0);
        let mut num = NumericFactor::factorize(&sym0, &p.h).unwrap();

        let mut pattern = p.pattern.clone();
        let last = pattern.num_blocks() - 1;
        let new = pattern.push_block(new_dim);
        pattern.add_block_edge(last, new);
        let mut h = p.h.clone();
        h.push_block(new_dim);
        h.add_to_block(new, new, &Mat::from_diag(&vec![8.0; new_dim]));
        h.add_to_block(
            new,
            last,
            &Mat::from_fn(new_dim, p.pattern.block_dims()[last], |r, c| {
                0.1 * (r + c) as f64
            }),
        );

        let sym1 = SymbolicFactor::analyze(&pattern, 0);
        num.refactor(&sym1, &h, &[last, new]).unwrap();
        let fresh = NumericFactor::factorize(&sym1, &h).unwrap();
        let a = num.to_dense_l(&sym1);
        let b = fresh.to_dense_l(&sym1);
        for i in 0..sym1.total_dim() {
            for j in 0..=i {
                assert!(
                    (a[(i, j)] - b[(i, j)]).abs() < 1e-8,
                    "case {case} at ({i},{j})"
                );
            }
        }
    }
}
