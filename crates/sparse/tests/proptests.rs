//! Property-based tests: random pose-graph-like patterns must factorize to
//! the same `L` as dense Cholesky, and the incremental path must agree with
//! from-scratch factorization for any dirty set.

use proptest::prelude::*;
use supernova_linalg::{cholesky_in_place, Mat};
use supernova_sparse::{BlockMat, BlockPattern, NumericFactor, SymbolicFactor};

#[derive(Clone, Debug)]
struct Problem {
    pattern: BlockPattern,
    h: BlockMat,
}

/// A random chain of 3..=10 blocks (dims 1..=3) plus random extra edges —
/// the shape of an online SLAM Hessian.
fn problem() -> impl Strategy<Value = Problem> {
    (3usize..=10)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(1usize..=3, n),
                proptest::collection::vec((0usize..n, 0usize..n), 0..=6),
                any::<u64>(),
            )
        })
        .prop_map(|(dims, extra, seed)| {
            let n = dims.len();
            let mut pattern = BlockPattern::new(dims.clone());
            for i in 0..n - 1 {
                pattern.add_block_edge(i, i + 1);
            }
            for (a, b) in extra {
                if a != b {
                    pattern.add_block_edge(a, b);
                }
            }
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) - 0.5
            };
            let mut h = BlockMat::new(dims.clone());
            for j in 0..n {
                for &i in pattern.col(j) {
                    h.add_to_block(i, j, &Mat::from_fn(dims[i], dims[j], |_, _| next() * 0.4));
                }
                let deg = pattern.col(j).len() as f64;
                h.add_to_block(j, j, &Mat::from_diag(&vec![5.0 + 3.0 * deg; dims[j]]));
            }
            Problem { pattern, h }
        })
}

fn dense_l(h: &BlockMat) -> Mat {
    let mut l = h.to_dense();
    cholesky_in_place(&mut l).unwrap();
    l
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn multifrontal_matches_dense(p in problem(), relax in 0usize..3) {
        let sym = SymbolicFactor::analyze(&p.pattern, relax);
        let num = NumericFactor::factorize(&sym, &p.h).unwrap();
        let got = num.to_dense_l(&sym);
        let want = dense_l(&p.h);
        let n = sym.total_dim();
        for i in 0..n {
            for j in 0..=i {
                prop_assert!((got[(i, j)] - want[(i, j)]).abs() < 1e-7,
                    "L({},{}) {} vs {}", i, j, got[(i, j)], want[(i, j)]);
            }
        }
    }

    #[test]
    fn solve_matches_dense_solution(p in problem()) {
        let sym = SymbolicFactor::analyze(&p.pattern, 1);
        let num = NumericFactor::factorize(&sym, &p.h).unwrap();
        let n = sym.total_dim();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let mut x = p.h.to_dense().matvec(&x_true);
        num.solve_in_place(&sym, &mut x);
        for i in 0..n {
            prop_assert!((x[i] - x_true[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn incremental_refactor_equals_fresh(p in problem(), dirty in proptest::collection::vec(0usize..10, 1..4)) {
        let sym = SymbolicFactor::analyze(&p.pattern, 0);
        let mut num = NumericFactor::factorize(&sym, &p.h).unwrap();

        // Perturb the diagonal of each dirty block and refactor.
        let mut h2 = p.h.clone();
        let nb = p.pattern.num_blocks();
        let dirty: Vec<usize> = dirty.into_iter().map(|d| d % nb).collect();
        for &d in &dirty {
            let dim = p.pattern.block_dims()[d];
            h2.add_to_block(d, d, &Mat::from_diag(&vec![1.0; dim]));
        }
        num.refactor(&sym, &h2, &dirty).unwrap();

        let fresh = NumericFactor::factorize(&sym, &h2).unwrap();
        let a = num.to_dense_l(&sym);
        let b = fresh.to_dense_l(&sym);
        for i in 0..sym.total_dim() {
            for j in 0..=i {
                prop_assert!((a[(i, j)] - b[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn refactor_after_growth_equals_fresh(p in problem(), new_dim in 1usize..=3) {
        // Grow the problem by one block attached to the last block — the
        // online SLAM step — and check incremental equals fresh.
        let sym0 = SymbolicFactor::analyze(&p.pattern, 0);
        let mut num = NumericFactor::factorize(&sym0, &p.h).unwrap();

        let mut pattern = p.pattern.clone();
        let last = pattern.num_blocks() - 1;
        let new = pattern.push_block(new_dim);
        pattern.add_block_edge(last, new);
        let mut h = p.h.clone();
        h.push_block(new_dim);
        h.add_to_block(new, new, &Mat::from_diag(&vec![8.0; new_dim]));
        h.add_to_block(new, last, &Mat::from_fn(new_dim, p.pattern.block_dims()[last], |r, c| 0.1 * (r + c) as f64));

        let sym1 = SymbolicFactor::analyze(&pattern, 0);
        num.refactor(&sym1, &h, &[last, new]).unwrap();
        let fresh = NumericFactor::factorize(&sym1, &h).unwrap();
        let a = num.to_dense_l(&sym1);
        let b = fresh.to_dense_l(&sym1);
        for i in 0..sym1.total_dim() {
            for j in 0..=i {
                prop_assert!((a[(i, j)] - b[(i, j)]).abs() < 1e-8);
            }
        }
    }
}
