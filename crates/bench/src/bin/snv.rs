//! `snv` — command-line front end for the SuperNoVA stack.
//!
//! ```text
//! snv gen <sphere|m3500|cab1|cab2> [--scale F] [--out FILE.g2o]
//! snv info <FILE.g2o>
//! snv solve <FILE.g2o | builtin:NAME[@SCALE]> [--solver ra|isam2|local|localglobal]
//!           [--sets N] [--target MS] [--traj FILE.csv]
//! ```
//!
//! `gen` writes a synthetic workload as g2o; `solve` replays any pose graph
//! online through a chosen backend, prices it on the SuperNoVA SoC, and
//! reports latency statistics (plus the estimated trajectory as CSV).

use std::process::ExitCode;

use supernova_core::report::{ms, pct, Table};
use supernova_core::{run_online, ExperimentConfig, PricingTarget, SolverKind};
use supernova_datasets::Dataset;
use supernova_metrics::{miss_rate, BoxStats};

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  snv gen <sphere|m3500|cab1|cab2> [--scale F] [--out FILE.g2o]");
    eprintln!("  snv info <FILE.g2o>");
    eprintln!(
        "  snv solve <FILE.g2o | builtin:NAME[@SCALE]> [--solver ra|isam2|local|localglobal]"
    );
    eprintln!("            [--sets N] [--target MS] [--traj FILE.csv]");
    ExitCode::FAILURE
}

fn builtin(name: &str, scale: f64) -> Option<Dataset> {
    Some(match name {
        "sphere" => Dataset::sphere_scaled(scale),
        "m3500" => Dataset::m3500_scaled(scale),
        "cab1" => Dataset::cab1_scaled(scale),
        "cab2" => Dataset::cab2_scaled(scale),
        _ => return None,
    })
}

fn load(spec: &str) -> Result<Dataset, String> {
    if let Some(rest) = spec.strip_prefix("builtin:") {
        let (name, scale) = match rest.split_once('@') {
            Some((n, s)) => (n, s.parse::<f64>().map_err(|e| e.to_string())?),
            None => (rest, 1.0),
        };
        return builtin(name, scale).ok_or_else(|| format!("unknown builtin dataset `{name}`"));
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("reading {spec}: {e}"))?;
    Dataset::from_g2o(spec, &text).map_err(|e| e.to_string())
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let scale = flag(&args, "--scale")
                .and_then(|s| s.parse().ok())
                .unwrap_or(1.0);
            let Some(ds) = builtin(name, scale) else {
                eprintln!("unknown dataset `{name}`");
                return usage();
            };
            let out = flag(&args, "--out").unwrap_or_else(|| format!("{name}.g2o"));
            if let Err(e) = std::fs::write(&out, ds.to_g2o()) {
                eprintln!("writing {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "{}: {} poses, {} edges ({} loop closures) -> {out}",
                ds.name(),
                ds.num_steps(),
                ds.num_edges(),
                ds.num_loop_closures()
            );
            ExitCode::SUCCESS
        }
        Some("info") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            match load(path) {
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
                Ok(ds) => {
                    println!("name:          {}", ds.name());
                    println!("poses:         {}", ds.num_steps());
                    println!("edges:         {}", ds.num_edges());
                    println!("loop closures: {}", ds.num_loop_closures());
                    println!("kind:          {:?}", ds.kind());
                    ExitCode::SUCCESS
                }
            }
        }
        Some("solve") => {
            let Some(spec) = args.get(1) else {
                return usage();
            };
            let ds = match load(spec) {
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
                Ok(ds) => ds,
            };
            let sets: usize = flag(&args, "--sets")
                .and_then(|s| s.parse().ok())
                .unwrap_or(2);
            let target = flag(&args, "--target")
                .and_then(|s| s.parse::<f64>().ok())
                .map(|msv| msv / 1e3)
                .unwrap_or(1.0 / 30.0);
            let kind = match flag(&args, "--solver").as_deref().unwrap_or("ra") {
                "ra" => SolverKind::ResourceAware { sets },
                "isam2" | "incremental" => SolverKind::Incremental,
                "local" => SolverKind::Local,
                "localglobal" => SolverKind::LocalGlobal,
                other => {
                    eprintln!("unknown solver `{other}`");
                    return usage();
                }
            };
            let mut solver = kind.build(target, 0.02);
            let platform = kind.platform();
            let cfg = ExperimentConfig {
                pricings: vec![PricingTarget::new(platform.name().to_string(), platform)],
                eval_stride: 0,
            };
            let rec = run_online(&ds, solver.as_mut(), &cfg, None);
            let totals = rec.totals(0);
            let s = BoxStats::from_samples(&totals);
            println!(
                "{} on {} ({} steps):",
                rec.solver,
                ds.name(),
                ds.num_steps()
            );
            println!(
                "  median {} ms | q3 {} ms | max {} ms",
                ms(s.median),
                ms(s.q3),
                ms(s.max)
            );
            println!(
                "  target {} ms, miss rate {}",
                ms(target),
                pct(miss_rate(&totals, target))
            );
            if let Some(path) = flag(&args, "--traj") {
                let mut csv = Table::new(&["index", "x", "y", "z"]);
                for (k, v) in solver.estimate().iter() {
                    let (x, y, z) = match v {
                        supernova_factors::Variable::Se2(p) => (p.x(), p.y(), 0.0),
                        supernova_factors::Variable::Se3(p) => {
                            let t = p.translation();
                            (t[0], t[1], t[2])
                        }
                        supernova_factors::Variable::Vector(_) => continue,
                    };
                    csv.row(&[
                        k.0.to_string(),
                        format!("{x:.4}"),
                        format!("{y:.4}"),
                        format!("{z:.4}"),
                    ]);
                }
                if let Err(e) = csv.write_csv(&path) {
                    eprintln!("writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("  trajectory -> {path}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
