//! `determinism` — the CI gate proving parallel host factorization is
//! bit-identical to serial execution, in every numeric mode.
//!
//! ```text
//! cargo run --release -p supernova-bench --bin determinism
//! ```
//!
//! Replays three datasets online through iSAM2 once per (numeric mode,
//! executor thread count) pair — `f64`, `f32` and `f32f64` at 1, 2 and 4
//! threads. After every step the cached `NumericFactor` is serialized to
//! canonical bytes and hashed; at the end of the replay the full byte
//! strings and the estimated trajectories are kept. For each (dataset,
//! mode, thread count) triple three named sub-checks must hold against
//! the same-mode serial run:
//!
//! - `step-hashes`: every per-step hash matches the serial run (the
//!   factor never diverges, even transiently),
//! - `final-bytes`: the final serialized factor is byte-for-byte
//!   identical, and
//! - `estimate`: the final trajectory estimate is bit-identical
//!   (`f64::to_bits`).
//!
//! Equality is exact *within* a mode only — the narrow modes round where
//! f64 does not, so cross-mode bytes differ by design (`numeric_ape`
//! gates how much that costs in trajectory accuracy). Sub-checks report
//! `PASS`/`FAIL` in a fixed order and the run ends with one summary line
//! naming any failed checks. See DESIGN.md "Plan/exec split & host
//! parallelism" for why equality is exact rather than within-tolerance.
//!
//! The sweep also crosses the intra-front split pass: per (dataset,
//! mode), a split-disabled serial replay and a split-disabled 4-thread
//! replay are compared against the same split-enabled serial reference
//! (`split-off-serial` / `split-off-4t`). This is the strongest claim the
//! design makes — the sub-unit overlay changes *scheduling only*, so its
//! bytes must match the unsplit plan's bytes exactly, not merely be
//! internally consistent across thread counts.

use std::process::ExitCode;

use supernova_bench::check::Report;
use supernova_datasets::Dataset;
use supernova_factors::{Key, Variable};
use supernova_linalg::NumericMode;
use supernova_solvers::{Isam2, Isam2Config, OnlineSolver};
use supernova_sparse::{ParallelExecutor, SplitConfig};

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One replay: per-step factor hashes, final factor bytes, final estimate.
/// `Variable` derives `PartialEq` over exact `f64` values, so comparing
/// estimates across runs is an exact-equality check, not a tolerance.
struct Replay {
    step_hashes: Vec<u64>,
    final_bytes: Vec<u8>,
    estimate: Vec<Variable>,
}

fn replay(dataset: &Dataset, mode: NumericMode, threads: usize, split: SplitConfig) -> Replay {
    let mut solver = Isam2::new(Isam2Config::default());
    solver
        .core_mut()
        .set_executor(ParallelExecutor::new(threads).with_numeric(mode));
    solver.core_mut().set_split_config(split);
    let mut step_hashes = Vec::new();
    for step in &dataset.online_steps() {
        solver.step(step.truth.clone(), step.factors.clone());
        let bytes = solver.core().numeric_bytes().unwrap_or_default();
        step_hashes.push(fnv1a(&bytes));
    }
    let final_bytes = solver.core().numeric_bytes().unwrap_or_default();
    let estimate = (0..solver.core().num_vars())
        .map(|i| solver.core().pose_estimate(Key(i)))
        .collect();
    Replay {
        step_hashes,
        final_bytes,
        estimate,
    }
}

fn check(report: &mut Report, dataset: &Dataset, mode: NumericMode) {
    let name = dataset.name();
    eprintln!("{name} [{mode}]: {} steps", dataset.num_steps());
    let serial = replay(dataset, mode, 1, SplitConfig::on());
    for threads in [2usize, 4] {
        let run = replay(dataset, mode, threads, SplitConfig::on());
        let diverged = serial
            .step_hashes
            .iter()
            .zip(&run.step_hashes)
            .position(|(a, b)| a != b);
        report.check(
            &format!("{name}/{mode}/{threads}t/step-hashes"),
            diverged.is_none(),
            &match diverged {
                None => format!("{} per-step hashes match serial", run.step_hashes.len()),
                Some(step) => format!("factor diverges from serial at step {step}"),
            },
        );
        report.check(
            &format!("{name}/{mode}/{threads}t/final-bytes"),
            run.final_bytes == serial.final_bytes,
            &format!(
                "{} vs {} bytes",
                run.final_bytes.len(),
                serial.final_bytes.len()
            ),
        );
        report.check(
            &format!("{name}/{mode}/{threads}t/estimate"),
            run.estimate == serial.estimate,
            &format!(
                "{} poses compared by exact f64 equality",
                run.estimate.len()
            ),
        );
    }
    // Split-off cross-checks against the split-on serial reference: the
    // overlay must be invisible in the bytes, at any thread count.
    for (label, threads) in [("split-off-serial", 1usize), ("split-off-4t", 4)] {
        let run = replay(dataset, mode, threads, SplitConfig::off());
        report.check(
            &format!("{name}/{mode}/{label}/final-bytes"),
            run.final_bytes == serial.final_bytes,
            &format!(
                "{} vs {} bytes (split-on serial reference)",
                run.final_bytes.len(),
                serial.final_bytes.len()
            ),
        );
        report.check(
            &format!("{name}/{mode}/{label}/estimate"),
            run.estimate == serial.estimate,
            &format!(
                "{} poses compared by exact f64 equality",
                run.estimate.len()
            ),
        );
    }
}

fn main() -> ExitCode {
    let datasets = [
        Dataset::m3500_scaled(0.06),
        Dataset::sphere_scaled(0.12),
        Dataset::cab1_scaled(0.2),
    ];
    let mut report = Report::new();
    for dataset in &datasets {
        for mode in NumericMode::ALL {
            check(&mut report, dataset, mode);
        }
    }
    report.finish("determinism")
}
