//! `determinism` — the CI gate proving parallel host factorization is
//! bit-identical to serial execution.
//!
//! ```text
//! cargo run --release -p supernova-bench --bin determinism
//! ```
//!
//! Replays three datasets online through iSAM2 once per executor thread
//! count (1, 2, 4). After every step the cached `NumericFactor` is
//! serialized to canonical bytes and hashed; at the end of the replay the
//! full byte strings and the estimated trajectories are kept. A parallel
//! run passes only if
//!
//! - every per-step hash matches the serial run (the factor never diverges,
//!   even transiently),
//! - the final serialized factor is byte-for-byte identical, and
//! - the final trajectory estimate is bit-identical (`f64::to_bits`).
//!
//! Exits nonzero on the first mismatch, printing the dataset, thread count
//! and step. See DESIGN.md "Plan/exec split & host parallelism" for why
//! equality is exact rather than within-tolerance.

use std::process::ExitCode;

use supernova_datasets::Dataset;
use supernova_factors::{Key, Variable};
use supernova_solvers::{Isam2, Isam2Config, OnlineSolver};
use supernova_sparse::ParallelExecutor;

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One replay: per-step factor hashes, final factor bytes, final estimate.
/// `Variable` derives `PartialEq` over exact `f64` values, so comparing
/// estimates across runs is an exact-equality check, not a tolerance.
struct Replay {
    step_hashes: Vec<u64>,
    final_bytes: Vec<u8>,
    estimate: Vec<Variable>,
}

fn replay(dataset: &Dataset, threads: usize) -> Replay {
    let mut solver = Isam2::new(Isam2Config::default());
    solver.core_mut().set_executor(ParallelExecutor::new(threads));
    let mut step_hashes = Vec::new();
    for step in &dataset.online_steps() {
        solver.step(step.truth.clone(), step.factors.clone());
        let bytes = solver.core().numeric_bytes().unwrap_or_default();
        step_hashes.push(fnv1a(&bytes));
    }
    let final_bytes = solver.core().numeric_bytes().unwrap_or_default();
    let estimate =
        (0..solver.core().num_vars()).map(|i| solver.core().pose_estimate(Key(i))).collect();
    Replay { step_hashes, final_bytes, estimate }
}

fn check(dataset: &Dataset) -> Result<(), String> {
    let name = dataset.name();
    eprintln!("{name}: {} steps", dataset.num_steps());
    let serial = replay(dataset, 1);
    for threads in [2usize, 4] {
        let run = replay(dataset, threads);
        for (step, (a, b)) in serial.step_hashes.iter().zip(&run.step_hashes).enumerate() {
            if a != b {
                return Err(format!(
                    "{name}: {threads}-thread factor diverges from serial at step {step}"
                ));
            }
        }
        if run.final_bytes != serial.final_bytes {
            return Err(format!(
                "{name}: {threads}-thread final factor differs from serial \
                 ({} vs {} bytes)",
                run.final_bytes.len(),
                serial.final_bytes.len()
            ));
        }
        if run.estimate != serial.estimate {
            return Err(format!(
                "{name}: {threads}-thread trajectory estimate is not bit-identical to serial"
            ));
        }
        eprintln!(
            "  {threads} threads: {} steps, {} factor bytes, {} poses — identical",
            run.step_hashes.len(),
            run.final_bytes.len(),
            run.estimate.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let datasets = [
        Dataset::m3500_scaled(0.06),
        Dataset::sphere_scaled(0.12),
        Dataset::cab1_scaled(0.2),
    ];
    for dataset in &datasets {
        if let Err(msg) = check(dataset) {
            eprintln!("determinism: FAIL: {msg}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("determinism: all factors and estimates bit-identical across 1/2/4 threads");
    ExitCode::SUCCESS
}
