//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment|all> [--scale F] [--full] [--out DIR] [--stride N] [--list]
//! ```
//!
//! Experiments: fig2 fig3 fig7 fig8 fig9 fig10 fig11 fig12 table2 table3
//! table4 table5 power. By default datasets run at a reduced scale so the
//! whole suite finishes in minutes; `--full` uses the paper sizes.

use std::path::PathBuf;
use std::process::ExitCode;

use supernova_bench::{run_experiment, Suite, SuiteConfig, EXPERIMENTS};

fn usage() {
    eprintln!("usage: repro <experiment|all> [--scale F] [--full] [--out DIR] [--stride N]");
    eprintln!("experiments:");
    for (id, desc) in EXPERIMENTS {
        eprintln!("  {id:8} {desc}");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut cfg = SuiteConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" | "-l" | "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--full" => cfg.scale = Some(1.0),
            "--scale" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v <= 1.0 => cfg.scale = Some(v),
                _ => {
                    eprintln!("--scale expects a fraction in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(v) => cfg.out_dir = PathBuf::from(v),
                None => {
                    eprintln!("--out expects a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--stride" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v > 0 => cfg.eval_stride = v,
                _ => {
                    eprintln!("--stride expects a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_string());
            }
            other => {
                eprintln!("unexpected argument `{other}`");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(experiment) = experiment else {
        usage();
        return ExitCode::FAILURE;
    };
    let mut suite = Suite::new(cfg);
    match run_experiment(&mut suite, &experiment) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
