//! `step_bench` — host wall-time of the plan-driven numeric pipeline,
//! serial vs. parallel, plus the virtual-time cost of the same traces on
//! the SuperNoVA SoC.
//!
//! Gated behind the `bench-harness` feature:
//!
//! ```text
//! cargo run --release -p supernova-bench --features bench-harness --bin step_bench
//! ```
//!
//! Replays each dataset online through iSAM2 with the host executor pinned
//! to 1, 2 and 4 threads, and writes `results/BENCH_step_latency.json`
//! with, per dataset and thread count:
//!
//! - measured host wall-time of the replay (whole backend, dominated by
//!   plan execution) and of the final full refactor alone;
//! - the simulated SuperNoVA-2S numeric latency and SoC cycles (identical
//!   across thread counts — the numeric results are bit-identical, so the
//!   priced trace is too);
//! - the plan's modeled subtree-parallel speedup
//!   (`total_cost / critical_path_cost`, unit-aware when the split pass
//!   produced a sub-unit overlay), which is what the measured speedup
//!   converges to given enough host cores, alongside the same ratio with
//!   the overlay ignored (`modeled_critical_path_speedup_unsplit`) so the
//!   split pass's critical-path win is a first-class gated number;
//! - the final plan's `largest_task_fraction` (share of total work in its
//!   single heaviest dispatchable item — the one-giant-task ceiling the
//!   split pass exists to break) and each run's `level_occupancy` at that
//!   thread count, plus the executed schedule's `split_units` count;
//! - the dispatch mode of the final full-refactor host schedule (serial /
//!   dep-counted / level-batched — level-batched proves the interference
//!   certificate gate engaged) and that schedule's dispatch overhead per
//!   task, the number `bench_check` gates so the batched dispatcher's
//!   per-task bookkeeping cost cannot silently regress.
//!
//! `host_cpus` is recorded so a reader can tell whether the measured
//! speedup was core-limited (e.g. a 1-CPU CI container cannot show any
//! wall-time win regardless of the plan's parallelism).
//!
//! With `--trace <path>` the first dataset is additionally replayed once
//! through a span-traced engine (2 host threads, simulator attached) and
//! the resulting Chrome trace-event document is written to `<path>` —
//! load it in `chrome://tracing` or Perfetto to see, per step, the
//! solver phases, the host executor's per-worker task rows and the
//! modeled accelerator-unit occupancy.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use supernova_datasets::Dataset;
use supernova_factors::Key;
use supernova_hw::Platform;
use supernova_linalg::NumericMode;
use supernova_runtime::{simulate_step, CostModel, SchedulerConfig};
use supernova_solvers::{Isam2, Isam2Config, OnlineSolver, RaIsam2Config, SolverEngine};
use supernova_sparse::ParallelExecutor;
use supernova_trace::{chrome_document_wall, StepKey, Trace, TraceConfig};

/// Replays `dataset` through a span-traced engine and writes the
/// wall-clock Chrome trace-event document to `path`.
fn dump_trace(dataset: &Dataset, path: &str) {
    let platform = Platform::supernova(2);
    let cost = Arc::new(CostModel::new(platform.clone()));
    let mut engine = SolverEngine::new(RaIsam2Config::default(), cost);
    engine.set_executor(ParallelExecutor::new(2));
    engine.set_trace(TraceConfig::on());
    engine.set_trace_hw(platform, SchedulerConfig::default());
    let mut traces = Vec::new();
    for (i, step) in dataset.online_steps().into_iter().enumerate() {
        engine.step(step.truth, step.factors);
        if let Some(root) = engine.take_step_span() {
            traces.push(Trace {
                key: StepKey {
                    session: 0,
                    seq: i as u64,
                    step: i as u64 + 1,
                },
                numeric_mode: engine.numeric_mode(),
                root,
            });
        }
    }
    std::fs::write(path, chrome_document_wall(&traces))
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!(
        "wrote {} step trace(s) for {} to {path} (open in chrome://tracing)",
        traces.len(),
        dataset.name()
    );
}

/// One measured replay.
struct Run {
    threads: usize,
    /// Wall seconds for the full online replay.
    wall_s: f64,
    /// Wall seconds for one full (all-nodes-dirty) refactor at the end.
    refactor_wall_s: f64,
    /// Simulated SuperNoVA-2S numeric seconds summed over steps.
    sim_numeric_s: f64,
    /// The same, in SoC cycles.
    sim_cycles: f64,
    /// Plan-modeled subtree parallelism of the final tree (unit-aware).
    modeled_speedup: f64,
    /// The same ratio with the split overlay ignored: whole tasks on the
    /// critical path. `modeled_speedup / modeled_speedup_unsplit` is the
    /// split pass's modeled critical-path win.
    modeled_speedup_unsplit: f64,
    /// Share of the final plan's total work concentrated in its heaviest
    /// dispatchable item (sub-unit when split, whole task otherwise).
    largest_task_fraction: f64,
    /// Work-weighted mean barrier-to-barrier occupancy of the final plan
    /// at this run's thread count.
    level_occupancy: f64,
    /// Sub-units the final full-refactor schedule dispatched (0 = the
    /// plan executed at whole-task granularity).
    split_units: u64,
    /// Dispatch strategy of the final full-refactor host schedule
    /// (0 serial, 1 dep-counted, 2 level-batched).
    dispatch_mode: u64,
    /// Numeric precision the run's kernels executed under
    /// (0 f64, 1 f32, 2 f32f64), from `SUPERNOVA_NUMERIC` — `bench_check`
    /// gates it exactly so a baseline comparison can't silently mix
    /// precisions.
    numeric_mode: u64,
    /// Dispatch overhead of that schedule, per task: the gap between
    /// `makespan * workers` and summed busy time, divided by task count.
    /// On a core-starved host this includes worker idle time, so it is
    /// gated with a tolerance, not exactly.
    dispatch_overhead_per_task_s: f64,
}

fn replay(dataset: &Dataset, threads: usize) -> Run {
    let platform = Platform::supernova(2);
    let sched = SchedulerConfig::default();
    let numeric = NumericMode::from_env();
    let mut solver = Isam2::new(Isam2Config::default());
    solver
        .core_mut()
        .set_executor(ParallelExecutor::new(threads).with_numeric(numeric));

    let steps = dataset.online_steps();
    let mut sim_numeric_s = 0.0;
    let t0 = Instant::now();
    for step in &steps {
        let trace = solver.step(step.truth.clone(), step.factors.clone());
        sim_numeric_s += simulate_step(&platform, &trace, &sched).numeric;
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // One all-variables-dirty step on the final system: the heaviest
    // single plan execution the replay can produce.
    let keys: Vec<Key> = (0..solver.core().num_vars()).map(Key).collect();
    solver.core_mut().relinearize_vars(&keys);
    let t1 = Instant::now();
    let _ = solver.core_mut().factorize_and_solve();
    let refactor_wall_s = t1.elapsed().as_secs_f64();

    // The refactor above is the freshest plan execution, so its host
    // schedule witnesses which dispatch strategy the certificate gate
    // selected and what the dispatch machinery cost per task.
    let sched = solver.core().last_host_schedule();
    let dispatch_mode = sched.map(|s| s.mode.as_u64()).unwrap_or(0);
    let dispatch_overhead_per_task_s = sched
        .map(|s| s.dispatch_overhead_per_task_s())
        .unwrap_or(0.0);
    let split_units = sched.map(|s| s.split_units as u64).unwrap_or(0);

    let plan = solver.core().plan();
    let modeled_speedup = plan
        .map(|p| p.total_cost() as f64 / p.critical_path_cost().max(1) as f64)
        .unwrap_or(1.0);
    let modeled_speedup_unsplit = plan
        .map(|p| p.total_cost() as f64 / p.critical_path_cost_unsplit().max(1) as f64)
        .unwrap_or(1.0);
    let largest_task_fraction = plan.map(|p| p.largest_task_fraction()).unwrap_or(1.0);
    let level_occupancy = plan.map(|p| p.level_occupancy(threads)).unwrap_or(0.0);
    Run {
        threads,
        wall_s,
        refactor_wall_s,
        sim_numeric_s,
        sim_cycles: sim_numeric_s * platform.soc().freq_hz,
        modeled_speedup,
        modeled_speedup_unsplit,
        largest_task_fraction,
        level_occupancy,
        split_units,
        dispatch_mode,
        numeric_mode: numeric.as_u64(),
        dispatch_overhead_per_task_s,
    }
}

fn main() {
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            trace_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("step_bench: --trace needs a file path");
                std::process::exit(2);
            }));
        } else {
            eprintln!("step_bench: unknown argument {arg}");
            std::process::exit(2);
        }
    }
    let datasets = [
        Dataset::m3500_scaled(0.12),
        Dataset::sphere_scaled(0.2),
        Dataset::cab1_scaled(0.3),
    ];
    let thread_counts = [1usize, 2, 4];
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"step_latency\",");
    let _ = writeln!(out, "  \"sim_platform\": \"supernova-2s\",");
    let _ = writeln!(out, "  \"host_cpus\": {host_cpus},");
    out.push_str("  \"datasets\": [\n");

    for (d, dataset) in datasets.iter().enumerate() {
        eprintln!("{}: {} steps", dataset.name(), dataset.num_steps());
        let runs: Vec<Run> = thread_counts.iter().map(|&t| replay(dataset, t)).collect();
        let serial = runs[0].wall_s;
        let serial_refactor = runs[0].refactor_wall_s;

        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", dataset.name());
        let _ = writeln!(out, "      \"steps\": {},", dataset.num_steps());
        let _ = writeln!(
            out,
            "      \"modeled_critical_path_speedup\": {:.4},",
            runs.last().map(|r| r.modeled_speedup).unwrap_or(1.0)
        );
        let _ = writeln!(
            out,
            "      \"modeled_critical_path_speedup_unsplit\": {:.4},",
            runs.last()
                .map(|r| r.modeled_speedup_unsplit)
                .unwrap_or(1.0)
        );
        let _ = writeln!(
            out,
            "      \"largest_task_fraction\": {:.6},",
            runs.last().map(|r| r.largest_task_fraction).unwrap_or(1.0)
        );
        out.push_str("      \"runs\": [\n");
        for (i, r) in runs.iter().enumerate() {
            let _ = writeln!(out, "        {{");
            let _ = writeln!(out, "          \"threads\": {},", r.threads);
            let _ = writeln!(out, "          \"host_wall_s\": {:.6},", r.wall_s);
            let _ = writeln!(
                out,
                "          \"host_refactor_wall_s\": {:.6},",
                r.refactor_wall_s
            );
            let _ = writeln!(
                out,
                "          \"speedup_vs_serial\": {:.4},",
                serial / r.wall_s
            );
            let _ = writeln!(
                out,
                "          \"refactor_speedup_vs_serial\": {:.4},",
                serial_refactor / r.refactor_wall_s
            );
            let _ = writeln!(out, "          \"dispatch_mode\": {},", r.dispatch_mode);
            let _ = writeln!(out, "          \"numeric_mode\": {},", r.numeric_mode);
            let _ = writeln!(out, "          \"split_units\": {},", r.split_units);
            let _ = writeln!(
                out,
                "          \"level_occupancy\": {:.6},",
                r.level_occupancy
            );
            let _ = writeln!(
                out,
                "          \"dispatch_overhead_per_task_s\": {:.9},",
                r.dispatch_overhead_per_task_s
            );
            let _ = writeln!(out, "          \"sim_numeric_s\": {:.9},", r.sim_numeric_s);
            let _ = writeln!(out, "          \"sim_cycles\": {:.0}", r.sim_cycles);
            let comma = if i + 1 < runs.len() { "," } else { "" };
            let _ = writeln!(out, "        }}{comma}");
        }
        out.push_str("      ]\n");
        let comma = if d + 1 < datasets.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");

        for r in &runs {
            eprintln!(
                "  {} threads: wall {:.3}s (refactor {:.4}s, {:.2}x), sim numeric {:.4}s, \
                 modeled {:.2}x (unsplit {:.2}x, ltf {:.3}, occ {:.3}), {} split units, \
                 dispatch mode {} ({:.1}us/task overhead), numeric {}",
                r.threads,
                r.wall_s,
                r.refactor_wall_s,
                serial_refactor / r.refactor_wall_s,
                r.sim_numeric_s,
                r.modeled_speedup,
                r.modeled_speedup_unsplit,
                r.largest_task_fraction,
                r.level_occupancy,
                r.split_units,
                r.dispatch_mode,
                r.dispatch_overhead_per_task_s * 1e6,
                r.numeric_mode
            );
        }
    }
    out.push_str("  ]\n}\n");

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_step_latency.json", &out)
        .expect("write results/BENCH_step_latency.json");
    eprintln!("wrote results/BENCH_step_latency.json");

    if let Some(path) = trace_path {
        dump_trace(&datasets[0], &path);
    }
}
